//! RELIEF: data movement-aware accelerator scheduling — facade crate.
//!
//! A faithful reproduction of *RELIEF: Relieving Memory Pressure In SoCs
//! Via Data Movement-Aware Accelerator Scheduling* (HPCA 2024) as a Rust
//! workspace. This crate re-exports the subcrates so applications can
//! depend on a single package:
//!
//! * [`sim`] — discrete-event kernel (time, events, resource timelines)
//! * [`dag`] — task graphs, critical-path analysis, deadline assignment
//! * [`mem`] — DRAM / bus / crossbar / DMA contention models
//! * [`core`] — the scheduling policies (FCFS, GEDF-D/N, LL, LAX,
//!   HetSched, RELIEF, RELIEF-LAX) and runtime predictors
//! * [`fault`] — deterministic, seeded fault-injection plans (task, DMA,
//!   accelerator-unit outages) and the recovery knobs
//! * [`service`] — the open-loop streaming frontend: deterministic
//!   arrival processes, per-tenant QoS classes, token-bucket admission
//! * [`accel`] — the seven elementary accelerators, forwarding mechanism,
//!   hardware manager, and the end-to-end SoC simulator
//! * [`workloads`] — the five benchmark applications and the paper's
//!   contention scenarios
//! * [`metrics`] — statistics, the memory energy model, reporting
//! * [`oracle`] — the ahead-of-time scheduling bound: beam search through
//!   the simulator's timing model, replayable schedules, "% of oracle"
//! * [`trace`] — structured event tracing, Chrome/Perfetto export, and
//!   the `trace-diff` regression tool
//! * [`bench`] — the paper-experiment harness and the deterministic
//!   parallel campaign engine (`bench::campaign`)
//!
//! # Quickstart
//!
//! ```
//! use relief::prelude::*;
//!
//! // Run the Canny + LSTM mix (lane detection, §IV-C) under RELIEF.
//! let apps = vec![
//!     AppSpec::once("C", App::Canny.dag()),
//!     AppSpec::once("L", App::Lstm.dag()),
//! ];
//! let result = SocSim::new(SocConfig::mobile(PolicyKind::Relief), apps).run();
//! assert_eq!(result.stats.apps["C"].dags_completed, 1);
//! assert!(result.stats.forwards() + result.stats.colocations() > 0);
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub use relief_accel as accel;
pub use relief_bench as bench;
pub use relief_core as core;
pub use relief_dag as dag;
pub use relief_fault as fault;
pub use relief_mem as mem;
pub use relief_metrics as metrics;
pub use relief_oracle as oracle;
pub use relief_service as service;
pub use relief_sim as sim;
pub use relief_trace as trace;
pub use relief_workloads as workloads;

/// The names most programs need.
pub mod prelude {
    pub use relief_accel::{AppSpec, BwPredictorKind, SocConfig, SocSim};
    pub use relief_core::{PolicyKind, ReadyQueues, TaskEntry, TaskKey};
    pub use relief_dag::{AccTypeId, Dag, DagBuilder, NodeId, NodeSpec};
    pub use relief_fault::{FaultConfig, FaultPlan};
    pub use relief_metrics::{EnergyModel, Histogram, RunStats};
    pub use relief_service::{
        AdmissionConfig, ArrivalProcess, QosClass, StreamConfig, StreamPlan, TenantCfg,
    };
    pub use relief_sim::{Dur, SplitMix64, Time};
    pub use relief_trace::{RingBufferSink, Tracer};
    pub use relief_workloads::{App, Contention, Mix, CONTINUOUS_TIME_LIMIT};
}
