//! `relief-cli` — run any application mix on the simulated SoC from the
//! command line.
//!
//! ```sh
//! cargo run --release --bin relief-cli -- --mix CGL --policy relief
//! cargo run --release --bin relief-cli -- --mix DGL --policy lax --continuous
//! cargo run --release --bin relief-cli -- --mix CDGHL --policy relief --no-forwarding
//! cargo run --release --bin relief-cli -- --help
//! ```

use relief::prelude::*;
use std::process::ExitCode;

const USAGE: &str = "\
relief-cli — RELIEF accelerator-scheduling simulator

USAGE:
    relief-cli [OPTIONS]

OPTIONS:
    --mix <SYMBOLS>     applications to run, by symbol: C (canny),
                        D (deblur), G (gru), H (harris), L (lstm)
                        [default: CGL]
    --policy <NAME>     fcfs | gedf-d | gedf-n | ll | lax | hetsched |
                        relief | relief-lax | relief-het [default: relief]
    --continuous        loop every application; stops at --limit-ms
    --limit-ms <MS>     simulated-time cap [default: 50 when --continuous]
    --crossbar          crossbar interconnect instead of the bus
    --no-forwarding     disable forwarding and colocation hardware
    --partitions <N>    output scratchpad partitions per accelerator [2]
    --trace-out <STEM>  capture a structured event trace and write
                        <STEM>.json (chrome://tracing / Perfetto) and
                        <STEM>.txt (canonical text, for trace-diff)
    --help              print this help
";

struct Args {
    mix: String,
    policy: PolicyKind,
    continuous: bool,
    limit_ms: Option<u64>,
    crossbar: bool,
    no_forwarding: bool,
    partitions: usize,
    trace_out: Option<std::path::PathBuf>,
}

fn parse_policy(s: &str) -> Option<PolicyKind> {
    Some(match s.to_ascii_lowercase().as_str() {
        "fcfs" => PolicyKind::Fcfs,
        "gedf-d" | "gedfd" => PolicyKind::GedfD,
        "gedf-n" | "gedfn" => PolicyKind::GedfN,
        "ll" => PolicyKind::Ll,
        "lax" => PolicyKind::Lax,
        "hetsched" => PolicyKind::HetSched,
        "relief" => PolicyKind::Relief,
        "relief-lax" => PolicyKind::ReliefLax,
        "relief-het" => PolicyKind::ReliefHet,
        _ => return None,
    })
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mix: "CGL".to_string(),
        policy: PolicyKind::Relief,
        continuous: false,
        limit_ms: None,
        crossbar: false,
        no_forwarding: false,
        partitions: 2,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--mix" => args.mix = it.next().ok_or("--mix needs a value")?,
            "--policy" => {
                let v = it.next().ok_or("--policy needs a value")?;
                args.policy = parse_policy(&v).ok_or_else(|| format!("unknown policy '{v}'"))?;
            }
            "--continuous" => args.continuous = true,
            "--limit-ms" => {
                let v = it.next().ok_or("--limit-ms needs a value")?;
                args.limit_ms = Some(v.parse().map_err(|_| format!("bad --limit-ms '{v}'"))?);
            }
            "--crossbar" => args.crossbar = true,
            "--no-forwarding" => args.no_forwarding = true,
            "--partitions" => {
                let v = it.next().ok_or("--partitions needs a value")?;
                args.partitions = v.parse().map_err(|_| format!("bad --partitions '{v}'"))?;
            }
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out needs a value")?;
                args.trace_out = Some(v.into());
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut apps = Vec::new();
    for c in args.mix.chars() {
        let Some(app) = App::from_symbol(c.to_ascii_uppercase()) else {
            eprintln!("error: unknown application symbol '{c}' (use C, D, G, H, L)");
            return ExitCode::FAILURE;
        };
        apps.push(if args.continuous {
            AppSpec::continuous(app.symbol(), app.dag())
        } else {
            AppSpec::once(app.symbol(), app.dag())
        });
    }
    if apps.is_empty() {
        eprintln!("error: --mix must name at least one application");
        return ExitCode::FAILURE;
    }

    let mut cfg = SocConfig::mobile(args.policy);
    if args.no_forwarding {
        cfg = cfg.without_forwarding();
    }
    if args.crossbar {
        cfg.mem = cfg.mem.with_crossbar();
    }
    cfg.output_partitions = args.partitions;
    let limit = args.limit_ms.or(args.continuous.then_some(50));
    if let Some(ms) = limit {
        cfg = cfg.with_time_limit(Time::from_ms(ms));
    }

    // Instance display names for the Chrome export, in the simulator's
    // type-major instance order.
    let accel_names: Vec<String> = cfg
        .acc_instances
        .iter()
        .enumerate()
        .flat_map(|(t, &count)| {
            (0..count).map(move |i| match relief::accel::AccKind::ALL.get(t) {
                Some(kind) if count == 1 => kind.name().to_string(),
                Some(kind) => format!("{}.{i}", kind.name()),
                None => format!("t{t}.{i}"),
            })
        })
        .collect();

    let ring = args.trace_out.as_ref().map(|_| RingBufferSink::shared(1 << 20));
    let mut sim = SocSim::new(cfg, apps);
    if let Some(ring) = &ring {
        let mut tracer = Tracer::off();
        tracer.attach(ring.clone());
        sim = sim.with_tracer(&tracer);
    }
    let result = sim.run();

    if let (Some(stem), Some(ring)) = (&args.trace_out, &ring) {
        use relief::trace::chrome::{to_chrome_json, ChromeOptions};
        let events = ring.borrow_mut().take();
        let json = to_chrome_json(&events, &ChromeOptions { accel_names });
        let write = std::fs::write(stem.with_extension("json"), json).and_then(|()| {
            std::fs::write(stem.with_extension("txt"), relief::trace::text::to_text(&events))
        });
        if let Err(e) = write {
            eprintln!("error: writing trace files for {}: {e}", stem.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "trace: {} events -> {}.json + {}.txt",
            events.len(),
            stem.display(),
            stem.display()
        );
    }
    let s = &result.stats;
    println!("policy            {}", s.policy);
    println!("mix               {}", args.mix.to_ascii_uppercase());
    println!("execution time    {:.3} ms", s.exec_time.as_ms_f64());
    println!(
        "edges             {} total | {} forwarded | {} colocated ({:.1}%)",
        s.edges_total,
        s.forwards(),
        s.colocations(),
        s.forward_percent()
    );
    println!(
        "traffic           {:.2} MB DRAM | {:.2} MB SPAD-to-SPAD | {:.2} MB eliminated",
        s.traffic.dram_bytes() as f64 / 1e6,
        s.traffic.spad_to_spad_bytes as f64 / 1e6,
        s.traffic.colocated_bytes as f64 / 1e6,
    );
    let e = EnergyModel::new().energy(&s.traffic, s.exec_time);
    println!(
        "memory energy     {:.1} uJ DRAM + {:.1} uJ SPAD",
        e.dram_nj / 1000.0,
        e.spad_nj / 1000.0
    );
    println!("node deadlines    {:.1}% met", s.node_deadline_percent());
    println!("occupancy         accel {:.2} | interconnect {:.1}%",
        s.accel_occupancy(), 100.0 * s.interconnect_occupancy());
    println!("per application:");
    for a in s.apps.values() {
        let slow = a
            .mean_slowdown()
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "inf".to_string());
        println!(
            "  {}: {} DAGs done, {} met deadline, slowdown {}{}",
            a.name,
            a.dags_completed,
            a.dag_deadlines_met,
            slow,
            if a.starved { "  [STARVED]" } else { "" }
        );
    }
    ExitCode::SUCCESS
}
