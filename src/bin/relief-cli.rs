//! `relief-cli` — run any application mix on the simulated SoC from the
//! command line.
//!
//! ```sh
//! cargo run --release --bin relief-cli -- --mix CGL --policy relief
//! cargo run --release --bin relief-cli -- --mix DGL --policy lax --continuous
//! cargo run --release --bin relief-cli -- --mix CDGHL --policy relief --no-forwarding
//! cargo run --release --bin relief-cli -- --mix CGL --policy lax,relief --jobs 2
//! cargo run --release --bin relief-cli -- --help
//! ```
//!
//! A comma-separated `--policy` list switches to comparison mode: every
//! policy runs the same mix on the deterministic campaign engine
//! (`--jobs` worker threads) and a side-by-side table is printed.

use relief::prelude::*;
use std::process::ExitCode;

const USAGE: &str = "\
relief-cli — RELIEF accelerator-scheduling simulator

USAGE:
    relief-cli [OPTIONS]

OPTIONS:
    --mix <SYMBOLS>     applications to run, by symbol: C (canny),
                        D (deblur), G (gru), H (harris), L (lstm)
                        [default: CGL]
    --policy <NAMES>    fcfs | gedf-d | gedf-n | ll | lax | hetsched |
                        relief | relief-lax | relief-het | adaptive
                        [default: relief]
                        A comma-separated list compares the policies
                        side by side on the campaign engine. Adding
                        'oracle' to the list also computes the
                        ahead-of-time scheduling bound and a
                        '% of oracle' column ('oracle' alone compares
                        all eight paper policies against the bound;
                        closed-loop runs only — no --continuous,
                        --limit-ms, --arrival, or fault flags)
    --jobs <N>          worker threads for comparison mode
                        [default: available parallelism]
    --continuous        loop every application; stops at --limit-ms
    --limit-ms <MS>     simulated-time cap [default: 50 when --continuous]
    --crossbar          crossbar interconnect instead of the bus
    --no-forwarding     disable forwarding and colocation hardware
    --partitions <N>    output scratchpad partitions per accelerator [2]
    --trace-out <STEM>  capture a structured event trace and write
                        <STEM>.json (chrome://tracing / Perfetto) and
                        <STEM>.txt (canonical text, for trace-diff)
    --fault-rate <R>    per-attempt task and DMA fault probability in
                        [0, 1); 0 injects nothing [default: 0]
    --fault-seed <N>    fault-plan seed, decimal or 0x-hex; the same
                        seed reproduces the same fault schedule
    --arrival <PROC>    open-loop service mode: stream DAG instances
                        under det | poisson | mmpp | diurnal arrivals
                        instead of releasing each app once
    --rate <R>          arrival rate per tenant, requests/s
                        [default: 100, needs --arrival]
    --duration-us <N>   arrival window, microseconds; the run drains
                        after the last arrival [default: 20000]
    --tenants <N>       number of streaming tenants; the mix symbols
                        are cycled to fill [default: one per symbol]
    --qos <CLASSES>     comma list of latency | standard | besteffort,
                        cycled across tenants [default: all three]
    --help              print this help
";

struct Args {
    mix: String,
    policies: Vec<PolicyKind>,
    oracle: bool,
    jobs: usize,
    continuous: bool,
    limit_ms: Option<u64>,
    crossbar: bool,
    no_forwarding: bool,
    partitions: usize,
    trace_out: Option<std::path::PathBuf>,
    fault_rate: f64,
    fault_seed: Option<u64>,
    arrival: Option<ArrivalProcess>,
    rate: f64,
    duration_us: u64,
    tenants: Option<usize>,
    qos: Vec<QosClass>,
}

impl Args {
    /// The fault configuration the flags describe, or `None` when no
    /// fault flag was given (so the config stays byte-for-byte default).
    fn fault_config(&self) -> Option<FaultConfig> {
        if self.fault_rate == 0.0 && self.fault_seed.is_none() {
            return None;
        }
        let mut fault = FaultConfig {
            task_fault_rate: self.fault_rate,
            dma_fault_rate: self.fault_rate,
            ..FaultConfig::default()
        };
        if let Some(seed) = self.fault_seed {
            fault.seed = seed;
        }
        Some(fault)
    }

    /// The streaming tenants the flags describe: `--tenants` entries (or
    /// one per mix symbol), cycling the `--qos` classes.
    fn tenant_list(&self, n_mix: usize) -> Vec<TenantCfg> {
        (0..self.tenants.unwrap_or(n_mix))
            .map(|i| TenantCfg::new(self.qos[i % self.qos.len()], self.rate))
            .collect()
    }

    /// The stream configuration the flags describe, or `None` when
    /// `--arrival` was not given (so the config stays bit-for-bit
    /// default and the run is the ordinary closed-loop one).
    fn stream_config(&self, n_mix: usize) -> Option<StreamConfig> {
        let process = self.arrival.clone()?;
        let duration_ps = self.duration_us * 1_000_000;
        Some(StreamConfig {
            duration_ps,
            // Steady-state truncation: skip the first tenth of the window.
            warmup_ps: duration_ps / 10,
            process,
            tenants: self.tenant_list(n_mix),
            ..StreamConfig::default()
        })
    }
}

fn parse_policy(s: &str) -> Option<PolicyKind> {
    Some(match s.to_ascii_lowercase().as_str() {
        "fcfs" => PolicyKind::Fcfs,
        "gedf-d" | "gedfd" => PolicyKind::GedfD,
        "gedf-n" | "gedfn" => PolicyKind::GedfN,
        "ll" => PolicyKind::Ll,
        "lax" => PolicyKind::Lax,
        "hetsched" => PolicyKind::HetSched,
        "relief" => PolicyKind::Relief,
        "relief-lax" => PolicyKind::ReliefLax,
        "relief-het" => PolicyKind::ReliefHet,
        "adaptive" => PolicyKind::Adaptive,
        _ => return None,
    })
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mix: "CGL".to_string(),
        policies: vec![PolicyKind::Relief],
        oracle: false,
        jobs: relief::bench::campaign::default_jobs(),
        continuous: false,
        limit_ms: None,
        crossbar: false,
        no_forwarding: false,
        partitions: 2,
        trace_out: None,
        fault_rate: 0.0,
        fault_seed: None,
        arrival: None,
        rate: 100.0,
        duration_us: 20_000,
        tenants: None,
        qos: vec![QosClass::Latency, QosClass::Standard, QosClass::BestEffort],
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--mix" => args.mix = it.next().ok_or("--mix needs a value")?,
            "--policy" => {
                let v = it.next().ok_or("--policy needs a value")?;
                args.policies = Vec::new();
                for name in v.split(',').map(str::trim) {
                    if name.eq_ignore_ascii_case("oracle") {
                        args.oracle = true;
                    } else {
                        args.policies.push(
                            parse_policy(name)
                                .ok_or_else(|| format!("unknown policy '{name}'"))?,
                        );
                    }
                }
                if args.policies.is_empty() && !args.oracle {
                    return Err("--policy needs at least one name".into());
                }
                if args.policies.is_empty() {
                    // `--policy oracle` alone: bound the full paper set.
                    args.policies = PolicyKind::ALL.to_vec();
                }
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                args.jobs = v.parse().map_err(|_| format!("bad --jobs '{v}'"))?;
                if args.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--continuous" => args.continuous = true,
            "--limit-ms" => {
                let v = it.next().ok_or("--limit-ms needs a value")?;
                args.limit_ms = Some(v.parse().map_err(|_| format!("bad --limit-ms '{v}'"))?);
            }
            "--crossbar" => args.crossbar = true,
            "--no-forwarding" => args.no_forwarding = true,
            "--partitions" => {
                let v = it.next().ok_or("--partitions needs a value")?;
                args.partitions = v.parse().map_err(|_| format!("bad --partitions '{v}'"))?;
            }
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out needs a value")?;
                args.trace_out = Some(v.into());
            }
            "--fault-rate" => {
                let v = it.next().ok_or("--fault-rate needs a value")?;
                let rate: f64 = v.parse().map_err(|_| format!("bad --fault-rate '{v}'"))?;
                if !rate.is_finite() || !(0.0..1.0).contains(&rate) {
                    return Err(format!("--fault-rate {v} outside [0, 1)"));
                }
                args.fault_rate = rate;
            }
            "--fault-seed" => {
                let v = it.next().ok_or("--fault-seed needs a value")?;
                let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                };
                args.fault_seed = Some(parsed.map_err(|_| format!("bad --fault-seed '{v}'"))?);
            }
            "--arrival" => {
                let v = it.next().ok_or("--arrival needs a value")?;
                args.arrival = Some(ArrivalProcess::parse(&v)?);
            }
            "--rate" => {
                let v = it.next().ok_or("--rate needs a value")?;
                let rate: f64 = v.parse().map_err(|_| format!("bad --rate '{v}'"))?;
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(format!("--rate {v} must be positive"));
                }
                args.rate = rate;
            }
            "--duration-us" => {
                let v = it.next().ok_or("--duration-us needs a value")?;
                let us: u64 = v.parse().map_err(|_| format!("bad --duration-us '{v}'"))?;
                if us == 0 {
                    return Err("--duration-us must be positive".into());
                }
                args.duration_us = us;
            }
            "--tenants" => {
                let v = it.next().ok_or("--tenants needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --tenants '{v}'"))?;
                if n == 0 {
                    return Err("--tenants must be at least 1".into());
                }
                args.tenants = Some(n);
            }
            "--qos" => {
                let v = it.next().ok_or("--qos needs a value")?;
                args.qos = v
                    .split(',')
                    .map(|s| QosClass::parse(s.trim()))
                    .collect::<Result<Vec<_>, _>>()?;
                if args.qos.is_empty() {
                    return Err("--qos needs at least one class".into());
                }
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
    }
    Ok(args)
}

/// The application set the flags describe. Service mode cycles the mix
/// symbols across the tenant count and suffixes each label with its
/// tenant index (tenant `t` streams app spec `t`, and labels must stay
/// unique); closed-loop mode keeps the bare symbols.
fn build_apps(args: &Args, mix_apps: &[App]) -> Vec<AppSpec> {
    if args.arrival.is_some() {
        let n = args.tenants.unwrap_or(mix_apps.len());
        return (0..n)
            .map(|i| {
                let app = mix_apps[i % mix_apps.len()];
                AppSpec::once(format!("{}{i}", app.symbol()), app.dag())
            })
            .collect();
    }
    mix_apps
        .iter()
        .map(|app| {
            if args.continuous {
                AppSpec::continuous(app.symbol(), app.dag())
            } else {
                AppSpec::once(app.symbol(), app.dag())
            }
        })
        .collect()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut mix_apps = Vec::new();
    for c in args.mix.chars() {
        let Some(app) = App::from_symbol(c.to_ascii_uppercase()) else {
            eprintln!("error: unknown application symbol '{c}' (use C, D, G, H, L)");
            return ExitCode::FAILURE;
        };
        mix_apps.push(app);
    }
    if mix_apps.is_empty() {
        eprintln!("error: --mix must name at least one application");
        return ExitCode::FAILURE;
    }
    if args.arrival.is_none() && (args.tenants.is_some() || args.rate != 100.0) {
        eprintln!("error: --tenants/--rate/--qos need --arrival to enable service mode");
        return ExitCode::FAILURE;
    }
    if args.arrival.is_some() && args.continuous {
        eprintln!("error: --arrival replaces closed-loop repetition; drop --continuous");
        return ExitCode::FAILURE;
    }
    if args.oracle {
        // The oracle searches the deterministic closed-loop timing model;
        // open-ended or randomized runs have no finite schedule to bound.
        let conflict = [
            (args.continuous, "--continuous"),
            (args.limit_ms.is_some(), "--limit-ms"),
            (args.arrival.is_some(), "--arrival"),
            (args.fault_config().is_some(), "--fault-rate/--fault-seed"),
        ]
        .into_iter()
        .find_map(|(set, flag)| set.then_some(flag));
        if let Some(flag) = conflict {
            eprintln!("error: the oracle bounds finite deterministic runs; drop {flag}");
            return ExitCode::FAILURE;
        }
    }
    if args.policies.len() > 1 || args.oracle {
        if args.trace_out.is_some() {
            eprintln!("error: --trace-out needs a single --policy (whose run should I trace?)");
            return ExitCode::FAILURE;
        }
        return compare_policies(&args, &mix_apps);
    }

    let apps: Vec<AppSpec> = build_apps(&args, &mix_apps);

    let mut cfg = SocConfig::mobile(args.policies[0]);
    if args.no_forwarding {
        cfg = cfg.without_forwarding();
    }
    if args.crossbar {
        cfg.mem = cfg.mem.with_crossbar();
    }
    cfg.output_partitions = args.partitions;
    if let Some(fault) = args.fault_config() {
        cfg = cfg.with_fault(fault);
    }
    if let Some(stream) = args.stream_config(mix_apps.len()) {
        cfg = cfg.with_stream(stream);
    }
    let limit = args.limit_ms.or(args.continuous.then_some(50));
    if let Some(ms) = limit {
        cfg = cfg.with_time_limit(Time::from_ms(ms));
    }

    // Instance display names for the Chrome export, in the simulator's
    // type-major instance order.
    let accel_names: Vec<String> = cfg
        .acc_instances
        .iter()
        .enumerate()
        .flat_map(|(t, &count)| {
            (0..count).map(move |i| match relief::accel::AccKind::ALL.get(t) {
                Some(kind) if count == 1 => kind.name().to_string(),
                Some(kind) => format!("{}.{i}", kind.name()),
                None => format!("t{t}.{i}"),
            })
        })
        .collect();

    let ring = args.trace_out.as_ref().map(|_| RingBufferSink::shared(1 << 20));
    let mut sim = SocSim::new(cfg, apps);
    if let Some(ring) = &ring {
        let mut tracer = Tracer::off();
        tracer.attach(ring.clone());
        sim = sim.with_tracer(&tracer);
    }
    let result = sim.run();

    if let (Some(stem), Some(ring)) = (&args.trace_out, &ring) {
        use relief::trace::chrome::{to_chrome_json, ChromeOptions};
        let events = ring.borrow_mut().take();
        let json = to_chrome_json(&events, &ChromeOptions { accel_names });
        let write = std::fs::write(stem.with_extension("json"), json).and_then(|()| {
            std::fs::write(stem.with_extension("txt"), relief::trace::text::to_text(&events))
        });
        if let Err(e) = write {
            eprintln!("error: writing trace files for {}: {e}", stem.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "trace: {} events -> {}.json + {}.txt",
            events.len(),
            stem.display(),
            stem.display()
        );
    }
    let s = &result.stats;
    println!("policy            {}", s.policy);
    println!("mix               {}", args.mix.to_ascii_uppercase());
    println!("execution time    {:.3} ms", s.exec_time.as_ms_f64());
    println!(
        "edges             {} total | {} forwarded | {} colocated ({:.1}%)",
        s.edges_total,
        s.forwards(),
        s.colocations(),
        s.forward_percent()
    );
    println!(
        "traffic           {:.2} MB DRAM | {:.2} MB SPAD-to-SPAD | {:.2} MB eliminated",
        s.traffic.dram_bytes() as f64 / 1e6,
        s.traffic.spad_to_spad_bytes as f64 / 1e6,
        s.traffic.colocated_bytes as f64 / 1e6,
    );
    let e = EnergyModel::new().energy(&s.traffic, s.exec_time);
    println!(
        "memory energy     {:.1} uJ DRAM + {:.1} uJ SPAD",
        e.dram_nj / 1000.0,
        e.spad_nj / 1000.0
    );
    if s.faults != relief::metrics::FaultStats::default() {
        println!(
            "faults            {} injected | {} recovered | {} aborted | {} quarantines | {} fault-misses",
            s.faults.injected(),
            s.faults.recovered,
            s.faults.tasks_aborted,
            s.faults.unit_quarantines,
            s.faults.fault_attributed_misses,
        );
    }
    if s.service != relief::metrics::ServiceStats::default() {
        let sv = &s.service;
        println!(
            "service           {} arrivals | {} admitted | {} shed ({:.1}%) | {} completed",
            sv.arrivals(),
            sv.admitted(),
            sv.shed_bucket() + sv.shed_capacity(),
            sv.shed_rate() * 100.0,
            sv.completed(),
        );
        for (i, name) in relief::metrics::SERVICE_CLASSES.iter().enumerate() {
            let c = &sv.classes[i];
            if c.arrivals == 0 {
                continue;
            }
            let p99 = c
                .sojourn
                .quantile_ps(0.99)
                .map(|ps| format!("{:.1} us", ps as f64 / 1e6))
                .unwrap_or_else(|| "-".to_string());
            println!(
                "  {name}: {} arrived | {} done | attainment {:.1}% | p99 sojourn {p99}",
                c.arrivals,
                c.completed,
                c.attainment() * 100.0,
            );
        }
    }
    println!("node deadlines    {:.1}% met", s.node_deadline_percent());
    println!("occupancy         accel {:.2} | interconnect {:.1}%",
        s.accel_occupancy(), 100.0 * s.interconnect_occupancy());
    println!("per application:");
    for a in s.apps.values() {
        let slow = a
            .mean_slowdown()
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "inf".to_string());
        println!(
            "  {}: {} DAGs done, {} met deadline, slowdown {}{}",
            a.name,
            a.dags_completed,
            a.dag_deadlines_met,
            slow,
            if a.starved { "  [STARVED]" } else { "" }
        );
    }
    ExitCode::SUCCESS
}

/// Comparison mode: one engine run per requested policy over the same
/// mix and platform flags, rendered side by side in request order.
fn compare_policies(args: &Args, mix_apps: &[App]) -> ExitCode {
    use relief::bench::campaign::{execute, ExecOptions, PlatformSpec, RunSpec, WorkloadSpec};

    let mix_label = args.mix.to_ascii_uppercase();
    let limit = args.limit_ms.or(args.continuous.then_some(50)).map(Time::from_ms);
    let apps_spec = build_apps(args, mix_apps);
    let mut workload_label =
        format!("cli/{mix_label}{}", if args.continuous { "+cont" } else { "" });
    if args.arrival.is_some() {
        workload_label.push_str(&format!("+svc{}", apps_spec.len()));
    }
    let workload =
        WorkloadSpec::custom(workload_label, limit, move || apps_spec.clone());
    let mut platform_label = "mobile".to_string();
    if args.no_forwarding {
        platform_label.push_str("-nofwd");
    }
    if args.crossbar {
        platform_label.push_str("-xbar");
    }
    if args.partitions != 2 {
        platform_label.push_str(&format!("-p{}", args.partitions));
    }
    let fault = args.fault_config();
    if let Some(f) = &fault {
        // The label is the run's canonical identity: encode the fault
        // knobs so faulted runs never collide with clean ones.
        platform_label.push_str(&format!("-f{:.4}s{:x}", f.task_fault_rate, f.seed));
    }
    let stream = args.stream_config(mix_apps.len());
    if let Some(st) = &stream {
        // Same identity rule for the stream knobs.
        platform_label.push_str(&format!(
            "-svc{}r{:.0}d{}us",
            st.process.name(),
            args.rate,
            args.duration_us
        ));
    }
    let (no_forwarding, crossbar, partitions) =
        (args.no_forwarding, args.crossbar, args.partitions);
    let platform = PlatformSpec::custom(platform_label, move |p| {
        let mut cfg = SocConfig::mobile(p);
        if no_forwarding {
            cfg = cfg.without_forwarding();
        }
        if crossbar {
            cfg.mem = cfg.mem.with_crossbar();
        }
        cfg.output_partitions = partitions;
        if let Some(f) = &fault {
            cfg = cfg.with_fault(f.clone());
        }
        if let Some(st) = &stream {
            cfg = cfg.with_stream(st.clone());
        }
        cfg
    });

    let specs: Vec<RunSpec> = args
        .policies
        .iter()
        .map(|&p| RunSpec::new(p, workload.clone(), platform.clone()))
        .collect();
    let results = execute(specs.clone(), &ExecOptions { jobs: args.jobs, ..Default::default() });
    let failures = results.failures();
    for (label, msg) in &failures {
        eprintln!("run {label} panicked: {msg}");
    }
    if !failures.is_empty() {
        return ExitCode::FAILURE;
    }
    for (label, mismatches) in results.mismatched() {
        eprintln!("warning: run {label} failed event/stats reconciliation:");
        for m in mismatches {
            eprintln!("  {m}");
        }
    }

    // The ahead-of-time bound, when requested: solve over the same
    // platform knobs (fault and stream flags were rejected up front,
    // so the closed-loop closure below is the full configuration) and
    // verify the winning schedule by replaying it through the simulator.
    let oracle = if args.oracle {
        let (no_forwarding, crossbar, partitions) =
            (args.no_forwarding, args.crossbar, args.partitions);
        let mk_cfg = move |p: PolicyKind| {
            let mut cfg = SocConfig::mobile(p);
            if no_forwarding {
                cfg = cfg.without_forwarding();
            }
            if crossbar {
                cfg.mem = cfg.mem.with_crossbar();
            }
            cfg.output_partitions = partitions;
            cfg
        };
        let apps = build_apps(args, mix_apps);
        let opts = relief::bench::oracle::campaign_options();
        match relief::oracle::solve(mk_cfg, &apps, &opts) {
            Ok(res) => {
                let replayed = res.replay(mk_cfg, &apps);
                if replayed.stats.exec_time.as_ps() != res.makespan_ps {
                    eprintln!(
                        "warning: oracle replay diverged from its prediction \
                         ({} vs {} ps) — the bound is suspect",
                        replayed.stats.exec_time.as_ps(),
                        res.makespan_ps
                    );
                }
                Some(res)
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let mut cols =
        vec!["policy", "exec ms", "fwd+coloc %", "DRAM MB", "ddl % (node)", "DAGs met"];
    if oracle.is_some() {
        cols.push("% of oracle");
    }
    let mut t = relief::metrics::report::Table::with_columns(&cols);
    for spec in &specs {
        let rec = results.get(&spec.label()).expect("no failures past the check above");
        let s = &rec.result.stats;
        let (done, met) = s.apps.values().fold((0u64, 0u64), |(d, m), a| {
            (d + a.dags_completed, m + a.dag_deadlines_met)
        });
        let mut row = vec![
            spec.policy.name().to_string(),
            format!("{:.3}", s.exec_time.as_ms_f64()),
            format!("{:.1}", s.forward_percent()),
            format!("{:.2}", s.traffic.dram_bytes() as f64 / 1e6),
            format!("{:.1}", s.node_deadline_percent()),
            format!("{met}/{done}"),
        ];
        if let Some(res) = &oracle {
            row.push(if res.makespan_ps == 0 {
                "-".to_string()
            } else {
                format!(
                    "{:.1}",
                    s.exec_time.as_ps() as f64 * 100.0 / res.makespan_ps as f64
                )
            });
        }
        t.row(row);
    }
    println!("mix {mix_label} on {} worker(s), {} policies:", args.jobs, specs.len());
    if let Some(res) = &oracle {
        println!(
            "oracle bound      {:.3} ms (from {}, replay-verified)",
            res.makespan_ps as f64 / 1e9,
            if res.from_search { "search" } else { res.impersonates.name() },
        );
    }
    print!("{}", t.render());
    ExitCode::SUCCESS
}
