//! `trace-diff` — compare two text-format trace exports and report the
//! first divergence.
//!
//! ```sh
//! cargo run -p relief-trace --bin trace-diff -- left.trace right.trace
//! ```
//!
//! Exit codes: `0` identical, `1` divergent, `2` usage or I/O error.

use relief_trace::diff::first_divergence_lines;
use std::process::ExitCode;

const USAGE: &str = "\
trace-diff — first-divergence comparison of two relief-trace text exports

USAGE:
    trace-diff <LEFT> <RIGHT>

Compares line-by-line (the text format is one event per line, in
deterministic order) and reports the first difference with its cause:
a timing shift, a different event at the same time, or one stream
ending early. Identical files exit 0; any divergence exits 1.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let [left_path, right_path] = args.as_slice() else {
        eprint!("error: expected exactly two files\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let read = |path: &String| {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("error: cannot read '{path}': {e}");
        })
    };
    let (Ok(left), Ok(right)) = (read(left_path), read(right_path)) else {
        return ExitCode::from(2);
    };
    match first_divergence_lines(&left, &right) {
        None => {
            println!("identical: {} events", left.lines().count());
            ExitCode::SUCCESS
        }
        Some(d) => {
            print!("{}", d.report());
            ExitCode::FAILURE
        }
    }
}
