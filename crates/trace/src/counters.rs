//! Aggregate counters derived from an event stream.
//!
//! These exist so higher layers can cross-check the tracing path against
//! their independently maintained statistics (`relief-metrics` reconciles
//! them against `RunStats`): if the two bookkeeping systems disagree, one
//! of them is lying.

use crate::event::{Endpoint, EventKind, InputSource, TraceEvent};

/// Counters accumulated over a full event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventCounters {
    /// Simulation-kernel events dispatched.
    pub events_dispatched: u64,
    /// Tasks whose compute finished.
    pub tasks_completed: u64,
    /// DAG instances that arrived.
    pub dags_arrived: u64,
    /// DAG instances that completed.
    pub dags_done: u64,
    /// Completed DAGs that met their deadline.
    pub dags_met: u64,
    /// Bytes read from DRAM (DRAM → SPAD transfers).
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM (SPAD → DRAM transfers).
    pub dram_write_bytes: u64,
    /// Bytes moved SPAD-to-SPAD (forwards).
    pub spad_to_spad_bytes: u64,
    /// Input edges served by forwarding.
    pub forwards: u64,
    /// Input edges served by colocation.
    pub colocations: u64,
    /// Input edges (and primary inputs) loaded from DRAM.
    pub dram_inputs: u64,
    /// Escalations granted by the policy.
    pub escalations_granted: u64,
    /// Escalations denied by the policy.
    pub escalations_denied: u64,
    /// Feasibility checks that passed.
    pub feasibility_pass: u64,
    /// Feasibility checks that failed.
    pub feasibility_fail: u64,
    /// Laxity-driven out-of-order pops.
    pub queue_bypasses: u64,
    /// Write-backs issued.
    pub writebacks: u64,
    /// Total bytes scheduled for write-back.
    pub writeback_bytes: u64,
    /// Task compute attempts that faulted.
    pub task_faults: u64,
    /// Faulted tasks re-queued after backoff.
    pub task_retries: u64,
    /// Tasks abandoned after exhausting their retry budget.
    pub tasks_aborted: u64,
    /// Input DMA transfers that faulted and retried from DRAM.
    pub dma_faults: u64,
    /// Accelerator-unit quarantine (offline) events.
    pub unit_quarantines: u64,
    /// Accelerator-unit restore (back-online) events.
    pub unit_restores: u64,
    /// Deadline misses attributed to fault recovery.
    pub fault_attributed_misses: u64,
}

impl EventCounters {
    /// Accumulates counters over `events`.
    #[must_use]
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut c = EventCounters::default();
        for ev in events {
            c.add(ev);
        }
        c
    }

    /// Folds a single event into the counters.
    pub fn add(&mut self, ev: &TraceEvent) {
        match &ev.kind {
            EventKind::EventDispatched { .. } => self.events_dispatched += 1,
            EventKind::ComputeEnd { .. } => self.tasks_completed += 1,
            EventKind::DagArrived { .. } => self.dags_arrived += 1,
            EventKind::DagDone { met, .. } => {
                self.dags_done += 1;
                if *met {
                    self.dags_met += 1;
                }
            }
            EventKind::DmaEnd { src, dst, bytes, .. } => match (src, dst) {
                (Endpoint::Dram, _) => self.dram_read_bytes += bytes,
                (_, Endpoint::Dram) => self.dram_write_bytes += bytes,
                _ => self.spad_to_spad_bytes += bytes,
            },
            EventKind::InputSourced { source, .. } => match source {
                InputSource::Dram => self.dram_inputs += 1,
                InputSource::Forwarded { .. } => self.forwards += 1,
                InputSource::Colocated => self.colocations += 1,
            },
            EventKind::EscalationGranted { .. } => self.escalations_granted += 1,
            EventKind::EscalationDenied { .. } => self.escalations_denied += 1,
            EventKind::FeasibilityCheck { feasible, .. } => {
                if *feasible {
                    self.feasibility_pass += 1;
                } else {
                    self.feasibility_fail += 1;
                }
            }
            EventKind::QueueBypass { .. } => self.queue_bypasses += 1,
            EventKind::WritebackIssued { bytes, .. } => {
                self.writebacks += 1;
                self.writeback_bytes += bytes;
            }
            EventKind::TaskFaulted { .. } => self.task_faults += 1,
            EventKind::TaskRetried { .. } => self.task_retries += 1,
            EventKind::TaskAborted { .. } => self.tasks_aborted += 1,
            EventKind::DmaFaulted { .. } => self.dma_faults += 1,
            EventKind::UnitQuarantined { .. } => self.unit_quarantines += 1,
            EventKind::UnitRestored { .. } => self.unit_restores += 1,
            EventKind::FaultAttributedMiss { .. } => self.fault_attributed_misses += 1,
            EventKind::ResourceBusy { .. }
            | EventKind::DmaStart { .. }
            | EventKind::TaskReady { .. }
            | EventKind::TaskDispatched { .. }
            | EventKind::ComputeStart { .. } => {}
        }
    }
}

/// A [`TraceSink`](crate::TraceSink) that folds every event into an
/// [`EventCounters`] as it arrives — O(1) memory, so it is safe to attach
/// to unbounded runs (continuous contention) where a buffering sink would
/// either grow without bound or evict events and undercount.
///
/// The campaign engine attaches one per run to reconcile event-derived
/// counts against the simulator's own `RunStats` bookkeeping.
#[derive(Debug, Default)]
pub struct CountersSink {
    counters: EventCounters,
}

impl CountersSink {
    /// Creates an empty folding sink.
    #[must_use]
    pub fn new() -> Self {
        CountersSink::default()
    }

    /// Creates a shared handle suitable for
    /// [`Tracer::attach`](crate::Tracer::attach).
    #[must_use]
    pub fn shared() -> std::rc::Rc<std::cell::RefCell<CountersSink>> {
        std::rc::Rc::new(std::cell::RefCell::new(CountersSink::default()))
    }

    /// The counters folded so far.
    #[must_use]
    pub fn counters(&self) -> &EventCounters {
        &self.counters
    }
}

impl crate::TraceSink for CountersSink {
    fn emit(&mut self, ev: TraceEvent) {
        self.counters.add(&ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TaskRef;

    #[test]
    fn counters_classify_routes_and_sources() {
        let t = TaskRef { instance: 0, node: 0 };
        let events = vec![
            TraceEvent {
                at_ps: 1,
                kind: EventKind::DmaEnd {
                    xfer: 0,
                    dma: 0,
                    src: Endpoint::Dram,
                    dst: Endpoint::Spad(1),
                    bytes: 100,
                    start_ps: 0,
                    queued_ps: 0,
                },
            },
            TraceEvent {
                at_ps: 2,
                kind: EventKind::DmaEnd {
                    xfer: 1,
                    dma: 1,
                    src: Endpoint::Spad(0),
                    dst: Endpoint::Dram,
                    bytes: 30,
                    start_ps: 1,
                    queued_ps: 0,
                },
            },
            TraceEvent {
                at_ps: 3,
                kind: EventKind::DmaEnd {
                    xfer: 2,
                    dma: 0,
                    src: Endpoint::Spad(0),
                    dst: Endpoint::Spad(1),
                    bytes: 7,
                    start_ps: 2,
                    queued_ps: 0,
                },
            },
            TraceEvent {
                at_ps: 4,
                kind: EventKind::InputSourced {
                    task: t,
                    inst: 0,
                    parent: None,
                    source: InputSource::Colocated,
                    bytes: 7,
                },
            },
            TraceEvent {
                at_ps: 5,
                kind: EventKind::FeasibilityCheck { task: t, acc: 0, index: 0, feasible: false },
            },
        ];
        let c = EventCounters::from_events(&events);
        assert_eq!(c.dram_read_bytes, 100);
        assert_eq!(c.dram_write_bytes, 30);
        assert_eq!(c.spad_to_spad_bytes, 7);
        assert_eq!(c.colocations, 1);
        assert_eq!(c.feasibility_fail, 1);
        assert_eq!(c.feasibility_pass, 0);
    }

    #[test]
    fn counters_sink_folds_like_from_events() {
        use crate::{TraceSink, Tracer};
        let sink = CountersSink::shared();
        let mut tracer = Tracer::off();
        tracer.attach(sink.clone());
        let t = TaskRef { instance: 0, node: 1 };
        let events = [
            EventKind::ComputeEnd {
                task: t,
                inst: 0,
                start_ps: 0,
                label: "A:n1".into(),
                forwarded_inputs: 0,
                colocated_inputs: 0,
            },
            EventKind::DagDone { instance: 0, met: true },
            EventKind::EscalationGranted { task: t, acc: 0, index: 0 },
        ];
        let mut direct = CountersSink::new();
        for (i, kind) in events.into_iter().enumerate() {
            tracer.emit(i as u64, || kind.clone());
            direct.emit(TraceEvent { at_ps: i as u64, kind });
        }
        assert_eq!(*sink.borrow().counters(), *direct.counters());
        assert_eq!(sink.borrow().counters().tasks_completed, 1);
        assert_eq!(sink.borrow().counters().dags_met, 1);
        assert_eq!(sink.borrow().counters().escalations_granted, 1);
    }
}
