//! First-divergence comparison of two event streams.
//!
//! The simulator is deterministic: identical configuration and seed must
//! produce identical event streams. `trace-diff` turns that guarantee
//! into a regression test — compare the text exports of two runs and the
//! first differing line localizes exactly when and where behavior
//! changed, which is far more actionable than a failing end-to-end
//! assertion.

use crate::event::TraceEvent;
use std::fmt;

/// Why two streams diverged at a given position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceCause {
    /// The left stream ended while the right continued.
    LeftEnded,
    /// The right stream ended while the left continued.
    RightEnded,
    /// Both have an event, at different simulated times.
    TimeMismatch,
    /// Same simulated time, different event content.
    ContentMismatch,
}

impl fmt::Display for DivergenceCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceCause::LeftEnded => write!(f, "left stream ended early"),
            DivergenceCause::RightEnded => write!(f, "right stream ended early"),
            DivergenceCause::TimeMismatch => write!(f, "events at different times"),
            DivergenceCause::ContentMismatch => write!(f, "different events at the same time"),
        }
    }
}

/// The first point at which two streams disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 0-based position (event index or line number) of the disagreement.
    pub index: usize,
    /// Classification of the disagreement.
    pub cause: DivergenceCause,
    /// The left side's entry at `index`, if any.
    pub left: Option<String>,
    /// The right side's entry at `index`, if any.
    pub right: Option<String>,
}

impl Divergence {
    /// Human-readable multi-line report.
    #[must_use]
    pub fn report(&self) -> String {
        let mut out = format!("divergence at entry {} ({}):\n", self.index, self.cause);
        out.push_str(&format!("  left:  {}\n", self.left.as_deref().unwrap_or("<end of stream>")));
        out.push_str(&format!("  right: {}\n", self.right.as_deref().unwrap_or("<end of stream>")));
        out
    }
}

/// Classifies a pair of text-format lines by comparing their leading
/// picosecond timestamps when both parse.
fn classify(left: &str, right: &str) -> DivergenceCause {
    let ts = |line: &str| line.split_whitespace().next().and_then(|t| t.parse::<u64>().ok());
    match (ts(left), ts(right)) {
        (Some(a), Some(b)) if a != b => DivergenceCause::TimeMismatch,
        _ => DivergenceCause::ContentMismatch,
    }
}

/// Finds the first index where two event slices differ. `None` means the
/// streams are identical.
#[must_use]
pub fn first_divergence_events(left: &[TraceEvent], right: &[TraceEvent]) -> Option<Divergence> {
    let n = left.len().max(right.len());
    for i in 0..n {
        match (left.get(i), right.get(i)) {
            (Some(l), Some(r)) if l == r => continue,
            (Some(l), Some(r)) => {
                return Some(Divergence {
                    index: i,
                    cause: if l.at_ps != r.at_ps {
                        DivergenceCause::TimeMismatch
                    } else {
                        DivergenceCause::ContentMismatch
                    },
                    left: Some(l.to_string()),
                    right: Some(r.to_string()),
                });
            }
            (None, Some(r)) => {
                return Some(Divergence {
                    index: i,
                    cause: DivergenceCause::LeftEnded,
                    left: None,
                    right: Some(r.to_string()),
                });
            }
            (Some(l), None) => {
                return Some(Divergence {
                    index: i,
                    cause: DivergenceCause::RightEnded,
                    left: Some(l.to_string()),
                    right: None,
                });
            }
            (None, None) => unreachable!("loop bounded by max length"),
        }
    }
    None
}

/// Finds the first differing line between two text-format exports.
/// `None` means the exports are byte-identical per line.
#[must_use]
pub fn first_divergence_lines(left: &str, right: &str) -> Option<Divergence> {
    let mut l = left.lines();
    let mut r = right.lines();
    let mut i = 0usize;
    loop {
        match (l.next(), r.next()) {
            (Some(a), Some(b)) if a == b => i += 1,
            (Some(a), Some(b)) => {
                return Some(Divergence {
                    index: i,
                    cause: classify(a, b),
                    left: Some(a.to_string()),
                    right: Some(b.to_string()),
                });
            }
            (None, Some(b)) => {
                return Some(Divergence {
                    index: i,
                    cause: DivergenceCause::LeftEnded,
                    left: None,
                    right: Some(b.to_string()),
                });
            }
            (Some(a), None) => {
                return Some(Divergence {
                    index: i,
                    cause: DivergenceCause::RightEnded,
                    left: Some(a.to_string()),
                    right: None,
                });
            }
            (None, None) => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(at: u64, index: u64) -> TraceEvent {
        TraceEvent { at_ps: at, kind: EventKind::EventDispatched { index } }
    }

    #[test]
    fn identical_streams_have_no_divergence() {
        let a = vec![ev(1, 0), ev(2, 1)];
        assert_eq!(first_divergence_events(&a, &a.clone()), None);
        assert_eq!(first_divergence_lines("x\ny\n", "x\ny\n"), None);
    }

    #[test]
    fn time_vs_content_mismatch() {
        let a = vec![ev(1, 0), ev(2, 1)];
        let b = vec![ev(1, 0), ev(3, 1)];
        let d = first_divergence_events(&a, &b).expect("diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.cause, DivergenceCause::TimeMismatch);

        let c = vec![ev(1, 0), ev(2, 9)];
        let d = first_divergence_events(&a, &c).expect("diverges");
        assert_eq!(d.cause, DivergenceCause::ContentMismatch);
    }

    #[test]
    fn length_mismatch_reports_ended_side() {
        let a = vec![ev(1, 0)];
        let b = vec![ev(1, 0), ev(2, 1)];
        let d = first_divergence_events(&a, &b).expect("diverges");
        assert_eq!(d.cause, DivergenceCause::LeftEnded);
        assert_eq!(d.index, 1);
        let d = first_divergence_events(&b, &a).expect("diverges");
        assert_eq!(d.cause, DivergenceCause::RightEnded);
    }

    #[test]
    fn line_diff_classifies_timestamps() {
        let left = "           100 dispatch #0\n           200 dispatch #1\n";
        let right = "           100 dispatch #0\n           250 dispatch #1\n";
        let d = first_divergence_lines(left, right).expect("diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.cause, DivergenceCause::TimeMismatch);
        assert!(d.report().contains("different times"));
    }
}
