//! Event sinks and the [`Tracer`] fan-out handle.
//!
//! The simulator is single-threaded, so sinks are shared with
//! `Rc<RefCell<_>>` rather than locks. A [`Tracer`] with no sinks is the
//! "off" state: [`Tracer::emit`] takes a closure and never builds the
//! event, so disabled tracing costs one branch per site.

use crate::event::{EventKind, TraceEvent};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// A consumer of trace events.
pub trait TraceSink {
    /// Accepts one event. Events arrive in non-decreasing `at_ps` order
    /// per emitting component but may interleave across components.
    fn emit(&mut self, ev: TraceEvent);
}

/// A sink that discards everything. Useful for measuring the overhead of
/// the tracing plumbing itself.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _ev: TraceEvent) {}
}

/// A bounded in-memory collector. When full, the *oldest* events are
/// evicted so the buffer always holds the most recent window; `dropped()`
/// reports how many were lost.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    cap: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
    total: u64,
}

impl RingBufferSink {
    /// Creates a collector holding at most `cap` events (`cap` ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring buffer needs capacity");
        RingBufferSink { cap, buf: VecDeque::with_capacity(cap), dropped: 0, total: 0 }
    }

    /// Creates a shared handle suitable for [`Tracer::attach`].
    #[must_use]
    pub fn shared(cap: usize) -> Rc<RefCell<RingBufferSink>> {
        Rc::new(RefCell::new(RingBufferSink::new(cap)))
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.buf.iter().cloned().collect()
    }

    /// Removes and returns the retained events, oldest first.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events evicted because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever offered (retained + dropped).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }
}

impl TraceSink for RingBufferSink {
    fn emit(&mut self, ev: TraceEvent) {
        self.total += 1;
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}

/// A cloneable handle that fans events out to zero or more sinks.
///
/// Every instrumented component holds (a clone of) one `Tracer`. With no
/// sinks attached, [`Tracer::emit`] returns immediately without invoking
/// the construction closure — the off state is effectively free.
///
/// # Examples
///
/// ```
/// use relief_trace::{EventKind, RingBufferSink, Tracer};
///
/// let ring = RingBufferSink::shared(16);
/// let mut tracer = Tracer::off();
/// tracer.attach(ring.clone());
/// tracer.emit(1_000, || EventKind::EventDispatched { index: 0 });
/// assert_eq!(ring.borrow().len(), 1);
/// ```
#[derive(Clone, Default)]
pub struct Tracer {
    sinks: Vec<Rc<RefCell<dyn TraceSink>>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer").field("sinks", &self.sinks.len()).finish()
    }
}

impl Tracer {
    /// A tracer with no sinks: every emit is a no-op.
    #[must_use]
    pub fn off() -> Self {
        Tracer::default()
    }

    /// A tracer writing to a single sink.
    #[must_use]
    pub fn to_sink(sink: Rc<RefCell<dyn TraceSink>>) -> Self {
        Tracer { sinks: vec![sink] }
    }

    /// Adds a sink to the fan-out set.
    pub fn attach(&mut self, sink: Rc<RefCell<dyn TraceSink>>) {
        self.sinks.push(sink);
    }

    /// Adopts every sink of `other` as well.
    pub fn merge(&mut self, other: &Tracer) {
        self.sinks.extend(other.sinks.iter().cloned());
    }

    /// True when at least one sink is attached.
    #[must_use]
    pub fn is_on(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Emits an event at simulated time `at_ps`. The closure runs only
    /// when a sink is attached, so argument formatting/allocation is
    /// skipped entirely while tracing is off.
    pub fn emit(&self, at_ps: u64, make: impl FnOnce() -> EventKind) {
        if self.sinks.is_empty() {
            return;
        }
        let kind = make();
        let Some((last, rest)) = self.sinks.split_last() else { return };
        for sink in rest {
            sink.borrow_mut().emit(TraceEvent { at_ps, kind: kind.clone() });
        }
        last.borrow_mut().emit(TraceEvent { at_ps, kind });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> EventKind {
        EventKind::EventDispatched { index: i }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut ring = RingBufferSink::new(3);
        for i in 0..5 {
            ring.emit(TraceEvent { at_ps: i, kind: ev(i) });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.total(), 5);
        let kept: Vec<u64> = ring.snapshot().iter().map(|e| e.at_ps).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn ring_preserves_emission_order() {
        let mut ring = RingBufferSink::new(16);
        for i in [5u64, 1, 9, 9, 2] {
            ring.emit(TraceEvent { at_ps: i, kind: ev(i) });
        }
        // Insertion order, not timestamp order: the sink is a log.
        let kept: Vec<u64> = ring.snapshot().iter().map(|e| e.at_ps).collect();
        assert_eq!(kept, vec![5, 1, 9, 9, 2]);
    }

    #[test]
    fn take_drains() {
        let mut ring = RingBufferSink::new(4);
        ring.emit(TraceEvent { at_ps: 1, kind: ev(1) });
        assert_eq!(ring.take().len(), 1);
        assert!(ring.is_empty());
        assert_eq!(ring.total(), 1);
    }

    #[test]
    fn off_tracer_never_builds_events() {
        let tracer = Tracer::off();
        let mut built = false;
        tracer.emit(0, || {
            built = true;
            ev(0)
        });
        assert!(!built);
        assert!(!tracer.is_on());
    }

    #[test]
    fn fan_out_reaches_every_sink() {
        let a = RingBufferSink::shared(8);
        let b = RingBufferSink::shared(8);
        let mut tracer = Tracer::to_sink(a.clone());
        tracer.attach(b.clone());
        tracer.emit(7, || ev(7));
        assert_eq!(a.borrow().len(), 1);
        assert_eq!(b.borrow().len(), 1);
    }

    #[test]
    fn merge_adopts_sinks() {
        let a = RingBufferSink::shared(8);
        let mut left = Tracer::off();
        let right = Tracer::to_sink(a.clone());
        left.merge(&right);
        assert!(left.is_on());
        left.emit(3, || ev(3));
        assert_eq!(a.borrow().len(), 1);
    }
}
