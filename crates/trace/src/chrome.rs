//! Chrome/Perfetto `trace.json` export.
//!
//! Produces the Trace Event Format consumed by `chrome://tracing` and
//! [ui.perfetto.dev](https://ui.perfetto.dev): a JSON object with a
//! `traceEvents` array of complete (`"ph":"X"`) and instant (`"ph":"i"`)
//! events. The writer is hand-rolled — no serde — and emits timestamps in
//! microseconds as exact decimals of the picosecond event times, so the
//! output is deterministic byte-for-byte.
//!
//! Track layout:
//!
//! * **pid 1 "accelerators"** — one thread per accelerator instance;
//!   compute spans plus write-back/input-sourcing instants.
//! * **pid 2 "memory"** — one thread per DMA engine with transfer spans,
//!   plus a DRAM-channel occupancy thread.
//! * **pid 3 "scheduler"** — policy decision instants (escalations,
//!   feasibility verdicts, queue bypasses), application arrival/completion
//!   instants, and manager occupancy spans.

use crate::event::{Endpoint, EventKind, ResourceId, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write;

const PID_ACCEL: u32 = 1;
const PID_MEM: u32 = 2;
const PID_SCHED: u32 = 3;

/// Thread ids on the memory process.
const TID_DRAM: u32 = 0;
const TID_DMA_BASE: u32 = 10;

/// Thread ids on the scheduler process.
const TID_DECISIONS: u32 = 0;
const TID_APPS: u32 = 1;
const TID_MANAGER: u32 = 2;

/// Options for [`to_chrome_json`].
#[derive(Debug, Clone, Default)]
pub struct ChromeOptions {
    /// Display names for accelerator instances, indexed by instance id.
    /// Instances beyond the list fall back to `acc<i>`.
    pub accel_names: Vec<String>,
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Formats picoseconds as an exact microsecond decimal (`ps / 1e6`).
fn us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

struct Writer {
    out: String,
    first: bool,
}

impl Writer {
    fn new() -> Self {
        Writer { out: String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"), first: true }
    }

    /// Appends one raw JSON object (without surrounding comma handling).
    fn push(&mut self, obj: &str) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push_str(obj);
    }

    fn meta_process(&mut self, pid: u32, name: &str) {
        let mut o = format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\""
        );
        escape_into(&mut o, name);
        o.push_str("\"}}");
        self.push(&o);
    }

    fn meta_thread(&mut self, pid: u32, tid: u32, name: &str) {
        let mut o = format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\""
        );
        escape_into(&mut o, name);
        o.push_str("\"}}");
        self.push(&o);
    }

    fn complete(&mut self, pid: u32, tid: u32, name: &str, start_ps: u64, end_ps: u64, args: &str) {
        let mut o = String::from("{\"ph\":\"X\",\"pid\":");
        let _ = write!(
            o,
            "{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"",
            us(start_ps),
            us(end_ps.saturating_sub(start_ps))
        );
        escape_into(&mut o, name);
        o.push_str("\",\"args\":{");
        o.push_str(args);
        o.push_str("}}");
        self.push(&o);
    }

    fn instant(&mut self, pid: u32, tid: u32, name: &str, at_ps: u64, args: &str) {
        let mut o = String::from("{\"ph\":\"i\",\"s\":\"t\",\"pid\":");
        let _ = write!(o, "{pid},\"tid\":{tid},\"ts\":{},\"name\":\"", us(at_ps));
        escape_into(&mut o, name);
        o.push_str("\",\"args\":{");
        o.push_str(args);
        o.push_str("}}");
        self.push(&o);
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

fn route_name(src: Endpoint, dst: Endpoint) -> &'static str {
    match (src, dst) {
        (Endpoint::Dram, _) => "dram-read",
        (_, Endpoint::Dram) => "dram-write",
        _ => "spad-to-spad",
    }
}

/// Serializes an event stream into Chrome Trace Event Format JSON.
///
/// The output opens in `chrome://tracing` or Perfetto directly. Events
/// keep their stream order; metadata records naming the processes and
/// threads come first.
#[must_use]
pub fn to_chrome_json(events: &[TraceEvent], opts: &ChromeOptions) -> String {
    let mut w = Writer::new();

    // Discover which accelerator instances and DMA engines appear so
    // metadata only names real tracks.
    let mut insts: BTreeMap<u32, ()> = BTreeMap::new();
    let mut dmas: BTreeMap<u32, ()> = BTreeMap::new();
    for ev in events {
        match &ev.kind {
            EventKind::TaskDispatched { inst, .. }
            | EventKind::ComputeStart { inst, .. }
            | EventKind::ComputeEnd { inst, .. }
            | EventKind::InputSourced { inst, .. }
            | EventKind::WritebackIssued { inst, .. }
            | EventKind::TaskFaulted { inst, .. }
            | EventKind::UnitQuarantined { inst, .. }
            | EventKind::UnitRestored { inst, .. } => {
                insts.insert(*inst, ());
            }
            EventKind::DmaStart { dma, .. } | EventKind::DmaEnd { dma, .. } => {
                dmas.insert(*dma, ());
            }
            _ => {}
        }
    }

    w.meta_process(PID_ACCEL, "accelerators");
    w.meta_process(PID_MEM, "memory");
    w.meta_process(PID_SCHED, "scheduler");
    for (&i, ()) in &insts {
        let fallback = format!("acc{i}");
        let name = opts.accel_names.get(i as usize).map(String::as_str).unwrap_or(&fallback);
        w.meta_thread(PID_ACCEL, i, name);
    }
    w.meta_thread(PID_MEM, TID_DRAM, "dram-channel");
    for (&d, ()) in &dmas {
        w.meta_thread(PID_MEM, TID_DMA_BASE + d, &format!("dma{d}"));
    }
    w.meta_thread(PID_SCHED, TID_DECISIONS, "decisions");
    w.meta_thread(PID_SCHED, TID_APPS, "applications");
    w.meta_thread(PID_SCHED, TID_MANAGER, "manager");

    for ev in events {
        let at = ev.at_ps;
        match &ev.kind {
            EventKind::EventDispatched { .. } => {} // too dense to chart
            EventKind::ResourceBusy { resource, start_ps, end_ps } => {
                let (pid, tid) = match resource {
                    ResourceId::Manager => (PID_SCHED, TID_MANAGER),
                    ResourceId::Dram => (PID_MEM, TID_DRAM),
                    ResourceId::Dma(d) => (PID_MEM, TID_DMA_BASE + d),
                    ResourceId::IcnLane(l) => (PID_MEM, 100 + l),
                    ResourceId::SpadPort(p) => (PID_MEM, 200 + p),
                };
                w.complete(pid, tid, "busy", *start_ps, *end_ps, "");
            }
            EventKind::DmaStart { .. } => {} // spans are drawn at DmaEnd
            EventKind::DmaEnd { xfer, dma, src, dst, bytes, start_ps, queued_ps } => {
                let args = format!(
                    "\"xfer\":{xfer},\"bytes\":{bytes},\"queued_us\":{},\"route\":\"{src}->{dst}\"",
                    us(*queued_ps)
                );
                w.complete(
                    PID_MEM,
                    TID_DMA_BASE + dma,
                    route_name(*src, *dst),
                    *start_ps,
                    at,
                    &args,
                );
            }
            EventKind::EscalationGranted { task, acc, index } => {
                let args = format!("\"task\":\"{task}\",\"acc\":{acc},\"index\":{index}");
                w.instant(PID_SCHED, TID_DECISIONS, "escalation-granted", at, &args);
            }
            EventKind::EscalationDenied { task, acc, reason } => {
                let args = format!("\"task\":\"{task}\",\"acc\":{acc},\"reason\":\"{reason}\"");
                w.instant(PID_SCHED, TID_DECISIONS, "escalation-denied", at, &args);
            }
            EventKind::FeasibilityCheck { task, acc, index, feasible } => {
                let args = format!(
                    "\"task\":\"{task}\",\"acc\":{acc},\"index\":{index},\"feasible\":{feasible}"
                );
                w.instant(PID_SCHED, TID_DECISIONS, "feasibility-check", at, &args);
            }
            EventKind::QueueBypass { task, acc, skipped } => {
                let args = format!("\"task\":\"{task}\",\"acc\":{acc},\"skipped\":{skipped}");
                w.instant(PID_SCHED, TID_DECISIONS, "queue-bypass", at, &args);
            }
            EventKind::DagArrived { instance, app, nodes } => {
                let mut args = format!("\"instance\":{instance},\"nodes\":{nodes},\"app\":\"");
                escape_into(&mut args, app);
                args.push('"');
                w.instant(PID_SCHED, TID_APPS, "dag-arrival", at, &args);
            }
            EventKind::TaskReady { task, acc } => {
                let args = format!("\"task\":\"{task}\",\"acc\":{acc}");
                w.instant(PID_SCHED, TID_DECISIONS, "task-ready", at, &args);
            }
            EventKind::TaskDispatched { .. } | EventKind::ComputeStart { .. } => {
                // Subsumed by the ComputeEnd span.
            }
            EventKind::InputSourced { task, inst, source, bytes, .. } => {
                let args = format!("\"task\":\"{task}\",\"source\":\"{source}\",\"bytes\":{bytes}");
                w.instant(PID_ACCEL, *inst, "input", at, &args);
            }
            EventKind::ComputeEnd { task, inst, start_ps, label, forwarded_inputs, colocated_inputs } => {
                let args = format!(
                    "\"task\":\"{task}\",\"forwarded_inputs\":{forwarded_inputs},\"colocated_inputs\":{colocated_inputs}"
                );
                w.complete(PID_ACCEL, *inst, label, *start_ps, at, &args);
            }
            EventKind::WritebackIssued { task, inst, bytes, lazy } => {
                let args = format!("\"task\":\"{task}\",\"bytes\":{bytes},\"lazy\":{lazy}");
                w.instant(PID_ACCEL, *inst, "writeback", at, &args);
            }
            EventKind::DagDone { instance, met } => {
                let args = format!("\"instance\":{instance},\"met\":{met}");
                w.instant(PID_SCHED, TID_APPS, "dag-done", at, &args);
            }
            EventKind::TaskFaulted { task, inst, attempt } => {
                let args = format!("\"task\":\"{task}\",\"attempt\":{attempt}");
                w.instant(PID_ACCEL, *inst, "task-fault", at, &args);
            }
            EventKind::TaskRetried { task, acc, attempt } => {
                let args = format!("\"task\":\"{task}\",\"acc\":{acc},\"attempt\":{attempt}");
                w.instant(PID_SCHED, TID_DECISIONS, "task-retry", at, &args);
            }
            EventKind::TaskAborted { task, attempts } => {
                let args = format!("\"task\":\"{task}\",\"attempts\":{attempts}");
                w.instant(PID_SCHED, TID_APPS, "task-abort", at, &args);
            }
            EventKind::DmaFaulted { task, parent, bytes, attempt } => {
                let mut args = format!("\"task\":\"{task}\",\"bytes\":{bytes},\"attempt\":{attempt}");
                if let Some(p) = parent {
                    let _ = write!(args, ",\"parent\":\"{p}\"");
                }
                w.instant(PID_MEM, TID_DRAM, "dma-fault", at, &args);
            }
            EventKind::UnitQuarantined { inst, until_ps } => {
                let args = format!("\"until_us\":{}", us(*until_ps));
                w.instant(PID_ACCEL, *inst, "unit-quarantine", at, &args);
            }
            EventKind::UnitRestored { inst } => {
                w.instant(PID_ACCEL, *inst, "unit-restore", at, "");
            }
            EventKind::FaultAttributedMiss { instance, faults } => {
                let args = format!("\"instance\":{instance},\"faults\":{faults}");
                w.instant(PID_SCHED, TID_APPS, "fault-miss", at, &args);
            }
            EventKind::StreamArrival { tenant, index, class } => {
                let args = format!("\"tenant\":{tenant},\"index\":{index},\"class\":\"{class}\"");
                w.instant(PID_SCHED, TID_APPS, "stream-arrival", at, &args);
            }
            EventKind::RequestAdmitted { tenant, index, instance } => {
                let args =
                    format!("\"tenant\":{tenant},\"index\":{index},\"instance\":{instance}");
                w.instant(PID_SCHED, TID_APPS, "request-admit", at, &args);
            }
            EventKind::RequestShed { tenant, index, class, cause } => {
                let args = format!(
                    "\"tenant\":{tenant},\"index\":{index},\"class\":\"{class}\",\"cause\":\"{cause}\""
                );
                w.instant(PID_SCHED, TID_APPS, "request-shed", at, &args);
            }
            EventKind::RequestCompleted { tenant, instance, class, sojourn_ps, met } => {
                let args = format!(
                    "\"tenant\":{tenant},\"instance\":{instance},\"class\":\"{class}\",\"sojourn_us\":{},\"met\":{met}",
                    us(*sojourn_ps)
                );
                w.instant(PID_SCHED, TID_APPS, "request-complete", at, &args);
            }
            EventKind::DmaCancelled { xfer, dma, src, dst, bytes } => {
                let args = format!(
                    "\"xfer\":{xfer},\"bytes\":{bytes},\"route\":\"{src}->{dst}\""
                );
                w.instant(PID_MEM, TID_DMA_BASE + dma, "dma-cancel", at, &args);
            }
            EventKind::ChannelOutage { start_ps, end_ps } => {
                w.complete(PID_MEM, TID_DRAM, "channel-outage", *start_ps, *end_ps, "");
            }
            EventKind::EccCorrupted { task, parent, attempt } => {
                let args = format!(
                    "\"task\":\"{task}\",\"parent\":\"{parent}\",\"attempt\":{attempt}"
                );
                w.instant(PID_MEM, TID_DRAM, "ecc-corrupt", at, &args);
            }
            EventKind::RequestTimedOut { tenant, instance, class, attempt } => {
                let args = format!(
                    "\"tenant\":{tenant},\"instance\":{instance},\"class\":\"{class}\",\"attempt\":{attempt}"
                );
                w.instant(PID_SCHED, TID_APPS, "request-timeout", at, &args);
            }
            EventKind::HedgeLaunched { tenant, instance, attempt } => {
                let args =
                    format!("\"tenant\":{tenant},\"instance\":{instance},\"attempt\":{attempt}");
                w.instant(PID_SCHED, TID_APPS, "hedge-launch", at, &args);
            }
            EventKind::BreakerOpened { tenant, failures } => {
                let args = format!("\"tenant\":{tenant},\"failures\":{failures}");
                w.instant(PID_SCHED, TID_APPS, "breaker-open", at, &args);
            }
            EventKind::BreakerHalfOpen { tenant } => {
                let args = format!("\"tenant\":{tenant}");
                w.instant(PID_SCHED, TID_APPS, "breaker-half-open", at, &args);
            }
            EventKind::BreakerClosed { tenant, open_ps } => {
                let args = format!("\"tenant\":{tenant},\"open_us\":{}", us(*open_ps));
                w.instant(PID_SCHED, TID_APPS, "breaker-close", at, &args);
            }
        }
    }
    w.finish()
}

/// A minimal JSON well-formedness checker (objects, arrays, strings,
/// numbers, booleans, null). Used by the exporter's tests and available to
/// integration tests; not a full validator, but strict enough to catch
/// unbalanced structure, bad escapes, and trailing garbage.
#[must_use]
pub fn is_well_formed_json(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let ok = parse_value(bytes, &mut pos);
    skip_ws(bytes, &mut pos);
    ok && pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => false,
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return false;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return false;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return false;
        }
    }
    *pos > start
}

fn parse_string(b: &[u8], pos: &mut usize) -> bool {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() - *pos < 5 || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit) {
                            return false;
                        }
                        *pos += 5;
                    }
                    _ => return false,
                }
            }
            c if c < 0x20 => return false,
            _ => *pos += 1,
        }
    }
    false
}

fn parse_object(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') || !parse_string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TaskRef;

    #[test]
    fn json_checker_accepts_and_rejects() {
        assert!(is_well_formed_json("{\"a\":[1,2.5,-3e4,\"x\\n\",true,null]}"));
        assert!(is_well_formed_json("[]"));
        assert!(!is_well_formed_json("{\"a\":}"));
        assert!(!is_well_formed_json("[1,2"));
        assert!(!is_well_formed_json("{\"a\":1} trailing"));
        assert!(!is_well_formed_json("\"bad\\escape\""));
    }

    #[test]
    fn exact_microsecond_formatting() {
        assert_eq!(us(0), "0.000000");
        assert_eq!(us(1), "0.000001");
        assert_eq!(us(1_500_000), "1.500000");
        assert_eq!(us(123_456_789), "123.456789");
    }

    #[test]
    fn export_is_well_formed_and_tracked() {
        let events = vec![
            TraceEvent {
                at_ps: 30_000_000,
                kind: EventKind::ComputeEnd {
                    task: TaskRef { instance: 0, node: 0 },
                    inst: 1,
                    start_ps: 10_000_000,
                    label: "A:n0".to_string(),
                    forwarded_inputs: 0,
                    colocated_inputs: 1,
                },
            },
            TraceEvent {
                at_ps: 5_000_000,
                kind: EventKind::EscalationGranted {
                    task: TaskRef { instance: 0, node: 1 },
                    acc: 0,
                    index: 0,
                },
            },
        ];
        let json = to_chrome_json(&events, &ChromeOptions::default());
        assert!(is_well_formed_json(&json), "exporter must emit valid JSON:\n{json}");
        assert!(json.contains("\"escalation-granted\""));
        assert!(json.contains("\"A:n0\""));
        assert!(json.contains("\"ts\":10.000000,\"dur\":20.000000"));
    }

    #[test]
    fn names_are_escaped() {
        let events = vec![TraceEvent {
            at_ps: 0,
            kind: EventKind::DagArrived { instance: 0, app: "we\"ird\\app".to_string(), nodes: 1 },
        }];
        let json = to_chrome_json(&events, &ChromeOptions::default());
        assert!(is_well_formed_json(&json), "{json}");
        assert!(json.contains("we\\\"ird\\\\app"));
    }
}
