//! The structured event taxonomy emitted by every layer of the simulator.
//!
//! Events deliberately use raw integers (`u64` picoseconds, `u32`
//! instance/node ids) rather than the typed wrappers from `relief-sim` /
//! `relief-core`: this crate sits *below* every other crate in the
//! workspace, so it cannot name their types. The emitting layers convert
//! at the instrumentation point.

use std::fmt;

/// Identity of one task: DAG instance index plus node index. Mirrors
/// `relief_core::TaskKey` and renders the same way (`d3:n7`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskRef {
    /// Index of the DAG instance the task belongs to.
    pub instance: u32,
    /// Node index within the DAG.
    pub node: u32,
}

impl fmt::Display for TaskRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}:n{}", self.instance, self.node)
    }
}

/// One end of a data transfer: main memory or an accelerator scratchpad.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// The DRAM channel.
    Dram,
    /// The scratchpad of accelerator instance `0` (by instance index).
    Spad(u32),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Dram => write!(f, "dram"),
            Endpoint::Spad(i) => write!(f, "spad{i}"),
        }
    }
}

/// Where a task input physically came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSource {
    /// Loaded from main memory.
    Dram,
    /// SPAD-to-SPAD forward from another accelerator instance.
    Forwarded {
        /// Producing accelerator instance index.
        from_inst: u32,
    },
    /// Producer output already resident in this instance's scratchpad.
    Colocated,
}

impl fmt::Display for InputSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputSource::Dram => write!(f, "dram"),
            InputSource::Forwarded { from_inst } => write!(f, "fwd(inst{from_inst})"),
            InputSource::Colocated => write!(f, "coloc"),
        }
    }
}

/// Why a forwarding-node priority escalation was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DenyReason {
    /// No idle accelerator budget: every possible forward slot is taken.
    NoIdleBudget,
    /// Algorithm 2 found no victim whose laxity can absorb the insertion.
    Infeasible,
}

impl fmt::Display for DenyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenyReason::NoIdleBudget => write!(f, "no-idle-budget"),
            DenyReason::Infeasible => write!(f, "infeasible"),
        }
    }
}

/// QoS class of a streamed request. Mirrors `relief_service::QosClass`
/// and renders the same names (this crate sits below `relief-service` and
/// cannot name its types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceClass {
    /// Interactive traffic.
    Latency,
    /// Default traffic class.
    Standard,
    /// Scavenger traffic.
    BestEffort,
}

impl fmt::Display for ServiceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceClass::Latency => write!(f, "latency"),
            ServiceClass::Standard => write!(f, "standard"),
            ServiceClass::BestEffort => write!(f, "besteffort"),
        }
    }
}

/// Which admission check shed a streamed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedCause {
    /// The tenant's token bucket was empty.
    Bucket,
    /// The class's share of the global in-flight cap was full.
    Capacity,
    /// The tenant's circuit breaker was open (or a half-open probe draw
    /// failed).
    Breaker,
}

impl fmt::Display for ShedCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShedCause::Bucket => write!(f, "token-bucket"),
            ShedCause::Capacity => write!(f, "in-flight-cap"),
            ShedCause::Breaker => write!(f, "circuit-breaker"),
        }
    }
}

/// A single-server resource whose occupancy is traced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceId {
    /// The hardware-manager scheduling engine.
    Manager,
    /// The DRAM channel.
    Dram,
    /// DMA engine `0`.
    Dma(u32),
    /// Interconnect lane `0`.
    IcnLane(u32),
    /// Scratchpad port of accelerator instance `0`.
    SpadPort(u32),
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceId::Manager => write!(f, "manager"),
            ResourceId::Dram => write!(f, "dram"),
            ResourceId::Dma(i) => write!(f, "dma{i}"),
            ResourceId::IcnLane(i) => write!(f, "icn{i}"),
            ResourceId::SpadPort(i) => write!(f, "spad-port{i}"),
        }
    }
}

/// A timestamped structured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event, in picoseconds.
    pub at_ps: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Everything the stack can report. Variants are grouped by the crate
/// that emits them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    // ---- relief-sim ----
    /// The simulation kernel dispatched an event from its queue.
    EventDispatched {
        /// Running count of dispatched events (0-based).
        index: u64,
    },
    /// A traced [`ResourceId`] was reserved for `[start_ps, end_ps)`.
    ResourceBusy {
        /// Which resource.
        resource: ResourceId,
        /// Reservation start, picoseconds.
        start_ps: u64,
        /// Reservation end, picoseconds.
        end_ps: u64,
    },

    // ---- relief-mem ----
    /// A DMA transfer was accepted by the transfer engine.
    DmaStart {
        /// Engine-assigned transfer id.
        xfer: u64,
        /// DMA engine index carrying the transfer.
        dma: u32,
        /// Source endpoint.
        src: Endpoint,
        /// Destination endpoint.
        dst: Endpoint,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A DMA transfer fully completed.
    DmaEnd {
        /// Engine-assigned transfer id (matches the `DmaStart`).
        xfer: u64,
        /// DMA engine index that carried the transfer.
        dma: u32,
        /// Source endpoint.
        src: Endpoint,
        /// Destination endpoint.
        dst: Endpoint,
        /// Payload size in bytes.
        bytes: u64,
        /// When the first chunk started moving, picoseconds.
        start_ps: u64,
        /// Total time chunks spent waiting for resources, picoseconds.
        queued_ps: u64,
    },
    /// A DMA transfer was cancelled mid-flight; no `DmaEnd` follows.
    DmaCancelled {
        /// Engine-assigned transfer id (matches the `DmaStart`).
        xfer: u64,
        /// DMA engine index that carried the transfer.
        dma: u32,
        /// Source endpoint.
        src: Endpoint,
        /// Destination endpoint.
        dst: Endpoint,
        /// Bytes actually moved before the cancel (chunks completed).
        bytes: u64,
    },
    /// A DRAM-channel blackout window delayed a chunk start.
    ChannelOutage {
        /// Blackout window start, picoseconds.
        start_ps: u64,
        /// Blackout window end (chunk starts resume), picoseconds.
        end_ps: u64,
    },

    // ---- relief-core ----
    /// RELIEF Algorithm 1 escalated a forwarding node to the queue front.
    EscalationGranted {
        /// The escalated task.
        task: TaskRef,
        /// Accelerator type the task queued on.
        acc: u32,
        /// Laxity-order position the node would have taken — i.e. how many
        /// queued entries the escalation jumped past.
        index: u64,
    },
    /// RELIEF declined to escalate a forwarding node.
    EscalationDenied {
        /// The rejected task.
        task: TaskRef,
        /// Accelerator type the task queued on.
        acc: u32,
        /// Why escalation was rejected.
        reason: DenyReason,
    },
    /// RELIEF Algorithm 2 evaluated whether an escalation is feasible.
    FeasibilityCheck {
        /// The candidate forwarding task.
        task: TaskRef,
        /// Accelerator type whose queue was inspected.
        acc: u32,
        /// Queue position the candidate would take.
        index: u64,
        /// The verdict.
        feasible: bool,
    },
    /// A laxity-driven pop bypassed `skipped` queued tasks (queue
    /// reordering at dispatch time).
    QueueBypass {
        /// The task that was popped out of order.
        task: TaskRef,
        /// Accelerator type of the queue.
        acc: u32,
        /// How many earlier entries were skipped.
        skipped: u64,
    },

    // ---- relief-accel ----
    /// A DAG instance arrived and its tasks entered the system.
    DagArrived {
        /// DAG instance index.
        instance: u32,
        /// Application symbol/name.
        app: String,
        /// Node count of the DAG.
        nodes: u32,
    },
    /// A task's dependencies resolved; it entered a ready queue.
    TaskReady {
        /// The task.
        task: TaskRef,
        /// Accelerator type it queues on.
        acc: u32,
    },
    /// The manager dispatched a task to a concrete accelerator instance.
    TaskDispatched {
        /// The task.
        task: TaskRef,
        /// Accelerator instance index it runs on.
        inst: u32,
    },
    /// One input edge of a dispatched task was sourced.
    InputSourced {
        /// The consuming task.
        task: TaskRef,
        /// Accelerator instance the task runs on.
        inst: u32,
        /// The producing task, if the input is an edge (DRAM loads of
        /// primary inputs have no producer).
        parent: Option<TaskRef>,
        /// Where the bytes came from.
        source: InputSource,
        /// Edge payload in bytes.
        bytes: u64,
    },
    /// A task's functional unit started computing.
    ComputeStart {
        /// The task.
        task: TaskRef,
        /// Accelerator instance index.
        inst: u32,
    },
    /// A task's functional unit finished. Self-contained record of the
    /// whole compute span so span-based views need no other events.
    ComputeEnd {
        /// The task.
        task: TaskRef,
        /// Accelerator instance index.
        inst: u32,
        /// Compute start time, picoseconds.
        start_ps: u64,
        /// Render label, `"<app>:n<node>"`.
        label: String,
        /// Inputs that arrived via SPAD-to-SPAD forwarding.
        forwarded_inputs: u32,
        /// Inputs consumed in place via colocation.
        colocated_inputs: u32,
    },
    /// A task output write-back to DRAM was issued.
    WritebackIssued {
        /// The producing task.
        task: TaskRef,
        /// Accelerator instance index holding the output.
        inst: u32,
        /// Output size in bytes.
        bytes: u64,
        /// True when this is a lazy write-back (partition reclaimed later
        /// than compute completion).
        lazy: bool,
    },
    /// A DAG instance finished all nodes.
    DagDone {
        /// DAG instance index.
        instance: u32,
        /// Whether the end-to-end deadline was met.
        met: bool,
    },

    // ---- relief-fault ----
    /// A task's compute attempt produced a corrupt output; the output was
    /// discarded and the task will be re-queued (or aborted).
    TaskFaulted {
        /// The faulted task.
        task: TaskRef,
        /// Accelerator instance the attempt ran on.
        inst: u32,
        /// 0-based attempt index that faulted.
        attempt: u32,
    },
    /// A previously faulted task re-entered its ready queue after its
    /// backoff delay.
    TaskRetried {
        /// The retried task.
        task: TaskRef,
        /// Accelerator type it re-queues on.
        acc: u32,
        /// 0-based index of the new attempt.
        attempt: u32,
    },
    /// A task exhausted its retry budget; it and its DAG instance are
    /// abandoned (sibling tasks still drain, the DAG never completes).
    TaskAborted {
        /// The aborted task.
        task: TaskRef,
        /// Total attempts consumed (`max_retries + 1`).
        attempts: u32,
    },
    /// An input DMA transfer delivered corrupt data; the edge retries
    /// from DRAM (any forwarding window is lost).
    DmaFaulted {
        /// The consuming task.
        task: TaskRef,
        /// The producing task, if the input is an edge.
        parent: Option<TaskRef>,
        /// Edge payload in bytes (re-transferred in full).
        bytes: u64,
        /// 0-based delivery attempt that faulted.
        attempt: u32,
    },
    /// An accelerator unit went offline and left the dispatch candidate
    /// set (non-preemptive: a task already running on it completes).
    UnitQuarantined {
        /// Accelerator instance index.
        inst: u32,
        /// When the matching restore fires, picoseconds.
        until_ps: u64,
    },
    /// A quarantined accelerator unit came back online.
    UnitRestored {
        /// Accelerator instance index.
        inst: u32,
    },
    /// A DAG instance missed its deadline after suffering at least one
    /// fault — the miss is attributed to fault recovery.
    FaultAttributedMiss {
        /// DAG instance index.
        instance: u32,
        /// Faults (task + DMA) the instance absorbed.
        faults: u64,
    },
    /// A forwarded chunk failed its ECC check: the in-flight forward was
    /// cancelled and the edge re-fetches from DRAM after backoff.
    EccCorrupted {
        /// The consuming task.
        task: TaskRef,
        /// The producing task whose forwarded output was corrupted.
        parent: TaskRef,
        /// 0-based delivery attempt that was invalidated.
        attempt: u32,
    },

    // ---- relief-service ----
    /// The open-loop frontend generated a request (before admission).
    StreamArrival {
        /// Tenant (stream) index.
        tenant: u32,
        /// Per-tenant request index.
        index: u64,
        /// The tenant's QoS class.
        class: ServiceClass,
    },
    /// The admission controller let a request in; a DAG instance was
    /// released.
    RequestAdmitted {
        /// Tenant (stream) index.
        tenant: u32,
        /// Per-tenant request index.
        index: u64,
        /// DAG instance index the request became.
        instance: u32,
    },
    /// The admission controller shed a request; no DAG instance exists.
    RequestShed {
        /// Tenant (stream) index.
        tenant: u32,
        /// Per-tenant request index.
        index: u64,
        /// The tenant's QoS class.
        class: ServiceClass,
        /// Which check rejected it.
        cause: ShedCause,
    },
    /// An admitted request's DAG instance ran to completion.
    RequestCompleted {
        /// Tenant (stream) index.
        tenant: u32,
        /// DAG instance index.
        instance: u32,
        /// The tenant's QoS class.
        class: ServiceClass,
        /// Arrival-to-completion time, picoseconds.
        sojourn_ps: u64,
        /// Whether the DAG deadline was met.
        met: bool,
    },
    /// An admitted request overran its timeout; its DAG instance was
    /// cancelled and the admission slot reclaimed.
    RequestTimedOut {
        /// Tenant (stream) index.
        tenant: u32,
        /// DAG instance index of the cancelled attempt.
        instance: u32,
        /// The tenant's QoS class.
        class: ServiceClass,
        /// 0-based attempt index that timed out (hedges increment it).
        attempt: u32,
    },
    /// A timed-out request was relaunched as a fresh DAG instance under
    /// the class's hedge budget.
    HedgeLaunched {
        /// Tenant (stream) index.
        tenant: u32,
        /// DAG instance index of the replacement attempt.
        instance: u32,
        /// 1-based attempt index of the hedge.
        attempt: u32,
    },
    /// A tenant's circuit breaker tripped open after consecutive failures.
    BreakerOpened {
        /// Tenant (stream) index.
        tenant: u32,
        /// Consecutive failures that tripped it.
        failures: u32,
    },
    /// A tenant's breaker entered half-open and admits seeded probes.
    BreakerHalfOpen {
        /// Tenant (stream) index.
        tenant: u32,
    },
    /// A tenant's breaker closed again after enough probe successes.
    BreakerClosed {
        /// Tenant (stream) index.
        tenant: u32,
        /// Total time the breaker spent not-closed, picoseconds.
        open_ps: u64,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>14} {}", self.at_ps, self.kind)
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use EventKind::*;
        match self {
            EventDispatched { index } => write!(f, "dispatch #{index}"),
            ResourceBusy { resource, start_ps, end_ps } => {
                write!(f, "busy {resource} {start_ps}..{end_ps}")
            }
            DmaStart { xfer, dma, src, dst, bytes } => {
                write!(f, "dma-start #{xfer} dma{dma} {src}->{dst} {bytes}B")
            }
            DmaEnd { xfer, dma, src, dst, bytes, start_ps, queued_ps } => write!(
                f,
                "dma-end #{xfer} dma{dma} {src}->{dst} {bytes}B start={start_ps} queued={queued_ps}"
            ),
            DmaCancelled { xfer, dma, src, dst, bytes } => {
                write!(f, "dma-cancel #{xfer} dma{dma} {src}->{dst} {bytes}B")
            }
            ChannelOutage { start_ps, end_ps } => {
                write!(f, "channel-outage {start_ps}..{end_ps}")
            }
            EscalationGranted { task, acc, index } => {
                write!(f, "escalation-granted {task} acc{acc} idx={index}")
            }
            EscalationDenied { task, acc, reason } => {
                write!(f, "escalation-denied {task} acc{acc} {reason}")
            }
            FeasibilityCheck { task, acc, index, feasible } => write!(
                f,
                "feasibility {task} acc{acc} idx={index} {}",
                if *feasible { "feasible" } else { "infeasible" }
            ),
            QueueBypass { task, acc, skipped } => {
                write!(f, "queue-bypass {task} acc{acc} skipped={skipped}")
            }
            DagArrived { instance, app, nodes } => {
                write!(f, "dag-arrival inst{instance} {app} nodes={nodes}")
            }
            TaskReady { task, acc } => write!(f, "task-ready {task} acc{acc}"),
            TaskDispatched { task, inst } => write!(f, "task-dispatch {task} inst{inst}"),
            InputSourced { task, inst, parent, source, bytes } => {
                write!(f, "input {task} inst{inst} <- {source}")?;
                if let Some(p) = parent {
                    write!(f, " from {p}")?;
                }
                write!(f, " {bytes}B")
            }
            ComputeStart { task, inst } => write!(f, "compute-start {task} inst{inst}"),
            ComputeEnd { task, inst, start_ps, label, forwarded_inputs, colocated_inputs } => {
                write!(
                    f,
                    "compute-end {task} inst{inst} start={start_ps} fwd={forwarded_inputs} coloc={colocated_inputs} {label}"
                )
            }
            WritebackIssued { task, inst, bytes, lazy } => {
                write!(f, "writeback {task} inst{inst} {bytes}B lazy={lazy}")
            }
            DagDone { instance, met } => write!(f, "dag-done inst{instance} met={met}"),
            TaskFaulted { task, inst, attempt } => {
                write!(f, "task-fault {task} inst{inst} attempt={attempt}")
            }
            TaskRetried { task, acc, attempt } => {
                write!(f, "task-retry {task} acc{acc} attempt={attempt}")
            }
            TaskAborted { task, attempts } => {
                write!(f, "task-abort {task} attempts={attempts}")
            }
            DmaFaulted { task, parent, bytes, attempt } => {
                write!(f, "dma-fault {task}")?;
                if let Some(p) = parent {
                    write!(f, " from {p}")?;
                }
                write!(f, " {bytes}B attempt={attempt}")
            }
            UnitQuarantined { inst, until_ps } => {
                write!(f, "unit-quarantine inst{inst} until={until_ps}")
            }
            UnitRestored { inst } => write!(f, "unit-restore inst{inst}"),
            FaultAttributedMiss { instance, faults } => {
                write!(f, "fault-miss inst{instance} faults={faults}")
            }
            EccCorrupted { task, parent, attempt } => {
                write!(f, "ecc-corrupt {task} from {parent} attempt={attempt}")
            }
            StreamArrival { tenant, index, class } => {
                write!(f, "stream-arrival t{tenant}#{index} {class}")
            }
            RequestAdmitted { tenant, index, instance } => {
                write!(f, "request-admit t{tenant}#{index} inst{instance}")
            }
            RequestShed { tenant, index, class, cause } => {
                write!(f, "request-shed t{tenant}#{index} {class} {cause}")
            }
            RequestCompleted { tenant, instance, class, sojourn_ps, met } => write!(
                f,
                "request-complete t{tenant} inst{instance} {class} sojourn={sojourn_ps} met={met}"
            ),
            RequestTimedOut { tenant, instance, class, attempt } => write!(
                f,
                "request-timeout t{tenant} inst{instance} {class} attempt={attempt}"
            ),
            HedgeLaunched { tenant, instance, attempt } => {
                write!(f, "hedge-launch t{tenant} inst{instance} attempt={attempt}")
            }
            BreakerOpened { tenant, failures } => {
                write!(f, "breaker-open t{tenant} failures={failures}")
            }
            BreakerHalfOpen { tenant } => write!(f, "breaker-half-open t{tenant}"),
            BreakerClosed { tenant, open_ps } => {
                write!(f, "breaker-close t{tenant} open={open_ps}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        let ev = TraceEvent {
            at_ps: 1_500_000,
            kind: EventKind::EscalationGranted {
                task: TaskRef { instance: 2, node: 5 },
                acc: 1,
                index: 0,
            },
        };
        assert_eq!(ev.to_string(), "       1500000 escalation-granted d2:n5 acc1 idx=0");
    }

    #[test]
    fn service_display_is_stable() {
        let arrival = EventKind::StreamArrival {
            tenant: 1,
            index: 42,
            class: ServiceClass::Latency,
        };
        assert_eq!(arrival.to_string(), "stream-arrival t1#42 latency");
        let admit = EventKind::RequestAdmitted { tenant: 0, index: 3, instance: 7 };
        assert_eq!(admit.to_string(), "request-admit t0#3 inst7");
        let shed = EventKind::RequestShed {
            tenant: 2,
            index: 9,
            class: ServiceClass::BestEffort,
            cause: ShedCause::Capacity,
        };
        assert_eq!(shed.to_string(), "request-shed t2#9 besteffort in-flight-cap");
        let done = EventKind::RequestCompleted {
            tenant: 0,
            instance: 7,
            class: ServiceClass::Standard,
            sojourn_ps: 1_000,
            met: true,
        };
        assert_eq!(done.to_string(), "request-complete t0 inst7 standard sojourn=1000 met=true");
    }

    #[test]
    fn chaos_display_is_stable() {
        let cancel = EventKind::DmaCancelled {
            xfer: 9,
            dma: 1,
            src: Endpoint::Spad(2),
            dst: Endpoint::Spad(3),
            bytes: 2048,
        };
        assert_eq!(cancel.to_string(), "dma-cancel #9 dma1 spad2->spad3 2048B");
        let outage = EventKind::ChannelOutage { start_ps: 100, end_ps: 400 };
        assert_eq!(outage.to_string(), "channel-outage 100..400");
        let ecc = EventKind::EccCorrupted {
            task: TaskRef { instance: 1, node: 2 },
            parent: TaskRef { instance: 1, node: 0 },
            attempt: 0,
        };
        assert_eq!(ecc.to_string(), "ecc-corrupt d1:n2 from d1:n0 attempt=0");
        let timeout = EventKind::RequestTimedOut {
            tenant: 0,
            instance: 4,
            class: ServiceClass::Latency,
            attempt: 0,
        };
        assert_eq!(timeout.to_string(), "request-timeout t0 inst4 latency attempt=0");
        let hedge = EventKind::HedgeLaunched { tenant: 0, instance: 5, attempt: 1 };
        assert_eq!(hedge.to_string(), "hedge-launch t0 inst5 attempt=1");
        let opened = EventKind::BreakerOpened { tenant: 2, failures: 3 };
        assert_eq!(opened.to_string(), "breaker-open t2 failures=3");
        let half = EventKind::BreakerHalfOpen { tenant: 2 };
        assert_eq!(half.to_string(), "breaker-half-open t2");
        let closed = EventKind::BreakerClosed { tenant: 2, open_ps: 777 };
        assert_eq!(closed.to_string(), "breaker-close t2 open=777");
        let shed = EventKind::RequestShed {
            tenant: 2,
            index: 11,
            class: ServiceClass::Standard,
            cause: ShedCause::Breaker,
        };
        assert_eq!(shed.to_string(), "request-shed t2#11 standard circuit-breaker");
    }

    #[test]
    fn input_with_and_without_parent() {
        let with = EventKind::InputSourced {
            task: TaskRef { instance: 0, node: 1 },
            inst: 3,
            parent: Some(TaskRef { instance: 0, node: 0 }),
            source: InputSource::Forwarded { from_inst: 2 },
            bytes: 4096,
        };
        assert_eq!(with.to_string(), "input d0:n1 inst3 <- fwd(inst2) from d0:n0 4096B");
        let without = EventKind::InputSourced {
            task: TaskRef { instance: 0, node: 0 },
            inst: 3,
            parent: None,
            source: InputSource::Dram,
            bytes: 64,
        };
        assert_eq!(without.to_string(), "input d0:n0 inst3 <- dram 64B");
    }
}
