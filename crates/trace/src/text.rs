//! Compact line-oriented text export.
//!
//! One event per line, fixed-width picosecond timestamp first, exactly
//! the [`std::fmt::Display`] form of [`TraceEvent`]. The format is
//! deterministic byte-for-byte for deterministic runs, which makes it the
//! canonical input for `trace-diff`.

use crate::event::TraceEvent;

/// Renders events as the line-oriented text format, one line per event,
/// each terminated by `\n`.
///
/// # Examples
///
/// ```
/// use relief_trace::{text, EventKind, TraceEvent};
/// let events = vec![TraceEvent { at_ps: 42, kind: EventKind::EventDispatched { index: 0 } }];
/// assert_eq!(text::to_text(&events), "            42 dispatch #0\n");
/// ```
#[must_use]
pub fn to_text(events: &[TraceEvent]) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(events.len() * 48);
    for ev in events {
        let _ = writeln!(out, "{ev}"); // writing to a String cannot fail
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TaskRef};

    #[test]
    fn one_line_per_event_in_order() {
        let events = vec![
            TraceEvent { at_ps: 10, kind: EventKind::EventDispatched { index: 0 } },
            TraceEvent {
                at_ps: 20,
                kind: EventKind::TaskReady { task: TaskRef { instance: 0, node: 1 }, acc: 2 },
            },
        ];
        let text = to_text(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].ends_with("dispatch #0"));
        assert!(lines[1].ends_with("task-ready d0:n1 acc2"));
    }

    #[test]
    fn empty_stream_is_empty_string() {
        assert_eq!(to_text(&[]), "");
    }
}
