//! Structured event tracing for the RELIEF simulator.
//!
//! `relief-trace` is the observability foundation of the workspace: a
//! zero-dependency crate that every other layer can emit typed, timestamped
//! events into. It sits *below* `relief-sim` in the dependency graph, so
//! events use raw integers (picoseconds, instance/node indices) that the
//! emitting layers convert at the instrumentation point.
//!
//! The pieces:
//!
//! * [`TraceEvent`] / [`EventKind`] — the taxonomy: simulation-kernel
//!   dispatches and resource occupancy, DMA transfer lifecycles, scheduler
//!   decisions (escalations, feasibility verdicts, queue bypasses), and
//!   the full task lifecycle (ready → dispatched → compute → writeback)
//!   with forwarding/colocation provenance.
//! * [`Tracer`] / [`TraceSink`] — a cloneable fan-out handle over shared
//!   sinks. With no sink attached, [`Tracer::emit`] is one branch and the
//!   event is never constructed. [`RingBufferSink`] is the bounded
//!   in-memory collector; [`NullSink`] measures plumbing overhead.
//! * [`chrome`] — hand-rolled Chrome/Perfetto `trace.json` export (open in
//!   `chrome://tracing` or <https://ui.perfetto.dev>).
//! * [`text`] — the canonical line-oriented format, deterministic
//!   byte-for-byte for deterministic runs.
//! * [`diff`] — first-divergence comparison backing the `trace-diff`
//!   binary: determinism as an enforceable regression test.
//! * [`EventCounters`] — aggregates that `relief-metrics` reconciles
//!   against its independently computed `RunStats`.
//!
//! # Examples
//!
//! ```
//! use relief_trace::{EventKind, RingBufferSink, TaskRef, Tracer, text};
//!
//! let ring = RingBufferSink::shared(1024);
//! let mut tracer = Tracer::off();
//! tracer.attach(ring.clone());
//!
//! tracer.emit(2_000_000, || EventKind::TaskReady {
//!     task: TaskRef { instance: 0, node: 3 },
//!     acc: 1,
//! });
//!
//! let events = ring.borrow().snapshot();
//! assert_eq!(text::to_text(&events), "       2000000 task-ready d0:n3 acc1\n");
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]


pub mod chrome;
pub mod counters;
pub mod diff;
pub mod event;
pub mod sink;
pub mod text;

pub use counters::{CountersSink, EventCounters};
pub use diff::{first_divergence_events, first_divergence_lines, Divergence, DivergenceCause};
pub use event::{
    DenyReason, Endpoint, EventKind, InputSource, ResourceId, ServiceClass, ShedCause, TaskRef,
    TraceEvent,
};
pub use sink::{NullSink, RingBufferSink, TraceSink, Tracer};
