//! RELIEF: RElaxing Least-laxIty to Enable Forwarding (Algorithms 1 & 2).

use crate::policy::{pop_lax, task_ref, DeadlineScheme, Policy, PolicyKind};
use crate::queue::ReadyQueues;
use crate::task::TaskEntry;
use relief_dag::AccTypeId;
use relief_sim::Time;
use relief_trace::{DenyReason, EventKind, Tracer};

/// The paper's feasibility check (Algorithm 2).
///
/// Decides whether escalating forwarding node `fnode` to the front of
/// `acc`'s queue is unlikely to cause deadline misses, where `index` is the
/// position laxity order would have given `fnode`:
///
/// 1. Scan the queue from the head up to `index` for the first entry that
///    is *not* itself an escalated forwarding node and has positive current
///    laxity. Already-escalated entries must not block further escalations,
///    and negative-laxity entries are expected to miss their deadline with
///    or without the promotion.
/// 2. The escalation is feasible iff that entry's laxity exceeds `fnode`'s
///    runtime — because the queue is laxity-sorted, every later entry then
///    tolerates the delay too. With no such entry, escalation is feasible.
/// 3. On success, debit `fnode`'s runtime from the stored laxity of every
///    entry ahead of `index`, charging them for the delay they will absorb.
///
/// The scan is a prefix walk by design — that *is* the algorithm, not
/// queue-implementation overhead — and the debit goes through
/// [`ReadyQueues::debit_ahead`] so the cached sort keys stay consistent.
///
/// Returns whether the escalation may proceed; mutates laxities only when
/// it returns `true`.
pub fn is_feasible(
    queues: &mut ReadyQueues,
    acc: AccTypeId,
    fnode: &TaskEntry,
    index: usize,
    now: Time,
) -> bool {
    let mut can_forward = true;
    for node in queues.queue(acc).iter().take(index) {
        let curr_laxity = node.curr_laxity(now);
        if !node.is_fwd && curr_laxity > 0 {
            can_forward = curr_laxity > fnode.runtime_ps();
            break;
        }
    }
    if can_forward {
        queues.debit_ahead(acc, index, fnode.runtime_ps());
    }
    can_forward
}

/// RELIEF (Algorithm 1): a least-laxity policy that escalates newly ready
/// *forwarding nodes* — children whose parent has just finished, so their
/// input is still live in the producer's scratchpad — to the front of their
/// ready queue, provided
///
/// * the number of escalated entries does not exceed the number of idle
///   accelerator instances of that type (so every escalated node really is
///   next to run while its data is still live), and
/// * [`is_feasible`] accepts the promotion.
///
/// Failed candidates fall back to their laxity position. Laxity is stored
/// as `deadline − runtime` and the clock is subtracted at
/// queue-manipulation time, exactly as in the paper.
///
/// Variants:
///
/// * [`Relief::with_lax_deprioritization`] — the RELIEF-LAX variant
///   studied in §V-E, which additionally lets non-negative-laxity tasks
///   bypass negative-laxity ones at pop time.
/// * [`Relief::over_hetsched`] — the §VII extension: RELIEF layered over
///   HetSched's laxity distribution (SDR deadlines), so each node only
///   lends out its own share of the DAG's laxity.
/// * [`Relief::without_feasibility`] — ablation with the feasibility
///   check disabled (escalate whenever an instance is idle); quantifies
///   what the throttle buys.
#[derive(Debug, Clone)]
pub struct Relief {
    lax_deprioritize: bool,
    scheme: DeadlineScheme,
    feasibility: bool,
    escalations: u64,
    rejected: u64,
    tracer: Tracer,
    /// Reused per-enqueue buffer for forwarding candidates, so the per-event
    /// path allocates nothing.
    cand_scratch: Vec<TaskEntry>,
}

impl Default for Relief {
    fn default() -> Self {
        Relief {
            lax_deprioritize: false,
            scheme: DeadlineScheme::NodeCriticalPath,
            feasibility: true,
            escalations: 0,
            rejected: 0,
            tracer: Tracer::off(),
            cand_scratch: Vec::new(),
        }
    }
}

impl Relief {
    /// Creates plain RELIEF.
    pub fn new() -> Self {
        Relief::default()
    }

    /// Creates the RELIEF-LAX variant.
    pub fn with_lax_deprioritization() -> Self {
        Relief { lax_deprioritize: true, ..Relief::default() }
    }

    /// Creates RELIEF over HetSched's laxity distribution (§VII).
    pub fn over_hetsched() -> Self {
        Relief { scheme: DeadlineScheme::HetSchedSdr, ..Relief::default() }
    }

    /// Creates the unthrottled ablation (no feasibility check).
    pub fn without_feasibility() -> Self {
        Relief { feasibility: false, ..Relief::default() }
    }

    /// Number of successful priority escalations so far.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Number of candidates denied by throttling or the feasibility check.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

impl Policy for Relief {
    fn kind(&self) -> PolicyKind {
        match (self.lax_deprioritize, self.scheme, self.feasibility) {
            (true, _, _) => PolicyKind::ReliefLax,
            (_, DeadlineScheme::HetSchedSdr, _) => PolicyKind::ReliefHet,
            (_, _, false) => PolicyKind::ReliefUnthrottled,
            _ => PolicyKind::Relief,
        }
    }

    fn deadline_scheme(&self) -> DeadlineScheme {
        self.scheme
    }

    fn enqueue_ready(
        &mut self,
        queues: &mut ReadyQueues,
        batch: &mut Vec<TaskEntry>,
        now: Time,
        idle: &[usize],
    ) {
        // Split the batch: forwarding candidates (collected into the reused
        // scratch buffer) versus plain ready nodes (DAG roots, re-inserted
        // work), which take the vanilla least-laxity path.
        let mut cands = std::mem::take(&mut self.cand_scratch);
        cands.clear();
        for entry in batch.drain(..) {
            if entry.fwd_candidate {
                cands.push(entry);
            } else {
                queues.insert_sorted(entry, |t| t.laxity);
            }
        }

        // Algorithm 1 visits candidates grouped by accelerator type (the
        // per-type laxity-sorted `fwd_nodes` lists), each group in
        // ascending-laxity order; one sort over the flat buffer produces
        // exactly that traversal.
        cands.sort_by_key(|t| (t.acc, t.laxity, t.seq));
        let mut i = 0;
        while i < cands.len() {
            let acc = cands[i].acc;
            // Escalations already sitting un-launched at the front count
            // against the idle budget: every escalated node must be next in
            // line, or its producer's data may be overwritten.
            let already_escalated = queues.fwd_prefix(acc);
            let mut max_forwards = idle
                .get(acc.0 as usize)
                .copied()
                .unwrap_or(0)
                .saturating_sub(already_escalated);

            while i < cands.len() && cands[i].acc == acc {
                let mut node = cands[i];
                i += 1;
                node.sort_key = node.laxity;
                let index = queues.find_pos(acc, &node);
                let task = task_ref(node.key);
                // Run Algorithm 2 only when an idle instance exists and the
                // throttle is enabled; trace its verdict when it runs.
                let check_passed = if max_forwards > 0 && self.feasibility {
                    let ok = is_feasible(queues, acc, &node, index, now);
                    self.tracer.emit(now.as_ps(), || EventKind::FeasibilityCheck {
                        task,
                        acc: acc.0,
                        index: index as u64,
                        feasible: ok,
                    });
                    ok
                } else {
                    true
                };
                if max_forwards > 0 && check_passed {
                    self.tracer.emit(now.as_ps(), || EventKind::EscalationGranted {
                        task,
                        acc: acc.0,
                        index: index as u64,
                    });
                    queues.push_front_fwd(node);
                    max_forwards -= 1;
                    self.escalations += 1;
                } else {
                    let reason = if max_forwards == 0 {
                        DenyReason::NoIdleBudget
                    } else {
                        DenyReason::Infeasible
                    };
                    self.tracer.emit(now.as_ps(), || EventKind::EscalationDenied {
                        task,
                        acc: acc.0,
                        reason,
                    });
                    self.rejected += 1;
                    queues.insert_sorted(node, |t| t.laxity);
                }
            }
        }
        self.cand_scratch = cands;
    }

    fn pop(&mut self, queues: &mut ReadyQueues, acc: AccTypeId, now: Time) -> Option<TaskEntry> {
        if self.lax_deprioritize {
            pop_lax(queues, acc, now, &self.tracer)
        } else {
            queues.pop_front(acc)
        }
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKey;
    use relief_sim::Dur;

    fn mk(node: u32, runtime_us: u64, deadline_us: u64) -> TaskEntry {
        TaskEntry::new(
            TaskKey::new(0, node),
            AccTypeId(0),
            Dur::from_us(runtime_us),
            Time::from_us(deadline_us),
        )
        .with_seq(node as u64)
    }

    fn fwd(node: u32, runtime_us: u64, deadline_us: u64) -> TaskEntry {
        mk(node, runtime_us, deadline_us).forwarding_candidate()
    }

    #[test]
    fn escalates_forwarding_node_over_lower_laxity_work() {
        let mut p = Relief::new();
        let mut q = ReadyQueues::new(1);
        // Existing ready node: laxity 90us, plenty of slack.
        p.enqueue_ready(&mut q, &mut vec![mk(0, 10, 100)], Time::ZERO, &[1]);
        // Forwarding candidate with *higher* laxity would sort behind it,
        // but gets escalated because node 0 can absorb 5us of delay.
        p.enqueue_ready(&mut q, &mut vec![fwd(1, 5, 200)], Time::ZERO, &[1]);
        let head = p.pop(&mut q, AccTypeId(0), Time::ZERO).unwrap();
        assert_eq!(head.key.node, 1);
        assert!(head.is_fwd);
        assert_eq!(p.escalations(), 1);
        // Node 0 was debited the candidate's runtime: 90 - 5 = 85us stored.
        assert_eq!(q.queue(AccTypeId(0))[0].laxity, 85_000_000);
    }

    #[test]
    fn feasibility_rejects_when_victim_cannot_absorb_delay() {
        let mut p = Relief::new();
        let mut q = ReadyQueues::new(1);
        // Victim has laxity 4us; candidate runtime 5us > 4us -> reject.
        p.enqueue_ready(&mut q, &mut vec![mk(0, 6, 10)], Time::ZERO, &[1]);
        p.enqueue_ready(&mut q, &mut vec![fwd(1, 5, 200)], Time::ZERO, &[1]);
        assert_eq!(p.escalations(), 0);
        assert_eq!(p.rejected(), 1);
        // Vanilla LL order: victim first (lower laxity), laxity untouched.
        let order: Vec<u32> =
            std::iter::from_fn(|| p.pop(&mut q, AccTypeId(0), Time::ZERO).map(|t| t.key.node))
                .collect();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn negative_laxity_victims_do_not_block_escalation() {
        let mut p = Relief::new();
        let mut q = ReadyQueues::new(1);
        // Victim already doomed (negative laxity): bypassing it is free.
        p.enqueue_ready(&mut q, &mut vec![mk(0, 50, 10)], Time::ZERO, &[1]);
        p.enqueue_ready(&mut q, &mut vec![fwd(1, 5, 200)], Time::ZERO, &[1]);
        assert_eq!(p.escalations(), 1);
        assert_eq!(p.pop(&mut q, AccTypeId(0), Time::ZERO).unwrap().key.node, 1);
    }

    #[test]
    fn throttled_by_idle_instance_count() {
        let mut p = Relief::new();
        let mut q = ReadyQueues::new(1);
        // Two candidates, one idle instance: only one escalation.
        p.enqueue_ready(&mut q, &mut vec![fwd(0, 1, 100), fwd(1, 1, 120)], Time::ZERO, &[1]);
        assert_eq!(p.escalations(), 1);
        assert_eq!(p.rejected(), 1);
        // The lower-laxity candidate (node 0) is escalated first.
        let head = p.pop(&mut q, AccTypeId(0), Time::ZERO).unwrap();
        assert_eq!(head.key.node, 0);
        assert!(head.is_fwd);
        let second = p.pop(&mut q, AccTypeId(0), Time::ZERO).unwrap();
        assert!(!second.is_fwd);
    }

    #[test]
    fn existing_unlaunched_escalations_consume_budget() {
        let mut p = Relief::new();
        let mut q = ReadyQueues::new(1);
        p.enqueue_ready(&mut q, &mut vec![fwd(0, 1, 100)], Time::ZERO, &[1]);
        assert_eq!(p.escalations(), 1);
        // Queue still holds the escalated node; a new candidate with the
        // same single idle instance must not be escalated.
        p.enqueue_ready(&mut q, &mut vec![fwd(1, 1, 100)], Time::ZERO, &[1]);
        assert_eq!(p.escalations(), 1);
        assert_eq!(p.rejected(), 1);
    }

    #[test]
    fn zero_idle_instances_never_escalate() {
        let mut p = Relief::new();
        let mut q = ReadyQueues::new(1);
        p.enqueue_ready(&mut q, &mut vec![fwd(0, 1, 100)], Time::ZERO, &[0]);
        assert_eq!(p.escalations(), 0);
        assert!(!q.queue(AccTypeId(0))[0].is_fwd);
    }

    #[test]
    fn multiple_idle_instances_allow_multiple_escalations() {
        let mut p = Relief::new();
        let mut q = ReadyQueues::new(1);
        p.enqueue_ready(&mut q, &mut vec![fwd(0, 1, 100), fwd(1, 1, 120)], Time::ZERO, &[2]);
        assert_eq!(p.escalations(), 2);
        // Pseudocode order: candidates popped by ascending laxity and each
        // pushed to the *front*, so the later (higher-laxity) push leads.
        let order: Vec<u32> =
            std::iter::from_fn(|| p.pop(&mut q, AccTypeId(0), Time::ZERO).map(|t| t.key.node))
                .collect();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn non_candidates_take_the_ll_path() {
        let mut p = Relief::new();
        let mut q = ReadyQueues::new(1);
        p.enqueue_ready(&mut q, &mut vec![mk(0, 10, 100), mk(1, 10, 50)], Time::ZERO, &[1]);
        assert_eq!(p.escalations(), 0);
        let order: Vec<u32> =
            std::iter::from_fn(|| p.pop(&mut q, AccTypeId(0), Time::ZERO).map(|t| t.key.node))
                .collect();
        assert_eq!(order, vec![1, 0]); // pure laxity order
    }

    #[test]
    fn feasibility_scans_only_ahead_of_laxity_position() {
        let now = Time::ZERO;
        let acc = AccTypeId(0);
        let mut q = ReadyQueues::new(1);
        q.insert_sorted(mk(0, 1, 5), |t| t.laxity); // laxity 4us
        q.insert_sorted(mk(1, 1, 100), |t| t.laxity); // laxity 99us
        // Candidate with laxity between them: index 1. Victim is node 0
        // (4us) which cannot absorb a 10us runtime -> infeasible.
        let cand = fwd(2, 10, 60);
        assert!(!is_feasible(&mut q, acc, &cand, 1, now));
        // Same candidate at index 0 (it would be first anyway): no victims
        // ahead -> feasible, and nothing is debited.
        assert!(is_feasible(&mut q, acc, &cand, 0, now));
        assert_eq!(q.queue(acc)[0].laxity, 4_000_000);
    }

    #[test]
    fn feasibility_skips_fwd_entries_when_scanning() {
        let now = Time::ZERO;
        let acc = AccTypeId(0);
        let mut q = ReadyQueues::new(1);
        q.insert_sorted(mk(1, 1, 100), |t| t.laxity);
        // Tiny-laxity entry, but already escalated: must not block others.
        q.push_front_fwd(mk(0, 1, 2));
        let cand = fwd(2, 10, 60);
        assert!(is_feasible(&mut q, acc, &cand, 2, now));
        // Both entries ahead of index were debited.
        assert_eq!(q.queue(acc)[0].laxity, 1_000_000 - 10_000_000);
        assert_eq!(q.queue(acc)[1].laxity, 99_000_000 - 10_000_000);
    }

    #[test]
    fn relief_lax_pop_bypasses_negative_laxity() {
        let mut p = Relief::with_lax_deprioritization();
        assert_eq!(p.kind(), PolicyKind::ReliefLax);
        let mut q = ReadyQueues::new(1);
        p.enqueue_ready(&mut q, &mut vec![mk(0, 50, 10), mk(1, 5, 100)], Time::ZERO, &[0]);
        assert_eq!(p.pop(&mut q, AccTypeId(0), Time::ZERO).unwrap().key.node, 1);
    }

    #[test]
    fn relief_lax_pop_respects_escalated_head() {
        let mut p = Relief::with_lax_deprioritization();
        let mut q = ReadyQueues::new(1);
        // Escalated candidate with negative laxity at the head must still
        // launch first (its input data is live *now*).
        p.enqueue_ready(&mut q, &mut vec![mk(0, 5, 100)], Time::ZERO, &[1]);
        p.enqueue_ready(&mut q, &mut vec![fwd(1, 50, 10)], Time::ZERO, &[1]);
        let head = p.pop(&mut q, AccTypeId(0), Time::ZERO).unwrap();
        assert_eq!(head.key.node, 1);
        assert!(head.is_fwd);
    }

    #[test]
    fn unthrottled_variant_ignores_feasibility() {
        // Victim cannot absorb the delay, but the ablation escalates anyway.
        let mut p = Relief::without_feasibility();
        assert_eq!(p.kind(), PolicyKind::ReliefUnthrottled);
        let mut q = ReadyQueues::new(1);
        p.enqueue_ready(&mut q, &mut vec![mk(0, 6, 10)], Time::ZERO, &[1]);
        p.enqueue_ready(&mut q, &mut vec![fwd(1, 5, 200)], Time::ZERO, &[1]);
        assert_eq!(p.escalations(), 1);
        assert_eq!(p.pop(&mut q, AccTypeId(0), Time::ZERO).unwrap().key.node, 1);
        // Still bounded by the idle-instance budget, though.
        let mut p2 = Relief::without_feasibility();
        let mut q2 = ReadyQueues::new(1);
        p2.enqueue_ready(&mut q2, &mut vec![fwd(0, 1, 50), fwd(1, 1, 60)], Time::ZERO, &[1]);
        assert_eq!(p2.escalations(), 1);
    }

    #[test]
    fn hetsched_variant_reports_sdr_scheme() {
        let p = Relief::over_hetsched();
        assert_eq!(p.kind(), PolicyKind::ReliefHet);
        assert_eq!(p.deadline_scheme(), DeadlineScheme::HetSchedSdr);
        // Plain RELIEF keeps the LL scheme.
        assert_eq!(Relief::new().deadline_scheme(), DeadlineScheme::NodeCriticalPath);
    }

    #[test]
    fn candidate_falls_back_to_laxity_position_when_rejected() {
        let mut p = Relief::new();
        let mut q = ReadyQueues::new(1);
        p.enqueue_ready(&mut q, &mut vec![mk(0, 6, 10), mk(1, 5, 300)], Time::ZERO, &[1]);
        // Candidate laxity (200-5=195us) sorts between node 0 (4us) and
        // node 1 (295us); rejection inserts it exactly there.
        p.enqueue_ready(&mut q, &mut vec![fwd(2, 5, 200)], Time::ZERO, &[1]);
        let order: Vec<u32> = q.queue(AccTypeId(0)).iter().map(|t| t.key.node).collect();
        assert_eq!(order, vec![0, 2, 1]);
    }
}
