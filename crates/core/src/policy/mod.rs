//! Scheduling policies.
//!
//! Every policy sorts per-accelerator-type ready queues (§II-B) and pops
//! the head when an accelerator of that type idles. They differ in the
//! order key, the deadline-assignment scheme, and — uniquely for RELIEF —
//! in escalating newly ready *forwarding nodes* to the queue front.

mod adaptive;
mod fcfs;
mod gedf;
mod hetsched;
mod ll;
mod relief;
mod replay;

pub use adaptive::{Adaptive, AdaptiveParams, SchedMode};
pub use fcfs::Fcfs;
pub use gedf::{GedfD, GedfN};
pub use hetsched::HetSched;
pub use ll::{Lax, Ll};
pub use relief::{is_feasible, Relief};
pub use replay::{Schedule, ScheduleRecorder, ScheduleReplay, ScheduledLaunch};

use crate::queue::ReadyQueues;
use crate::task::{TaskEntry, TaskKey};
use relief_dag::AccTypeId;
use relief_sim::Time;
use relief_trace::{EventKind, TaskRef, Tracer};
use std::fmt;

/// Converts a scheduler task key into the trace layer's id type.
pub(crate) fn task_ref(key: TaskKey) -> TaskRef {
    TaskRef { instance: key.instance, node: key.node }
}

/// How per-node absolute deadlines are derived from the DAG deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DeadlineScheme {
    /// Every node inherits the DAG's deadline (GEDF-D; also LL/LAX/RELIEF's
    /// *laxity pool* interpretation — see below).
    Dag,
    /// Critical-path method: a node's deadline leaves exactly enough time
    /// for the longest downstream chain (GEDF-N, LL, LAX, RELIEF).
    NodeCriticalPath,
    /// HetSched's Eq. 2: `deadline = SDR × DAG deadline`.
    HetSchedSdr,
}

/// A non-preemptive accelerator scheduling policy.
///
/// Implementations mutate [`ReadyQueues`] only through its sorted-insert /
/// front-escalation API, so every policy preserves the queue invariants the
/// hardware manager relies on.
pub trait Policy {
    /// Which policy this is.
    fn kind(&self) -> PolicyKind;

    /// Deadline-assignment scheme this policy expects in
    /// [`TaskEntry::deadline`].
    fn deadline_scheme(&self) -> DeadlineScheme;

    /// Inserts a batch of newly ready tasks at `now`.
    ///
    /// The batch is "the children of one finishing node whose dependencies
    /// are now satisfied" (or the roots of an arriving DAG); RELIEF's
    /// Algorithm 1 needs them together, the baselines insert them one by
    /// one. `idle` gives the number of idle accelerator instances per
    /// accelerator type id.
    ///
    /// The policy drains `batch`, leaving it empty; callers own the buffer
    /// so the simulator can reuse one scratch `Vec` across events.
    fn enqueue_ready(
        &mut self,
        queues: &mut ReadyQueues,
        batch: &mut Vec<TaskEntry>,
        now: Time,
        idle: &[usize],
    );

    /// Selects the next task to launch on an idle accelerator of type
    /// `acc`, or `None` when its queue is empty.
    fn pop(&mut self, queues: &mut ReadyQueues, acc: AccTypeId, now: Time) -> Option<TaskEntry>;

    /// Like [`pop`](Policy::pop), but with placement control: returns the
    /// selected task together with an optional *global accelerator
    /// instance index* the task must launch on. `is_idle(inst)` reports
    /// whether a global instance index is currently idle (and not
    /// quarantined), letting a placement-aware policy refuse to release a
    /// task whose prescribed instance is busy.
    ///
    /// The default implementation delegates to `pop` with no pin, so
    /// every online policy keeps its existing behavior; only schedule
    /// replay ([`ScheduleReplay`]) overrides this.
    fn pop_placed(
        &mut self,
        queues: &mut ReadyQueues,
        acc: AccTypeId,
        now: Time,
        is_idle: &dyn Fn(usize) -> bool,
    ) -> Option<(TaskEntry, Option<usize>)> {
        let _ = is_idle;
        self.pop(queues, acc, now).map(|e| (e, None))
    }

    /// Prescribes the simulator's write-back decision for `producer`'s
    /// output at compute completion: `Some(true)` elides the eager DRAM
    /// write-back (all consumers will forward), `Some(false)` forces it,
    /// `None` (the default, and every online policy) lets the simulator
    /// derive the decision from queue escalation state. Only schedule
    /// replay ([`ScheduleReplay`]) prescribes: the live decision depends
    /// on the originating policy's escalations, which a replay does not
    /// re-enact, so bit-exact replay must carry the decision in the plan.
    fn writeback_elision(&self, _producer: TaskKey) -> Option<bool> {
        None
    }

    /// Attaches a tracer for scheduling-decision events (escalations,
    /// feasibility verdicts, queue bypasses). Policies without decision
    /// events ignore it.
    fn set_tracer(&mut self, _tracer: Tracer) {}
}

/// Identifies a policy; use [`build`](PolicyKind::build) to instantiate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PolicyKind {
    /// First come, first served (GAM+'s non-preemptive round-robin).
    Fcfs,
    /// Global EDF with DAG deadlines (VIP).
    GedfD,
    /// Global EDF with critical-path node deadlines.
    GedfN,
    /// Least-laxity first.
    Ll,
    /// LL with negative-laxity de-prioritization (Yeh et al.).
    Lax,
    /// Least-laxity first with SDR deadlines (Amarnath et al.).
    HetSched,
    /// This paper: relaxed least-laxity with forwarding escalation.
    Relief,
    /// RELIEF plus LAX's de-prioritization (§V-E ablation).
    ReliefLax,
    /// RELIEF over HetSched's laxity distribution (the §VII extension:
    /// each node lends only its SDR share of the DAG's laxity).
    ReliefHet,
    /// RELIEF with the feasibility check disabled (ablation: escalate
    /// whenever an instance is idle, regardless of victims' laxity).
    ReliefUnthrottled,
    /// DAS-style runtime switch (Goksoy et al.): FCFS while the SoC is
    /// lightly loaded, RELIEF once per-epoch queue depth / laxity slack
    /// signals memory pressure.
    Adaptive,
}

impl PolicyKind {
    /// The six policies of the paper's main comparison (Figs. 4–8).
    pub const MAIN: [PolicyKind; 6] = [
        PolicyKind::Fcfs,
        PolicyKind::GedfD,
        PolicyKind::GedfN,
        PolicyKind::Lax,
        PolicyKind::HetSched,
        PolicyKind::Relief,
    ];

    /// The eight policies of the fairness study (Figs. 9–10, Table VII).
    pub const ALL: [PolicyKind; 8] = [
        PolicyKind::Fcfs,
        PolicyKind::GedfD,
        PolicyKind::GedfN,
        PolicyKind::Lax,
        PolicyKind::ReliefLax,
        PolicyKind::Ll,
        PolicyKind::HetSched,
        PolicyKind::Relief,
    ];

    /// Extension and ablation variants beyond the paper's evaluation
    /// (§VII future work; feasibility-check ablation; the DAS-style
    /// adaptive switch).
    pub const EXTENSIONS: [PolicyKind; 3] =
        [PolicyKind::ReliefHet, PolicyKind::ReliefUnthrottled, PolicyKind::Adaptive];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "FCFS",
            PolicyKind::GedfD => "GEDF-D",
            PolicyKind::GedfN => "GEDF-N",
            PolicyKind::Ll => "LL",
            PolicyKind::Lax => "LAX",
            PolicyKind::HetSched => "HetSched",
            PolicyKind::Relief => "RELIEF",
            PolicyKind::ReliefLax => "RELIEF-LAX",
            PolicyKind::ReliefHet => "RELIEF-HET",
            PolicyKind::ReliefUnthrottled => "RELIEF-NOTHROTTLE",
            PolicyKind::Adaptive => "ADAPTIVE",
        }
    }

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn Policy> {
        match self {
            PolicyKind::Fcfs => Box::new(Fcfs::new()),
            PolicyKind::GedfD => Box::new(GedfD::new()),
            PolicyKind::GedfN => Box::new(GedfN::new()),
            PolicyKind::Ll => Box::new(Ll::new()),
            PolicyKind::Lax => Box::new(Lax::new()),
            PolicyKind::HetSched => Box::new(HetSched::new()),
            PolicyKind::Relief => Box::new(Relief::new()),
            PolicyKind::ReliefLax => Box::new(Relief::with_lax_deprioritization()),
            PolicyKind::ReliefHet => Box::new(Relief::over_hetsched()),
            PolicyKind::ReliefUnthrottled => Box::new(Relief::without_feasibility()),
            PolicyKind::Adaptive => Box::new(Adaptive::new()),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Shared insertion helper: sorted insert of each batch entry under `key`,
/// draining the caller's batch buffer.
pub(crate) fn insert_batch(
    queues: &mut ReadyQueues,
    batch: &mut Vec<TaskEntry>,
    key: impl Fn(&TaskEntry) -> i128 + Copy,
) {
    for entry in batch.drain(..) {
        queues.insert_sorted(entry, key);
    }
}

/// Pop with LAX's de-prioritization: an escalated forwarding head always
/// launches; otherwise the first non-negative-laxity task bypasses any
/// negative-laxity tasks ahead of it; if every task is negative, the head
/// launches. An out-of-order pop emits a `QueueBypass` trace event.
pub(crate) fn pop_lax(
    queues: &mut ReadyQueues,
    acc: AccTypeId,
    now: Time,
    tracer: &Tracer,
) -> Option<TaskEntry> {
    let q = queues.queue(acc);
    if q.front()?.is_fwd {
        return queues.pop_front(acc);
    }
    // No escalated front means no escalated prefix, so the whole queue is
    // laxity-sorted and "first task with curr_laxity ≥ 0" — i.e. stored
    // laxity ≥ now — is a binary search.
    let i = queues.first_laxity_at_least(acc, now.as_ps() as i128);
    if i < queues.queue(acc).len() {
        let entry = queues.remove_at(acc, i);
        if i > 0 {
            tracer.emit(now.as_ps(), || EventKind::QueueBypass {
                task: task_ref(entry.key),
                acc: acc.0,
                skipped: i as u64,
            });
        }
        Some(entry)
    } else {
        queues.pop_front(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(PolicyKind::Relief.to_string(), "RELIEF");
        assert_eq!(PolicyKind::GedfD.name(), "GEDF-D");
        assert_eq!(PolicyKind::ReliefLax.name(), "RELIEF-LAX");
    }

    #[test]
    fn build_round_trips_kind() {
        for kind in PolicyKind::ALL.into_iter().chain(PolicyKind::EXTENSIONS) {
            assert_eq!(kind.build().kind(), kind);
        }
    }

    #[test]
    fn deadline_schemes() {
        use DeadlineScheme::*;
        assert_eq!(PolicyKind::Fcfs.build().deadline_scheme(), Dag);
        assert_eq!(PolicyKind::GedfD.build().deadline_scheme(), Dag);
        assert_eq!(PolicyKind::GedfN.build().deadline_scheme(), NodeCriticalPath);
        assert_eq!(PolicyKind::Ll.build().deadline_scheme(), NodeCriticalPath);
        assert_eq!(PolicyKind::Lax.build().deadline_scheme(), NodeCriticalPath);
        assert_eq!(PolicyKind::HetSched.build().deadline_scheme(), HetSchedSdr);
        assert_eq!(PolicyKind::Relief.build().deadline_scheme(), NodeCriticalPath);
        assert_eq!(PolicyKind::ReliefLax.build().deadline_scheme(), NodeCriticalPath);
    }
}
