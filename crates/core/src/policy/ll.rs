//! Least-laxity-first variants.

use crate::policy::{insert_batch, pop_lax, DeadlineScheme, Policy, PolicyKind};
use crate::queue::ReadyQueues;
use crate::task::TaskEntry;
use relief_dag::AccTypeId;
use relief_sim::Time;
use relief_trace::Tracer;

/// LL: sort by Eq. 1 laxity (`deadline − runtime − now`), critical-path
/// node deadlines (§II-C.3). Because `now` is common to all queued tasks,
/// sorting by stored laxity (`deadline − runtime`) yields the same order.
#[derive(Debug, Clone, Default)]
pub struct Ll(());

/// LAX: LL plus de-prioritization of negative-laxity tasks — a task that is
/// already doomed to miss its deadline is bypassed by tasks that can still
/// make theirs (§II-C.4, Yeh et al.). Improves deadlines met, but §V-E
/// shows it can starve tight-laxity applications like Deblur.
#[derive(Debug, Clone, Default)]
pub struct Lax {
    tracer: Tracer,
}

impl Ll {
    /// Creates the policy.
    pub fn new() -> Self {
        Ll(())
    }
}

impl Lax {
    /// Creates the policy.
    pub fn new() -> Self {
        Lax::default()
    }
}

fn enqueue_ll(queues: &mut ReadyQueues, batch: &mut Vec<TaskEntry>) {
    insert_batch(queues, batch, |t| t.laxity);
}

impl Policy for Ll {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Ll
    }

    fn deadline_scheme(&self) -> DeadlineScheme {
        DeadlineScheme::NodeCriticalPath
    }

    fn enqueue_ready(
        &mut self,
        queues: &mut ReadyQueues,
        batch: &mut Vec<TaskEntry>,
        _now: Time,
        _idle: &[usize],
    ) {
        enqueue_ll(queues, batch);
    }

    fn pop(&mut self, queues: &mut ReadyQueues, acc: AccTypeId, _now: Time) -> Option<TaskEntry> {
        queues.pop_front(acc)
    }
}

impl Policy for Lax {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lax
    }

    fn deadline_scheme(&self) -> DeadlineScheme {
        DeadlineScheme::NodeCriticalPath
    }

    fn enqueue_ready(
        &mut self,
        queues: &mut ReadyQueues,
        batch: &mut Vec<TaskEntry>,
        _now: Time,
        _idle: &[usize],
    ) {
        enqueue_ll(queues, batch);
    }

    fn pop(&mut self, queues: &mut ReadyQueues, acc: AccTypeId, now: Time) -> Option<TaskEntry> {
        pop_lax(queues, acc, now, &self.tracer)
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKey;
    use relief_sim::Dur;

    fn mk(node: u32, runtime_us: u64, deadline_us: u64) -> TaskEntry {
        TaskEntry::new(
            TaskKey::new(0, node),
            AccTypeId(0),
            Dur::from_us(runtime_us),
            Time::from_us(deadline_us),
        )
        .with_seq(node as u64)
    }

    #[test]
    fn ll_orders_by_laxity_not_deadline() {
        let mut p = Ll::new();
        let mut q = ReadyQueues::new(1);
        // node 0: laxity 30-1=29; node 1: laxity 40-25=15 (later deadline,
        // less laxity).
        p.enqueue_ready(&mut q, &mut vec![mk(0, 1, 30), mk(1, 25, 40)], Time::ZERO, &[1]);
        assert_eq!(p.pop(&mut q, AccTypeId(0), Time::ZERO).unwrap().key.node, 1);
        assert_eq!(p.pop(&mut q, AccTypeId(0), Time::ZERO).unwrap().key.node, 0);
    }

    #[test]
    fn lax_bypasses_negative_laxity() {
        let mut p = Lax::new();
        let mut q = ReadyQueues::new(1);
        // node 0 has negative laxity (runtime > deadline); node 1 positive.
        p.enqueue_ready(&mut q, &mut vec![mk(0, 50, 10), mk(1, 5, 100)], Time::ZERO, &[1]);
        // LL order would put node 0 first; LAX pops node 1 first.
        assert_eq!(q.queue(AccTypeId(0))[0].key.node, 0);
        assert_eq!(p.pop(&mut q, AccTypeId(0), Time::ZERO).unwrap().key.node, 1);
        assert_eq!(p.pop(&mut q, AccTypeId(0), Time::ZERO).unwrap().key.node, 0);
    }

    #[test]
    fn lax_falls_back_to_head_when_all_negative() {
        let mut p = Lax::new();
        let mut q = ReadyQueues::new(1);
        p.enqueue_ready(&mut q, &mut vec![mk(0, 50, 10), mk(1, 70, 20)], Time::ZERO, &[1]);
        // Laxities: node 0 = -40us, node 1 = -50us; both negative, so LAX
        // falls back to the LL head (node 1, least laxity).
        assert_eq!(p.pop(&mut q, AccTypeId(0), Time::ZERO).unwrap().key.node, 1);
    }

    #[test]
    fn lax_deprioritization_depends_on_now() {
        let mut p = Lax::new();
        let mut q = ReadyQueues::new(1);
        // Both positive at t=0; at t=28us node 0's laxity (29us) is still
        // positive but node... use node with laxity 15us -> negative at 28us.
        p.enqueue_ready(&mut q, &mut vec![mk(0, 1, 30), mk(1, 25, 40)], Time::ZERO, &[1]);
        // At t=20us: node 1 laxity = 15-20 < 0, node 0 = 29-20 > 0.
        assert_eq!(p.pop(&mut q, AccTypeId(0), Time::from_us(20)).unwrap().key.node, 0);
    }
}
