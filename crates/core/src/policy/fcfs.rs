//! First come, first served.

use crate::policy::{insert_batch, DeadlineScheme, Policy, PolicyKind};
use crate::queue::ReadyQueues;
use crate::task::TaskEntry;
use relief_dag::AccTypeId;
use relief_sim::Time;

/// FCFS: incoming tasks are appended at the tail of their type's ready
/// queue. This is the non-preemptive version of GAM+'s round-robin
/// scheduling (§II-C.1) and the simplest baseline.
///
/// # Examples
///
/// ```
/// use relief_core::policy::{Fcfs, Policy};
/// use relief_core::{ReadyQueues, TaskEntry, TaskKey};
/// use relief_dag::AccTypeId;
/// use relief_sim::{Dur, Time};
///
/// let mut p = Fcfs::new();
/// let mut q = ReadyQueues::new(1);
/// let mk = |n, seq| TaskEntry::new(TaskKey::new(0, n), AccTypeId(0), Dur::ZERO, Time::MAX)
///     .with_seq(seq);
/// p.enqueue_ready(&mut q, &mut vec![mk(7, 0)], Time::ZERO, &[1]);
/// p.enqueue_ready(&mut q, &mut vec![mk(3, 1)], Time::ZERO, &[1]);
/// // Arrival order (seq) wins, not node id or deadline.
/// assert_eq!(p.pop(&mut q, AccTypeId(0), Time::ZERO).unwrap().key.node, 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Fcfs(());

impl Fcfs {
    /// Creates the policy.
    pub fn new() -> Self {
        Fcfs(())
    }
}

impl Policy for Fcfs {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Fcfs
    }

    fn deadline_scheme(&self) -> DeadlineScheme {
        DeadlineScheme::Dag
    }

    fn enqueue_ready(
        &mut self,
        queues: &mut ReadyQueues,
        batch: &mut Vec<TaskEntry>,
        _now: Time,
        _idle: &[usize],
    ) {
        // Arrival order is entirely the `seq` tiebreak: a constant key
        // keeps every entry in one tie class.
        insert_batch(queues, batch, |_| 0);
    }

    fn pop(&mut self, queues: &mut ReadyQueues, acc: AccTypeId, _now: Time) -> Option<TaskEntry> {
        queues.pop_front(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKey;
    use relief_sim::Dur;

    fn mk(node: u32, seq: u64) -> TaskEntry {
        TaskEntry::new(TaskKey::new(0, node), AccTypeId(0), Dur::from_us(1), Time::from_us(5))
            .with_seq(seq)
    }

    #[test]
    fn pops_in_arrival_order_across_batches() {
        let mut p = Fcfs::new();
        let mut q = ReadyQueues::new(1);
        p.enqueue_ready(&mut q, &mut vec![mk(2, 20), mk(0, 0)], Time::ZERO, &[1]);
        p.enqueue_ready(&mut q, &mut vec![mk(1, 10)], Time::ZERO, &[1]);
        let order: Vec<u32> =
            std::iter::from_fn(|| p.pop(&mut q, AccTypeId(0), Time::ZERO).map(|t| t.key.node))
                .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn empty_pop_is_none() {
        let mut p = Fcfs::new();
        let mut q = ReadyQueues::new(1);
        assert!(p.pop(&mut q, AccTypeId(0), Time::ZERO).is_none());
    }
}
