//! HetSched: laxity-driven scheduling with SDR deadlines.

use crate::policy::{insert_batch, DeadlineScheme, Policy, PolicyKind};
use crate::queue::ReadyQueues;
use crate::task::TaskEntry;
use relief_dag::AccTypeId;
use relief_sim::Time;

/// HetSched (Amarnath et al.): least-laxity-first where each task's
/// deadline is `SDR × deadline_DAG` (Eq. 2). The sub-deadline ratio
/// distributes the DAG's laxity across nodes in proportion to their
/// cumulative share of their path's execution time, in contrast to LL which
/// leaves the whole DAG laxity with every node (§VII).
///
/// The SDR computation itself lives in
/// [`relief_dag::analysis::DagTiming::sub_deadline_ratio`]; the runtime
/// resolves deadlines before building [`TaskEntry`]s, so this policy is the
/// same queue mechanics as LL with a different deadline scheme.
#[derive(Debug, Clone, Default)]
pub struct HetSched(());

impl HetSched {
    /// Creates the policy.
    pub fn new() -> Self {
        HetSched(())
    }
}

impl Policy for HetSched {
    fn kind(&self) -> PolicyKind {
        PolicyKind::HetSched
    }

    fn deadline_scheme(&self) -> DeadlineScheme {
        DeadlineScheme::HetSchedSdr
    }

    fn enqueue_ready(
        &mut self,
        queues: &mut ReadyQueues,
        batch: &mut Vec<TaskEntry>,
        _now: Time,
        _idle: &[usize],
    ) {
        insert_batch(queues, batch, |t| t.laxity);
    }

    fn pop(&mut self, queues: &mut ReadyQueues, acc: AccTypeId, _now: Time) -> Option<TaskEntry> {
        queues.pop_front(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKey;
    use relief_sim::Dur;

    #[test]
    fn orders_by_laxity() {
        let mut p = HetSched::new();
        let mut q = ReadyQueues::new(1);
        let mk = |node, runtime_us, deadline_us| {
            TaskEntry::new(
                TaskKey::new(0, node),
                AccTypeId(0),
                Dur::from_us(runtime_us),
                Time::from_us(deadline_us),
            )
            .with_seq(node as u64)
        };
        p.enqueue_ready(&mut q, &mut vec![mk(0, 5, 50), mk(1, 5, 20), mk(2, 15, 25)], Time::ZERO, &[1]);
        // Laxities: 45, 15, 10 -> pop order 2, 1, 0.
        let order: Vec<u32> =
            std::iter::from_fn(|| p.pop(&mut q, AccTypeId(0), Time::ZERO).map(|t| t.key.node))
                .collect();
        assert_eq!(order, vec![2, 1, 0]);
    }
}
