//! Global Earliest Deadline First variants.

use crate::policy::{insert_batch, DeadlineScheme, Policy, PolicyKind};
use crate::queue::ReadyQueues;
use crate::task::TaskEntry;
use relief_dag::AccTypeId;
use relief_sim::Time;

/// GEDF-DAG: EDF ordering where every task uses the deadline of the DAG it
/// belongs to (as in VIP, §II-C.2a). Tasks of the same DAG tie and fall
/// back to arrival order, which is why GEDF-D degenerates to FCFS when all
/// DAGs share a deadline (§V-D).
#[derive(Debug, Clone, Default)]
pub struct GedfD(());

/// GEDF-Node: EDF ordering on critical-path node deadlines (§II-C.2b), the
/// most-studied variant in the real-time literature.
#[derive(Debug, Clone, Default)]
pub struct GedfN(());

impl GedfD {
    /// Creates the policy.
    pub fn new() -> Self {
        GedfD(())
    }
}

impl GedfN {
    /// Creates the policy.
    pub fn new() -> Self {
        GedfN(())
    }
}

fn enqueue_edf(queues: &mut ReadyQueues, batch: &mut Vec<TaskEntry>) {
    // Deadline, then arrival order among equals (the queue's `seq` tiebreak).
    insert_batch(queues, batch, |t| t.deadline.as_ps() as i128);
}

impl Policy for GedfD {
    fn kind(&self) -> PolicyKind {
        PolicyKind::GedfD
    }

    fn deadline_scheme(&self) -> DeadlineScheme {
        DeadlineScheme::Dag
    }

    fn enqueue_ready(
        &mut self,
        queues: &mut ReadyQueues,
        batch: &mut Vec<TaskEntry>,
        _now: Time,
        _idle: &[usize],
    ) {
        enqueue_edf(queues, batch);
    }

    fn pop(&mut self, queues: &mut ReadyQueues, acc: AccTypeId, _now: Time) -> Option<TaskEntry> {
        queues.pop_front(acc)
    }
}

impl Policy for GedfN {
    fn kind(&self) -> PolicyKind {
        PolicyKind::GedfN
    }

    fn deadline_scheme(&self) -> DeadlineScheme {
        DeadlineScheme::NodeCriticalPath
    }

    fn enqueue_ready(
        &mut self,
        queues: &mut ReadyQueues,
        batch: &mut Vec<TaskEntry>,
        _now: Time,
        _idle: &[usize],
    ) {
        enqueue_edf(queues, batch);
    }

    fn pop(&mut self, queues: &mut ReadyQueues, acc: AccTypeId, _now: Time) -> Option<TaskEntry> {
        queues.pop_front(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKey;
    use relief_sim::Dur;

    fn mk(node: u32, deadline_us: u64, seq: u64) -> TaskEntry {
        TaskEntry::new(
            TaskKey::new(0, node),
            AccTypeId(0),
            Dur::from_us(1),
            Time::from_us(deadline_us),
        )
        .with_seq(seq)
    }

    #[test]
    fn orders_by_deadline() {
        let mut p = GedfN::new();
        let mut q = ReadyQueues::new(1);
        p.enqueue_ready(&mut q, &mut vec![mk(0, 30, 0), mk(1, 10, 1)], Time::ZERO, &[1]);
        p.enqueue_ready(&mut q, &mut vec![mk(2, 20, 2)], Time::ZERO, &[1]);
        let order: Vec<u32> =
            std::iter::from_fn(|| p.pop(&mut q, AccTypeId(0), Time::ZERO).map(|t| t.key.node))
                .collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn equal_deadlines_fall_back_to_arrival_order() {
        let mut p = GedfD::new();
        let mut q = ReadyQueues::new(1);
        p.enqueue_ready(&mut q, &mut vec![mk(5, 50, 2)], Time::ZERO, &[1]);
        p.enqueue_ready(&mut q, &mut vec![mk(3, 50, 0)], Time::ZERO, &[1]);
        p.enqueue_ready(&mut q, &mut vec![mk(4, 50, 1)], Time::ZERO, &[1]);
        let order: Vec<u32> =
            std::iter::from_fn(|| p.pop(&mut q, AccTypeId(0), Time::ZERO).map(|t| t.key.node))
                .collect();
        assert_eq!(order, vec![3, 4, 5]);
    }
}
