//! DAS-style adaptive scheduling: a per-epoch switch between FCFS and
//! RELIEF.
//!
//! Goksoy et al. (DAS, arXiv:2109.11069) observe that a cheap policy is
//! good enough while an SoC is lightly loaded and that a sophisticated
//! one only pays for itself under pressure, so a low-overhead runtime
//! switch between the two captures most of the sophisticated policy's
//! benefit at a fraction of its scheduling cost. [`Adaptive`] transplants
//! that idea onto this codebase's pair of extremes: FCFS (cheapest
//! insert, no escalation) and RELIEF (laxity-sorted insert plus
//! forwarding escalation).
//!
//! The switch is evaluated at most once per *scheduling epoch*
//! ([`AdaptiveParams::epoch`]): the first scheduler invocation inside a
//! new epoch samples two signals over the ready queues —
//!
//! * **queue depth**: total queued tasks across all accelerator types,
//! * **laxity slack**: the minimum current laxity (Eq. 1) of any queued
//!   task,
//!
//! and applies hysteresis with two thresholds per signal: pressure
//! (depth ≥ `depth_hi` or slack ≤ `slack_lo`) engages RELIEF, relief
//! (depth ≤ `depth_lo` and slack ≥ `slack_hi`, or an empty queue) falls
//! back to FCFS, and anything in between holds the current mode so a
//! square-wave load cannot thrash the scheduler. On a switch the queues
//! are re-keyed in place (FIFO order for FCFS, laxity order for RELIEF);
//! escalated-prefix state is dropped, since escalation windows do not
//! survive a policy change.

use crate::policy::{DeadlineScheme, Fcfs, Policy, PolicyKind, Relief};
use crate::queue::ReadyQueues;
use crate::task::TaskEntry;
use relief_dag::AccTypeId;
use relief_sim::{Dur, Time};
use relief_trace::Tracer;

/// Which of the two inner policies is currently active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Low-pressure mode: FIFO order, cheapest scheduling path.
    Fcfs,
    /// High-pressure mode: RELIEF's laxity order plus forwarding
    /// escalation.
    Relief,
}

/// Knobs for the adaptive switch. All thresholds operate on the signals
/// sampled at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveParams {
    /// Scheduling-epoch length; the switch is evaluated at most once per
    /// epoch, on the first scheduler invocation inside it.
    pub epoch: Dur,
    /// Engage RELIEF when total queue depth reaches this many tasks.
    pub depth_hi: usize,
    /// Allow falling back to FCFS only when depth is at most this.
    pub depth_lo: usize,
    /// Engage RELIEF when the minimum current laxity (ps) drops to this.
    pub slack_lo: i128,
    /// Allow falling back to FCFS only when the minimum current laxity
    /// (ps) has recovered to at least this.
    pub slack_hi: i128,
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        AdaptiveParams {
            epoch: Dur::from_us(50),
            depth_hi: 6,
            depth_lo: 2,
            slack_lo: 0,
            slack_hi: Dur::from_us(50).as_ps() as i128,
        }
    }
}

/// The DAS-style adaptive policy (see the module docs).
#[derive(Debug)]
pub struct Adaptive {
    params: AdaptiveParams,
    mode: SchedMode,
    /// Index of the last epoch in which the switch was evaluated. Starts
    /// at 0, so the starting mode always survives the first epoch — and
    /// an epoch longer than the whole run never re-evaluates at all.
    epoch_idx: u64,
    switches: u64,
    fcfs: Fcfs,
    relief: Relief,
}

impl Default for Adaptive {
    fn default() -> Self {
        Adaptive::new()
    }
}

impl Adaptive {
    /// Creates the adaptive policy with default parameters, starting in
    /// FCFS mode (the cheap policy, as DAS does).
    pub fn new() -> Self {
        Adaptive::with_params(AdaptiveParams::default())
    }

    /// Creates the adaptive policy with explicit parameters, starting in
    /// FCFS mode.
    pub fn with_params(params: AdaptiveParams) -> Self {
        Adaptive {
            params,
            mode: SchedMode::Fcfs,
            epoch_idx: 0,
            switches: 0,
            fcfs: Fcfs::new(),
            relief: Relief::new(),
        }
    }

    /// Sets the starting mode (the mode held until the first epoch
    /// boundary decides otherwise).
    pub fn starting_in(mut self, mode: SchedMode) -> Self {
        self.mode = mode;
        self
    }

    /// The currently active mode.
    pub fn mode(&self) -> SchedMode {
        self.mode
    }

    /// Number of mode switches performed so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// The configured parameters.
    pub fn params(&self) -> AdaptiveParams {
        self.params
    }

    /// Evaluates the switch if `now` has entered a new epoch.
    fn maybe_switch(&mut self, queues: &mut ReadyQueues, now: Time) {
        let epoch_ps = self.params.epoch.as_ps().max(1);
        let idx = now.as_ps() / epoch_ps;
        if idx <= self.epoch_idx {
            return;
        }
        self.epoch_idx = idx;
        let depth = queues.len();
        let min_slack = min_current_laxity(queues, now);
        let target = match self.mode {
            SchedMode::Fcfs => {
                let pressure = depth >= self.params.depth_hi
                    || min_slack.is_some_and(|s| s <= self.params.slack_lo);
                if pressure {
                    SchedMode::Relief
                } else {
                    SchedMode::Fcfs
                }
            }
            SchedMode::Relief => {
                let relaxed = depth <= self.params.depth_lo
                    && min_slack.is_none_or(|s| s >= self.params.slack_hi);
                if relaxed {
                    SchedMode::Fcfs
                } else {
                    SchedMode::Relief
                }
            }
        };
        if target != self.mode {
            self.mode = target;
            self.switches += 1;
            resort(queues, target);
        }
    }
}

/// Minimum current laxity (Eq. 1) over every queued task, or `None` when
/// nothing is queued.
fn min_current_laxity(queues: &ReadyQueues, now: Time) -> Option<i128> {
    let mut min = None;
    for t in 0..queues.num_types() {
        for e in queues.queue(AccTypeId(t as u32)) {
            let l = e.curr_laxity(now);
            min = Some(match min {
                None => l,
                Some(m) if l < m => l,
                Some(m) => m,
            });
        }
    }
    min
}

/// Re-keys every queue for the new mode: drains each queue and reinserts
/// its entries under the target policy's sort key (FIFO = constant key
/// with the `seq` tiebreak, RELIEF = stored laxity). Escalated (`is_fwd`)
/// markers are dropped — an escalation window granted under the old mode
/// is not honored across a switch.
fn resort(queues: &mut ReadyQueues, target: SchedMode) {
    let mut drained: Vec<TaskEntry> = Vec::with_capacity(queues.len());
    for t in 0..queues.num_types() {
        let acc = AccTypeId(t as u32);
        while let Some(e) = queues.pop_front(acc) {
            drained.push(e);
        }
    }
    for e in drained {
        match target {
            SchedMode::Fcfs => queues.insert_sorted(e, |_| 0),
            SchedMode::Relief => queues.insert_sorted(e, |t| t.laxity),
        }
    }
}

impl Policy for Adaptive {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Adaptive
    }

    /// Both modes see critical-path node deadlines. RELIEF needs them for
    /// its laxity math; FCFS ignores deadlines entirely (its order key is
    /// the arrival sequence), so sharing the scheme changes nothing about
    /// FCFS-mode ordering while keeping every queued entry's laxity
    /// meaningful for the pressure signal.
    fn deadline_scheme(&self) -> DeadlineScheme {
        DeadlineScheme::NodeCriticalPath
    }

    fn enqueue_ready(
        &mut self,
        queues: &mut ReadyQueues,
        batch: &mut Vec<TaskEntry>,
        now: Time,
        idle: &[usize],
    ) {
        self.maybe_switch(queues, now);
        match self.mode {
            SchedMode::Fcfs => self.fcfs.enqueue_ready(queues, batch, now, idle),
            SchedMode::Relief => self.relief.enqueue_ready(queues, batch, now, idle),
        }
    }

    fn pop(&mut self, queues: &mut ReadyQueues, acc: AccTypeId, now: Time) -> Option<TaskEntry> {
        self.maybe_switch(queues, now);
        match self.mode {
            SchedMode::Fcfs => self.fcfs.pop(queues, acc, now),
            SchedMode::Relief => self.relief.pop(queues, acc, now),
        }
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.relief.set_tracer(tracer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKey;

    fn mk(node: u32, runtime_us: u64, deadline_us: u64, seq: u64) -> TaskEntry {
        TaskEntry::new(
            TaskKey::new(0, node),
            AccTypeId(0),
            Dur::from_us(runtime_us),
            Time::from_us(deadline_us),
        )
        .with_seq(seq)
    }

    fn params() -> AdaptiveParams {
        AdaptiveParams {
            epoch: Dur::from_us(10),
            depth_hi: 4,
            depth_lo: 1,
            slack_lo: 0,
            slack_hi: Dur::from_us(20).as_ps() as i128,
        }
    }

    /// Fills the queue to `depth` with generously slack tasks.
    fn fill(p: &mut Adaptive, q: &mut ReadyQueues, depth: usize, t: Time) {
        let mut batch: Vec<TaskEntry> =
            (0..depth as u32).map(|i| mk(i, 1, 100_000, i as u64)).collect();
        p.enqueue_ready(q, &mut batch, t, &[0]);
    }

    #[test]
    fn starts_in_fcfs_and_orders_by_arrival() {
        let mut p = Adaptive::with_params(params());
        assert_eq!(p.mode(), SchedMode::Fcfs);
        assert_eq!(p.kind(), PolicyKind::Adaptive);
        let mut q = ReadyQueues::new(1);
        // Later deadline first: FCFS must keep arrival order anyway.
        let mut batch = vec![mk(0, 1, 900, 0), mk(1, 1, 100, 1)];
        p.enqueue_ready(&mut q, &mut batch, Time::ZERO, &[1]);
        assert_eq!(p.pop(&mut q, AccTypeId(0), Time::ZERO).unwrap().key.node, 0);
    }

    #[test]
    fn deep_queue_engages_relief_at_epoch_boundary() {
        let mut p = Adaptive::with_params(params());
        let mut q = ReadyQueues::new(1);
        fill(&mut p, &mut q, 5, Time::from_us(1));
        assert_eq!(p.mode(), SchedMode::Fcfs, "no evaluation inside the first epoch");
        // First invocation inside epoch 1 samples depth 5 >= depth_hi 4.
        p.enqueue_ready(&mut q, &mut Vec::new(), Time::from_us(11), &[1]);
        assert_eq!(p.mode(), SchedMode::Relief);
        assert_eq!(p.switches(), 1);
    }

    #[test]
    fn switch_resorts_queue_for_new_mode() {
        let mut p = Adaptive::with_params(params());
        let mut q = ReadyQueues::new(1);
        // Arrival order 0,1,2,3,4 but descending slack for later nodes.
        let mut batch: Vec<TaskEntry> =
            (0..5).map(|i| mk(i, 1, 1_000 - 100 * i as u64, i as u64)).collect();
        p.enqueue_ready(&mut q, &mut batch, Time::ZERO, &[0]);
        let fifo: Vec<u32> = q.queue(AccTypeId(0)).iter().map(|t| t.key.node).collect();
        assert_eq!(fifo, vec![0, 1, 2, 3, 4]);
        p.pop(&mut q, AccTypeId(0), Time::from_us(11)); // epoch 1: switch
        assert_eq!(p.mode(), SchedMode::Relief);
        // Remaining entries are now in ascending-laxity order.
        let lax: Vec<i128> = q.queue(AccTypeId(0)).iter().map(|t| t.laxity).collect();
        let mut sorted = lax.clone();
        sorted.sort_unstable();
        assert_eq!(lax, sorted);
    }

    #[test]
    fn hysteresis_holds_mode_between_thresholds() {
        let mut p = Adaptive::with_params(params());
        let mut q = ReadyQueues::new(1);
        fill(&mut p, &mut q, 5, Time::from_us(1));
        p.enqueue_ready(&mut q, &mut Vec::new(), Time::from_us(11), &[1]);
        assert_eq!(p.mode(), SchedMode::Relief);
        // Square-wave between the thresholds: depth oscillates 2..=3,
        // inside (depth_lo, depth_hi) — the mode must hold for epochs on
        // end, not track the wave.
        for epoch in 2..30u64 {
            let now = Time::from_us(10 * epoch + 1);
            if q.len() > 2 {
                while q.len() > 2 {
                    q.pop_front(AccTypeId(0));
                }
            } else {
                let mut batch = vec![mk(100 + epoch as u32, 1, 100_000, 100 + epoch)];
                p.enqueue_ready(&mut q, &mut batch, now, &[0]);
            }
            p.enqueue_ready(&mut q, &mut Vec::new(), now, &[0]);
        }
        assert_eq!(p.mode(), SchedMode::Relief);
        assert_eq!(p.switches(), 1, "square wave inside the band must not thrash");
    }

    #[test]
    fn drained_queue_relaxes_back_to_fcfs() {
        let mut p = Adaptive::with_params(params());
        let mut q = ReadyQueues::new(1);
        fill(&mut p, &mut q, 5, Time::from_us(1));
        p.enqueue_ready(&mut q, &mut Vec::new(), Time::from_us(11), &[1]);
        assert_eq!(p.mode(), SchedMode::Relief);
        while q.pop_front(AccTypeId(0)).is_some() {}
        p.enqueue_ready(&mut q, &mut Vec::new(), Time::from_us(21), &[1]);
        assert_eq!(p.mode(), SchedMode::Fcfs);
        assert_eq!(p.switches(), 2);
    }

    #[test]
    fn negative_slack_engages_relief_even_when_shallow() {
        let mut p = Adaptive::with_params(params());
        let mut q = ReadyQueues::new(1);
        // One task, already past its deadline at epoch evaluation time.
        let mut batch = vec![mk(0, 10, 5, 0)];
        p.enqueue_ready(&mut q, &mut batch, Time::ZERO, &[0]);
        p.enqueue_ready(&mut q, &mut Vec::new(), Time::from_us(11), &[0]);
        assert_eq!(p.mode(), SchedMode::Relief);
    }

    #[test]
    fn epoch_longer_than_horizon_never_switches() {
        let mut p = Adaptive::with_params(AdaptiveParams {
            epoch: Dur::from_ms(100),
            ..params()
        });
        let mut q = ReadyQueues::new(1);
        for step in 0..50u64 {
            fill(&mut p, &mut q, 6, Time::from_us(step * 20));
            while q.pop_front(AccTypeId(0)).is_some() {}
        }
        assert_eq!(p.mode(), SchedMode::Fcfs);
        assert_eq!(p.switches(), 0);
    }

    #[test]
    fn starting_mode_is_configurable() {
        let p = Adaptive::with_params(params()).starting_in(SchedMode::Relief);
        assert_eq!(p.mode(), SchedMode::Relief);
        assert_eq!(p.deadline_scheme(), DeadlineScheme::NodeCriticalPath);
    }
}
