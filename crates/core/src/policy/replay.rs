//! Schedule recording and replay.
//!
//! A [`Schedule`] is a concrete launch plan: the global sequence of
//! `(task, accelerator instance)` dispatch decisions of one run.
//! [`ScheduleRecorder`] captures one from a live simulation's trace
//! stream, and [`ScheduleReplay`] is a [`Policy`] that feeds a schedule
//! back through the simulator, releasing each task only to its prescribed
//! instance and only in the prescribed per-type order.
//!
//! Replay is the verification keystone of the oracle bound (`relief-oracle`):
//! the search *predicts* a makespan for the schedule it emits, and replay
//! through the full simulator must reproduce that prediction bit-exactly.
//! It is also pinned directly against the online policies: replaying the
//! recorded schedule of a RELIEF run reproduces that run's `RunStats`
//! bit-exactly, because the prescribed per-type orders and instance pins
//! regenerate the recorded event sequence (and therefore the same RNG
//! draw order) without consulting laxity at all.
//!
//! Replay is *strict*: once a type's prescription is exhausted, or while
//! the next prescribed task is not yet ready or its pinned instance is
//! busy, the policy releases nothing. It is only meaningful for
//! deterministic, fault-free, closed-population runs — the configurations
//! the oracle accepts.

use crate::policy::{DeadlineScheme, Policy, PolicyKind};
use crate::queue::ReadyQueues;
use crate::task::{TaskEntry, TaskKey};
use relief_dag::AccTypeId;
use relief_sim::Time;
use relief_trace::{EventKind, TraceEvent, TraceSink};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// One dispatch decision: launch `task` on global accelerator instance
/// `inst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduledLaunch {
    /// The task being launched.
    pub task: TaskKey,
    /// Global accelerator instance index (the simulator's instance
    /// numbering: type-major, in `acc_instances` order).
    pub inst: u32,
}

/// A complete (or prefix) launch plan, in global dispatch order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    /// The launches, ordered by dispatch time (ties in simulator
    /// processing order).
    pub launches: Vec<ScheduledLaunch>,
    /// When recorded from a trace, the producers whose output was written
    /// back to DRAM *eagerly* at compute completion (the §III-C.2
    /// write-back decision came out "not all children next in line").
    /// Sorted and deduplicated. `None` for schedules built without a
    /// trace (e.g. oracle search prefixes): replay then re-derives the
    /// decision from queue state instead of prescribing it.
    ///
    /// This is part of the plan, not a statistic: the decision depends on
    /// escalation state of the originating policy, which replay does not
    /// reproduce, so bit-exact replay must prescribe it.
    pub eager_writebacks: Option<Vec<TaskKey>>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Extracts the launch plan from a recorded trace: every
    /// `TaskDispatched` event in emission order, plus the eager
    /// (`lazy == false`) `WritebackIssued` producers.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let launches = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::TaskDispatched { task, inst } => Some(ScheduledLaunch {
                    task: TaskKey::new(task.instance, task.node),
                    inst,
                }),
                _ => None,
            })
            .collect();
        let mut eager: Vec<TaskKey> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::WritebackIssued { task, lazy: false, .. } => {
                    Some(TaskKey::new(task.instance, task.node))
                }
                _ => None,
            })
            .collect();
        eager.sort_unstable();
        eager.dedup();
        Schedule { launches, eager_writebacks: Some(eager) }
    }

    /// Number of launches in the plan.
    pub fn len(&self) -> usize {
        self.launches.len()
    }

    /// True when the plan prescribes nothing.
    pub fn is_empty(&self) -> bool {
        self.launches.is_empty()
    }

    /// The plan extended by one launch (used by the oracle search to grow
    /// prefixes). The extension is no longer the recorded run, so any
    /// prescribed write-back decisions are dropped.
    #[must_use]
    pub fn extended(&self, launch: ScheduledLaunch) -> Self {
        let mut launches = Vec::with_capacity(self.launches.len() + 1);
        launches.extend_from_slice(&self.launches);
        launches.push(launch);
        Schedule { launches, eager_writebacks: None }
    }
}

/// A [`TraceSink`] that records the launch plan of a live run: the
/// dispatch sequence plus the eager write-back decisions.
#[derive(Debug, Default)]
pub struct ScheduleRecorder {
    launches: Vec<ScheduledLaunch>,
    eager_writebacks: Vec<TaskKey>,
}

impl ScheduleRecorder {
    /// Creates a shared handle suitable for `Tracer::attach`.
    #[must_use]
    pub fn shared() -> Rc<RefCell<ScheduleRecorder>> {
        Rc::new(RefCell::new(ScheduleRecorder::default()))
    }

    /// The schedule recorded so far.
    #[must_use]
    pub fn schedule(&self) -> Schedule {
        let mut eager = self.eager_writebacks.clone();
        eager.sort_unstable();
        eager.dedup();
        Schedule { launches: self.launches.clone(), eager_writebacks: Some(eager) }
    }

    /// Number of dispatches recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.launches.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.launches.is_empty()
    }
}

impl TraceSink for ScheduleRecorder {
    fn emit(&mut self, ev: TraceEvent) {
        match ev.kind {
            EventKind::TaskDispatched { task, inst } => {
                self.launches.push(ScheduledLaunch {
                    task: TaskKey::new(task.instance, task.node),
                    inst,
                });
            }
            EventKind::WritebackIssued { task, lazy: false, .. } => {
                self.eager_writebacks.push(TaskKey::new(task.instance, task.node));
            }
            _ => {}
        }
    }
}

/// The schedule-replay policy (see the module docs).
#[derive(Debug)]
pub struct ScheduleReplay {
    /// Remaining prescription per accelerator type, in dispatch order.
    prescribed: Vec<VecDeque<ScheduledLaunch>>,
    /// Prescribed eager write-backs (sorted), when the schedule recorded
    /// them. `None` leaves the simulator's queue-state-based write-back
    /// decision in force.
    eager_writebacks: Option<Vec<TaskKey>>,
    /// Which [`PolicyKind`] this replay stands in for. Determines the
    /// deadline scheme (so task entries carry the same deadlines as the
    /// impersonated run) and the `kind()` label. Placement and ordering
    /// always come from the schedule, never from the impersonated policy.
    impersonates: PolicyKind,
}

impl ScheduleReplay {
    /// Builds a replay of `schedule` for a platform whose accelerator
    /// type `t` has `acc_instances[t]` instances (global instance indices
    /// are type-major in that order, matching the simulator's numbering).
    /// By default the replay impersonates FCFS.
    ///
    /// Launches whose instance index falls outside the platform are
    /// dropped; replaying a schedule on the wrong platform stalls rather
    /// than panics.
    pub fn new(schedule: &Schedule, acc_instances: &[usize]) -> Self {
        let mut first_inst = Vec::with_capacity(acc_instances.len());
        let mut total = 0usize;
        for &n in acc_instances {
            first_inst.push(total);
            total += n;
        }
        let type_of = |inst: u32| -> Option<usize> {
            let inst = inst as usize;
            if inst >= total {
                return None;
            }
            Some(first_inst.partition_point(|&f| f <= inst) - 1)
        };
        let mut prescribed = vec![VecDeque::new(); acc_instances.len()];
        for &launch in &schedule.launches {
            if let Some(t) = type_of(launch.inst) {
                prescribed[t].push_back(launch);
            }
        }
        ScheduleReplay {
            prescribed,
            eager_writebacks: schedule.eager_writebacks.clone(),
            impersonates: PolicyKind::Fcfs,
        }
    }

    /// Sets the policy this replay impersonates (deadline scheme +
    /// `kind()` label).
    #[must_use]
    pub fn impersonating(mut self, kind: PolicyKind) -> Self {
        self.impersonates = kind;
        self
    }

    /// Launches still prescribed (across all types). Zero after a
    /// complete replay; nonzero means the replay stalled (or the schedule
    /// was a prefix).
    pub fn remaining(&self) -> usize {
        self.prescribed.iter().map(VecDeque::len).sum()
    }
}

impl Policy for ScheduleReplay {
    fn kind(&self) -> PolicyKind {
        self.impersonates
    }

    fn deadline_scheme(&self) -> DeadlineScheme {
        // Forward the impersonated policy's scheme so replayed entries
        // carry identical deadlines (and thus identical deadline metrics).
        self.impersonates.build().deadline_scheme()
    }

    fn enqueue_ready(
        &mut self,
        queues: &mut ReadyQueues,
        batch: &mut Vec<TaskEntry>,
        _now: Time,
        _idle: &[usize],
    ) {
        // FIFO insertion; order within the queue is irrelevant because
        // pop_placed selects by key, but insert_sorted keeps the queue-op
        // accounting on the same code path as every other policy.
        for entry in batch.drain(..) {
            queues.insert_sorted(entry, |_| 0);
        }
    }

    fn pop(&mut self, queues: &mut ReadyQueues, acc: AccTypeId, now: Time) -> Option<TaskEntry> {
        // Placement-blind callers (none in the simulator's launch path)
        // get the prescribed order without the instance pin.
        self.pop_placed(queues, acc, now, &|_| true).map(|(e, _)| e)
    }

    fn pop_placed(
        &mut self,
        queues: &mut ReadyQueues,
        acc: AccTypeId,
        _now: Time,
        is_idle: &dyn Fn(usize) -> bool,
    ) -> Option<(TaskEntry, Option<usize>)> {
        let next = *self.prescribed.get(acc.0 as usize)?.front()?;
        if !is_idle(next.inst as usize) {
            return None;
        }
        let pos = queues.queue(acc).iter().position(|t| t.key == next.task)?;
        let entry = queues.remove_at(acc, pos);
        self.prescribed[acc.0 as usize].pop_front();
        Some((entry, Some(next.inst as usize)))
    }

    fn writeback_elision(&self, producer: TaskKey) -> Option<bool> {
        self.eager_writebacks
            .as_ref()
            .map(|eager| eager.binary_search(&producer).is_err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relief_sim::Dur;

    fn launch(instance: u32, node: u32, inst: u32) -> ScheduledLaunch {
        ScheduledLaunch { task: TaskKey::new(instance, node), inst }
    }

    fn entry(node: u32, acc: u32) -> TaskEntry {
        TaskEntry::new(TaskKey::new(0, node), AccTypeId(acc), Dur::from_us(1), Time::from_us(100))
            .with_seq(node as u64)
    }

    #[test]
    fn from_events_keeps_only_dispatches_in_order() {
        use relief_trace::TaskRef;
        let events = vec![
            TraceEvent {
                at_ps: 0,
                kind: EventKind::TaskReady { task: TaskRef { instance: 0, node: 0 }, acc: 0 },
            },
            TraceEvent {
                at_ps: 1,
                kind: EventKind::TaskDispatched { task: TaskRef { instance: 0, node: 0 }, inst: 2 },
            },
            TraceEvent {
                at_ps: 2,
                kind: EventKind::TaskDispatched { task: TaskRef { instance: 1, node: 3 }, inst: 0 },
            },
        ];
        let s = Schedule::from_events(&events);
        assert_eq!(s.launches, vec![launch(0, 0, 2), launch(1, 3, 0)]);
    }

    #[test]
    fn recorder_is_a_sink() {
        use relief_trace::{TaskRef, Tracer};
        let rec = ScheduleRecorder::shared();
        let tracer = Tracer::to_sink(rec.clone());
        tracer.emit(5, || EventKind::TaskDispatched {
            task: TaskRef { instance: 0, node: 1 },
            inst: 3,
        });
        tracer.emit(6, || EventKind::EventDispatched { index: 0 });
        assert_eq!(rec.borrow().schedule().launches, vec![launch(0, 1, 3)]);
    }

    #[test]
    fn replay_releases_only_prescribed_head_on_idle_inst() {
        // Platform: type 0 has insts {0,1}, type 1 has inst {2}.
        let schedule = Schedule {
            launches: vec![launch(0, 1, 1), launch(0, 0, 0), launch(0, 2, 2)],
            ..Schedule::new()
        };
        let mut p = ScheduleReplay::new(&schedule, &[2, 1]);
        let mut q = ReadyQueues::new(2);
        let mut batch = vec![entry(0, 0), entry(1, 0)];
        p.enqueue_ready(&mut q, &mut batch, Time::ZERO, &[2, 1]);

        // Prescribed head for type 0 is node 1 on inst 1. While inst 1 is
        // busy, nothing launches even though inst 0 idles.
        assert!(p.pop_placed(&mut q, AccTypeId(0), Time::ZERO, &|i| i == 0).is_none());
        let (e, pin) = p.pop_placed(&mut q, AccTypeId(0), Time::ZERO, &|_| true).unwrap();
        assert_eq!((e.key.node, pin), (1, Some(1)));
        let (e, pin) = p.pop_placed(&mut q, AccTypeId(0), Time::ZERO, &|_| true).unwrap();
        assert_eq!((e.key.node, pin), (0, Some(0)));
        // Type 0 prescription exhausted: strict replay releases nothing.
        let mut batch = vec![entry(5, 0)];
        p.enqueue_ready(&mut q, &mut batch, Time::ZERO, &[2, 1]);
        assert!(p.pop_placed(&mut q, AccTypeId(0), Time::ZERO, &|_| true).is_none());
        assert_eq!(p.remaining(), 1);
    }

    #[test]
    fn replay_waits_for_prescribed_task_to_become_ready() {
        let schedule =
            Schedule { launches: vec![launch(0, 7, 0), launch(0, 1, 0)], ..Schedule::new() };
        let mut p = ScheduleReplay::new(&schedule, &[1]);
        let mut q = ReadyQueues::new(1);
        let mut batch = vec![entry(1, 0)];
        p.enqueue_ready(&mut q, &mut batch, Time::ZERO, &[1]);
        // Node 7 is prescribed first but not ready yet: hold node 1 back.
        assert!(p.pop_placed(&mut q, AccTypeId(0), Time::ZERO, &|_| true).is_none());
        let mut batch = vec![entry(7, 0)];
        p.enqueue_ready(&mut q, &mut batch, Time::ZERO, &[1]);
        let (e, pin) = p.pop_placed(&mut q, AccTypeId(0), Time::ZERO, &|_| true).unwrap();
        assert_eq!((e.key.node, pin), (7, Some(0)));
        let (e, _) = p.pop_placed(&mut q, AccTypeId(0), Time::ZERO, &|_| true).unwrap();
        assert_eq!(e.key.node, 1);
        assert_eq!(p.remaining(), 0);
    }

    #[test]
    fn out_of_range_instances_are_dropped() {
        let schedule = Schedule { launches: vec![launch(0, 0, 9)], ..Schedule::new() };
        let p = ScheduleReplay::new(&schedule, &[1]);
        assert_eq!(p.remaining(), 0);
    }

    #[test]
    fn impersonation_sets_kind_and_scheme() {
        let p = ScheduleReplay::new(&Schedule::new(), &[1])
            .impersonating(PolicyKind::Relief);
        assert_eq!(p.kind(), PolicyKind::Relief);
        assert_eq!(p.deadline_scheme(), DeadlineScheme::NodeCriticalPath);
        let q = ScheduleReplay::new(&Schedule::new(), &[1]);
        assert_eq!(q.kind(), PolicyKind::Fcfs);
        assert_eq!(q.deadline_scheme(), DeadlineScheme::Dag);
    }

    #[test]
    fn extended_grows_a_prefix() {
        let s = Schedule::new().extended(launch(0, 0, 0)).extended(launch(0, 1, 0));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.launches[1], launch(0, 1, 0));
    }
}
