//! RELIEF: data movement-aware accelerator scheduling.
//!
//! This crate is the paper's primary contribution: an online,
//! least-laxity-based scheduling framework for hardware accelerator
//! managers, with **forwarding-aware priority escalation** (RELIEF,
//! Algorithm 1) guarded by a laxity-driven **feasibility check**
//! (Algorithm 2), plus the five state-of-the-art baselines it is evaluated
//! against (§II-C):
//!
//! | Policy | Order key | Deadline scheme |
//! |---|---|---|
//! | [`policy::Fcfs`] | arrival | — |
//! | [`policy::GedfD`] | deadline | DAG deadline |
//! | [`policy::GedfN`] | deadline | critical-path node deadline |
//! | [`policy::Ll`] | laxity (Eq. 1) | critical-path node deadline |
//! | [`policy::Lax`] | laxity, negative laxity de-prioritized | critical-path node deadline |
//! | [`policy::HetSched`] | laxity | SDR × DAG deadline (Eq. 2) |
//! | [`policy::Relief`] | laxity + forwarding escalation | critical-path node deadline |
//! | RELIEF-LAX | RELIEF + LAX de-prioritization | critical-path node deadline |
//!
//! The framework is deliberately mechanism-agnostic: it never touches
//! scratchpads or DMA. It orders per-accelerator-type **ready queues**
//! ([`ReadyQueues`]) of [`TaskEntry`]s and leaves data movement to the
//! hardware-manager model (`relief-accel`), mirroring how the paper's
//! policy slots into an existing manager runtime.
//!
//! # Examples
//!
//! Run the RELIEF insertion path directly:
//!
//! ```
//! use relief_core::{PolicyKind, ReadyQueues, TaskEntry, TaskKey};
//! use relief_dag::AccTypeId;
//! use relief_sim::{Dur, Time};
//!
//! let mut policy = PolicyKind::Relief.build();
//! let mut queues = ReadyQueues::new(1);
//! // One idle accelerator of type 0 -> a forwarding candidate is escalated.
//! let task = TaskEntry::new(TaskKey::new(0, 0), AccTypeId(0), Dur::from_us(10), Time::from_us(100))
//!     .forwarding_candidate();
//! policy.enqueue_ready(&mut queues, &mut vec![task], Time::ZERO, &[1]);
//! let head = policy.pop(&mut queues, AccTypeId(0), Time::ZERO).expect("queued");
//! assert!(head.is_fwd);
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]


pub mod laxity;
pub mod policy;
pub mod predict;
pub mod queue;
pub mod task;

pub use policy::{
    Adaptive, AdaptiveParams, DeadlineScheme, Policy, PolicyKind, SchedMode, Schedule,
    ScheduleRecorder, ScheduleReplay, ScheduledLaunch,
};
pub use predict::{BandwidthPredictor, ComputeProfile, DataMovePredictor, MemTimePredictor};
pub use queue::ReadyQueues;
pub use task::{TaskEntry, TaskKey};
