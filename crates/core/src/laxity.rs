//! Laxity arithmetic (Eq. 1 of the paper).
//!
//! ```text
//! laxity = deadline − runtime − current_time
//! ```
//!
//! Laxity is signed: a task whose predicted runtime no longer fits before
//! its deadline has negative laxity. We therefore compute in `i128`
//! picoseconds, which comfortably holds any difference of `u64` picosecond
//! quantities.

use relief_sim::{Dur, Time};

/// The time-independent part of laxity: `deadline − runtime`, in signed
/// picoseconds. The paper stores exactly this in each node and subtracts
/// the current tick at queue-manipulation time (§III-A).
pub fn stored_laxity(deadline: Time, runtime: Dur) -> i128 {
    deadline.as_ps() as i128 - runtime.as_ps() as i128
}

/// Full Eq. 1 laxity at `now`.
pub fn laxity(deadline: Time, runtime: Dur, now: Time) -> i128 {
    stored_laxity(deadline, runtime) - now.as_ps() as i128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_and_negative() {
        let d = Time::from_us(100);
        assert_eq!(laxity(d, Dur::from_us(30), Time::from_us(20)), 50_000_000);
        assert_eq!(laxity(d, Dur::from_us(90), Time::from_us(20)), -10_000_000);
        assert_eq!(laxity(d, Dur::from_us(120), Time::ZERO), -20_000_000);
    }

    #[test]
    fn stored_plus_clock_equals_full() {
        let d = Time::from_us(7);
        let r = Dur::from_us(3);
        let now = Time::from_us(5);
        assert_eq!(stored_laxity(d, r) - now.as_ps() as i128, laxity(d, r, now));
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let l = laxity(Time::MAX, Dur::ZERO, Time::ZERO);
        assert_eq!(l, u64::MAX as i128);
        let l2 = laxity(Time::ZERO, Dur::from_ps(u64::MAX), Time::from_ps(u64::MAX));
        assert_eq!(l2, -2 * (u64::MAX as i128));
    }
}
