//! Per-accelerator-type ready queues.
//!
//! The hardware manager keeps one sorted ready queue per accelerator type
//! (§II-B); policies differ only in the sort key and in how (RELIEF) or
//! whether (the baselines) they escalate forwarding nodes. Escalated
//! entries sit at the *front* of a queue, marked `is_fwd`; the remainder of
//! the queue is kept sorted by the active policy's key.

use crate::task::{TaskEntry, TaskKey};
use relief_dag::AccTypeId;
use std::collections::VecDeque;

/// Ready queues indexed by accelerator type.
#[derive(Debug, Clone, Default)]
pub struct ReadyQueues {
    queues: Vec<VecDeque<TaskEntry>>,
    ops: u64,
}

impl ReadyQueues {
    /// Creates empty queues for `num_acc_types` accelerator types.
    pub fn new(num_acc_types: usize) -> Self {
        ReadyQueues { queues: vec![VecDeque::new(); num_acc_types], ops: 0 }
    }

    /// Number of accelerator types.
    pub fn num_types(&self) -> usize {
        self.queues.len()
    }

    /// Read access to one queue.
    ///
    /// # Panics
    ///
    /// Panics if `acc` is out of range.
    pub fn queue(&self, acc: AccTypeId) -> &VecDeque<TaskEntry> {
        &self.queues[acc.0 as usize]
    }

    /// Mutable access to one queue (used by policy implementations).
    ///
    /// # Panics
    ///
    /// Panics if `acc` is out of range.
    pub fn queue_mut(&mut self, acc: AccTypeId) -> &mut VecDeque<TaskEntry> {
        self.ops += 1;
        &mut self.queues[acc.0 as usize]
    }

    /// Total queued tasks across all types.
    pub fn len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// True when every queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Position of a task in its queue, if queued.
    pub fn position(&self, acc: AccTypeId, key: TaskKey) -> Option<usize> {
        self.queue(acc).iter().position(|t| t.key == key)
    }

    /// The entry for `key`, if queued.
    pub fn get(&self, acc: AccTypeId, key: TaskKey) -> Option<&TaskEntry> {
        self.queue(acc).iter().find(|t| t.key == key)
    }

    /// Number of `queue_mut` accesses — a proxy for elementary scheduler
    /// operations, used by the manager's overhead model.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The insertion index for `entry` under `key`: after any escalated
    /// (`is_fwd`) prefix, before the first entry with a strictly greater
    /// key (FIFO among equals). This is the paper's `find_pos`.
    pub fn find_pos<K: Ord>(
        &self,
        acc: AccTypeId,
        entry: &TaskEntry,
        key: impl Fn(&TaskEntry) -> K,
    ) -> usize {
        let q = self.queue(acc);
        let start = q.iter().take_while(|t| t.is_fwd).count();
        let target = key(entry);
        let mut pos = start;
        for t in q.iter().skip(start) {
            if key(t) > target {
                break;
            }
            pos += 1;
        }
        pos
    }

    /// Inserts `entry` at the position returned by
    /// [`find_pos`](Self::find_pos).
    pub fn insert_sorted<K: Ord>(
        &mut self,
        mut entry: TaskEntry,
        key: impl Fn(&TaskEntry) -> K,
    ) {
        entry.is_fwd = false;
        let pos = self.find_pos(entry.acc, &entry, key);
        self.queue_mut(entry.acc).insert(pos, entry);
    }

    /// Pushes an escalated forwarding node at the front of its queue
    /// (Algorithm 1, line 17).
    pub fn push_front_fwd(&mut self, mut entry: TaskEntry) {
        entry.is_fwd = true;
        self.queue_mut(entry.acc).push_front(entry);
    }

    /// Pops the head of `acc`'s queue.
    pub fn pop_front(&mut self, acc: AccTypeId) -> Option<TaskEntry> {
        self.queue_mut(acc).pop_front()
    }

    /// Removes and returns the entry at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn remove_at(&mut self, acc: AccTypeId, index: usize) -> TaskEntry {
        self.queue_mut(acc).remove(index).expect("index in bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relief_sim::{Dur, Time};

    fn entry(node: u32, laxity_us: i128) -> TaskEntry {
        let mut e = TaskEntry::new(
            TaskKey::new(0, node),
            AccTypeId(0),
            Dur::ZERO,
            Time::ZERO,
        );
        e.laxity = laxity_us * 1_000_000;
        e
    }

    #[test]
    fn sorted_insert_is_stable() {
        let mut q = ReadyQueues::new(1);
        q.insert_sorted(entry(0, 10), |t| t.laxity);
        q.insert_sorted(entry(1, 5), |t| t.laxity);
        q.insert_sorted(entry(2, 10), |t| t.laxity); // tie with node 0: goes after
        q.insert_sorted(entry(3, 7), |t| t.laxity);
        let order: Vec<u32> = q.queue(AccTypeId(0)).iter().map(|t| t.key.node).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn fwd_prefix_is_skipped_by_sorted_insert() {
        let mut q = ReadyQueues::new(1);
        q.push_front_fwd(entry(9, 100)); // escalated, huge laxity, still first
        q.insert_sorted(entry(1, 5), |t| t.laxity);
        q.insert_sorted(entry(2, 1), |t| t.laxity);
        let order: Vec<u32> = q.queue(AccTypeId(0)).iter().map(|t| t.key.node).collect();
        assert_eq!(order, vec![9, 2, 1]);
        assert!(q.queue(AccTypeId(0))[0].is_fwd);
    }

    #[test]
    fn position_and_get() {
        let mut q = ReadyQueues::new(2);
        q.insert_sorted(entry(4, 2), |t| t.laxity);
        assert_eq!(q.position(AccTypeId(0), TaskKey::new(0, 4)), Some(0));
        assert_eq!(q.position(AccTypeId(0), TaskKey::new(0, 5)), None);
        assert_eq!(q.position(AccTypeId(1), TaskKey::new(0, 4)), None);
        assert!(q.get(AccTypeId(0), TaskKey::new(0, 4)).is_some());
    }

    #[test]
    fn pop_and_remove() {
        let mut q = ReadyQueues::new(1);
        q.insert_sorted(entry(0, 3), |t| t.laxity);
        q.insert_sorted(entry(1, 1), |t| t.laxity);
        q.insert_sorted(entry(2, 2), |t| t.laxity);
        assert_eq!(q.pop_front(AccTypeId(0)).unwrap().key.node, 1);
        assert_eq!(q.remove_at(AccTypeId(0), 1).key.node, 0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queues() {
        let mut q = ReadyQueues::new(3);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop_front(AccTypeId(2)), None);
    }
}
