//! Per-accelerator-type ready queues.
//!
//! The hardware manager keeps one sorted ready queue per accelerator type
//! (§II-B); policies differ only in the sort key and in how (RELIEF) or
//! whether (the baselines) they escalate forwarding nodes. Escalated
//! entries sit at the *front* of a queue, marked `is_fwd`; the remainder of
//! the queue is kept sorted by the active policy's key.
//!
//! # Hot-path invariants
//!
//! Every entry caches its policy sort key in [`TaskEntry::sort_key`]
//! (written by [`insert_sorted`](ReadyQueues::insert_sorted)), and a
//! per-queue counter tracks the length of the escalated (`is_fwd`) prefix.
//! Together these make [`find_pos`](ReadyQueues::find_pos) a binary search
//! over the sorted region instead of a head-to-tail walk: the prefix
//! counter gives the region's start in O(1) and the cached keys make each
//! probe a pair comparison. FIFO-among-equals is preserved because the
//! search key is `(sort_key, seq)` with the same `seq` tiebreak the linear
//! scan used.
//!
//! The cached keys stay valid because every mutation flows through this
//! type: sorted inserts write the key, RELIEF's feasibility debits go
//! through [`debit_ahead`](ReadyQueues::debit_ahead) (which adjusts
//! `laxity` and `sort_key` in lockstep — a uniform debit of a queue prefix
//! preserves sorted order), and escalated entries live outside the sorted
//! region entirely.

use crate::task::{TaskEntry, TaskKey};
use relief_dag::AccTypeId;
use std::collections::VecDeque;

/// Ready queues indexed by accelerator type.
#[derive(Debug, Clone, Default)]
pub struct ReadyQueues {
    queues: Vec<VecDeque<TaskEntry>>,
    /// Number of escalated (`is_fwd`) entries at the front of each queue.
    fwd_prefix: Vec<usize>,
    /// Route position queries through the pre-optimisation linear scans
    /// (benchmark reference mode; results are identical by construction).
    reference_linear_scans: bool,
    ops: u64,
}

/// First index in `q[start..]` for which `pred` is false, assuming `pred`
/// is monotone (true-prefix / false-suffix) over that region. `VecDeque`
/// indexing is O(1), so this is a plain binary search.
fn partition_point_from(
    q: &VecDeque<TaskEntry>,
    start: usize,
    pred: impl Fn(&TaskEntry) -> bool,
) -> usize {
    let mut lo = start;
    let mut hi = q.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(&q[mid]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

impl ReadyQueues {
    /// Creates empty queues for `num_acc_types` accelerator types.
    pub fn new(num_acc_types: usize) -> Self {
        ReadyQueues {
            queues: vec![VecDeque::new(); num_acc_types],
            fwd_prefix: vec![0; num_acc_types],
            reference_linear_scans: false,
            ops: 0,
        }
    }

    /// Number of accelerator types.
    pub fn num_types(&self) -> usize {
        self.queues.len()
    }

    /// Read access to one queue.
    ///
    /// # Panics
    ///
    /// Panics if `acc` is out of range.
    pub fn queue(&self, acc: AccTypeId) -> &VecDeque<TaskEntry> {
        &self.queues[acc.0 as usize]
    }

    /// Number of escalated (`is_fwd`) entries at the front of `acc`'s
    /// queue, i.e. where the sorted region starts.
    pub fn fwd_prefix(&self, acc: AccTypeId) -> usize {
        self.fwd_prefix[acc.0 as usize]
    }

    /// Total queued tasks across all types.
    pub fn len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// True when every queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Number of elementary queue operations that touched an entry
    /// (inserts, successful pops, removals, feasibility debits) — a proxy
    /// for scheduler work. Accesses that find nothing to operate on (e.g. a
    /// pop from an empty queue) are not counted.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Routes position queries through the pre-optimisation linear scans.
    /// Only the cost model changes: the linear and binary paths return
    /// identical results (pinned by the `queue_properties` suite). Used by
    /// the wall-clock benchmark to measure the old cost on the same build.
    pub fn set_reference_linear_scans(&mut self, on: bool) {
        self.reference_linear_scans = on;
    }

    /// The insertion index for `entry`: after the escalated (`is_fwd`)
    /// prefix, before the first entry with a strictly greater
    /// `(sort_key, seq)` pair (FIFO among equals). This is the paper's
    /// `find_pos`, as a binary search over the sorted region.
    ///
    /// `entry.sort_key` must already hold the active policy's key.
    pub fn find_pos(&self, acc: AccTypeId, entry: &TaskEntry) -> usize {
        if self.reference_linear_scans {
            return self.find_pos_linear(acc, entry);
        }
        let q = self.queue(acc);
        let start = self.fwd_prefix[acc.0 as usize];
        let target = (entry.sort_key, entry.seq);
        partition_point_from(q, start, |t| (t.sort_key, t.seq) <= target)
    }

    /// Reference implementation of [`find_pos`](Self::find_pos): the
    /// original head-to-tail walk. Kept as the oracle for the binary-search
    /// property tests and as the benchmark baseline's cost model.
    pub fn find_pos_linear(&self, acc: AccTypeId, entry: &TaskEntry) -> usize {
        let q = self.queue(acc);
        let start = q.iter().take_while(|t| t.is_fwd).count();
        let target = (entry.sort_key, entry.seq);
        let mut pos = start;
        for t in q.iter().skip(start) {
            if (t.sort_key, t.seq) > target {
                break;
            }
            pos += 1;
        }
        pos
    }

    /// Inserts `entry` at the position returned by
    /// [`find_pos`](Self::find_pos), caching `key(entry)` as its sort key.
    pub fn insert_sorted(
        &mut self,
        mut entry: TaskEntry,
        key: impl Fn(&TaskEntry) -> i128,
    ) {
        entry.is_fwd = false;
        entry.sort_key = key(&entry);
        let pos = self.find_pos(entry.acc, &entry);
        self.ops += 1;
        self.queues[entry.acc.0 as usize].insert(pos, entry);
    }

    /// Pushes an escalated forwarding node at the front of its queue
    /// (Algorithm 1, line 17), growing the escalated prefix.
    pub fn push_front_fwd(&mut self, mut entry: TaskEntry) {
        entry.is_fwd = true;
        self.ops += 1;
        self.fwd_prefix[entry.acc.0 as usize] += 1;
        self.queues[entry.acc.0 as usize].push_front(entry);
    }

    /// Pops the head of `acc`'s queue.
    pub fn pop_front(&mut self, acc: AccTypeId) -> Option<TaskEntry> {
        let popped = self.queues[acc.0 as usize].pop_front()?;
        self.ops += 1;
        if popped.is_fwd {
            self.fwd_prefix[acc.0 as usize] -= 1;
        }
        Some(popped)
    }

    /// Removes and returns the entry at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn remove_at(&mut self, acc: AccTypeId, index: usize) -> TaskEntry {
        // Documented panic: callers pass indices from their own scan.
        #[allow(clippy::expect_used)]
        let removed = self.queues[acc.0 as usize].remove(index).expect("index in bounds");
        self.ops += 1;
        if removed.is_fwd {
            self.fwd_prefix[acc.0 as usize] -= 1;
        }
        removed
    }

    /// True when `key` is queued on `acc` as an escalated entry or at the
    /// very head — i.e. it is next in line to launch. O(escalated prefix),
    /// which is bounded by the type's instance count.
    pub fn is_escalated_or_head(&self, acc: AccTypeId, key: TaskKey) -> bool {
        let q = self.queue(acc);
        if self.reference_linear_scans {
            return match q.iter().position(|t| t.key == key) {
                Some(i) => i == 0 || q[i].is_fwd,
                None => false,
            };
        }
        q.front().is_some_and(|t| t.key == key)
            || q.iter().take(self.fwd_prefix[acc.0 as usize]).any(|t| t.key == key)
    }

    /// Index of the first entry in `acc`'s sorted region whose *stored
    /// laxity* is at least `threshold` (picoseconds), or the queue length
    /// if none. Valid only under laxity-keyed policies, where
    /// `sort_key == laxity` and the region is laxity-sorted; used by LAX's
    /// de-prioritization pop.
    pub fn first_laxity_at_least(&self, acc: AccTypeId, threshold: i128) -> usize {
        let q = self.queue(acc);
        let start = self.fwd_prefix[acc.0 as usize];
        debug_assert!(
            q.iter().skip(start).all(|t| t.sort_key == t.laxity),
            "laxity search requires laxity-keyed entries"
        );
        if self.reference_linear_scans {
            return q
                .iter()
                .position(|t| t.laxity >= threshold)
                .unwrap_or(q.len());
        }
        partition_point_from(q, start, |t| t.laxity < threshold)
    }

    /// Debits `amount` from the stored laxity (and cached sort key) of
    /// every entry ahead of `index` in `acc`'s queue — Algorithm 2's
    /// line 13, charging the entries an escalated node will delay. A
    /// uniform debit of a queue prefix preserves the sorted-region order,
    /// so the binary-search invariant survives.
    pub fn debit_ahead(&mut self, acc: AccTypeId, index: usize, amount: i128) {
        if index > 0 {
            self.ops += 1;
        }
        for node in self.queues[acc.0 as usize].iter_mut().take(index) {
            node.laxity -= amount;
            node.sort_key -= amount;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relief_sim::{Dur, Time};

    fn entry(node: u32, laxity_us: i128) -> TaskEntry {
        let mut e = TaskEntry::new(
            TaskKey::new(0, node),
            AccTypeId(0),
            Dur::ZERO,
            Time::ZERO,
        );
        e.laxity = laxity_us * 1_000_000;
        e
    }

    fn by_laxity(t: &TaskEntry) -> i128 {
        t.laxity
    }

    #[test]
    fn sorted_insert_is_stable() {
        let mut q = ReadyQueues::new(1);
        q.insert_sorted(entry(0, 10), by_laxity);
        q.insert_sorted(entry(1, 5), by_laxity);
        q.insert_sorted(entry(2, 10), by_laxity); // tie with node 0: goes after
        q.insert_sorted(entry(3, 7), by_laxity);
        let order: Vec<u32> = q.queue(AccTypeId(0)).iter().map(|t| t.key.node).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn fwd_prefix_is_skipped_by_sorted_insert() {
        let mut q = ReadyQueues::new(1);
        q.push_front_fwd(entry(9, 100)); // escalated, huge laxity, still first
        q.insert_sorted(entry(1, 5), by_laxity);
        q.insert_sorted(entry(2, 1), by_laxity);
        let order: Vec<u32> = q.queue(AccTypeId(0)).iter().map(|t| t.key.node).collect();
        assert_eq!(order, vec![9, 2, 1]);
        assert!(q.queue(AccTypeId(0))[0].is_fwd);
        assert_eq!(q.fwd_prefix(AccTypeId(0)), 1);
    }

    #[test]
    fn fwd_prefix_counter_tracks_pops_and_removals() {
        let mut q = ReadyQueues::new(1);
        q.push_front_fwd(entry(0, 1));
        q.push_front_fwd(entry(1, 2));
        q.insert_sorted(entry(2, 3), by_laxity);
        assert_eq!(q.fwd_prefix(AccTypeId(0)), 2);
        assert!(q.pop_front(AccTypeId(0)).unwrap().is_fwd);
        assert_eq!(q.fwd_prefix(AccTypeId(0)), 1);
        q.remove_at(AccTypeId(0), 0);
        assert_eq!(q.fwd_prefix(AccTypeId(0)), 0);
        q.remove_at(AccTypeId(0), 0); // plain entry: prefix unaffected
        assert_eq!(q.fwd_prefix(AccTypeId(0)), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn escalated_or_head_queries() {
        let mut q = ReadyQueues::new(2);
        q.insert_sorted(entry(4, 2), by_laxity);
        q.insert_sorted(entry(5, 9), by_laxity);
        q.push_front_fwd(entry(6, 50));
        // Escalated entry and the head... node 6 is both; node 4 sits at
        // index 1 behind the escalation; node 5 at the tail.
        assert!(q.is_escalated_or_head(AccTypeId(0), TaskKey::new(0, 6)));
        assert!(!q.is_escalated_or_head(AccTypeId(0), TaskKey::new(0, 4)));
        assert!(!q.is_escalated_or_head(AccTypeId(0), TaskKey::new(0, 5)));
        assert!(!q.is_escalated_or_head(AccTypeId(1), TaskKey::new(0, 4)));
        // With the escalation gone, node 4 is the head.
        q.pop_front(AccTypeId(0));
        assert!(q.is_escalated_or_head(AccTypeId(0), TaskKey::new(0, 4)));
    }

    #[test]
    fn pop_and_remove() {
        let mut q = ReadyQueues::new(1);
        q.insert_sorted(entry(0, 3), by_laxity);
        q.insert_sorted(entry(1, 1), by_laxity);
        q.insert_sorted(entry(2, 2), by_laxity);
        assert_eq!(q.pop_front(AccTypeId(0)).unwrap().key.node, 1);
        assert_eq!(q.remove_at(AccTypeId(0), 1).key.node, 0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queues() {
        let mut q = ReadyQueues::new(3);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop_front(AccTypeId(2)), None);
    }

    #[test]
    fn ops_counts_only_entry_touching_operations() {
        let mut q = ReadyQueues::new(1);
        assert_eq!(q.ops(), 0);
        // Pops from an empty queue are not scheduler work.
        assert_eq!(q.pop_front(AccTypeId(0)), None);
        assert_eq!(q.pop_front(AccTypeId(0)), None);
        assert_eq!(q.ops(), 0);
        q.insert_sorted(entry(0, 5), by_laxity); // +1
        q.push_front_fwd(entry(1, 9)); // +1
        assert_eq!(q.ops(), 2);
        assert!(q.pop_front(AccTypeId(0)).is_some()); // +1
        q.debit_ahead(AccTypeId(0), 1, 1_000); // touches node 0: +1
        q.debit_ahead(AccTypeId(0), 0, 1_000); // empty prefix: no-op
        assert_eq!(q.ops(), 4);
        assert!(q.pop_front(AccTypeId(0)).is_some()); // +1
        assert_eq!(q.pop_front(AccTypeId(0)), None); // empty again: no-op
        assert_eq!(q.ops(), 5);
    }

    #[test]
    fn debit_ahead_keeps_sort_key_in_sync() {
        let mut q = ReadyQueues::new(1);
        q.insert_sorted(entry(0, 10), by_laxity);
        q.insert_sorted(entry(1, 20), by_laxity);
        q.insert_sorted(entry(2, 30), by_laxity);
        q.debit_ahead(AccTypeId(0), 2, 4_000_000);
        let queue = q.queue(AccTypeId(0));
        assert_eq!(queue[0].laxity, 6_000_000);
        assert_eq!(queue[0].sort_key, 6_000_000);
        assert_eq!(queue[1].laxity, 16_000_000);
        assert_eq!(queue[1].sort_key, 16_000_000);
        assert_eq!(queue[2].laxity, 30_000_000); // beyond index: untouched
        // The region is still sorted, so a subsequent insert lands right.
        q.insert_sorted(entry(3, 8), by_laxity); // 8_000_000: between 6 and 16
        let order: Vec<u32> = q.queue(AccTypeId(0)).iter().map(|t| t.key.node).collect();
        assert_eq!(order, vec![0, 3, 1, 2]);
    }

    #[test]
    fn first_laxity_at_least_matches_linear_scan() {
        let mut q = ReadyQueues::new(1);
        for (n, lax) in [(0, -5), (1, -2), (2, 0), (3, 3), (4, 3), (5, 9)] {
            q.insert_sorted(entry(n, lax), by_laxity);
        }
        for threshold_us in [-10, -5, -1, 0, 3, 4, 9, 10] {
            let t = threshold_us * 1_000_000;
            let linear = q
                .queue(AccTypeId(0))
                .iter()
                .position(|e| e.laxity >= t)
                .unwrap_or(q.queue(AccTypeId(0)).len());
            assert_eq!(q.first_laxity_at_least(AccTypeId(0), t), linear, "threshold {t}");
        }
    }
}
