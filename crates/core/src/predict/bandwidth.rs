//! Memory-bandwidth predictors (§III-B, after Duesterwald et al.).

use std::collections::VecDeque;

/// Predicts the DRAM bandwidth the next task will achieve, in
/// bytes/second.
///
/// Four schemes from the paper:
///
/// * **Max** — assume the full (effective) channel bandwidth; the paper's
///   default since Observation 8 shows accuracy barely matters.
/// * **Last** — last observed value.
/// * **Average** — arithmetic mean of the last `n` observations (the paper
///   uses n = 15).
/// * **EWMA** — `pred = α·bw + (1−α)·pred` (Eq. 3; the paper uses α = 0.25).
///
/// All schemes fall back to the configured maximum until the first
/// observation arrives.
#[derive(Debug, Clone)]
pub enum BandwidthPredictor {
    /// Always the configured maximum.
    Max {
        /// Peak effective bandwidth, bytes/second.
        max: u64,
    },
    /// Last observed bandwidth.
    Last {
        /// Peak effective bandwidth (fallback), bytes/second.
        max: u64,
        /// Most recent observation.
        last: Option<f64>,
    },
    /// Mean of the most recent `n` observations.
    Average {
        /// Peak effective bandwidth (fallback), bytes/second.
        max: u64,
        /// Window size.
        n: usize,
        /// Recent observations, newest at the back.
        window: VecDeque<f64>,
    },
    /// Exponentially weighted moving average.
    Ewma {
        /// Peak effective bandwidth (fallback), bytes/second.
        max: u64,
        /// Weight of the newest observation.
        alpha: f64,
        /// Current estimate.
        pred: Option<f64>,
    },
}

impl BandwidthPredictor {
    /// Max scheme.
    pub fn max(max: u64) -> Self {
        BandwidthPredictor::Max { max }
    }

    /// Last-value scheme.
    pub fn last(max: u64) -> Self {
        BandwidthPredictor::Last { max, last: None }
    }

    /// Average-of-`n` scheme.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn average(max: u64, n: usize) -> Self {
        assert!(n > 0, "window size must be positive");
        BandwidthPredictor::Average { max, n, window: VecDeque::with_capacity(n) }
    }

    /// EWMA scheme (Eq. 3).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn ewma(max: u64, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        BandwidthPredictor::Ewma { max, alpha, pred: None }
    }

    /// Scheme name as used in Table VIII.
    pub fn name(&self) -> &'static str {
        match self {
            BandwidthPredictor::Max { .. } => "Max",
            BandwidthPredictor::Last { .. } => "Last",
            BandwidthPredictor::Average { .. } => "Average",
            BandwidthPredictor::Ewma { .. } => "EWMA",
        }
    }

    /// Records an achieved-bandwidth sample (bytes/second). Non-finite or
    /// non-positive samples are ignored.
    pub fn observe(&mut self, bytes_per_sec: f64) {
        if !bytes_per_sec.is_finite() || bytes_per_sec <= 0.0 {
            return;
        }
        match self {
            BandwidthPredictor::Max { .. } => {}
            BandwidthPredictor::Last { last, .. } => *last = Some(bytes_per_sec),
            BandwidthPredictor::Average { n, window, .. } => {
                if window.len() == *n {
                    window.pop_front();
                }
                window.push_back(bytes_per_sec);
            }
            BandwidthPredictor::Ewma { alpha, pred, .. } => {
                *pred = Some(match *pred {
                    None => bytes_per_sec,
                    Some(p) => *alpha * bytes_per_sec + (1.0 - *alpha) * p,
                });
            }
        }
    }

    /// Current prediction, bytes/second.
    pub fn predict(&self) -> f64 {
        match self {
            BandwidthPredictor::Max { max } => *max as f64,
            BandwidthPredictor::Last { max, last } => last.unwrap_or(*max as f64),
            BandwidthPredictor::Average { max, window, .. } => {
                if window.is_empty() {
                    *max as f64
                } else {
                    window.iter().sum::<f64>() / window.len() as f64
                }
            }
            BandwidthPredictor::Ewma { max, pred, .. } => pred.unwrap_or(*max as f64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX: u64 = 6_458_000_000;

    #[test]
    fn max_never_changes() {
        let mut p = BandwidthPredictor::max(MAX);
        p.observe(1.0);
        assert_eq!(p.predict(), MAX as f64);
        assert_eq!(p.name(), "Max");
    }

    #[test]
    fn last_tracks_latest() {
        let mut p = BandwidthPredictor::last(MAX);
        assert_eq!(p.predict(), MAX as f64);
        p.observe(100.0);
        p.observe(200.0);
        assert_eq!(p.predict(), 200.0);
    }

    #[test]
    fn average_windows() {
        let mut p = BandwidthPredictor::average(MAX, 3);
        p.observe(10.0);
        p.observe(20.0);
        assert_eq!(p.predict(), 15.0);
        p.observe(30.0);
        p.observe(40.0); // evicts 10.0
        assert_eq!(p.predict(), 30.0);
    }

    #[test]
    fn ewma_follows_eq3() {
        let mut p = BandwidthPredictor::ewma(MAX, 0.25);
        p.observe(100.0);
        assert_eq!(p.predict(), 100.0);
        p.observe(200.0);
        // 0.25*200 + 0.75*100 = 125.
        assert_eq!(p.predict(), 125.0);
    }

    #[test]
    fn bad_samples_ignored() {
        let mut p = BandwidthPredictor::last(MAX);
        p.observe(f64::NAN);
        p.observe(-5.0);
        p.observe(0.0);
        assert_eq!(p.predict(), MAX as f64);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn alpha_validated() {
        BandwidthPredictor::ewma(MAX, 0.0);
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn window_validated() {
        BandwidthPredictor::average(MAX, 0);
    }
}
