//! Data-movement predictors (§III-B "Memory time prediction").

/// What one node is expected to move, as the manager can tell from graph
/// shape and node states at ready-queue insertion time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DataMoveQuery {
    /// Bytes carried by each in-edge (the producer's output size).
    pub parent_edge_bytes: Vec<u64>,
    /// Bytes always read from main memory (root inputs, weights).
    pub dram_input_bytes: u64,
    /// Bytes this node writes to its output buffer.
    pub output_bytes: u64,
    /// In-edge predicted to be satisfied by colocation, if any: of a set of
    /// newly ready siblings, the child with the earliest deadline is
    /// predicted to colocate with the parent when they share an accelerator
    /// type (§III-B). A colocated edge moves no bytes.
    pub colocated_parent_edge: Option<usize>,
    /// True when every child is predicted to forward from this node — all
    /// children map to distinct idle-capable accelerators and this node is
    /// their latest-finishing parent — in which case the output write-back
    /// to main memory is skipped.
    pub all_children_forward: bool,
}

/// Expected byte movement split by path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DataMoveEstimate {
    /// Bytes expected to cross the DRAM channel.
    pub dram_bytes: u64,
    /// Bytes expected to move scratchpad-to-scratchpad.
    pub forwarded_bytes: u64,
}

impl DataMoveEstimate {
    /// All bytes the node is expected to move.
    pub fn total(&self) -> u64 {
        self.dram_bytes + self.forwarded_bytes
    }
}

/// Data-movement prediction scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataMovePredictor {
    /// Assume maximum data movement: every input edge and the output go
    /// through main memory. The paper's default (Observation 8).
    #[default]
    Max,
    /// Graph-analysis prediction: discount the predicted colocated edge and
    /// the write-back when all children are expected to forward.
    Predicted,
}

impl DataMovePredictor {
    /// Scheme name as used in Table VIII / Fig. 11.
    pub fn name(&self) -> &'static str {
        match self {
            DataMovePredictor::Max => "Max",
            DataMovePredictor::Predicted => "Pred. DM",
        }
    }

    /// Expected movement for `query` under this scheme.
    pub fn estimate(&self, query: &DataMoveQuery) -> DataMoveEstimate {
        let all_edges: u64 = query.parent_edge_bytes.iter().sum();
        match self {
            DataMovePredictor::Max => DataMoveEstimate {
                dram_bytes: all_edges + query.dram_input_bytes + query.output_bytes,
                forwarded_bytes: 0,
            },
            DataMovePredictor::Predicted => {
                let colocated: u64 = query
                    .colocated_parent_edge
                    .and_then(|i| query.parent_edge_bytes.get(i).copied())
                    .unwrap_or(0);
                let output = if query.all_children_forward { 0 } else { query.output_bytes };
                DataMoveEstimate {
                    dram_bytes: all_edges - colocated + query.dram_input_bytes + output,
                    forwarded_bytes: 0,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query() -> DataMoveQuery {
        DataMoveQuery {
            parent_edge_bytes: vec![100, 200],
            dram_input_bytes: 50,
            output_bytes: 300,
            colocated_parent_edge: None,
            all_children_forward: false,
        }
    }

    #[test]
    fn max_counts_everything() {
        let e = DataMovePredictor::Max.estimate(&query());
        assert_eq!(e.dram_bytes, 650);
        assert_eq!(e.forwarded_bytes, 0);
        assert_eq!(e.total(), 650);
    }

    #[test]
    fn predicted_discounts_colocated_edge() {
        let mut q = query();
        q.colocated_parent_edge = Some(1);
        let e = DataMovePredictor::Predicted.estimate(&q);
        assert_eq!(e.dram_bytes, 450); // 200-byte edge eliminated
    }

    #[test]
    fn predicted_discounts_forwarded_output() {
        let mut q = query();
        q.all_children_forward = true;
        let e = DataMovePredictor::Predicted.estimate(&q);
        assert_eq!(e.dram_bytes, 350); // 300-byte write-back skipped
    }

    #[test]
    fn out_of_range_colocation_index_is_ignored() {
        let mut q = query();
        q.colocated_parent_edge = Some(9);
        let e = DataMovePredictor::Predicted.estimate(&q);
        assert_eq!(e.dram_bytes, 650);
    }

    #[test]
    fn max_ignores_hints() {
        let mut q = query();
        q.colocated_parent_edge = Some(0);
        q.all_children_forward = true;
        assert_eq!(DataMovePredictor::Max.estimate(&q).dram_bytes, 650);
    }

    #[test]
    fn names() {
        assert_eq!(DataMovePredictor::Max.name(), "Max");
        assert_eq!(DataMovePredictor::Predicted.name(), "Pred. DM");
    }
}
