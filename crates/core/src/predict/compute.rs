//! Compute-time profiling (§III-B "Compute time prediction").

use relief_dag::AccTypeId;
use relief_sim::Dur;
use std::collections::HashMap;

/// Per-(accelerator, operation) compute-time profile.
///
/// Fixed-function accelerators have data-independent control flow, so the
/// compute time for a given operation and input size barely varies; the
/// paper profiles each kernel once (at design time or boot) and reports a
/// mean prediction error of 0.03 % (Observation 7, Table VIII). This
/// profile keeps a running mean per `(accelerator type, label)` pair and
/// predicts that mean.
///
/// # Examples
///
/// ```
/// use relief_core::ComputeProfile;
/// use relief_dag::AccTypeId;
/// use relief_sim::Dur;
///
/// let mut profile = ComputeProfile::new();
/// profile.observe(AccTypeId(1), "conv5x5", Dur::from_us_f64(1545.61));
/// assert_eq!(profile.predict(AccTypeId(1), "conv5x5"), Some(Dur::from_us_f64(1545.61)));
/// assert_eq!(profile.predict(AccTypeId(1), "conv3x3"), None);
/// ```
/// Keyed per accelerator type, then per label. The nesting lets
/// [`predict`](ComputeProfile::predict) — a per-ready-queue-insertion
/// hot-path call — look labels up by `&str` (via `String: Borrow<str>`)
/// without building an owned key.
#[derive(Debug, Clone, Default)]
pub struct ComputeProfile {
    table: HashMap<AccTypeId, HashMap<String, (Dur, u64)>>,
}

impl ComputeProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an observed compute time for `(acc, label)`.
    pub fn observe(&mut self, acc: AccTypeId, label: &str, compute: Dur) {
        let per_acc = self.table.entry(acc).or_default();
        if let Some((sum, count)) = per_acc.get_mut(label) {
            *sum += compute;
            *count += 1;
            return;
        }
        per_acc.insert(label.to_string(), (compute, 1));
    }

    /// Predicted compute time: the mean of observations for `(acc, label)`,
    /// or `None` if never observed. Allocation-free.
    pub fn predict(&self, acc: AccTypeId, label: &str) -> Option<Dur> {
        self.table.get(&acc)?.get(label).map(|(sum, count)| *sum / *count)
    }

    /// Number of distinct profiled (accelerator, operation) pairs.
    pub fn len(&self) -> usize {
        self.table.values().map(HashMap::len).sum()
    }

    /// True if nothing has been profiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean() {
        let mut p = ComputeProfile::new();
        p.observe(AccTypeId(0), "op", Dur::from_us(10));
        p.observe(AccTypeId(0), "op", Dur::from_us(20));
        assert_eq!(p.predict(AccTypeId(0), "op"), Some(Dur::from_us(15)));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn keys_are_per_acc_and_label() {
        let mut p = ComputeProfile::new();
        p.observe(AccTypeId(0), "a", Dur::from_us(1));
        p.observe(AccTypeId(1), "a", Dur::from_us(2));
        p.observe(AccTypeId(0), "b", Dur::from_us(3));
        assert_eq!(p.len(), 3);
        assert_eq!(p.predict(AccTypeId(1), "a"), Some(Dur::from_us(2)));
        assert!(p.predict(AccTypeId(1), "b").is_none());
    }

    #[test]
    fn empty_profile() {
        let p = ComputeProfile::new();
        assert!(p.is_empty());
        assert_eq!(p.predict(AccTypeId(0), "x"), None);
    }
}
