//! Compute-time profiling (§III-B "Compute time prediction").

use relief_dag::AccTypeId;
use relief_sim::{Dur, Intern, InternId, KindId};
use std::collections::HashMap;

/// Per-(accelerator, operation) compute-time profile.
///
/// Fixed-function accelerators have data-independent control flow, so the
/// compute time for a given operation and input size barely varies; the
/// paper profiles each kernel once (at design time or boot) and reports a
/// mean prediction error of 0.03 % (Observation 7, Table VIII). This
/// profile keeps a running mean per `(accelerator type, label)` pair and
/// predicts that mean.
///
/// Labels are interned to dense [`KindId`]s internally, so the id-based
/// [`predict_id`](ComputeProfile::predict_id) — the per-ready-queue-
/// insertion hot-path call — is two array indexes with no hashing. The
/// string-keyed [`observe`](ComputeProfile::observe)/
/// [`predict`](ComputeProfile::predict) API is preserved on top and
/// deliberately kept on the pre-interning nested-`HashMap` storage: it is
/// the wall-clock benchmark's reference cost model, so its per-call cost
/// (two hash lookups) must not quietly improve. Both stores hold the
/// same observations.
///
/// # Examples
///
/// ```
/// use relief_core::ComputeProfile;
/// use relief_dag::AccTypeId;
/// use relief_sim::Dur;
///
/// let mut profile = ComputeProfile::new();
/// profile.observe(AccTypeId(1), "conv5x5", Dur::from_us_f64(1545.61));
/// assert_eq!(profile.predict(AccTypeId(1), "conv5x5"), Some(Dur::from_us_f64(1545.61)));
/// assert_eq!(profile.predict(AccTypeId(1), "conv3x3"), None);
///
/// // Hot-path form: intern once, predict by id thereafter.
/// let conv = profile.intern_kind("conv5x5");
/// assert_eq!(profile.predict_id(AccTypeId(1), conv), profile.predict(AccTypeId(1), "conv5x5"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ComputeProfile {
    /// `(sum, count)` per `[acc type][kind id]`; `count == 0` marks
    /// never-observed slots. Both axes are dense small integers.
    table: Vec<Vec<(Dur, u64)>>,
    kinds: Intern<KindId>,
    /// Pre-interning storage kept verbatim for the string-keyed API. The
    /// reference hot path in the wall-clock benchmark predicts through
    /// this map so its cost stays two hash lookups, exactly as before the
    /// dense table existed. Mirrors `table` observation-for-observation.
    legacy: HashMap<AccTypeId, HashMap<String, (Dur, u64)>>,
}

impl ComputeProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `label`, returning its dense [`KindId`] for use with the
    /// id-based observe/predict calls. Idempotent and stable.
    pub fn intern_kind(&mut self, label: &str) -> KindId {
        self.kinds.intern(label)
    }

    /// Records an observed compute time for `(acc, label)`.
    pub fn observe(&mut self, acc: AccTypeId, label: &str, compute: Dur) {
        let kind = self.kinds.intern(label);
        self.observe_id(acc, kind, compute);
    }

    /// Records an observed compute time for an already-interned kind.
    pub fn observe_id(&mut self, acc: AccTypeId, kind: KindId, compute: Dur) {
        let label = self.kinds.resolve(kind);
        let by_label = self.legacy.entry(acc).or_default();
        let (sum, count) = match by_label.get_mut(label) {
            Some(slot) => slot,
            None => by_label.entry(label.to_string()).or_insert((Dur::ZERO, 0)),
        };
        *sum += compute;
        *count += 1;
        let a = acc.0 as usize;
        if a >= self.table.len() {
            self.table.resize(a + 1, Vec::new());
        }
        let row = &mut self.table[a];
        let k = kind.index();
        if k >= row.len() {
            row.resize(k + 1, (Dur::ZERO, 0));
        }
        let (sum, count) = &mut row[k];
        *sum += compute;
        *count += 1;
    }

    /// Predicted compute time: the mean of observations for `(acc, label)`,
    /// or `None` if never observed. Costs two hash lookups — this is the
    /// reference cost model and must stay on the legacy store.
    pub fn predict(&self, acc: AccTypeId, label: &str) -> Option<Dur> {
        let (sum, count) = self.legacy.get(&acc)?.get(label)?;
        Some(*sum / *count)
    }

    /// Predicted compute time by interned kind: two array indexes, no
    /// hashing. `None` if `(acc, kind)` was never observed.
    pub fn predict_id(&self, acc: AccTypeId, kind: KindId) -> Option<Dur> {
        let (sum, count) = self.table.get(acc.0 as usize)?.get(kind.index())?;
        if *count == 0 {
            return None;
        }
        Some(*sum / *count)
    }

    /// Number of distinct profiled (accelerator, operation) pairs.
    pub fn len(&self) -> usize {
        self.table
            .iter()
            .map(|row| row.iter().filter(|(_, count)| *count > 0).count())
            .sum()
    }

    /// True if nothing has been profiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean() {
        let mut p = ComputeProfile::new();
        p.observe(AccTypeId(0), "op", Dur::from_us(10));
        p.observe(AccTypeId(0), "op", Dur::from_us(20));
        assert_eq!(p.predict(AccTypeId(0), "op"), Some(Dur::from_us(15)));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn keys_are_per_acc_and_label() {
        let mut p = ComputeProfile::new();
        p.observe(AccTypeId(0), "a", Dur::from_us(1));
        p.observe(AccTypeId(1), "a", Dur::from_us(2));
        p.observe(AccTypeId(0), "b", Dur::from_us(3));
        assert_eq!(p.len(), 3);
        assert_eq!(p.predict(AccTypeId(1), "a"), Some(Dur::from_us(2)));
        assert!(p.predict(AccTypeId(1), "b").is_none());
    }

    #[test]
    fn empty_profile() {
        let p = ComputeProfile::new();
        assert!(p.is_empty());
        assert_eq!(p.predict(AccTypeId(0), "x"), None);
    }

    #[test]
    fn id_api_matches_string_api() {
        let mut p = ComputeProfile::new();
        let conv = p.intern_kind("conv");
        let gemm = p.intern_kind("gemm");
        p.observe_id(AccTypeId(2), conv, Dur::from_us(7));
        p.observe(AccTypeId(2), "conv", Dur::from_us(9));
        assert_eq!(p.predict_id(AccTypeId(2), conv), Some(Dur::from_us(8)));
        assert_eq!(p.predict(AccTypeId(2), "conv"), Some(Dur::from_us(8)));
        // Interned but never observed on this accelerator.
        assert_eq!(p.predict_id(AccTypeId(2), gemm), None);
        assert_eq!(p.predict_id(AccTypeId(0), conv), None);
    }
}
