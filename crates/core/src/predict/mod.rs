//! Execution-time prediction (§III-B).
//!
//! RELIEF's laxity bookkeeping needs an estimate of each node's runtime at
//! ready-queue insertion time. The paper predicts compute time and memory
//! time separately:
//!
//! * **Compute**: fixed-function accelerators have data-independent control
//!   flow, so compute time is a function of (input size, operation) and can
//!   be profiled once ([`ComputeProfile`]).
//! * **Memory** = predicted data movement / predicted bandwidth.
//!   [`BandwidthPredictor`] offers the paper's four schemes (Max, Last,
//!   Average over n, EWMA); [`DataMovePredictor`] offers Max (everything
//!   through DRAM) and the graph-analysis scheme that discounts predicted
//!   colocations and all-children-forward write-backs.
//!
//! Observation 8 of the paper: RELIEF's results are insensitive to the
//! predictor choice, so the Max predictors are the default everywhere.

mod bandwidth;
mod compute;
mod datamove;

pub use bandwidth::BandwidthPredictor;
pub use compute::ComputeProfile;
pub use datamove::{DataMoveEstimate, DataMovePredictor, DataMoveQuery};

use relief_sim::Dur;

/// Combined memory-time predictor: data-movement estimate divided by
/// predicted bandwidth.
///
/// # Examples
///
/// ```
/// use relief_core::predict::{BandwidthPredictor, DataMovePredictor, DataMoveQuery};
/// use relief_core::MemTimePredictor;
///
/// let mut p = MemTimePredictor::max_defaults(6_458_000_000, 14_900_000_000);
/// let q = DataMoveQuery {
///     parent_edge_bytes: vec![65_536, 65_536],
///     dram_input_bytes: 0,
///     output_bytes: 65_536,
///     colocated_parent_edge: None,
///     all_children_forward: false,
/// };
/// // Three planes through DRAM at 6.458 GB/s: ~30.45us (Table I).
/// let t = p.predict(&q);
/// assert!((t.as_us_f64() - 30.45).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct MemTimePredictor {
    /// Bandwidth prediction scheme.
    pub bandwidth: BandwidthPredictor,
    /// Data-movement prediction scheme.
    pub data_movement: DataMovePredictor,
    /// Interconnect bandwidth for forwarded bytes, bytes/second.
    pub icn_bandwidth: u64,
}

impl MemTimePredictor {
    /// The paper's default: Max bandwidth and Max data movement.
    pub fn max_defaults(dram_bandwidth: u64, icn_bandwidth: u64) -> Self {
        MemTimePredictor {
            bandwidth: BandwidthPredictor::max(dram_bandwidth),
            data_movement: DataMovePredictor::Max,
            icn_bandwidth,
        }
    }

    /// Predicted memory time for the node described by `query`.
    pub fn predict(&self, query: &DataMoveQuery) -> Dur {
        let est = self.data_movement.estimate(query);
        let bw = self.bandwidth.predict().max(1.0);
        let dram = Dur::for_bytes(est.dram_bytes, bw as u64);
        let fwd = Dur::for_bytes(est.forwarded_bytes, self.icn_bandwidth);
        dram + fwd
    }

    /// Records an achieved DRAM bandwidth sample (bytes/second).
    pub fn observe_bandwidth(&mut self, bytes_per_sec: f64) {
        self.bandwidth.observe(bytes_per_sec);
    }
}
