//! Ready-queue task entries.

use crate::laxity::stored_laxity;
use relief_dag::AccTypeId;
use relief_sim::{Dur, Time};
use std::fmt;

/// Globally unique task identity: a DAG instance plus a node within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskKey {
    /// DAG-instance identifier assigned by the runtime.
    pub instance: u32,
    /// Node index within the instance's graph.
    pub node: u32,
}

impl TaskKey {
    /// Creates a key.
    pub fn new(instance: u32, node: u32) -> Self {
        TaskKey { instance, node }
    }
}

impl fmt::Display for TaskKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}:n{}", self.instance, self.node)
    }
}

/// One schedulable task as the policies see it.
///
/// Mirrors the scheduling-relevant part of the paper's `struct node`
/// (Table III): predicted runtime, absolute deadline (already resolved for
/// the active policy's deadline scheme), and the laxity bookkeeping used by
/// Algorithms 1 and 2. The paper stores laxity as `deadline − runtime` and
/// subtracts the current time only when manipulating the ready queue; we do
/// the same, so feasibility debits (Algorithm 2, line 13) mutate the stored
/// value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskEntry {
    /// Which task this is.
    pub key: TaskKey,
    /// Accelerator type the task runs on.
    pub acc: AccTypeId,
    /// Predicted runtime (compute + memory estimate).
    pub runtime: Dur,
    /// Absolute deadline under the active policy's deadline scheme.
    pub deadline: Time,
    /// Arrival sequence number; FIFO tie-breaker and the FCFS order key.
    pub seq: u64,
    /// Stored laxity in picoseconds: `deadline − runtime`, minus any
    /// feasibility debits. Subtract the current time to get Eq. 1's laxity.
    pub laxity: i128,
    /// Cached policy sort key, written by
    /// [`ReadyQueues::insert_sorted`](crate::ReadyQueues::insert_sorted) on
    /// enqueue and kept in lockstep with `laxity` by feasibility debits.
    /// Queues binary-search on `(sort_key, seq)`, so it must never drift
    /// from the active policy's key while the entry is queued.
    pub sort_key: i128,
    /// True while the entry sits at the front of its queue as an escalated
    /// forwarding node (set by RELIEF, Algorithm 1 line 18).
    pub is_fwd: bool,
    /// True if the task *could* forward: its parent has just finished, so
    /// the producer's output is still live in its scratchpad. Roots and
    /// re-inserted tasks are not candidates.
    pub fwd_candidate: bool,
    /// Runtime-internal storage slot of the owning DAG instance. The
    /// public identity (`key.instance`) is a monotonic admission serial;
    /// a runtime that recycles instance storage carries the dense slot
    /// here so the hot path indexes its arena without a serial→slot map.
    /// Policies must never order or compare on it. Defaults to
    /// `key.instance` (slot == serial when nothing recycles).
    pub slot: u32,
}

impl TaskEntry {
    /// Creates an entry with laxity derived from `deadline − runtime`.
    pub fn new(key: TaskKey, acc: AccTypeId, runtime: Dur, deadline: Time) -> Self {
        TaskEntry {
            key,
            acc,
            runtime,
            deadline,
            seq: 0,
            laxity: stored_laxity(deadline, runtime),
            sort_key: 0,
            is_fwd: false,
            fwd_candidate: false,
            slot: key.instance,
        }
    }

    /// Sets the arrival sequence number.
    pub fn with_seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }

    /// Sets the runtime-internal instance slot (see [`TaskEntry::slot`]).
    pub fn with_slot(mut self, slot: u32) -> Self {
        self.slot = slot;
        self
    }

    /// Marks the entry as a forwarding candidate (its parent just finished).
    pub fn forwarding_candidate(mut self) -> Self {
        self.fwd_candidate = true;
        self
    }

    /// Current laxity at `now` (Eq. 1): stored laxity minus the clock.
    pub fn curr_laxity(&self, now: Time) -> i128 {
        self.laxity - now.as_ps() as i128
    }

    /// Predicted runtime in picoseconds, as the signed type laxity math
    /// uses.
    pub fn runtime_ps(&self) -> i128 {
        self.runtime.as_ps() as i128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laxity_derivation() {
        let t = TaskEntry::new(TaskKey::new(1, 2), AccTypeId(0), Dur::from_us(10), Time::from_us(100));
        assert_eq!(t.laxity, 90_000_000); // (100 - 10)us in ps
        assert_eq!(t.curr_laxity(Time::from_us(50)), 40_000_000);
        assert_eq!(t.curr_laxity(Time::from_us(95)), -5_000_000);
    }

    #[test]
    fn negative_stored_laxity() {
        // Runtime exceeding the deadline yields negative laxity from t=0.
        let t = TaskEntry::new(TaskKey::new(0, 0), AccTypeId(0), Dur::from_us(10), Time::from_us(4));
        assert_eq!(t.laxity, -6_000_000);
        assert!(t.curr_laxity(Time::ZERO) < 0);
    }

    #[test]
    fn builders() {
        let t = TaskEntry::new(TaskKey::new(0, 1), AccTypeId(3), Dur::ZERO, Time::ZERO)
            .with_seq(42)
            .forwarding_candidate();
        assert_eq!(t.seq, 42);
        assert!(t.fwd_candidate);
        assert!(!t.is_fwd);
        assert_eq!(t.slot, 0, "slot defaults to key.instance");
        assert_eq!(t.with_slot(9).slot, 9);
    }

    #[test]
    fn key_display() {
        assert_eq!(TaskKey::new(3, 7).to_string(), "d3:n7");
    }
}
