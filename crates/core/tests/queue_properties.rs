//! Property-style tests of the ready-queue invariants every policy must
//! preserve under arbitrary interleavings of batch insertions and pops.
//!
//! Scripts are generated with the in-tree SplitMix64 generator instead of
//! proptest (unfetchable in the sandbox): fixed seeds, deterministic
//! cases, and every failure message carries the case seed for replay.

use relief_core::{PolicyKind, ReadyQueues, TaskEntry, TaskKey};
use relief_dag::AccTypeId;
use relief_sim::{Dur, SplitMix64, Time};

/// One scripted scheduler interaction.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a batch of tasks (runtime µs, deadline µs, fwd candidate).
    Enqueue(Vec<(u64, u64, bool)>),
    /// Pop for an idle accelerator.
    Pop,
    /// Advance the clock.
    Advance(u64),
}

fn random_op(rng: &mut SplitMix64) -> Op {
    match rng.u32_below(3) {
        0 => {
            let n = 1 + rng.usize_below(3);
            let batch = (0..n)
                .map(|_| {
                    (1 + rng.u64_below(199), 1 + rng.u64_below(1999), rng.chance(0.5))
                })
                .collect();
            Op::Enqueue(batch)
        }
        1 => Op::Pop,
        _ => Op::Advance(1 + rng.u64_below(299)),
    }
}

fn random_script(rng: &mut SplitMix64) -> Vec<Op> {
    let len = 1 + rng.usize_below(39);
    (0..len).map(|_| random_op(rng)).collect()
}

/// Drives a policy through a script, checking invariants after each step.
fn drive(policy_kind: PolicyKind, script: Vec<Op>, idle: usize, ctx: &str) {
    let mut policy = policy_kind.build();
    let mut queues = ReadyQueues::new(1);
    let acc = AccTypeId(0);
    let mut now = Time::ZERO;
    let mut next_node = 0u32;
    let mut seq = 0u64;
    let mut queued = 0usize;
    let mut idle_now = idle;

    for op in script {
        match op {
            Op::Enqueue(batch) => {
                let mut entries: Vec<TaskEntry> = batch
                    .into_iter()
                    .map(|(rt, ddl, fwd)| {
                        let mut e = TaskEntry::new(
                            TaskKey::new(0, next_node),
                            acc,
                            Dur::from_us(rt),
                            now + Dur::from_us(ddl),
                        )
                        .with_seq(seq);
                        next_node += 1;
                        seq += 1;
                        if fwd {
                            e = e.forwarding_candidate();
                        }
                        e
                    })
                    .collect();
                queued += entries.len();
                policy.enqueue_ready(&mut queues, &mut entries, now, &[idle_now]);
            }
            Op::Pop => {
                let popped = policy.pop(&mut queues, acc, now);
                assert_eq!(popped.is_some(), queued > 0, "{ctx}: pop iff non-empty");
                if popped.is_some() {
                    queued -= 1;
                    idle_now = idle_now.saturating_sub(1);
                }
            }
            Op::Advance(us) => now += Dur::from_us(us),
        }

        // Invariant 1: no entries lost or duplicated.
        assert_eq!(queues.len(), queued, "{ctx}");
        let q = queues.queue(acc);
        // Invariant 2: escalated entries form a prefix...
        let fwd_prefix = q.iter().take_while(|t| t.is_fwd).count();
        assert!(
            q.iter().skip(fwd_prefix).all(|t| !t.is_fwd),
            "{ctx}: is_fwd entries must be a queue prefix"
        );
        // ...bounded by the idle budget.
        assert!(
            fwd_prefix <= idle,
            "{ctx}: escalations ({fwd_prefix}) exceed idle budget ({idle})"
        );
        // Invariant 3: the non-escalated suffix is sorted by the policy's
        // key (laxity/deadline/seq), allowing equal keys.
        let sorted_by = |key: &dyn Fn(&TaskEntry) -> i128| {
            q.iter()
                .skip(fwd_prefix)
                .zip(q.iter().skip(fwd_prefix + 1))
                .all(|(a, b)| key(a) <= key(b))
        };
        let ok = match policy_kind {
            PolicyKind::Fcfs => sorted_by(&|t: &TaskEntry| t.seq as i128),
            PolicyKind::GedfD | PolicyKind::GedfN => {
                sorted_by(&|t: &TaskEntry| t.deadline.as_ps() as i128)
            }
            // Adaptive flips between FCFS (constant key) and RELIEF
            // (laxity) ordering; the invariant is the cached sort key.
            PolicyKind::Adaptive => sorted_by(&|t: &TaskEntry| t.sort_key),
            _ => sorted_by(&|t: &TaskEntry| t.laxity),
        };
        assert!(ok, "{ctx}: queue must stay key-sorted");
        // Invariant 4: no task id appears twice.
        let mut keys: Vec<TaskKey> = q.iter().map(|t| t.key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), q.len(), "{ctx}");
    }
}

#[test]
fn queue_invariants_hold_for_every_policy() {
    let all: Vec<PolicyKind> =
        PolicyKind::ALL.iter().copied().chain(PolicyKind::EXTENSIONS).collect();
    let mut rng = SplitMix64::new(0x0BAD_5EED);
    for case in 0..64 {
        let policy = all[rng.usize_below(all.len())];
        let idle = rng.usize_below(3);
        let script = random_script(&mut rng);
        drive(policy, script, idle, &format!("case={case} policy={policy} idle={idle}"));
    }
}

/// The binary-search `find_pos` must agree with the original linear scan on
/// every queue shape: duplicate sort keys (FIFO tie classes), escalated
/// `is_fwd` prefixes of varying length, and probe keys below/inside/above
/// the queued range.
#[test]
fn binary_find_pos_matches_linear_scan() {
    let acc = AccTypeId(0);
    let mut rng = SplitMix64::new(0x51D3_CA57);
    let mut seq = 0u64;
    for case in 0..256 {
        let mut queues = ReadyQueues::new(1);
        // Keys drawn from a narrow range force plenty of duplicates.
        let key_range = 1 + rng.u64_below(8);
        let n = rng.usize_below(24);
        for i in 0..n {
            let mut e = TaskEntry::new(TaskKey::new(0, i as u32), acc, Dur::ZERO, Time::ZERO)
                .with_seq(seq);
            seq += 1;
            e.laxity = rng.u64_below(key_range) as i128 * 1_000_000;
            queues.insert_sorted(e, |t| t.laxity);
        }
        for i in 0..rng.usize_below(4) {
            let mut e =
                TaskEntry::new(TaskKey::new(1, i as u32), acc, Dur::ZERO, Time::ZERO).with_seq(seq);
            seq += 1;
            // Escalated entries carry arbitrary keys; find_pos must skip them.
            e.laxity = rng.u64_below(99) as i128 * 1_000_000;
            e.sort_key = e.laxity;
            queues.push_front_fwd(e);
        }
        for probe in 0..8 {
            let mut e =
                TaskEntry::new(TaskKey::new(2, probe), acc, Dur::ZERO, Time::ZERO).with_seq(seq);
            seq += 1;
            // Occasionally reuse an in-range duplicate key, occasionally go
            // outside the range entirely.
            e.sort_key = rng.u64_below(key_range + 2) as i128 * 1_000_000 - 1_000_000;
            assert_eq!(
                queues.find_pos(acc, &e),
                queues.find_pos_linear(acc, &e),
                "case={case} probe={probe} key={}",
                e.sort_key
            );
        }
    }
}

/// Pops drain the queue in a policy-consistent order: for LL, popped
/// laxities are non-decreasing when popped back-to-back at one instant.
#[test]
fn ll_pops_in_laxity_order() {
    let mut rng = SplitMix64::new(0x11AA);
    for case in 0..64 {
        let n = 1 + rng.usize_below(19);
        let mut policy = PolicyKind::Ll.build();
        let mut queues = ReadyQueues::new(1);
        let mut entries: Vec<TaskEntry> = (0..n)
            .map(|i| {
                TaskEntry::new(
                    TaskKey::new(0, i as u32),
                    AccTypeId(0),
                    Dur::from_us(1 + rng.u64_below(99)),
                    Time::from_us(1 + rng.u64_below(999)),
                )
                .with_seq(i as u64)
            })
            .collect();
        policy.enqueue_ready(&mut queues, &mut entries, Time::ZERO, &[1]);
        let mut last = i128::MIN;
        while let Some(t) = policy.pop(&mut queues, AccTypeId(0), Time::ZERO) {
            assert!(t.laxity >= last, "case={case}");
            last = t.laxity;
        }
    }
}

/// LAX never pops a negative-laxity task while a non-negative one is
/// queued (unless the head is an escalated forwarding node).
#[test]
fn lax_never_prefers_doomed_tasks() {
    let mut rng = SplitMix64::new(0x22BB);
    for case in 0..64 {
        let n = 2 + rng.usize_below(18);
        let now = Time::from_us(rng.u64_below(400));
        let mut policy = PolicyKind::Lax.build();
        let mut queues = ReadyQueues::new(1);
        let mut entries: Vec<TaskEntry> = (0..n)
            .map(|i| {
                TaskEntry::new(
                    TaskKey::new(0, i as u32),
                    AccTypeId(0),
                    Dur::from_us(1 + rng.u64_below(499)),
                    Time::from_us(1 + rng.u64_below(599)),
                )
                .with_seq(i as u64)
            })
            .collect();
        policy.enqueue_ready(&mut queues, &mut entries, Time::ZERO, &[1]);
        while let Some(t) = policy.pop(&mut queues, AccTypeId(0), now) {
            if t.curr_laxity(now) < 0 {
                // Everything still queued must also be negative.
                assert!(
                    queues.queue(AccTypeId(0)).iter().all(|r| r.curr_laxity(now) < 0),
                    "case={case}: LAX popped a doomed task over a viable one"
                );
            }
        }
    }
}
