//! Property-based tests of the ready-queue invariants every policy must
//! preserve under arbitrary interleavings of batch insertions and pops.

use proptest::prelude::*;
use relief_core::{Policy, PolicyKind, ReadyQueues, TaskEntry, TaskKey};
use relief_dag::AccTypeId;
use relief_sim::{Dur, Time};

/// One scripted scheduler interaction.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a batch of tasks (runtime µs, deadline µs, fwd candidate).
    Enqueue(Vec<(u64, u64, bool)>),
    /// Pop for an idle accelerator.
    Pop,
    /// Advance the clock.
    Advance(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec((1u64..200, 1u64..2000, proptest::bool::ANY), 1..4)
            .prop_map(Op::Enqueue),
        Just(Op::Pop),
        (1u64..300).prop_map(Op::Advance),
    ]
}

/// Drives a policy through a script, checking invariants after each step.
fn drive(policy_kind: PolicyKind, script: Vec<Op>, idle: usize) -> Result<(), TestCaseError> {
    let mut policy = policy_kind.build();
    let mut queues = ReadyQueues::new(1);
    let acc = AccTypeId(0);
    let mut now = Time::ZERO;
    let mut next_node = 0u32;
    let mut seq = 0u64;
    let mut queued = 0usize;
    let mut idle_now = idle;

    for op in script {
        match op {
            Op::Enqueue(batch) => {
                let entries: Vec<TaskEntry> = batch
                    .into_iter()
                    .map(|(rt, ddl, fwd)| {
                        let mut e = TaskEntry::new(
                            TaskKey::new(0, next_node),
                            acc,
                            Dur::from_us(rt),
                            now + Dur::from_us(ddl),
                        )
                        .with_seq(seq);
                        next_node += 1;
                        seq += 1;
                        if fwd {
                            e = e.forwarding_candidate();
                        }
                        e
                    })
                    .collect();
                queued += entries.len();
                policy.enqueue_ready(&mut queues, entries, now, &[idle_now]);
            }
            Op::Pop => {
                let popped = policy.pop(&mut queues, acc, now);
                prop_assert_eq!(popped.is_some(), queued > 0, "pop iff non-empty");
                if popped.is_some() {
                    queued -= 1;
                    idle_now = idle_now.saturating_sub(1);
                }
            }
            Op::Advance(us) => now += Dur::from_us(us),
        }

        // Invariant 1: no entries lost or duplicated.
        prop_assert_eq!(queues.len(), queued);
        let q = queues.queue(acc);
        // Invariant 2: escalated entries form a prefix...
        let fwd_prefix = q.iter().take_while(|t| t.is_fwd).count();
        prop_assert!(
            q.iter().skip(fwd_prefix).all(|t| !t.is_fwd),
            "{policy_kind}: is_fwd entries must be a queue prefix"
        );
        // ...bounded by the idle budget.
        prop_assert!(
            fwd_prefix <= idle,
            "{policy_kind}: escalations ({fwd_prefix}) exceed idle budget ({idle})"
        );
        // Invariant 3: the non-escalated suffix is sorted by the policy's
        // key (laxity/deadline/seq), allowing equal keys.
        let sorted_by = |key: &dyn Fn(&TaskEntry) -> i128| {
            q.iter().skip(fwd_prefix).zip(q.iter().skip(fwd_prefix + 1)).all(|(a, b)| key(a) <= key(b))
        };
        let ok = match policy_kind {
            PolicyKind::Fcfs => sorted_by(&|t: &TaskEntry| t.seq as i128),
            PolicyKind::GedfD | PolicyKind::GedfN => {
                sorted_by(&|t: &TaskEntry| t.deadline.as_ps() as i128)
            }
            _ => sorted_by(&|t: &TaskEntry| t.laxity),
        };
        prop_assert!(ok, "{policy_kind}: queue must stay key-sorted");
        // Invariant 4: no task id appears twice.
        let mut keys: Vec<TaskKey> = q.iter().map(|t| t.key).collect();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), q.len());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn queue_invariants_hold_for_every_policy(
        script in prop::collection::vec(op_strategy(), 1..40),
        policy in prop::sample::select(
            PolicyKind::ALL.iter().copied().chain(PolicyKind::EXTENSIONS).collect::<Vec<_>>()
        ),
        idle in 0usize..3,
    ) {
        drive(policy, script, idle)?;
    }

    /// Pops drain the queue in a policy-consistent order: for LL, popped
    /// laxities are non-decreasing when popped back-to-back at one instant.
    #[test]
    fn ll_pops_in_laxity_order(
        runtimes in prop::collection::vec((1u64..100, 1u64..1000), 1..20),
    ) {
        let mut policy = PolicyKind::Ll.build();
        let mut queues = ReadyQueues::new(1);
        let entries: Vec<TaskEntry> = runtimes
            .iter()
            .enumerate()
            .map(|(i, &(rt, ddl))| {
                TaskEntry::new(
                    TaskKey::new(0, i as u32),
                    AccTypeId(0),
                    Dur::from_us(rt),
                    Time::from_us(ddl),
                )
                .with_seq(i as u64)
            })
            .collect();
        policy.enqueue_ready(&mut queues, entries, Time::ZERO, &[1]);
        let mut last = i128::MIN;
        while let Some(t) = policy.pop(&mut queues, AccTypeId(0), Time::ZERO) {
            prop_assert!(t.laxity >= last);
            last = t.laxity;
        }
    }

    /// LAX never pops a negative-laxity task while a non-negative one is
    /// queued (unless the head is an escalated forwarding node).
    #[test]
    fn lax_never_prefers_doomed_tasks(
        runtimes in prop::collection::vec((1u64..500, 1u64..600), 2..20),
        now_us in 0u64..400,
    ) {
        let mut policy = PolicyKind::Lax.build();
        let mut queues = ReadyQueues::new(1);
        let now = Time::from_us(now_us);
        let entries: Vec<TaskEntry> = runtimes
            .iter()
            .enumerate()
            .map(|(i, &(rt, ddl))| {
                TaskEntry::new(
                    TaskKey::new(0, i as u32),
                    AccTypeId(0),
                    Dur::from_us(rt),
                    Time::from_us(ddl),
                )
                .with_seq(i as u64)
            })
            .collect();
        policy.enqueue_ready(&mut queues, entries, Time::ZERO, &[1]);
        while let Some(t) = policy.pop(&mut queues, AccTypeId(0), now) {
            if t.curr_laxity(now) < 0 {
                // Everything still queued must also be negative.
                prop_assert!(
                    queues.queue(AccTypeId(0)).iter().all(|r| r.curr_laxity(now) < 0),
                    "LAX popped a doomed task over a viable one"
                );
            }
        }
    }
}
