//! Single-server resource timelines.
//!
//! A [`Timeline`] models a resource (a DMA engine, one direction of the
//! system bus, the DRAM channel) that serves one request at a time. Requests
//! reserve a contiguous service interval; a request arriving while the
//! resource is busy starts when the resource frees. Busy time is accumulated
//! so occupancy statistics (e.g. Fig. 13's interconnect occupancy) fall out
//! directly.

use crate::time::{Dur, Time};
use relief_trace::{EventKind, ResourceId, Tracer};

/// Accumulated utilization of a timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BusyStats {
    /// Total time the resource spent serving requests.
    pub busy: Dur,
    /// Number of reservations served.
    pub requests: u64,
    /// Total time requests waited before service began.
    pub queued: Dur,
}

/// A single-server resource that serves reservations in arrival order.
///
/// # Examples
///
/// ```
/// use relief_sim::{Timeline, Time, Dur};
/// let mut dma = Timeline::new();
/// let (s1, e1) = dma.reserve(Time::ZERO, Dur::from_ns(100));
/// assert_eq!((s1, e1), (Time::ZERO, Time::from_ns(100)));
/// // A second request at t=40ns queues behind the first.
/// let (s2, e2) = dma.reserve(Time::from_ns(40), Dur::from_ns(50));
/// assert_eq!((s2, e2), (Time::from_ns(100), Time::from_ns(150)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    free_at: Time,
    stats: BusyStats,
    tracer: Tracer,
    id: Option<ResourceId>,
}

impl Timeline {
    /// Creates an idle timeline at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a tracer and names this resource; every subsequent
    /// reservation (direct or joint) emits a `ResourceBusy` record.
    pub fn set_tracer(&mut self, tracer: Tracer, id: ResourceId) {
        self.tracer = tracer;
        self.id = Some(id);
    }

    /// Reserves `dur` of service starting no earlier than `now`, returning
    /// the `(start, end)` of the granted interval.
    pub fn reserve(&mut self, now: Time, dur: Dur) -> (Time, Time) {
        let start = now.max(self.free_at);
        self.reserve_from(now, start, dur)
    }

    /// Books `dur` of service beginning exactly at `start` (which must be
    /// at or after [`earliest_start`](Self::earliest_start)), charging
    /// queued time relative to `now`. The single accounting path shared by
    /// [`reserve`](Self::reserve), [`reserve_joint`], and callers that
    /// compute a correlated start themselves (the transfer engine's
    /// allocation-free chunk path) — so stats, tracer emission, and
    /// `free_at` updates cannot drift between them.
    pub fn reserve_from(&mut self, now: Time, start: Time, dur: Dur) -> (Time, Time) {
        debug_assert!(start >= self.earliest_start(now), "start predates availability");
        let end = start + dur;
        self.stats.busy += dur;
        self.stats.requests += 1;
        self.stats.queued += start.saturating_since(now);
        self.free_at = end;
        if let Some(resource) = self.id {
            self.tracer.emit(now.as_ps(), || EventKind::ResourceBusy {
                resource,
                start_ps: start.as_ps(),
                end_ps: end.as_ps(),
            });
        }
        (start, end)
    }

    /// Earliest instant at or after `now` when service could begin.
    pub fn earliest_start(&self, now: Time) -> Time {
        now.max(self.free_at)
    }

    /// Instant the resource becomes idle.
    pub fn free_at(&self) -> Time {
        self.free_at
    }

    /// True if the resource is idle at `now`.
    pub fn is_idle(&self, now: Time) -> bool {
        self.free_at <= now
    }

    /// Utilization statistics accumulated so far.
    pub fn stats(&self) -> BusyStats {
        self.stats
    }

    /// Occupancy in `[0, 1]` over a horizon of `total` simulated time.
    ///
    /// Returns 0 when `total` is zero.
    pub fn occupancy(&self, total: Dur) -> f64 {
        if total.is_zero() {
            0.0
        } else {
            (self.stats.busy.as_ps() as f64 / total.as_ps() as f64).min(1.0)
        }
    }
}

/// Reserves a correlated interval across several timelines, as when one bus
/// transaction simultaneously occupies the DRAM channel and a bus lane.
///
/// All resources begin service together at the latest `earliest_start`; each
/// is held for its own duration from `durs`. Returns `(start, end)` where
/// `end` is when the slowest resource finishes.
///
/// # Panics
///
/// Panics if `resources` and `durs` have different lengths or are empty.
pub fn reserve_joint(resources: &mut [&mut Timeline], durs: &[Dur], now: Time) -> (Time, Time) {
    assert_eq!(resources.len(), durs.len(), "one duration per resource");
    assert!(!resources.is_empty(), "need at least one resource");
    let start = resources.iter().fold(now, |acc, r| acc.max(r.earliest_start(now)));
    let mut end = start;
    for (r, &d) in resources.iter_mut().zip(durs) {
        let (_, e) = r.reserve_from(now, start, d);
        end = end.max(e);
    }
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_serves_immediately() {
        let mut t = Timeline::new();
        let (s, e) = t.reserve(Time::from_ns(10), Dur::from_ns(5));
        assert_eq!(s, Time::from_ns(10));
        assert_eq!(e, Time::from_ns(15));
        assert!(t.is_idle(Time::from_ns(15)));
        assert!(!t.is_idle(Time::from_ns(14)));
    }

    #[test]
    fn busy_resource_queues() {
        let mut t = Timeline::new();
        t.reserve(Time::ZERO, Dur::from_ns(100));
        let (s, e) = t.reserve(Time::from_ns(30), Dur::from_ns(10));
        assert_eq!(s, Time::from_ns(100));
        assert_eq!(e, Time::from_ns(110));
        assert_eq!(t.stats().queued, Dur::from_ns(70));
        assert_eq!(t.stats().requests, 2);
        assert_eq!(t.stats().busy, Dur::from_ns(110));
    }

    #[test]
    fn occupancy_fraction() {
        let mut t = Timeline::new();
        t.reserve(Time::ZERO, Dur::from_ns(25));
        assert_eq!(t.occupancy(Dur::from_ns(100)), 0.25);
        assert_eq!(t.occupancy(Dur::ZERO), 0.0);
    }

    #[test]
    fn joint_reservation_aligns_starts() {
        let mut dram = Timeline::new();
        let mut bus = Timeline::new();
        dram.reserve(Time::ZERO, Dur::from_ns(50)); // DRAM busy until 50ns
        let (s, e) = reserve_joint(
            &mut [&mut dram, &mut bus],
            &[Dur::from_ns(20), Dur::from_ns(10)],
            Time::from_ns(5),
        );
        assert_eq!(s, Time::from_ns(50));
        assert_eq!(e, Time::from_ns(70)); // slowest (DRAM) finishes last
        assert_eq!(bus.free_at(), Time::from_ns(60));
        assert_eq!(dram.free_at(), Time::from_ns(70));
    }

    #[test]
    fn joint_over_single_timeline_matches_reserve() {
        // The joint path over one resource must be indistinguishable from
        // a plain reserve: same intervals, same stats, same free_at.
        let mut plain = Timeline::new();
        let mut joint = Timeline::new();
        for &(now_ns, dur_ns) in &[(0u64, 100u64), (30, 10), (250, 40), (250, 5)] {
            let now = Time::from_ns(now_ns);
            let dur = Dur::from_ns(dur_ns);
            let a = plain.reserve(now, dur);
            let b = reserve_joint(&mut [&mut joint], &[dur], now);
            assert_eq!(a, b);
        }
        assert_eq!(plain.stats(), joint.stats());
        assert_eq!(plain.free_at(), joint.free_at());
    }

    #[test]
    #[should_panic(expected = "one duration per resource")]
    fn joint_reservation_validates_lengths() {
        let mut a = Timeline::new();
        reserve_joint(&mut [&mut a], &[], Time::ZERO);
    }
}
