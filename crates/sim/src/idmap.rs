//! Identity-hash maps for dense sequential integer keys.
//!
//! The simulator hands out sequential `u64` ids (transfer ids, event
//! handles) and looks them up on every event. SipHash is wasted effort on
//! keys that are already unique small integers, so hot-path maps use this
//! pass-through hasher instead: `write_u64` stores the key verbatim and
//! hashbrown's multiplicative mixing does the rest.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Pass-through [`Hasher`] for keys that hash with a single `write_u64`
/// (or narrower) call — newtypes over sequential integers.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("IdHasher keys must hash via integer writes");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }

    fn write_u32(&mut self, v: u32) {
        self.0 = u64::from(v);
    }

    fn write_usize(&mut self, v: usize) {
        self.0 = v as u64;
    }
}

/// A `HashMap` keyed by sequential integer ids, hashed by identity.
pub type IdHashMap<K, V> = HashMap<K, V, BuildHasherDefault<IdHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_a_map() {
        let mut m: IdHashMap<u64, &str> = IdHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&999), Some(&"x"));
        assert_eq!(m.remove(&0), Some("x"));
        assert!(!m.contains_key(&0));
    }

    #[test]
    fn narrow_integer_writes_hash() {
        let mut h = IdHasher::default();
        h.write_u32(7);
        assert_eq!(h.finish(), 7);
        let mut h = IdHasher::default();
        h.write_usize(9);
        assert_eq!(h.finish(), 9);
    }
}
