//! In-tree deterministic pseudo-random number generator.
//!
//! The sandboxed build has no network access, so the workspace cannot
//! depend on the `rand` crate. Everything that needs randomness (compute
//! jitter, synthetic DAG generation, randomized test drivers) uses this
//! [`SplitMix64`] generator instead. SplitMix64 is the standard 64-bit
//! mixing generator from Steele, Lea & Flood, "Fast Splittable
//! Pseudorandom Number Generators" (OOPSLA 2014): one add and three
//! xor-shift-multiply rounds per output, full 2^64 period, and — crucially
//! for this repo — a stable, portable output sequence that keeps every
//! simulation bit-reproducible across platforms and toolchains.
//!
//! # Examples
//!
//! ```
//! use relief_sim::SplitMix64;
//! let mut a = SplitMix64::new(42);
//! let mut b = SplitMix64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! assert!(a.f64_unit() < 1.0);
//! ```

/// Deterministic SplitMix64 pseudo-random generator.
///
/// Not cryptographically secure; intended for simulation jitter and test
/// workload generation only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed`. Equal seeds always produce
    /// equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, n)` using a widening multiply
    /// (Lemire's method without the rejection step; the residual bias is
    /// below `n / 2^64` and irrelevant for simulation purposes).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Returns a uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn u64_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "inverted range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.u64_below(span + 1)
    }

    /// Returns a uniform value in `[0, n)` as a `u32`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn u32_below(&mut self, n: u32) -> u32 {
        self.u64_below(n as u64) as u32
    }

    /// Returns a uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn usize_below(&mut self, n: usize) -> usize {
        self.u64_below(n as u64) as usize
    }

    /// Returns a uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform float in `[lo, hi)` (or exactly `lo` when the
    /// range is empty, e.g. a zero-jitter configuration).
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64_unit()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // First outputs for seed 1234567, cross-checked against the
        // published SplitMix64 reference implementation.
        let mut r = SplitMix64::new(1234567);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(first, vec![6457827717110365317, 3203168211198807973, 9817491932198370423]);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(10);
        assert_ne!(SplitMix64::new(9).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.u64_below(7) < 7);
            let v = r.u64_inclusive(10, 20);
            assert!((10..=20).contains(&v));
            assert!(r.u32_below(3) < 3);
            assert!(r.usize_below(5) < 5);
            let f = r.f64_unit();
            assert!((0.0..1.0).contains(&f));
            let j = r.f64_range(-0.5, 0.5);
            assert!((-0.5..0.5).contains(&j));
        }
    }

    #[test]
    fn degenerate_ranges() {
        let mut r = SplitMix64::new(0);
        assert_eq!(r.u64_inclusive(4, 4), 4);
        assert_eq!(r.f64_range(1.5, 1.5), 1.5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn rough_uniformity() {
        // 10k draws over 8 buckets: every bucket within 30% of expected.
        let mut r = SplitMix64::new(77);
        let mut buckets = [0u32; 8];
        for _ in 0..10_000 {
            buckets[r.usize_below(8)] += 1;
        }
        for b in buckets {
            assert!((875..=1625).contains(&b), "bucket count {b}");
        }
    }
}
