//! Simulated time in integer picoseconds.
//!
//! [`Time`] is an absolute instant; [`Dur`] is a span between instants. Both
//! wrap a `u64`/`i64`-free `u64` picosecond count, giving exact arithmetic
//! for every quantity in the paper (Table I compute times are ≥ tens of
//! nanoseconds; DRAM/bus byte times are fractions of a nanosecond).
//!
//! One picosecond granularity with `u64` storage covers about 213 days of
//! simulated time — far beyond the paper's 50 ms continuous-contention cap.

// Arithmetic here `expect`s on checked ops by design: silent wraparound of
// simulated time would corrupt every downstream statistic, so overflow is
// a simulator bug that must stop the run.
#![allow(clippy::expect_used)]
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds in one nanosecond.
const PS_PER_NS: u64 = 1_000;
/// Picoseconds in one microsecond.
const PS_PER_US: u64 = 1_000_000;
/// Picoseconds in one millisecond.
const PS_PER_MS: u64 = 1_000_000_000;

/// An absolute simulated instant, counted in picoseconds from simulation
/// start.
///
/// # Examples
///
/// ```
/// use relief_sim::{Time, Dur};
/// let t = Time::from_us(2) + Dur::from_ns(500);
/// assert_eq!(t.as_ps(), 2_500_000);
/// assert_eq!(t.as_us_f64(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Time(u64);

/// A span of simulated time, counted in picoseconds.
///
/// # Examples
///
/// ```
/// use relief_sim::Dur;
/// let d = Dur::from_us(3) + Dur::from_ns(250);
/// assert_eq!(d.as_ns_f64(), 3_250.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dur(u64);

impl Time {
    /// The simulation epoch (t = 0).
    pub const ZERO: Time = Time(0);
    /// The greatest representable instant; useful as an "unreachable" deadline.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }
    /// Creates an instant from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * PS_PER_NS)
    }
    /// Creates an instant from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Time(us * PS_PER_US)
    }
    /// Creates an instant from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * PS_PER_MS)
    }
    /// Creates an instant from fractional microseconds (e.g. Table I values).
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_us_f64(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "time must be finite and non-negative");
        Time((us * PS_PER_US as f64).round() as u64)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// This instant expressed in fractional nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    /// This instant expressed in fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// This instant expressed in fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// Span since an earlier instant, saturating to zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Signed distance to a deadline, in picoseconds (`deadline − self`);
    /// negative when the deadline has passed. This is the building block of
    /// laxity (Eq. 1 in the paper).
    pub fn signed_until(self, deadline: Time) -> i128 {
        deadline.0 as i128 - self.0 as i128
    }

    /// The later of two instants.
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
    /// The earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Dur {
    /// Zero-length span.
    pub const ZERO: Dur = Dur(0);

    /// Creates a span from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Dur(ps)
    }
    /// Creates a span from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Dur(ns * PS_PER_NS)
    }
    /// Creates a span from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Dur(us * PS_PER_US)
    }
    /// Creates a span from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Dur(ms * PS_PER_MS)
    }
    /// Creates a span from fractional microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_us_f64(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "duration must be finite and non-negative");
        Dur((us * PS_PER_US as f64).round() as u64)
    }

    /// Time to move `bytes` at `bytes_per_sec`, rounded up to a picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn for_bytes(bytes: u64, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        // ps = bytes * 1e12 / bytes_per_sec, computed in u128 to avoid overflow.
        let ps = (bytes as u128 * 1_000_000_000_000u128).div_ceil(bytes_per_sec as u128);
        Dur(ps.min(u64::MAX as u128) as u64)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// This span in fractional nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    /// This span in fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// This span in fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }
    /// This span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// True for a zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two spans.
    pub fn max(self, other: Dur) -> Dur {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Span scaled by a non-negative factor, rounding to a picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> Dur {
        assert!(factor.is_finite() && factor >= 0.0, "scale factor must be finite and non-negative");
        Dur((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0.checked_add(rhs.0).expect("simulated time overflow"))
    }
}
impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}
impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0.checked_sub(rhs.0).expect("simulated time underflow"))
    }
}
impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("negative duration; use saturating_since"))
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}
impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}
impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}
impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}
impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}
impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}
impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}
impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Time::from_ns(1).as_ps(), 1_000);
        assert_eq!(Time::from_us(1).as_ps(), 1_000_000);
        assert_eq!(Time::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(Time::from_us_f64(30.45).as_us_f64(), 30.45);
        assert_eq!(Dur::from_us_f64(1545.61).as_us_f64(), 1545.61);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_us(10);
        let d = Dur::from_us(3);
        assert_eq!(t + d, Time::from_us(13));
        assert_eq!((t + d) - d, t);
        assert_eq!(Time::from_us(13) - Time::from_us(10), Dur::from_us(3));
        assert_eq!(Dur::from_us(2) * 5, Dur::from_us(10));
        assert_eq!(Dur::from_us(10) / 4, Dur::from_ps(2_500_000));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = Time::from_us(5);
        let b = Time::from_us(9);
        assert_eq!(b.saturating_since(a), Dur::from_us(4));
        assert_eq!(a.saturating_since(b), Dur::ZERO);
    }

    #[test]
    fn signed_until_is_signed() {
        let now = Time::from_us(10);
        assert_eq!(now.signed_until(Time::from_us(12)), 2_000_000);
        assert_eq!(now.signed_until(Time::from_us(8)), -2_000_000);
    }

    #[test]
    fn bytes_at_bandwidth() {
        // 12.8 GB/s: one 64 B cache line takes 5 ns.
        let d = Dur::for_bytes(64, 12_800_000_000);
        assert_eq!(d.as_ps(), 5_000);
        // Rounds up: 1 byte at 3 B/s is ceil(1e12/3) ps.
        assert_eq!(Dur::for_bytes(1, 3).as_ps(), 333_333_333_334);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = Dur::for_bytes(1, 0);
    }

    #[test]
    fn scale_rounds() {
        assert_eq!(Dur::from_ps(10).scale(0.25), Dur::from_ps(3)); // 2.5 rounds to 3
        assert_eq!(Dur::from_us(100).scale(1.5), Dur::from_us(150));
    }

    #[test]
    fn sum_of_durations() {
        let total: Dur = [Dur::from_us(1), Dur::from_us(2), Dur::from_us(3)].into_iter().sum();
        assert_eq!(total, Dur::from_us(6));
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(Time::from_us_f64(30.45).to_string(), "30.450us");
        assert_eq!(Dur::from_ns(1500).to_string(), "1.500us");
    }

    #[test]
    fn ordering() {
        assert!(Time::from_ns(1) < Time::from_ns(2));
        assert!(Dur::from_ns(5).max(Dur::from_ns(3)) == Dur::from_ns(5));
        assert!(Time::from_ns(5).min(Time::from_ns(3)) == Time::from_ns(3));
    }
}
