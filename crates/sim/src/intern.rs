//! String interning for hot-loop identities.
//!
//! The dispatch loop accounts per-application and per-kernel-kind state
//! millions of times per run; hashing `String` keys there dominates the
//! accounting cost. An [`Intern`] table maps each distinct symbol to a
//! dense `u32`-backed id exactly once, so the hot loop indexes plain
//! `Vec`s and the string form is only reconstructed when results are
//! converted to their public string-keyed maps at end of run.
//!
//! Ids are dense (`0..len`) in first-interning order, which makes them
//! directly usable as `Vec` indices. Two typed ids are provided for the
//! simulator's two hot identity spaces: [`AppId`] (application/workload
//! symbols) and [`KindId`] (kernel-kind labels fed to the compute-time
//! predictor).
//!
//! # Examples
//!
//! ```
//! use relief_sim::{AppId, Intern};
//!
//! let mut apps: Intern<AppId> = Intern::new();
//! let a = apps.intern("resnet50");
//! let b = apps.intern("bert");
//! assert_eq!(apps.intern("resnet50"), a); // stable on re-intern
//! assert_eq!(apps.resolve(b), "bert");
//! assert_eq!(apps.len(), 2);
//! ```

use std::collections::HashMap;

/// A dense `u32`-backed identifier produced by an [`Intern`] table.
pub trait InternId: Copy {
    /// Wraps a raw dense index.
    fn from_index(index: u32) -> Self;
    /// Unwraps back to the dense index.
    fn index(self) -> usize;
}

macro_rules! intern_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl InternId for $name {
            fn from_index(index: u32) -> Self {
                $name(index)
            }
            fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

intern_id! {
    /// Interned application/workload symbol (e.g. `"resnet50"`).
    AppId
}
intern_id! {
    /// Interned kernel-kind label fed to the compute-time predictor.
    KindId
}

/// A symbol table mapping strings to dense typed ids and back.
///
/// `intern` is amortized O(1) (one hash lookup; one `String` clone only
/// on first sight of a symbol); `resolve` is an array index.
#[derive(Debug, Clone)]
pub struct Intern<K> {
    by_name: HashMap<String, K>,
    names: Vec<String>,
}

impl<K> Default for Intern<K> {
    fn default() -> Self {
        Intern { by_name: HashMap::new(), names: Vec::new() }
    }
}

impl<K: InternId> Intern<K> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, allocating the next dense id on first
    /// sight. Ids are stable for the lifetime of the table.
    pub fn intern(&mut self, name: &str) -> K {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = K::from_index(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned symbol without allocating an id.
    pub fn get(&self, name: &str) -> Option<K> {
        self.by_name.get(name).copied()
    }

    /// The string form of `id`.
    ///
    /// # Panics
    /// Panics if `id` did not come from this table.
    pub fn resolve(&self, id: K) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct symbols interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in dense-id order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (K::from_index(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut t: Intern<AppId> = Intern::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        let a2 = t.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t: Intern<KindId> = Intern::new();
        let names = ["conv", "gemm", "pool", "conv"];
        let ids: Vec<KindId> = names.iter().map(|n| t.intern(n)).collect();
        for (id, name) in ids.iter().zip(names) {
            assert_eq!(t.resolve(*id), name);
        }
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn get_does_not_allocate_ids() {
        let mut t: Intern<AppId> = Intern::new();
        assert_eq!(t.get("missing"), None);
        let id = t.intern("present");
        assert_eq!(t.get("present"), Some(id));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_is_dense_order() {
        let mut t: Intern<KindId> = Intern::new();
        t.intern("x");
        t.intern("y");
        let pairs: Vec<(usize, String)> =
            t.iter().map(|(id, n)| (id.index(), n.to_owned())).collect();
        assert_eq!(pairs, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }
}
