//! Typed no-progress failure for simulation watchdogs.
//!
//! A discrete-event simulation that deadlocks does not hang — it either
//! drains its queue with work left behind, or spins dispatching events
//! that never advance any task. Both are bugs in the model (or the
//! fault-injection layer driving it), and both used to surface as a
//! wrong-looking result or an unbounded loop. The watchdog in
//! `relief-accel` converts them into a [`StallError`] carrying a
//! diagnostic dump assembled at detection time, so a chaos campaign can
//! fail one cell loudly instead of wedging the whole run.

use std::fmt;

/// Why the watchdog declared the simulation stalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// The event queue drained while unfinished, non-abandoned work
    /// remained — a dependency or bookkeeping deadlock.
    DrainedWithWorkLeft,
    /// More than the configured window of events were dispatched without
    /// any task, transfer, or arrival making progress — a livelock.
    NoProgressWindow,
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StallKind::DrainedWithWorkLeft => write!(f, "event queue drained with work left"),
            StallKind::NoProgressWindow => write!(f, "no progress within watchdog window"),
        }
    }
}

/// A detected simulation stall: the kind, when it was detected, how many
/// events had been dispatched, and a free-form diagnostic dump (queue
/// depths, in-flight transfers, quarantine set) assembled by the layer
/// that owns that state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallError {
    /// What kind of stall was detected.
    pub kind: StallKind,
    /// Simulated time at detection, picoseconds.
    pub at_ps: u64,
    /// Events dispatched up to detection.
    pub events_dispatched: u64,
    /// Multi-line diagnostic dump of the stalled state.
    pub dump: String,
}

impl fmt::Display for StallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation stalled at {} ps after {} events: {}\n{}",
            self.at_ps, self.events_dispatched, self.kind, self.dump
        )
    }
}

impl std::error::Error for StallError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_kind_and_dump() {
        let e = StallError {
            kind: StallKind::NoProgressWindow,
            at_ps: 1234,
            events_dispatched: 99,
            dump: "queues: [3, 0]".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("stalled at 1234 ps"));
        assert!(s.contains("after 99 events"));
        assert!(s.contains("no progress within watchdog window"));
        assert!(s.contains("queues: [3, 0]"));
        assert_eq!(
            StallKind::DrainedWithWorkLeft.to_string(),
            "event queue drained with work left"
        );
    }
}
