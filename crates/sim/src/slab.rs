//! Generation-checked slot allocation for slab arenas.
//!
//! A [`SlotAlloc`] hands out dense `u32` slot indices with free-list
//! reuse: arena columns (parallel `Vec`s indexed by slot) stay compact,
//! lookups are a bounds check instead of a hash probe, and steady-state
//! alloc/release cycles never touch the allocator once the columns have
//! grown to the high-water mark. Each slot carries a generation counter
//! that is bumped on release; [`SlotAlloc::check`] validates a stored
//! `(slot, generation)` handle against it in debug builds, catching
//! stale-handle bugs that dense indices would otherwise silently alias
//! to whatever reused the slot.

/// Dense slot allocator with free-list reuse and per-slot generations.
#[derive(Debug, Clone, Default)]
pub struct SlotAlloc {
    /// Current generation of each slot ever allocated.
    gens: Vec<u32>,
    /// Released slots available for reuse (LIFO, so hot slots stay hot).
    free: Vec<u32>,
}

impl SlotAlloc {
    /// Creates an empty allocator.
    #[must_use]
    pub fn new() -> Self {
        SlotAlloc::default()
    }

    /// Allocates a slot, reusing a released one when available.
    /// Returns `(slot, generation)`; a freshly grown slot starts at
    /// generation 0. When the slot index equals the previous
    /// [`SlotAlloc::slots`] the caller must grow its columns by one.
    pub fn alloc(&mut self) -> (u32, u32) {
        match self.free.pop() {
            Some(slot) => (slot, self.gens[slot as usize]),
            None => {
                let slot = u32::try_from(self.gens.len())
                    .unwrap_or_else(|_| panic!("slab exceeded u32 slot space"));
                self.gens.push(0);
                (slot, 0)
            }
        }
    }

    /// Releases a slot for reuse, invalidating every outstanding handle
    /// to it (the generation is bumped).
    ///
    /// # Panics
    ///
    /// Debug builds panic when `(slot, generation)` is stale or unknown.
    pub fn release(&mut self, slot: u32, generation: u32) {
        self.check(slot, generation);
        self.gens[slot as usize] = self.gens[slot as usize].wrapping_add(1);
        self.free.push(slot);
    }

    /// Validates a handle against the slot's current generation: a
    /// mismatch means the handle outlived its allocation. Debug builds
    /// panic; release builds compile to nothing (the dense index is
    /// trusted on the hot path).
    #[inline]
    pub fn check(&self, slot: u32, generation: u32) {
        debug_assert_eq!(
            self.gens.get(slot as usize).copied(),
            Some(generation),
            "stale slab handle: slot {slot} generation {generation}",
        );
        let _ = (slot, generation);
    }

    /// True when `(slot, generation)` is the slot's current allocation —
    /// the non-panicking counterpart of [`SlotAlloc::check`] for callers
    /// that must tolerate stale handles (e.g. an event arriving for a
    /// transfer that was cancelled in the meantime). Only meaningful for
    /// handles previously returned by [`SlotAlloc::alloc`]: a released
    /// slot's bumped generation has not been handed out yet, so no caller
    /// can hold it.
    #[must_use]
    pub fn is_live(&self, slot: u32, generation: u32) -> bool {
        self.gens.get(slot as usize).copied() == Some(generation)
    }

    /// Number of slots ever allocated — the column length the caller's
    /// arena must maintain.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.gens.len()
    }

    /// Number of currently live (allocated, unreleased) slots.
    #[must_use]
    pub fn live(&self) -> usize {
        self.gens.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_then_reuses_lifo() {
        let mut a = SlotAlloc::new();
        assert_eq!(a.alloc(), (0, 0));
        assert_eq!(a.alloc(), (1, 0));
        assert_eq!(a.alloc(), (2, 0));
        assert_eq!((a.slots(), a.live()), (3, 3));
        a.release(1, 0);
        a.release(2, 0);
        // LIFO reuse: the most recently released slot comes back first,
        // at a bumped generation.
        assert_eq!(a.alloc(), (2, 1));
        assert_eq!(a.alloc(), (1, 1));
        // Exhausted free list grows again.
        assert_eq!(a.alloc(), (3, 0));
        assert_eq!((a.slots(), a.live()), (4, 4));
    }

    #[test]
    fn live_tracks_releases() {
        let mut a = SlotAlloc::new();
        let (s0, g0) = a.alloc();
        let (s1, g1) = a.alloc();
        assert_eq!(a.live(), 2);
        a.release(s0, g0);
        assert_eq!(a.live(), 1);
        a.release(s1, g1);
        assert_eq!(a.live(), 0);
        assert_eq!(a.slots(), 2, "slots() is the high-water mark, not the live count");
    }

    #[test]
    fn is_live_rejects_released_handles() {
        let mut a = SlotAlloc::new();
        let (slot, generation) = a.alloc();
        assert!(a.is_live(slot, generation));
        a.release(slot, generation);
        assert!(!a.is_live(slot, generation));
        let (slot2, gen2) = a.alloc();
        assert_eq!(slot2, slot);
        assert!(a.is_live(slot2, gen2));
        assert!(!a.is_live(slot, generation), "old generation stays dead after reuse");
        assert!(!a.is_live(99, 0), "unknown slots are not live");
    }

    #[test]
    fn check_accepts_live_handles() {
        let mut a = SlotAlloc::new();
        let (slot, generation) = a.alloc();
        a.check(slot, generation); // must not panic
        a.release(slot, generation);
        let (slot2, gen2) = a.alloc();
        assert_eq!(slot2, slot);
        a.check(slot2, gen2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale slab handle")]
    fn stale_handle_fires_debug_assertion() {
        let mut a = SlotAlloc::new();
        let (slot, generation) = a.alloc();
        a.release(slot, generation);
        // The slot was reused under a new generation; the old handle is
        // stale and must be rejected.
        let _ = a.alloc();
        a.check(slot, generation);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale slab handle")]
    fn unknown_slot_fires_debug_assertion() {
        let a = SlotAlloc::new();
        a.check(7, 0);
    }
}
