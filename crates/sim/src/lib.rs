//! Deterministic discrete-event simulation kernel for the RELIEF SoC model.
//!
//! This crate provides the three primitives every component of the simulated
//! SoC is built on:
//!
//! * [`Time`] / [`Dur`] — simulated time as integer picoseconds, so that
//!   bandwidth arithmetic on sub-nanosecond bus transactions stays exact.
//! * [`EventQueue`] — a priority queue of `(Time, sequence, E)` entries with
//!   deterministic FIFO tie-breaking.
//! * [`Timeline`] — a single-server resource model used for DMA engines,
//!   interconnect lanes, and the DRAM channel.
//!
//! The kernel is intentionally free of wall-clock access, threads, and global
//! state: given the same inputs, a simulation always produces the same event
//! trace.
//!
//! # Examples
//!
//! ```
//! use relief_sim::{EventQueue, Time, Dur};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(Time::from_ns(20), "late");
//! q.push(Time::from_ns(10), "early");
//! q.push(Time::from_ns(10), "early-second");
//!
//! assert_eq!(q.pop(), Some((Time::from_ns(10), "early")));
//! assert_eq!(q.pop(), Some((Time::from_ns(10), "early-second")));
//! assert_eq!(q.pop(), Some((Time::from_ns(20), "late")));
//! assert_eq!(q.pop(), None);
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]


pub mod idmap;
pub mod intern;
pub mod queue;
pub mod rng;
pub mod slab;
pub mod stall;
pub mod time;
pub mod timeline;

pub use idmap::{IdHashMap, IdHasher};
pub use intern::{AppId, Intern, InternId, KindId};
pub use queue::EventQueue;
pub use rng::SplitMix64;
pub use slab::SlotAlloc;
pub use stall::{StallError, StallKind};
pub use time::{Dur, Time};
pub use timeline::{BusyStats, Timeline};

// Thread-safety audit: the campaign engine moves these values across
// worker threads, so losing `Send + Sync` (e.g. by adding an `Rc` field)
// must fail the build here rather than in a downstream crate.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Time>();
    assert_send_sync::<Dur>();
    assert_send_sync::<SplitMix64>();
};
