//! Deterministic event queue.

use crate::time::Time;
use relief_trace::{EventKind, Tracer};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry: fire time, insertion sequence, payload.
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, on ties, the
        // first-inserted) entry surfaces first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timed events with deterministic FIFO tie-breaking.
///
/// Events scheduled for the same instant are delivered in insertion order,
/// which keeps simulations reproducible regardless of heap internals.
///
/// # Examples
///
/// ```
/// use relief_sim::{EventQueue, Time};
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(5), 'b');
/// q.push(Time::from_ns(1), 'a');
/// assert_eq!(q.peek_time(), Some(Time::from_ns(1)));
/// assert_eq!(q.pop(), Some((Time::from_ns(1), 'a')));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    popped: u64,
    tracer: Tracer,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, popped: 0, tracer: Tracer::off() }
    }

    /// Attaches a tracer; every subsequent [`EventQueue::pop`] emits an
    /// `EventDispatched` record at the popped event's fire time.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| {
            let index = self.popped;
            self.popped += 1;
            self.tracer.emit(e.at.as_ps(), || EventKind::EventDispatched { index });
            (e.at, e.event)
        })
    }

    /// Fire time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far (dispatch counter).
    pub fn dispatched(&self) -> u64 {
        self.popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("dispatched", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), 3);
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), "a");
        q.push(Time::from_ns(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(Time::from_ns(7), "c");
        q.push(Time::from_ns(7), "d");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
        assert_eq!(q.pop().unwrap().1, "a");
        assert!(q.is_empty());
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.push(Time::ZERO, ());
        q.push(Time::ZERO, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.dispatched(), 1);
        assert_eq!(q.peek_time(), Some(Time::ZERO));
    }
}
