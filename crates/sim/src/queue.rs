//! Deterministic event queue: a hierarchical calendar (two-rung ladder)
//! structure with O(1)-amortized scheduling.
//!
//! # Structure
//!
//! Pending events live in exactly one of three rungs, ordered by how far
//! in the future they fire:
//!
//! 1. **`near`** — a small vector kept sorted descending on the full
//!    `(time, seq)` key, so the global minimum sits at the back and a pop
//!    is a plain `Vec::pop`. It holds every event that maps to the bucket
//!    currently being drained (or earlier). Pops come only from here.
//! 2. **`buckets`** — a calendar of [`NUM_BUCKETS`] unsorted bins of
//!    width `2^width_shift` picoseconds covering the window
//!    `[base, base + NUM_BUCKETS << width_shift)`. Insertion is O(1):
//!    index arithmetic plus a `Vec::push`.
//! 3. **`overflow`** — an unsorted spill list for events at or beyond the
//!    window's end.
//!
//! # Adaptive engagement
//!
//! A sorted vector of a few dozen entries fits in a handful of cache
//! lines, pops for free off the back, and inserts with one binary search
//! plus a short `memmove` — no bucket scheme beats it there, and the SoC
//! model's queues usually idle at that size. The calendar therefore
//! **engages only under load**: below [`ENGAGE_THRESHOLD`] pending events
//! everything lives in `near` and the queue *is* the sorted vector (one
//! predictable branch per operation of overhead). When a push grows the
//! population past the threshold, the rung's contents are redistributed
//! into the calendar in one O(n) pass and subsequent scheduling is
//! O(1)-amortized regardless of population — insertion shifts stay
//! bounded by a single bin's occupancy. When the queue fully drains it
//! falls back to sorted-vector mode. Pop order is identical in both
//! regimes (the ordering argument below does not depend on when
//! engagement happens), so the switch is invisible to the simulation.
//!
//! When `near` and every bucket are exhausted the window is **rebuilt**
//! from the overflow: the new `base` is the overflow's minimum fire time
//! and the bucket width is re-derived from the overflow's *average
//! inter-event gap* (span over population, the classic calendar-queue
//! sizing rule), so bucket occupancy tracks the actual event-time
//! distribution instead of a fixed guess. Sizing by the average gap —
//! rather than fitting the whole span into the window — makes the window
//! extend roughly `NUM_BUCKETS` expected events into the future, which
//! keeps subsequent pushes landing in O(1) bins instead of the overflow
//! and makes rebuilds rare. Each event is therefore touched a constant
//! number of times — one bucket insert, one sort share when its bucket
//! is promoted to `near`, one back-of-vector pop — which is the classic
//! calendar-queue amortized O(1) argument (the sort is logarithmic only
//! in the *bucket* population, not the queue population).
//!
//! # Ordering proof sketch
//!
//! Total order is `(time, seq)` with `seq` unique and monotonically
//! increasing, so FIFO-among-equals is exactly the order the key encodes.
//! Three invariants make pops globally minimal:
//!
//! * every event in `buckets[i]` satisfies
//!   `base + (i << width_shift) <= t < base + ((i+1) << width_shift)`;
//! * every event in `overflow` fires at or after the window's end;
//! * every event whose bucket index is `<= cur_bucket` (including
//!   pushes into the past, which a requeue at the current instant can
//!   produce) is routed to `near` instead of a bucket.
//!
//! Together these give strict time separation between the rungs:
//! `max(near) < min(buckets beyond cur_bucket) <= min(overflow)` can only
//! be violated on `time`, never merely on `seq`, because bucket
//! boundaries are half-open. Hence the `near` heap — which orders by the
//! full key — always surfaces the global `(time, seq)` minimum, and the
//! pop sequence is identical to a total sort of the push stream. The
//! `queue::tests` property suite pins this against a [`BinaryHeap`]
//! oracle, including same-instant requeues.

use crate::time::Time;
use relief_trace::{EventKind, Tracer};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Number of calendar bins. A power of two keeps index arithmetic to a
/// shift; 256 bins cover the pending-event populations the SoC model
/// produces (tens to a few thousand) at roughly constant occupancy.
const NUM_BUCKETS: usize = 256;

/// Upper bound on the bucket-width exponent: `NUM_BUCKETS << shift` must
/// not overflow `u64`, and anything wider than 2^48 ps (~4.6 min of
/// simulated time per bin) has stopped discriminating anyway.
const MAX_WIDTH_SHIFT: u32 = 48;

/// Pending-event population at which the calendar engages. Below this a
/// plain binary heap is faster (fewer than `log2(128) = 7` comparisons
/// per operation, all within two cache lines), so the queue stays in
/// heap mode; above it, bucket scheduling amortizes to O(1) while heap
/// costs keep growing logarithmically.
const ENGAGE_THRESHOLD: usize = 128;

/// One scheduled entry: fire time, insertion sequence, payload.
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, on ties, the
        // first-inserted) entry surfaces first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timed events with deterministic FIFO tie-breaking.
///
/// Events scheduled for the same instant are delivered in insertion order,
/// which keeps simulations reproducible regardless of the calendar's
/// internal bucketing.
///
/// # Examples
///
/// ```
/// use relief_sim::{EventQueue, Time};
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(5), 'b');
/// q.push(Time::from_ns(1), 'a');
/// assert_eq!(q.peek_time(), Some(Time::from_ns(1)));
/// assert_eq!(q.pop(), Some((Time::from_ns(1), 'a')));
/// ```
pub struct EventQueue<E> {
    /// Rung 1: the bucket being drained, sorted *descending* by
    /// `(at, seq)` so the global minimum sits at the back and pops are a
    /// branch-free `Vec::pop`. Kept sorted by binary-search insertion;
    /// bucket promotions bulk-sort instead (one cache-friendly
    /// `sort_unstable` beats heapify-then-N-sift-downs, and the drain
    /// side becomes O(1) per event).
    near: Vec<Entry<E>>,
    /// Reference-mode storage: the pre-calendar binary heap, exercised
    /// only by [`EventQueue::reference`] queues.
    heap: BinaryHeap<Entry<E>>,
    /// Rung 2: the calendar window (unsorted bins).
    buckets: Vec<Vec<Entry<E>>>,
    /// Rung 3: events at or beyond the window end (unsorted).
    overflow: Vec<Entry<E>>,
    /// Scratch for window rebuilds (events past the *new* window); kept
    /// around so rebuilds allocate nothing in steady state.
    spill: Vec<Entry<E>>,
    /// First instant covered by the window.
    base_ps: u64,
    /// log2 of the bucket width in picoseconds.
    width_shift: u32,
    /// Bucket currently promoted into `near`; bins before it are empty.
    cur_bucket: usize,
    /// Events currently resident in calendar bins (lets `replenish_near`
    /// skip the bin scan entirely when the calendar is empty).
    in_buckets: usize,
    /// Pending events across all three rungs.
    len: usize,
    /// Whether the calendar is engaged (see "Adaptive engagement"). While
    /// false, every event lives in `near` and the queue is a plain heap.
    engaged: bool,
    /// Routes everything through `near` alone — the pre-calendar
    /// [`BinaryHeap`] implementation, kept as the wall-clock benchmark's
    /// reference cost model (behaviour is identical either way).
    reference_heap: bool,
    next_seq: u64,
    popped: u64,
    tracer: Tracer,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            near: Vec::new(),
            heap: BinaryHeap::new(),
            buckets: Vec::new(), // allocated lazily on the first window rebuild
            overflow: Vec::new(),
            spill: Vec::new(),
            base_ps: 0,
            width_shift: 0,
            cur_bucket: 0,
            in_buckets: 0,
            len: 0,
            engaged: false,
            reference_heap: false,
            next_seq: 0,
            popped: 0,
            tracer: Tracer::off(),
        }
    }

    /// Creates an empty queue that runs on the pre-calendar binary-heap
    /// path. Pop order is identical to [`EventQueue::new`] by
    /// construction; only the host-side cost differs. Used by the
    /// wall-clock benchmark's reference mode.
    pub fn reference() -> Self {
        EventQueue { reference_heap: true, ..EventQueue::new() }
    }

    /// Attaches a tracer; every subsequent [`EventQueue::pop`] emits an
    /// `EventDispatched` record at the popped event's fire time.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.next_seq;
        // A wrapped sequence counter would silently break FIFO-among-
        // equals; at one event per picosecond that is >200 days of
        // simulated time, so treat it as a simulator bug.
        debug_assert!(seq != u64::MAX, "event sequence counter about to wrap");
        self.next_seq += 1;
        let entry = Entry { at, seq, event };
        self.len += 1;
        if self.reference_heap {
            self.heap.push(entry);
            return;
        }
        if !self.engaged {
            // Heap mode: everything lives in `near`.
            self.insert_near(entry);
            if self.len >= ENGAGE_THRESHOLD {
                self.engage();
            }
            return;
        }
        let t = at.as_ps();
        if t < self.base_ps {
            self.insert_near(entry);
            return;
        }
        let idx = ((t - self.base_ps) >> self.width_shift) as usize;
        if idx <= self.cur_bucket {
            // The bin is already (being) drained — including same-instant
            // requeues; keep it in `near` so ordering is exact.
            self.insert_near(entry);
        } else if idx < NUM_BUCKETS {
            self.buckets[idx].push(entry);
            self.in_buckets += 1;
        } else {
            self.overflow.push(entry);
        }
    }

    /// Inserts into the sorted `near` rung at the position its
    /// `(at, seq)` key demands. The shift cost is bounded by the rung's
    /// population — one calendar bin once engaged — and a same-instant
    /// requeue (the common in-dispatch push) lands next to the back.
    fn insert_near(&mut self, entry: Entry<E>) {
        let key = (entry.at, entry.seq);
        let pos = self.near.partition_point(|e| (e.at, e.seq) > key);
        self.near.insert(pos, entry);
    }

    /// Switches from heap mode to calendar mode: redistributes the heap's
    /// population into a freshly sized window in one O(n) pass.
    #[cold]
    #[inline(never)]
    fn engage(&mut self) {
        debug_assert!(!self.engaged && self.in_buckets == 0 && self.overflow.is_empty());
        self.engaged = true;
        let mut drained = std::mem::take(&mut self.near);
        self.overflow.append(&mut drained);
        // Keep the drained buffer's capacity for the rebuild scratch if
        // it beats what is already there.
        if drained.capacity() > self.spill.capacity() {
            self.spill = drained;
        }
        self.rebuild_window();
    }

    /// Moves the earliest pending entry into `near`, promoting the next
    /// non-empty bucket or rebuilding the window from the overflow as
    /// needed. After this returns, `near` is non-empty iff `len > 0`.
    #[cold]
    #[inline(never)]
    fn replenish_near(&mut self) {
        while self.near.is_empty() {
            // Promote the next non-empty bucket, keeping both the rung's
            // and the bin's allocations alive across the swap. One bulk
            // sort (descending, so pops come off the back) replaces the
            // old heapify + per-pop sift-downs.
            if self.in_buckets > 0 {
                let i = (self.cur_bucket + 1..self.buckets.len())
                    .find(|&i| !self.buckets[i].is_empty())
                    .unwrap_or_else(|| unreachable!("in_buckets > 0 with empty calendar"));
                self.cur_bucket = i;
                let mut bin = std::mem::take(&mut self.buckets[i]);
                self.in_buckets -= bin.len();
                bin.sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
                self.buckets[i] = std::mem::replace(&mut self.near, bin);
                return;
            }
            if self.overflow.is_empty() {
                // Fully drained: fall back to heap mode so the next burst
                // of light-load scheduling pays no calendar overhead.
                self.engaged = false;
                return;
            }
            self.rebuild_window();
        }
    }

    /// Re-bases the calendar on the overflow's minimum fire time and
    /// re-derives the bucket width from its span, then redistributes.
    /// Runs only when `near` and every bucket are empty.
    #[cold]
    #[inline(never)]
    fn rebuild_window(&mut self) {
        debug_assert!(self.near.is_empty());
        debug_assert!(self.in_buckets == 0);
        debug_assert!(self.buckets.iter().all(Vec::is_empty));
        let mut min = u64::MAX;
        let mut max = 0u64;
        for e in &self.overflow {
            let t = e.at.as_ps();
            min = min.min(t);
            max = max.max(t);
        }
        let span = max - min;
        // Bucket width ≈ the overflow's average inter-event gap (span over
        // population), the classic calendar-queue sizing rule: the window
        // then reaches ~NUM_BUCKETS expected events into the future, so
        // later pushes land in O(1) bins and rebuilds stay rare. Rounded
        // up to a power of two for shift-based indexing, and clamped so
        // the window arithmetic cannot overflow; events past the clamped
        // window simply wait in the overflow for the next rebuild.
        let per_bucket = span / self.overflow.len() as u64 + 1;
        let shift = (64 - per_bucket.leading_zeros()).min(MAX_WIDTH_SHIFT);
        self.base_ps = min;
        self.width_shift = shift;
        self.cur_bucket = 0;
        if self.buckets.is_empty() {
            self.buckets = (0..NUM_BUCKETS).map(|_| Vec::new()).collect();
        }
        let mut spill = std::mem::take(&mut self.spill);
        debug_assert!(spill.is_empty());
        for e in self.overflow.drain(..) {
            let idx = ((e.at.as_ps() - self.base_ps) >> self.width_shift) as usize;
            if idx == 0 {
                // Bucket 0 is promoted immediately below; route through
                // `near` so `cur_bucket` never points at a live bin.
                // (Appended unsorted here, bulk-sorted once after the
                // distribution pass.)
                self.near.push(e);
            } else if idx < NUM_BUCKETS {
                self.buckets[idx].push(e);
                self.in_buckets += 1;
            } else {
                spill.push(e);
            }
        }
        self.near.sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
        // The drained overflow's storage becomes the next rebuild's
        // scratch; the spill (if any) becomes the new overflow.
        self.spill = std::mem::replace(&mut self.overflow, spill);
        // `min` itself maps to bucket 0, so `near` is now non-empty.
        debug_assert!(!self.near.is_empty());
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        // The sorted rung keeps the minimum at the back, so the common
        // case is a branch-free `Vec::pop`; the miss path is the cold
        // replenish (or, for reference queues, the heap).
        let e = match self.near.pop() {
            Some(e) => e,
            None => self.pop_refill()?,
        };
        self.len -= 1;
        let index = self.popped;
        self.popped += 1;
        self.tracer.emit(e.at.as_ps(), || EventKind::EventDispatched { index });
        Some((e.at, e.event))
    }

    /// The `near`-empty slow path of [`EventQueue::pop`] /
    /// [`EventQueue::pop_cohort`]: reference queues pop their heap,
    /// engaged calendars promote the next bin.
    #[cold]
    fn pop_refill(&mut self) -> Option<Entry<E>> {
        if self.reference_heap {
            return self.heap.pop();
        }
        if !self.engaged {
            return None;
        }
        self.replenish_near();
        self.near.pop()
    }

    /// Drains the earliest event *cohort* — every pending event scheduled
    /// for the earliest fire time — into `out` (cleared first), in exact
    /// `(time, seq)` pop order, and returns that fire time.
    ///
    /// Equivalent to calling [`EventQueue::pop`] while the head time is
    /// unchanged, except that dispatch accounting is deferred: drained
    /// events are *not* counted or traced here. The caller must invoke
    /// [`EventQueue::mark_dispatched`] once per drained event immediately
    /// before handling it, so `EventDispatched` trace records interleave
    /// with handler-emitted events exactly as on the one-at-a-time path.
    ///
    /// Correctness rests on the strict time-separation invariant (module
    /// docs): once the head of `near` fires at `t`, every pending event
    /// at `t` is already in `near` — calendar bins beyond `cur_bucket`
    /// and the overflow hold strictly later times — so draining `near`
    /// while its head fires at `t` yields the complete cohort in global
    /// order. Events pushed at `t` while the caller dispatches the cohort
    /// get larger sequence numbers and form a later cohort, exactly as
    /// they would pop on the per-event path.
    pub fn pop_cohort(&mut self, out: &mut Vec<E>) -> Option<Time> {
        out.clear();
        let first = match self.near.pop() {
            Some(e) => e,
            None => self.pop_refill()?,
        };
        let at = first.at;
        out.push(first.event);
        // The rest of the cohort is the rung's equal-time tail: descending
        // (at, seq) order puts same-time entries back-to-front in ascending
        // sequence order, so popping while times match yields exact pop
        // order — and costs one comparison in the common size-1 case.
        while let Some(e) = self.near.last() {
            if e.at != at {
                break;
            }
            // Pop cannot fail: `last()` just observed the entry.
            if let Some(e) = self.near.pop() {
                out.push(e.event);
            }
        }
        self.len -= out.len();
        Some(at)
    }

    /// Accounts one cohort-drained event as dispatched: bumps the
    /// dispatch counter and emits the `EventDispatched` trace record at
    /// `at`. Call exactly once per event returned by
    /// [`EventQueue::pop_cohort`], immediately before handling it.
    pub fn mark_dispatched(&mut self, at: Time) {
        let index = self.popped;
        self.popped += 1;
        self.tracer.emit(at.as_ps(), || EventKind::EventDispatched { index });
    }

    /// Fire time of the earliest pending event.
    ///
    /// O(1) while the `near` rung is populated; otherwise scans the
    /// calendar bins and the overflow (still cheap, and `pop` is the only
    /// hot-path consumer).
    pub fn peek_time(&self) -> Option<Time> {
        if let Some(e) = self.near.last() {
            return Some(e.at);
        }
        if let Some(e) = self.heap.peek() {
            return Some(e.at);
        }
        for bin in self.buckets.iter().skip(self.cur_bucket + 1) {
            if let Some(t) = bin.iter().map(|e| e.at).min() {
                return Some(t);
            }
        }
        self.overflow.iter().map(|e| e.at).min()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events delivered so far (dispatch counter).
    pub fn dispatched(&self) -> u64 {
        self.popped
    }

    /// Total number of events ever scheduled (the next sequence number).
    pub fn scheduled(&self) -> u64 {
        self.next_seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len)
            .field("dispatched", &self.popped)
            .field("reference_heap", &self.reference_heap)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), 3);
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), "a");
        q.push(Time::from_ns(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(Time::from_ns(7), "c");
        q.push(Time::from_ns(7), "d");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
        assert_eq!(q.pop().unwrap().1, "a");
        assert!(q.is_empty());
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.push(Time::ZERO, ());
        q.push(Time::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled(), 2);
        q.pop();
        assert_eq!(q.dispatched(), 1);
        assert_eq!(q.peek_time(), Some(Time::ZERO));
    }

    #[test]
    fn peek_reaches_every_rung() {
        let mut q = EventQueue::new();
        // Force engagement: enough pending events to leave heap mode,
        // clustered so the far-future outlier lands beyond the window.
        for i in 0..200u64 {
            q.push(Time::from_ns(10 + i), i);
        }
        q.push(Time::from_ms(90), u64::MAX);
        assert_eq!(q.peek_time(), Some(Time::from_ns(10)));
        assert_eq!(q.pop().unwrap().1, 0);
        // The outlier sits in a calendar bin or the overflow; drain down
        // to it and peek must still see it.
        for _ in 0..199 {
            q.pop();
        }
        assert_eq!(q.peek_time(), Some(Time::from_ms(90)));
        q.push(Time::from_us(1), 7);
        assert_eq!(q.peek_time(), Some(Time::from_us(1)));
    }

    #[test]
    fn engages_under_load_and_disengages_when_drained() {
        let mut q = EventQueue::new();
        for i in 0..500u64 {
            q.push(Time::from_ns(i * 3), i);
        }
        assert!(q.engaged, "population above threshold must engage the calendar");
        for i in 0..500u64 {
            assert_eq!(q.pop().unwrap().1, i);
        }
        assert!(q.pop().is_none());
        assert!(!q.engaged, "a drained queue falls back to heap mode");
        // Still works (and stays a heap) afterwards.
        q.push(Time::from_ns(2), 'b' as u64);
        q.push(Time::from_ns(1), 'a' as u64);
        assert_eq!(q.pop().unwrap().1, 'a' as u64);
        assert!(!q.engaged);
    }

    #[test]
    fn same_instant_requeue_during_drain_pops_in_seq_order() {
        // Fault-injection shape: while handling the event at time T, the
        // simulator re-schedules work at exactly T; it must pop after
        // every earlier same-T event but before anything later.
        let mut q = EventQueue::new();
        q.push(Time::from_ns(100), "first");
        q.push(Time::from_ns(100), "second");
        q.push(Time::from_ns(200), "later");
        assert_eq!(q.pop().unwrap().1, "first");
        q.push(Time::from_ns(100), "requeued");
        q.push(Time::from_ns(150), "mid");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "requeued");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "later");
        assert!(q.pop().is_none());
    }

    #[test]
    fn push_into_the_past_pops_first() {
        let mut q = EventQueue::new();
        for i in 0..500u64 {
            q.push(Time::from_us(10 + i * 10), i);
        }
        assert!(q.engaged);
        assert_eq!(q.pop().unwrap().1, 0);
        // Earlier than everything pending, and earlier than the engaged
        // window's base.
        q.push(Time::from_ns(1), 999);
        assert_eq!(q.pop().unwrap().1, 999);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn far_future_outage_style_events_survive_rebuilds() {
        let mut q = EventQueue::new();
        q.push(Time::from_ms(200), u64::MAX); // far beyond any window
        for i in 0..1000u64 {
            q.push(Time::from_ns(i), i);
        }
        for i in 0..1000u64 {
            assert_eq!(q.pop().unwrap().1, i);
        }
        assert_eq!(q.pop().unwrap().1, u64::MAX);
        assert!(q.is_empty());
    }

    /// Drives the calendar queue and the reference heap through an
    /// identical randomized (time, seq) stream — bursty times, duplicate
    /// instants, interleaved pops, same-instant requeues — and asserts
    /// the pop sequences match exactly.
    #[test]
    fn property_matches_binary_heap_oracle() {
        for seed in 0..20u64 {
            let mut rng = SplitMix64::new(0xCA1E_4DA8 ^ seed);
            let mut cal = EventQueue::new();
            let mut oracle = EventQueue::reference();
            let mut last_popped = 0u64;
            let mut pending = 0i64;
            for step in 0..4000u32 {
                let r = rng.next_u64();
                if r % 100 < 55 || pending == 0 {
                    // Push: cluster most times near the "present", with
                    // occasional far-future spikes (outage-style) and
                    // exact-requeue times.
                    let t = match r % 10 {
                        0 => last_popped,                                  // requeue "now"
                        1..=2 => last_popped + rng.next_u64() % 50,        // near future
                        3 => last_popped + rng.next_u64() % 1_000_000_000, // far future
                        _ => last_popped + rng.next_u64() % 100_000,       // mid
                    };
                    cal.push(Time::from_ps(t), step);
                    oracle.push(Time::from_ps(t), step);
                    pending += 1;
                } else {
                    let a = cal.pop();
                    let b = oracle.pop();
                    match (a, b) {
                        (Some((ta, ea)), Some((tb, eb))) => {
                            assert_eq!((ta, ea), (tb, eb), "seed {seed} step {step}");
                            last_popped = ta.as_ps();
                            pending -= 1;
                        }
                        (None, None) => {}
                        other => panic!("rung mismatch: {other:?}"),
                    }
                }
            }
            // Drain both completely.
            loop {
                match (cal.pop(), oracle.pop()) {
                    (Some((ta, ea)), Some((tb, eb))) => {
                        assert_eq!((ta, ea), (tb, eb), "seed {seed} drain")
                    }
                    (None, None) => break,
                    other => panic!("drain mismatch: {other:?}"),
                }
            }
            assert_eq!(cal.dispatched(), oracle.dispatched());
            assert_eq!(cal.scheduled(), oracle.scheduled());
        }
    }

    #[test]
    fn cohort_pop_matches_per_event_pop() {
        // The cohort drain must yield exactly the per-event pop sequence,
        // chunked by fire time, across both regimes (heap + calendar) and
        // with same-instant requeues pushed mid-cohort.
        for seed in 0..20u64 {
            let mut rng = SplitMix64::new(0x0C0_0147 ^ seed);
            let mut a = EventQueue::new();
            let mut b = EventQueue::new();
            let mut t = 0u64;
            for step in 0..600u32 {
                t += rng.next_u64() % 4; // dense ties, occasional gaps
                a.push(Time::from_ps(t), step);
                b.push(Time::from_ps(t), step);
            }
            let mut scratch = Vec::new();
            while let Some(at) = a.pop_cohort(&mut scratch) {
                for &e in &scratch {
                    a.mark_dispatched(at);
                    let (bt, be) = b.pop().expect("oracle has events left");
                    assert_eq!((at, e), (bt, be), "seed {seed}");
                    if e % 7 == 0 {
                        // Same-instant requeue while the cohort is being
                        // dispatched: must land in a *later* cohort on
                        // both paths.
                        a.push(at, e + 10_000);
                        b.push(at, e + 10_000);
                    }
                }
            }
            assert!(b.pop().is_none());
            assert_eq!(a.len(), 0);
            assert_eq!(a.dispatched(), b.dispatched());
            assert_eq!(a.scheduled(), b.scheduled());
        }
    }

    #[test]
    fn cohort_pop_counts_dispatches_via_mark() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(1), 'a');
        q.push(Time::from_ns(1), 'b');
        q.push(Time::from_ns(2), 'c');
        let mut out = Vec::new();
        let at = q.pop_cohort(&mut out).unwrap();
        assert_eq!(at, Time::from_ns(1));
        assert_eq!(out, vec!['a', 'b']);
        assert_eq!(q.len(), 1);
        // Dispatch accounting is the caller's job.
        assert_eq!(q.dispatched(), 0);
        q.mark_dispatched(at);
        q.mark_dispatched(at);
        assert_eq!(q.dispatched(), 2);
        assert_eq!(q.pop_cohort(&mut out), Some(Time::from_ns(2)));
        assert_eq!(out, vec!['c']);
        assert_eq!(q.pop_cohort(&mut out), None);
        assert!(out.is_empty());
    }

    #[test]
    fn reference_mode_matches_new_path_on_simple_stream() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::reference();
        for i in (0..200u64).rev() {
            a.push(Time::from_ns(i / 3), i);
            b.push(Time::from_ns(i / 3), i);
        }
        for _ in 0..200 {
            assert_eq!(a.pop(), b.pop());
        }
    }
}
