//! `cargo run -p xtask -- <check|bench>` — the hermetic CI gate and the
//! wall-clock benchmark front end.
//!
//! `check` verifies what the sandboxed environment actually guarantees:
//!
//! 1. `cargo build --offline --workspace --benches` — the tree, including
//!    every benchmark target, builds with zero network access (no registry
//!    dependencies may creep back in).
//! 2. `cargo clippy --offline <every library crate> --all-targets --
//!    -D warnings` — all library crates stay lint-clean, including the
//!    `clippy::unwrap_used` / `clippy::expect_used` gates their crate
//!    roots opt into (tests carry a blanket allow; the few non-test
//!    `expect`s document event-loop invariants via explicit
//!    file/function-level allows). Skipped with a notice when the
//!    clippy component is not installed.
//! 3. `campaign_smoke` (release) — the deterministic campaign engine
//!    executes a small grid serially and with two workers and proves the
//!    reports byte-identical.
//! 4. `cache-hygiene` — the standard campaign-cache directory holds no
//!    entries written under a stale schema version or code-version salt
//!    (they can never hit again; `cache_hygiene --purge` deletes them).
//!    `chaos-smoke` (release) — the chaos campaign binary executes a
//!    small fault × overload grid with the self-healing stack on,
//!    `soak-smoke` (release) — a short bounded-memory MMPP soak whose
//!    deterministic report must be byte-identical at `--jobs` 1 and 2
//!    and whose live-slot high-water mark must stay under the
//!    configured bound (instance recycling keeps memory O(in-flight)),
//!    and `invariants` proves the end-of-run conservation checks also
//!    hold in a release build via the `invariants` feature.
//! 5. The determinism, conformance, and property test suites:
//!    `campaign_engine`, `campaign_cache` (the content-addressed
//!    incremental-campaign store: warm reruns simulate zero cells with
//!    byte-identical reports, corrupt entries fall back to simulation,
//!    salt bumps invalidate), `golden_experiments`,
//!    `scheduler_conformance`, `metamorphic_properties`,
//!    `fault_injection`, `service_mode` (the open-loop streaming
//!    frontend: byte-identical reports at any `--jobs`, bit-inert when
//!    disabled, admission accounting), `chaos_conformance` (memory-side
//!    fault domains, circuit breakers, timeouts and hedges, the
//!    simulation watchdog, and the campaign-cache round trip),
//!    `queue_equivalence`,
//!    `soa_equivalence` (the optimised hot path against its own
//!    reference implementation, bit for bit, under all eleven policies,
//!    twenty seeds, faults, and service mode),
//!    `recycling_equivalence` (generational instance recycling against
//!    the never-retiring reference path: bit-exact stats/traces, stale
//!    timeouts dropped on recycled slots, bounded-memory mode
//!    observation-only), and `oracle_conformance`
//!    (the ahead-of-time scheduling bound: oracle ≤ every online
//!    policy, prediction = replay bit-exactly, beam-width monotonicity,
//!    recorded-run replay differentials).
//! 6. `xtask bench --check` — a short run of the hot-path benchmark that
//!    validates the `BENCH_simcore.json` schema and then gates on the
//!    committed baseline: the fresh run's fastest pass must stay within
//!    10 % of the committed optimised median ns/event (skipped with a
//!    notice when no baseline is committed).
//!
//! `check --suite <name>[,<name>...]` runs a subset of those steps by
//! name (see `check --list-suites` for the names); everything else is
//! skipped. Unknown names abort with the list of valid ones.
//!
//! `bench` (release) measures the simulation hot path over a pinned
//! campaign subset — optimised vs the `reference_hot_path` cost model —
//! writes `BENCH_simcore.json` at the repo root, and appends the run's
//! medians to the `BENCH_trajectory.json` history (see README.md).
//! Extra arguments (`--iters N`, `--out PATH`, `--check`,
//! `--tolerance PCT`, `--service`, `--events`, `--soak`, `--smoke`,
//! `--jobs N`) are forwarded to the
//! `simcore_bench` binary; `bench --service` times the open-loop
//! service subset and appends a `+service` trajectory entry instead,
//! `bench --events` times the calendar-queue cohort-pop microbench
//! alone, appending a `+events` entry, and `bench --soak` drives the
//! million-request bounded-memory MMPP soak, appending a `+soak` entry
//! that also records peak RSS and the live-slot high-water mark
//! (trajectory schema v2). `bench --check` additionally gates a reduced
//! soak against the committed `+soak` entry and the live-set bound.
//!
//! Exit code is nonzero if any executed step fails.

use std::process::{Command, ExitCode};

fn run(desc: &str, cmd: &mut Command) -> bool {
    println!("==> {desc}");
    match cmd.status() {
        Ok(status) if status.success() => true,
        Ok(status) => {
            eprintln!("xtask: '{desc}' failed with {status}");
            false
        }
        Err(e) => {
            eprintln!("xtask: cannot spawn '{desc}': {e}");
            false
        }
    }
}

fn have_clippy() -> bool {
    Command::new("cargo")
        .args(["clippy", "--version"])
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

/// The integration-test suites step 5 runs, as `(package, test target)`.
const TEST_SUITES: [(&str, &str); 12] = [
    ("relief-bench", "campaign_engine"),
    ("relief-bench", "campaign_cache"),
    ("relief", "golden_experiments"),
    ("relief", "scheduler_conformance"),
    ("relief", "metamorphic_properties"),
    ("relief", "fault_injection"),
    ("relief", "service_mode"),
    ("relief", "chaos_conformance"),
    ("relief", "queue_equivalence"),
    ("relief", "soa_equivalence"),
    ("relief", "recycling_equivalence"),
    ("relief", "oracle_conformance"),
];

/// Names accepted by `check --suite` that are not test targets.
const META_SUITES: [&str; 8] = [
    "build",
    "lint",
    "campaign-smoke",
    "cache-hygiene",
    "chaos-smoke",
    "soak-smoke",
    "invariants",
    "bench-check",
];

fn print_suites() {
    println!("check suites (for --suite <name>[,<name>...]):");
    for name in META_SUITES {
        println!("  {name}");
    }
    for (package, suite) in TEST_SUITES {
        println!("  {suite}  (cargo test -p {package} --test {suite})");
    }
}

/// Parses `check` arguments into a suite filter. `None` = run everything.
fn parse_suite_filter(args: &[String]) -> Result<Option<Vec<String>>, String> {
    let mut filter: Option<Vec<String>> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--suite" => {
                let v = it.next().ok_or("--suite needs a value")?;
                let names = filter.get_or_insert_with(Vec::new);
                names.extend(v.split(',').map(|s| s.trim().to_string()));
            }
            "--list-suites" => {
                print_suites();
                std::process::exit(0);
            }
            other => return Err(format!("unknown check option '{other}'")),
        }
    }
    if let Some(names) = &filter {
        let known = |n: &str| {
            META_SUITES.contains(&n) || TEST_SUITES.iter().any(|&(_, s)| s == n)
        };
        for n in names {
            if !known(n) {
                print_suites();
                return Err(format!("unknown suite '{n}'"));
            }
        }
        if names.is_empty() {
            return Err("--suite needs at least one name".into());
        }
    }
    Ok(filter)
}

fn check(args: &[String]) -> ExitCode {
    let filter = match parse_suite_filter(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::from(2);
        }
    };
    let wants = |name: &str| filter.as_ref().is_none_or(|f| f.iter().any(|n| n == name));

    let mut ok = true;
    if wants("build") {
        ok &= run(
            "cargo build --offline --workspace --benches",
            Command::new("cargo").args(["build", "--offline", "--workspace", "--benches"]),
        );
    }
    if wants("lint") {
        if have_clippy() {
            const LIB_CRATES: [&str; 13] = [
                "relief-sim",
                "relief-dag",
                "relief-mem",
                "relief-core",
                "relief-fault",
                "relief-service",
                "relief-accel",
                "relief-workloads",
                "relief-metrics",
                "relief-trace",
                "relief-oracle",
                "relief-bench",
                "relief",
            ];
            let mut args: Vec<&str> = vec!["clippy", "--offline"];
            for c in LIB_CRATES {
                args.extend(["-p", c]);
            }
            args.extend(["--all-targets", "--", "-D", "warnings"]);
            ok &= run(
                "cargo clippy --offline <library crates> --all-targets -- -D warnings",
                Command::new("cargo").args(&args),
            );
        } else {
            println!("==> clippy component not installed; skipping lint gate");
        }
    }
    if wants("campaign-smoke") {
        ok &= run(
            "campaign engine smoke test (jobs=1 vs jobs=2)",
            Command::new("cargo").args([
                "run",
                "--offline",
                "--release",
                "-p",
                "relief-bench",
                "--bin",
                "campaign_smoke",
            ]),
        );
    }
    if wants("cache-hygiene") {
        ok &= run(
            "campaign-cache hygiene (no stale schema/salt entries)",
            Command::new("cargo").args([
                "run",
                "--offline",
                "-p",
                "relief-bench",
                "--bin",
                "cache_hygiene",
            ]),
        );
    }
    if wants("chaos-smoke") {
        ok &= run(
            "chaos campaign smoke run (faults + overload, self-healing on)",
            Command::new("cargo").args([
                "run",
                "--offline",
                "--release",
                "-p",
                "relief-bench",
                "--bin",
                "chaos",
                "--",
                "--fault-rate",
                "0,0.02",
                "--rate",
                "300",
                "--duration-us",
                "10000",
                "--warmup-us",
                "1000",
                "--jobs",
                "2",
                "--no-cache",
            ]),
        );
    }
    if wants("soak-smoke") {
        ok &= run(
            "soak smoke run (bounded-memory serving, jobs=1 vs jobs=2)",
            &mut bench_command(&["--soak".to_string(), "--smoke".to_string()]),
        );
    }
    if wants("invariants") {
        ok &= run(
            "release-mode conservation invariants (--features invariants)",
            Command::new("cargo").args([
                "test",
                "--offline",
                "--release",
                "--features",
                "invariants",
                "-p",
                "relief",
                "--test",
                "chaos_conformance",
            ]),
        );
    }
    for (package, suite) in TEST_SUITES {
        if !wants(suite) {
            continue;
        }
        ok &= run(
            &format!("cargo test --offline -p {package} --test {suite}"),
            Command::new("cargo").args(["test", "--offline", "-p", package, "--test", suite]),
        );
    }
    if wants("bench-check") {
        ok &= run(
            "hot-path benchmark smoke run (xtask bench --check)",
            &mut bench_command(&["--check".to_string()]),
        );
    }
    if ok {
        println!("xtask check: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The `simcore_bench` invocation with `args` forwarded verbatim.
fn bench_command(args: &[String]) -> Command {
    let mut cmd = Command::new("cargo");
    cmd.args([
        "run",
        "--offline",
        "--release",
        "-p",
        "relief-bench",
        "--bin",
        "simcore_bench",
        "--",
    ]);
    cmd.args(args);
    cmd
}

fn bench(args: &[String]) -> ExitCode {
    if run("simulation hot-path benchmark (simcore_bench)", &mut bench_command(args)) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("bench") => bench(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- <check [--suite NAMES] [--list-suites] | bench [--iters N] [--out PATH] [--check] [--tolerance PCT] [--service] [--events] [--soak [--smoke] [--jobs N]]>"
            );
            ExitCode::from(2)
        }
    }
}
