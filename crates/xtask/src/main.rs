//! `cargo run -p xtask -- check` — the hermetic CI gate.
//!
//! Verifies what the sandboxed environment actually guarantees:
//!
//! 1. `cargo build --offline --workspace --benches` — the tree, including
//!    every benchmark target, builds with zero network access (no registry
//!    dependencies may creep back in).
//! 2. `cargo clippy --offline -p relief-trace --all-targets -- -D warnings`
//!    — the tracing subsystem stays lint-clean. Skipped with a notice when
//!    the clippy component is not installed.
//!
//! Exit code is nonzero if any executed step fails.

use std::process::{Command, ExitCode};

fn run(desc: &str, cmd: &mut Command) -> bool {
    println!("==> {desc}");
    match cmd.status() {
        Ok(status) if status.success() => true,
        Ok(status) => {
            eprintln!("xtask: '{desc}' failed with {status}");
            false
        }
        Err(e) => {
            eprintln!("xtask: cannot spawn '{desc}': {e}");
            false
        }
    }
}

fn have_clippy() -> bool {
    Command::new("cargo")
        .args(["clippy", "--version"])
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

fn check() -> ExitCode {
    let mut ok = true;
    ok &= run(
        "cargo build --offline --workspace --benches",
        Command::new("cargo").args(["build", "--offline", "--workspace", "--benches"]),
    );
    if have_clippy() {
        ok &= run(
            "cargo clippy --offline -p relief-trace --all-targets -- -D warnings",
            Command::new("cargo").args([
                "clippy",
                "--offline",
                "-p",
                "relief-trace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ]),
        );
    } else {
        println!("==> clippy component not installed; skipping lint gate");
    }
    if ok {
        println!("xtask check: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let task = std::env::args().nth(1);
    match task.as_deref() {
        Some("check") => check(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- check");
            ExitCode::from(2)
        }
    }
}
