//! `cargo run -p xtask -- check` — the hermetic CI gate.
//!
//! Verifies what the sandboxed environment actually guarantees:
//!
//! 1. `cargo build --offline --workspace --benches` — the tree, including
//!    every benchmark target, builds with zero network access (no registry
//!    dependencies may creep back in).
//! 2. `cargo clippy --offline -p relief-trace -p relief-bench
//!    --all-targets -- -D warnings` — the tracing subsystem and the
//!    campaign engine stay lint-clean. Skipped with a notice when the
//!    clippy component is not installed.
//! 3. `campaign_smoke` (release) — the deterministic campaign engine
//!    executes a small grid serially and with two workers and proves the
//!    reports byte-identical.
//! 4. The determinism, conformance, and property test suites:
//!    `campaign_engine`, `golden_experiments`, `scheduler_conformance`,
//!    and `metamorphic_properties`.
//!
//! Exit code is nonzero if any executed step fails.

use std::process::{Command, ExitCode};

fn run(desc: &str, cmd: &mut Command) -> bool {
    println!("==> {desc}");
    match cmd.status() {
        Ok(status) if status.success() => true,
        Ok(status) => {
            eprintln!("xtask: '{desc}' failed with {status}");
            false
        }
        Err(e) => {
            eprintln!("xtask: cannot spawn '{desc}': {e}");
            false
        }
    }
}

fn have_clippy() -> bool {
    Command::new("cargo")
        .args(["clippy", "--version"])
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

fn check() -> ExitCode {
    let mut ok = true;
    ok &= run(
        "cargo build --offline --workspace --benches",
        Command::new("cargo").args(["build", "--offline", "--workspace", "--benches"]),
    );
    if have_clippy() {
        ok &= run(
            "cargo clippy --offline -p relief-trace -p relief-bench --all-targets -- -D warnings",
            Command::new("cargo").args([
                "clippy",
                "--offline",
                "-p",
                "relief-trace",
                "-p",
                "relief-bench",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ]),
        );
    } else {
        println!("==> clippy component not installed; skipping lint gate");
    }
    ok &= run(
        "campaign engine smoke test (jobs=1 vs jobs=2)",
        Command::new("cargo").args([
            "run",
            "--offline",
            "--release",
            "-p",
            "relief-bench",
            "--bin",
            "campaign_smoke",
        ]),
    );
    for (package, suite) in [
        ("relief-bench", "campaign_engine"),
        ("relief", "golden_experiments"),
        ("relief", "scheduler_conformance"),
        ("relief", "metamorphic_properties"),
    ] {
        ok &= run(
            &format!("cargo test --offline -p {package} --test {suite}"),
            Command::new("cargo").args(["test", "--offline", "-p", package, "--test", suite]),
        );
    }
    if ok {
        println!("xtask check: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let task = std::env::args().nth(1);
    match task.as_deref() {
        Some("check") => check(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- check");
            ExitCode::from(2)
        }
    }
}
