//! Oracle scheduling bound: ahead-of-time search over the deterministic
//! simulator.
//!
//! The paper evaluates RELIEF only against online heuristics, so none of
//! the reported numbers say how far any policy is from optimal. Following
//! the Dijkstra-Through-Time idea (Roche, arXiv:2112.10486), this crate
//! searches *ahead of time* for a concrete per-node placement/ordering
//! schedule over the same deterministic timing model the policies run
//! under, and reports the best makespan it can prove reachable.
//!
//! # How the search stays honest
//!
//! Classic oracle searches re-implement a cost model and then hope it
//! matches the simulator. Here the cost model *is* the simulator: a
//! search state is a [`Schedule`] prefix (the global launch sequence so
//! far), and evaluating a state means replaying that prefix through the
//! full `SocSim` via [`ScheduleReplay`] — DMA chunking, forwarding
//! windows, write-back rules, manager overhead and all. The replay is
//! strict: once the prefix is exhausted the simulator drains whatever is
//! in flight and stops launching, so the evaluation yields
//!
//! * the prefix makespan (last completion among launched tasks), and
//! * the *frontier*: tasks that became ready but were never launched.
//!
//! Every frontier task × every instance of its accelerator type is a
//! legal continuation (the replay waits for readiness and idleness, and a
//! task's enablers always precede it in the growing prefix, so extended
//! prefixes stay realizable). Search states are therefore exactly the
//! realizable launch sequences, and the *predicted* makespan of a
//! complete schedule is, by construction, bit-identical to what replaying
//! that schedule through the simulator produces — the conformance
//! property the test suite pins.
//!
//! # Pruning, heuristic, and the beam-width knob
//!
//! Two prefixes with equal makespan generally leave the SoC in different
//! states (different scratchpad liveness, different in-flight DMA), so
//! merging them on a summary key would be unsound; only *identical*
//! prefixes are interchangeable, and those never arise twice under
//! beam expansion. Pruning therefore comes from ranking: children are
//! ordered by `f = max(prefix makespan, max over frontier tasks of
//! ready-time + remaining critical path)`, where the remaining critical
//! path is the longest compute chain from the task to a DAG exit scaled
//! by `(1 − compute_jitter)` — a lower bound on any completion of that
//! task, i.e. an admissible critical-path heuristic. A beam keeps the
//! best `w` children per level, so large DAGs degrade to near-optimal
//! instead of exploding.
//!
//! A plain beam is *not* monotone in `w` (a wider beam can crowd out the
//! lucky child a narrow beam was forced to take), so [`solve`] runs a
//! width ladder — passes at widths `1..=w` — and returns the best
//! terminal over all passes. Widening the ladder only adds passes, which
//! makes the reported bound monotone non-increasing in `beam_width`.
//!
//! # The bound is safe even when the search is weak
//!
//! Before searching, [`solve`] records every online policy's own run
//! (via [`ScheduleRecorder`]) and keeps those schedules as incumbents,
//! each paired with the configuration it was recorded under. The final
//! oracle is the minimum over incumbents and search terminals, so
//! `oracle ≤ every online policy` holds *by construction*, for any beam
//! width, on every workload the search accepts.
//!
//! Accepted workloads are the deterministic, finite, fault-free ones:
//! no repeating apps, no fault injection, no open-loop streaming, no
//! time-limit truncation. Everything else is rejected up front.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use relief_accel::{AppSpec, SimResult, SocConfig, SocSim};
use relief_core::{PolicyKind, Schedule, ScheduleRecorder, ScheduleReplay, ScheduledLaunch, TaskKey};
use relief_dag::{Dag, NodeId};
use relief_trace::{EventKind, TraceEvent, TraceSink, Tracer};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::rc::Rc;

/// Search knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleOptions {
    /// Width ladder ceiling: beam passes run at widths `1..=beam_width`.
    pub beam_width: usize,
    /// Hard cap on prefix evaluations (each one is a full simulator
    /// replay). When exhausted the search stops and the incumbents carry
    /// the bound.
    pub max_expansions: u64,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions { beam_width: 3, max_expansions: 50_000 }
    }
}

/// Why a workload/configuration was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleError(String);

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oracle: {}", self.0)
    }
}

impl std::error::Error for OracleError {}

/// One online policy's recorded run.
#[derive(Debug, Clone)]
pub struct OnlineRun {
    /// The policy.
    pub policy: PolicyKind,
    /// Its makespan in picoseconds.
    pub makespan_ps: u64,
    /// Its recorded launch sequence.
    pub schedule: Schedule,
}

/// The oracle bound for one scenario.
#[derive(Debug, Clone)]
pub struct OracleResult {
    /// Oracle makespan in picoseconds: `min` over every online incumbent
    /// and every search terminal.
    pub makespan_ps: u64,
    /// The schedule achieving [`makespan_ps`](Self::makespan_ps).
    pub schedule: Schedule,
    /// The policy whose configuration the winning schedule replays under
    /// (an incumbent's own policy, or the search's evaluation policy).
    /// [`OracleResult::replay`] must — and does — rebuild this exact
    /// configuration to reproduce the makespan bit-exactly.
    pub impersonates: PolicyKind,
    /// Whether the winner came from the search (false: an online
    /// incumbent was never beaten).
    pub from_search: bool,
    /// Every online policy's makespan, in [`ONLINE_POLICIES`] order.
    pub online: Vec<OnlineRun>,
    /// Prefix evaluations the search spent.
    pub expansions: u64,
    /// The width ladder ceiling the search ran with.
    pub beam_width: usize,
}

impl OracleResult {
    /// The best online policy's makespan (ps).
    pub fn best_online_ps(&self) -> u64 {
        self.online.iter().map(|r| r.makespan_ps).min().unwrap_or(0)
    }

    /// One online policy's makespan (ps), if it was run.
    pub fn online_ps(&self, policy: PolicyKind) -> Option<u64> {
        self.online.iter().find(|r| r.policy == policy).map(|r| r.makespan_ps)
    }

    /// `policy`'s makespan as a percentage of the oracle bound (≥ 100 up
    /// to rounding; the "% of oracle" table column).
    pub fn percent_of_oracle(&self, policy: PolicyKind) -> Option<f64> {
        let m = self.online_ps(policy)?;
        if self.makespan_ps == 0 {
            return None;
        }
        Some(m as f64 * 100.0 / self.makespan_ps as f64)
    }

    /// Replays the winning schedule through the full simulator under the
    /// configuration it was found with. The returned run's
    /// `stats.exec_time` equals [`makespan_ps`](Self::makespan_ps)
    /// bit-exactly — the conformance contract.
    pub fn replay(
        &self,
        mk_cfg: impl Fn(PolicyKind) -> SocConfig,
        apps: &[AppSpec],
    ) -> SimResult {
        let cfg = mk_cfg(self.impersonates);
        let replay = ScheduleReplay::new(&self.schedule, &cfg.acc_instances)
            .impersonating(self.impersonates);
        SocSim::new(cfg, apps.to_vec()).with_policy_object(Box::new(replay)).run()
    }
}

/// The online policies the oracle is required to dominate: the paper's
/// fairness set plus the in-tree extensions.
pub const ONLINE_POLICIES: [PolicyKind; 11] = [
    PolicyKind::Fcfs,
    PolicyKind::GedfD,
    PolicyKind::GedfN,
    PolicyKind::Lax,
    PolicyKind::ReliefLax,
    PolicyKind::Ll,
    PolicyKind::HetSched,
    PolicyKind::Relief,
    PolicyKind::ReliefHet,
    PolicyKind::ReliefUnthrottled,
    PolicyKind::Adaptive,
];

/// The policy whose configuration search prefixes are evaluated under.
/// Any fixed choice is sound (each candidate is compared under its own
/// recorded configuration); FCFS models the cheapest manager, which is
/// the natural overhead model for a schedule that needs no online
/// decisions.
pub const SEARCH_POLICY: PolicyKind = PolicyKind::Fcfs;

/// Computes the oracle bound for one scenario.
///
/// `mk_cfg` materializes the platform for a given policy — pass the same
/// constructor the online runs use (e.g. `SocConfig::mobile`, or
/// `RunSpec::config` via a closure) so per-policy defaults like the
/// modeled insert cost match the published numbers. `apps` is the
/// workload; it must be finite and deterministic.
///
/// # Errors
///
/// Rejects repeating (continuous) apps, fault injection, open-loop
/// streaming, time-limit truncation, and empty workloads.
pub fn solve(
    mk_cfg: impl Fn(PolicyKind) -> SocConfig,
    apps: &[AppSpec],
    opts: &OracleOptions,
) -> Result<OracleResult, OracleError> {
    validate(&mk_cfg(SEARCH_POLICY), apps)?;

    // Incumbents: record every online policy's own run.
    let mut online = Vec::with_capacity(ONLINE_POLICIES.len());
    for policy in ONLINE_POLICIES {
        let recorder = ScheduleRecorder::shared();
        let tracer = Tracer::to_sink(recorder.clone());
        let result =
            SocSim::new(mk_cfg(policy), apps.to_vec()).with_tracer(&tracer).run();
        online.push(OnlineRun {
            policy,
            makespan_ps: result.stats.exec_time.as_ps(),
            schedule: recorder.borrow().schedule(),
        });
    }

    // Start from the best incumbent; the search must strictly beat it.
    #[allow(clippy::expect_used)] // ONLINE_POLICIES is non-empty.
    let best = online
        .iter()
        .min_by_key(|r| r.makespan_ps)
        .expect("at least one online policy");
    let mut makespan_ps = best.makespan_ps;
    let mut schedule = best.schedule.clone();
    let mut impersonates = best.policy;
    let mut from_search = false;

    let search = Searcher::new(&mk_cfg, apps);
    let mut expansions = 0u64;
    for width in 1..=opts.beam_width.max(1) {
        if let Some((ps, sched)) =
            search.beam_pass(width, opts.max_expansions, &mut expansions)
        {
            if ps < makespan_ps {
                makespan_ps = ps;
                schedule = sched;
                impersonates = SEARCH_POLICY;
                from_search = true;
            }
        }
    }

    Ok(OracleResult {
        makespan_ps,
        schedule,
        impersonates,
        from_search,
        online,
        expansions,
        beam_width: opts.beam_width.max(1),
    })
}

fn validate(cfg: &SocConfig, apps: &[AppSpec]) -> Result<(), OracleError> {
    if apps.is_empty() {
        return Err(OracleError("empty workload".into()));
    }
    if apps.iter().any(|a| a.repeat) {
        return Err(OracleError(
            "continuous (repeating) apps have no finite schedule".into(),
        ));
    }
    if cfg.fault.enabled() {
        return Err(OracleError("fault injection breaks replay determinism".into()));
    }
    if cfg.stream.enabled() {
        return Err(OracleError("open-loop streaming has no finite schedule".into()));
    }
    if cfg.time_limit.is_some() {
        return Err(OracleError("time-limited runs truncate the schedule".into()));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Search internals
// ---------------------------------------------------------------------

/// What a strict prefix replay revealed.
struct Eval {
    /// Last completion among launched tasks (ps).
    makespan_ps: u64,
    /// Ranking score: `max(makespan, readiest lower bound over the
    /// frontier)`.
    f_ps: u64,
    /// Ready-but-never-launched tasks, in readiness (event) order.
    frontier: Vec<(TaskKey, u32)>,
}

struct BeamNode {
    schedule: Schedule,
    eval: Eval,
}

struct Searcher<'a, F: Fn(PolicyKind) -> SocConfig> {
    mk_cfg: &'a F,
    apps: &'a [AppSpec],
    /// Per app symbol: remaining-critical-path table (ps, jitter-scaled)
    /// indexed by node.
    cp: BTreeMap<String, Vec<u64>>,
    /// Global instance indices per accelerator type.
    type_insts: Vec<Vec<u32>>,
    /// Total launches in a complete schedule.
    total_tasks: usize,
}

impl<'a, F: Fn(PolicyKind) -> SocConfig> Searcher<'a, F> {
    fn new(mk_cfg: &'a F, apps: &'a [AppSpec]) -> Self {
        let cfg = mk_cfg(SEARCH_POLICY);
        // Admissible remaining work: the longest pure-compute chain to an
        // exit can only be shortened by negative jitter, never by memory
        // time, so scaling by (1 − jitter) keeps it a lower bound.
        let scale = (1.0 - cfg.compute_jitter).max(0.0);
        let mut cp = BTreeMap::new();
        for app in apps {
            cp.entry(app.symbol.clone())
                .or_insert_with(|| critical_path_table(&app.dag, scale));
        }
        let mut type_insts = Vec::with_capacity(cfg.acc_instances.len());
        let mut next = 0u32;
        for &n in &cfg.acc_instances {
            type_insts.push((next..next + n as u32).collect());
            next += n as u32;
        }
        let total_tasks = apps.iter().map(|a| a.dag.len()).sum();
        Searcher { mk_cfg, apps, cp, type_insts, total_tasks }
    }

    /// One beam pass at `width`. Returns the best terminal `(makespan,
    /// schedule)` it reached, if any.
    fn beam_pass(
        &self,
        width: usize,
        max_expansions: u64,
        expansions: &mut u64,
    ) -> Option<(u64, Schedule)> {
        let root = Schedule::new();
        let mut beam = vec![BeamNode { eval: self.evaluate(&root), schedule: root }];
        for _level in 0..self.total_tasks {
            let mut children: Vec<BeamNode> = Vec::new();
            for node in &beam {
                for &(task, acc) in &node.eval.frontier {
                    for &inst in &self.type_insts[acc as usize] {
                        if *expansions >= max_expansions {
                            return None;
                        }
                        *expansions += 1;
                        let schedule =
                            node.schedule.extended(ScheduledLaunch { task, inst });
                        let eval = self.evaluate(&schedule);
                        children.push(BeamNode { schedule, eval });
                    }
                }
            }
            if children.is_empty() {
                return None;
            }
            // Stable sort on f: generation order (beam-major, frontier
            // order, instance order) is deterministic, so ties resolve
            // the same way on every run.
            children.sort_by_key(|c| c.eval.f_ps);
            children.truncate(width);
            beam = children;
        }
        beam.into_iter()
            .filter(|n| n.schedule.len() == self.total_tasks)
            .map(|n| (n.eval.makespan_ps, n.schedule))
            .min_by(|a, b| a.0.cmp(&b.0))
    }

    /// Strict replay of a schedule prefix through the full simulator.
    fn evaluate(&self, schedule: &Schedule) -> Eval {
        let mut cfg = (self.mk_cfg)(SEARCH_POLICY);
        // Prefix replays stop issuing work mid-DAG on purpose; the
        // drained-with-work-left watchdog would misread that as a hang.
        cfg.watchdog_window = 0;
        let probe = ProbeSink::shared();
        let tracer = Tracer::to_sink(probe.clone());
        let replay =
            ScheduleReplay::new(schedule, &cfg.acc_instances).impersonating(SEARCH_POLICY);
        let result = SocSim::new(cfg, self.apps.to_vec())
            .with_policy_object(Box::new(replay))
            .with_tracer(&tracer)
            .run();
        let makespan_ps = result.stats.exec_time.as_ps();
        let probe = probe.borrow();
        let mut f_ps = makespan_ps;
        let mut frontier = Vec::new();
        for &(task, acc, ready_ps) in &probe.ready {
            if probe.dispatched.contains(&task) {
                continue;
            }
            let remaining = probe
                .instance_app
                .get(&task.instance)
                .and_then(|sym| self.cp.get(sym))
                .and_then(|t| t.get(task.node as usize))
                .copied()
                .unwrap_or(0);
            f_ps = f_ps.max(ready_ps.saturating_add(remaining));
            frontier.push((task, acc));
        }
        Eval { makespan_ps, f_ps, frontier }
    }
}

/// `cp[n]` = longest compute chain from `n` to an exit (inclusive), in
/// picoseconds scaled by `scale`.
fn critical_path_table(dag: &Dag, scale: f64) -> Vec<u64> {
    let mut cp = vec![0u64; dag.len()];
    // node_ids() yields topological order (builders append parents before
    // children), so a reverse sweep sees every child first.
    for n in (0..dag.len()).rev() {
        let nid = NodeId(n as u32);
        let tail = dag.children(nid).iter().map(|&c| cp[c.index()]).max().unwrap_or(0);
        let own = (dag.node(nid).compute.as_ps() as f64 * scale) as u64;
        cp[n] = own.saturating_add(tail);
    }
    cp
}

/// Collects readiness, dispatch, and instance→app identity from one run.
#[derive(Default)]
struct ProbeSink {
    ready: Vec<(TaskKey, u32, u64)>,
    dispatched: HashSet<TaskKey>,
    instance_app: BTreeMap<u32, String>,
}

impl ProbeSink {
    fn shared() -> Rc<RefCell<ProbeSink>> {
        Rc::new(RefCell::new(ProbeSink::default()))
    }
}

impl TraceSink for ProbeSink {
    fn emit(&mut self, ev: TraceEvent) {
        match ev.kind {
            EventKind::TaskReady { task, acc } => {
                self.ready.push((TaskKey::new(task.instance, task.node), acc, ev.at_ps));
            }
            EventKind::TaskDispatched { task, .. } => {
                self.dispatched.insert(TaskKey::new(task.instance, task.node));
            }
            EventKind::DagArrived { instance, app, .. } => {
                self.instance_app.insert(instance, app);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relief_dag::{AccTypeId, DagBuilder, NodeSpec};
    use relief_sim::Dur;
    use std::sync::Arc;

    fn diamond() -> Arc<Dag> {
        let mut b = DagBuilder::new("diamond", Dur::from_ms(2));
        let src = b.add_node(
            NodeSpec::new(AccTypeId(0), Dur::from_us(20)).with_output_bytes(32 * 1024),
        );
        let l = b.add_node(
            NodeSpec::new(AccTypeId(1), Dur::from_us(40)).with_output_bytes(16 * 1024),
        );
        let r = b.add_node(
            NodeSpec::new(AccTypeId(1), Dur::from_us(60)).with_output_bytes(16 * 1024),
        );
        let sink = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(10)));
        b.add_edge(src, l).unwrap();
        b.add_edge(src, r).unwrap();
        b.add_edge(l, sink).unwrap();
        b.add_edge(r, sink).unwrap();
        Arc::new(b.build().unwrap())
    }

    fn mk_cfg(policy: PolicyKind) -> SocConfig {
        SocConfig::generic(vec![1, 2], policy)
    }

    fn apps() -> Vec<AppSpec> {
        vec![AppSpec::once("D", diamond())]
    }

    #[test]
    fn oracle_dominates_every_online_policy() {
        let res = solve(mk_cfg, &apps(), &OracleOptions::default()).unwrap();
        for run in &res.online {
            assert!(
                res.makespan_ps <= run.makespan_ps,
                "oracle {} > {} under {}",
                res.makespan_ps,
                run.makespan_ps,
                run.policy
            );
        }
        assert_eq!(res.schedule.len(), 4);
    }

    #[test]
    fn prediction_equals_replay_bit_exactly() {
        let res = solve(mk_cfg, &apps(), &OracleOptions::default()).unwrap();
        let replayed = res.replay(mk_cfg, &apps());
        assert_eq!(replayed.stats.exec_time.as_ps(), res.makespan_ps);
    }

    #[test]
    fn wider_ladder_never_hurts() {
        let at = |w| {
            solve(mk_cfg, &apps(), &OracleOptions { beam_width: w, ..Default::default() })
                .unwrap()
                .makespan_ps
        };
        let (w1, w2, w3) = (at(1), at(2), at(3));
        assert!(w2 <= w1, "width 2 ({w2}) worse than width 1 ({w1})");
        assert!(w3 <= w2, "width 3 ({w3}) worse than width 2 ({w2})");
    }

    #[test]
    fn rejects_unfinishable_configs() {
        let continuous = vec![AppSpec::continuous("D", diamond())];
        assert!(solve(mk_cfg, &continuous, &OracleOptions::default()).is_err());
        assert!(solve(mk_cfg, &[], &OracleOptions::default()).is_err());
        let limited =
            |p: PolicyKind| mk_cfg(p).with_time_limit(relief_sim::Time::from_ms(1));
        assert!(solve(limited, &apps(), &OracleOptions::default()).is_err());
    }

    #[test]
    fn exhausted_expansion_budget_still_bounds_via_incumbents() {
        let res = solve(
            mk_cfg,
            &apps(),
            &OracleOptions { beam_width: 3, max_expansions: 1 },
        )
        .unwrap();
        assert!(!res.from_search);
        assert_eq!(res.makespan_ps, res.best_online_ps());
        let replayed = res.replay(mk_cfg, &apps());
        assert_eq!(replayed.stats.exec_time.as_ps(), res.makespan_ps);
    }

    #[test]
    fn percent_of_oracle_is_at_least_hundred() {
        let res = solve(mk_cfg, &apps(), &OracleOptions::default()).unwrap();
        for run in &res.online {
            let pct = res.percent_of_oracle(run.policy).unwrap();
            assert!(pct >= 100.0 - 1e-9, "{} at {pct}%", run.policy);
        }
    }

    #[test]
    fn critical_path_table_is_longest_chain() {
        let cp = critical_path_table(&diamond(), 1.0);
        let us = |n: usize| cp[n] / 1_000_000;
        assert_eq!(us(3), 10);
        assert_eq!(us(1), 50);
        assert_eq!(us(2), 70);
        assert_eq!(us(0), 90);
    }
}
