//! Critical-path analysis and deadline assignment.
//!
//! The paper's policies derive per-node deadlines from the DAG deadline in
//! three ways (§II-C):
//!
//! * **GEDF-D / LL**: every node simply inherits the DAG deadline.
//! * **GEDF-N**: critical-path method — a node must finish early enough for
//!   the longest chain of work *after* it to still meet the DAG deadline.
//! * **HetSched** (Eq. 2): `deadline_task = SDR × deadline_DAG`, where the
//!   sub-deadline ratio (SDR) is the task's cumulative share of the
//!   execution time of the longest path it lies on.
//!
//! All analyses run on *estimated* node runtimes supplied by the caller
//! (typically compute time plus a worst-case memory-time estimate — the
//! paper's "Max" predictors).

use crate::graph::{Dag, NodeId};
use relief_sim::Dur;

/// Longest-path timing of a [`Dag`] under a runtime estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagTiming {
    topo: Vec<NodeId>,
    runtime: Vec<Dur>,
    /// `upstream[n]`: longest-path time from any source through the *end* of
    /// `n` (inclusive of `n`).
    upstream: Vec<Dur>,
    /// `downstream[n]`: longest-path time from the *start* of `n` to any
    /// sink (inclusive of `n`).
    downstream: Vec<Dur>,
}

impl DagTiming {
    /// Runs the longest-path analysis with `runtime` estimating each node's
    /// execution time.
    pub fn compute(dag: &Dag, runtime: impl Fn(NodeId) -> Dur) -> Self {
        let n = dag.len();
        let runtime: Vec<Dur> = dag.node_ids().map(runtime).collect();

        // Topological order via Kahn's algorithm (the builder guarantees
        // acyclicity, so this always visits every node).
        let mut indeg: Vec<usize> = dag.node_ids().map(|id| dag.parents(id).len()).collect();
        let mut queue = std::collections::VecDeque::with_capacity(n);
        queue.extend(dag.node_ids().filter(|&id| dag.parents(id).is_empty()));
        let mut topo = Vec::with_capacity(n);
        while let Some(id) = queue.pop_front() {
            topo.push(id);
            for &c in dag.children(id) {
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    queue.push_back(c);
                }
            }
        }
        debug_assert_eq!(topo.len(), n, "Dag invariant: acyclic");

        let mut upstream = vec![Dur::ZERO; n];
        for &id in &topo {
            let before = dag
                .parents(id)
                .iter()
                .map(|p| upstream[p.index()])
                .fold(Dur::ZERO, Dur::max);
            upstream[id.index()] = before + runtime[id.index()];
        }
        let mut downstream = vec![Dur::ZERO; n];
        for &id in topo.iter().rev() {
            let after = dag
                .children(id)
                .iter()
                .map(|c| downstream[c.index()])
                .fold(Dur::ZERO, Dur::max);
            downstream[id.index()] = runtime[id.index()] + after;
        }

        DagTiming { topo, runtime, upstream, downstream }
    }

    /// Nodes in a valid topological order.
    pub fn topological_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// The runtime estimate used for `node`.
    pub fn runtime(&self, node: NodeId) -> Dur {
        self.runtime[node.index()]
    }

    /// Longest-path time from any source through the end of `node`.
    pub fn upstream(&self, node: NodeId) -> Dur {
        self.upstream[node.index()]
    }

    /// Longest-path time from the start of `node` to any sink.
    pub fn downstream(&self, node: NodeId) -> Dur {
        self.downstream[node.index()]
    }

    /// Longest chain of work remaining *after* `node` completes.
    pub fn downstream_after(&self, node: NodeId) -> Dur {
        self.downstream[node.index()] - self.runtime[node.index()]
    }

    /// Length of the DAG's critical path.
    pub fn critical_path(&self) -> Dur {
        self.upstream.iter().copied().fold(Dur::ZERO, Dur::max)
    }

    /// Execution time of the longest path passing *through* `node`.
    pub fn path_through(&self, node: NodeId) -> Dur {
        self.upstream(node) + self.downstream_after(node)
    }

    /// HetSched's sub-deadline ratio for `node`: the cumulative fraction of
    /// its longest path completed when `node` finishes. Always in `(0, 1]`.
    pub fn sub_deadline_ratio(&self, node: NodeId) -> f64 {
        let path = self.path_through(node).as_ps();
        if path == 0 {
            1.0
        } else {
            self.upstream(node).as_ps() as f64 / path as f64
        }
    }
}

/// Relative (DAG-arrival-based) deadlines for every node under each of the
/// paper's deadline-assignment schemes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlineAssignment {
    /// Relative deadline of the whole DAG (the GEDF-D / LL node deadline).
    pub dag: Dur,
    /// GEDF-N node deadlines: `dag − downstream_after(n)`, floored at the
    /// node's own runtime so an infeasible DAG deadline still yields
    /// monotone per-node deadlines (laxity turns negative either way).
    pub node: Vec<Dur>,
    /// HetSched node deadlines: `SDR(n) × dag`.
    pub hetsched: Vec<Dur>,
}

impl DeadlineAssignment {
    /// Derives deadlines for `dag` from a completed timing analysis.
    pub fn from_timing(dag: &Dag, timing: &DagTiming) -> Self {
        let rel = dag.relative_deadline();
        let node = dag
            .node_ids()
            .map(|n| {
                let after = timing.downstream_after(n);
                if rel > after + timing.runtime(n) {
                    rel - after
                } else {
                    timing.runtime(n)
                }
            })
            .collect();
        let hetsched =
            dag.node_ids().map(|n| rel.scale(timing.sub_deadline_ratio(n))).collect();
        DeadlineAssignment { dag: rel, node, hetsched }
    }

    /// GEDF-N relative deadline of `node`.
    pub fn node_deadline(&self, node: NodeId) -> Dur {
        self.node[node.index()]
    }

    /// HetSched relative deadline of `node`.
    pub fn hetsched_deadline(&self, node: NodeId) -> Dur {
        self.hetsched[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DagBuilder;
    use crate::graph::{AccTypeId, NodeSpec};

    /// a(2) -> b(3) -> d(5); a -> c(1) -> d. Critical path a-b-d = 10.
    fn diamond() -> Dag {
        let mut b = DagBuilder::new("d", Dur::from_us(20));
        let a = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(2)));
        let n1 = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(3)));
        let n2 = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(1)));
        let d = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(5)));
        b.add_edge(a, n1).unwrap();
        b.add_edge(a, n2).unwrap();
        b.add_edge(n1, d).unwrap();
        b.add_edge(n2, d).unwrap();
        b.build().unwrap()
    }

    fn timing(dag: &Dag) -> DagTiming {
        DagTiming::compute(dag, |n| dag.node(n).compute)
    }

    #[test]
    fn longest_paths() {
        let g = diamond();
        let t = timing(&g);
        assert_eq!(t.critical_path(), Dur::from_us(10));
        assert_eq!(t.upstream(NodeId(0)), Dur::from_us(2));
        assert_eq!(t.upstream(NodeId(1)), Dur::from_us(5));
        assert_eq!(t.upstream(NodeId(2)), Dur::from_us(3));
        assert_eq!(t.upstream(NodeId(3)), Dur::from_us(10));
        assert_eq!(t.downstream(NodeId(0)), Dur::from_us(10));
        assert_eq!(t.downstream(NodeId(2)), Dur::from_us(6));
        assert_eq!(t.downstream_after(NodeId(1)), Dur::from_us(5));
        assert_eq!(t.path_through(NodeId(2)), Dur::from_us(8)); // a-c-d
    }

    #[test]
    fn topological_order_is_valid() {
        let g = diamond();
        let t = timing(&g);
        let pos: std::collections::HashMap<NodeId, usize> =
            t.topological_order().iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for id in g.node_ids() {
            for &c in g.children(id) {
                assert!(pos[&id] < pos[&c], "{id} must precede {c}");
            }
        }
    }

    #[test]
    fn gedf_n_deadlines() {
        let g = diamond();
        let t = timing(&g);
        let d = DeadlineAssignment::from_timing(&g, &t);
        // a: 20 - (10-2) = 12; b: 20 - 5 = 15; c: 20 - 5 = 15; d: 20.
        assert_eq!(d.node_deadline(NodeId(0)), Dur::from_us(12));
        assert_eq!(d.node_deadline(NodeId(1)), Dur::from_us(15));
        assert_eq!(d.node_deadline(NodeId(2)), Dur::from_us(15));
        assert_eq!(d.node_deadline(NodeId(3)), Dur::from_us(20));
    }

    #[test]
    fn gedf_n_deadlines_floor_at_runtime_when_infeasible() {
        let mut b = DagBuilder::new("tight", Dur::from_us(1));
        let a = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(4)));
        let c = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(6)));
        b.add_edge(a, c).unwrap();
        let g = b.build().unwrap();
        let d = DeadlineAssignment::from_timing(&g, &timing(&g));
        assert_eq!(d.node_deadline(NodeId(0)), Dur::from_us(4));
        assert_eq!(d.node_deadline(NodeId(1)), Dur::from_us(6));
    }

    #[test]
    fn hetsched_sdr() {
        let g = diamond();
        let t = timing(&g);
        // b lies on the critical path (10): SDR = (2+3)/10 = 0.5.
        assert!((t.sub_deadline_ratio(NodeId(1)) - 0.5).abs() < 1e-12);
        // c lies on a-c-d (8): SDR = 3/8.
        assert!((t.sub_deadline_ratio(NodeId(2)) - 0.375).abs() < 1e-12);
        // Sinks always have SDR that scales to <= dag deadline; d's is 1.0.
        assert!((t.sub_deadline_ratio(NodeId(3)) - 1.0).abs() < 1e-12);
        let d = DeadlineAssignment::from_timing(&g, &t);
        assert_eq!(d.hetsched_deadline(NodeId(1)), Dur::from_us(10));
        assert_eq!(d.hetsched_deadline(NodeId(3)), Dur::from_us(20));
    }

    #[test]
    fn single_node_dag() {
        let mut b = DagBuilder::new("one", Dur::from_us(9));
        let a = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(4)));
        let g = b.build().unwrap();
        let t = timing(&g);
        assert_eq!(t.critical_path(), Dur::from_us(4));
        let d = DeadlineAssignment::from_timing(&g, &t);
        assert_eq!(d.node_deadline(a), Dur::from_us(9));
        assert_eq!(d.hetsched_deadline(a), Dur::from_us(9));
    }

    #[test]
    fn zero_runtime_nodes_are_handled() {
        let mut b = DagBuilder::new("zero", Dur::from_us(5));
        let a = b.add_node(NodeSpec::new(AccTypeId(0), Dur::ZERO));
        let g = b.build().unwrap();
        let t = timing(&g);
        assert_eq!(t.sub_deadline_ratio(a), 1.0);
        let d = DeadlineAssignment::from_timing(&g, &t);
        assert_eq!(d.hetsched_deadline(a), Dur::from_us(5));
    }
}
