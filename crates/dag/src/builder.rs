//! Validated DAG construction.

use crate::graph::{CsrAdjacency, Dag, NodeId, NodeSpec};
use relief_sim::Dur;
use std::error::Error;
use std::fmt;

/// Errors produced while building a [`Dag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// An edge endpoint does not name an existing node.
    UnknownNode(NodeId),
    /// An edge would connect a node to itself.
    SelfLoop(NodeId),
    /// The same edge was added twice.
    DuplicateEdge(NodeId, NodeId),
    /// The graph contains a cycle through this node.
    Cycle(NodeId),
    /// The graph has no nodes.
    Empty,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownNode(n) => write!(f, "edge references unknown node {n}"),
            DagError::SelfLoop(n) => write!(f, "self-loop on node {n}"),
            DagError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            DagError::Cycle(n) => write!(f, "graph contains a cycle through node {n}"),
            DagError::Empty => write!(f, "graph has no nodes"),
        }
    }
}

impl Error for DagError {}

/// Incremental builder for [`Dag`]s.
///
/// Node ids are handed out in insertion order; edges may reference only
/// existing nodes, so cycles are impossible to *create* but are still
/// verified at [`build`](DagBuilder::build) time as a defense in depth.
///
/// # Examples
///
/// ```
/// use relief_dag::{AccTypeId, DagBuilder, DagError, NodeSpec};
/// use relief_sim::Dur;
///
/// let mut b = DagBuilder::new("pipeline", Dur::from_ms(16));
/// let a = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(10)));
/// assert_eq!(b.add_edge(a, a), Err(DagError::SelfLoop(a)));
/// ```
#[derive(Debug, Clone)]
pub struct DagBuilder {
    name: String,
    relative_deadline: Dur,
    nodes: Vec<NodeSpec>,
    edges: Vec<(NodeId, NodeId)>,
}

impl DagBuilder {
    /// Starts a graph named `name` with the given relative deadline.
    pub fn new(name: impl Into<String>, relative_deadline: Dur) -> Self {
        DagBuilder {
            name: name.into(),
            relative_deadline,
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, spec: NodeSpec) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(spec);
        id
    }

    /// Adds a producer→consumer edge.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::UnknownNode`], [`DagError::SelfLoop`], or
    /// [`DagError::DuplicateEdge`] when the edge is invalid.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), DagError> {
        let n = self.nodes.len() as u32;
        for id in [from, to] {
            if id.0 >= n {
                return Err(DagError::UnknownNode(id));
            }
        }
        if from == to {
            return Err(DagError::SelfLoop(from));
        }
        if self.edges.contains(&(from, to)) {
            return Err(DagError::DuplicateEdge(from, to));
        }
        self.edges.push((from, to));
        Ok(())
    }

    /// Adds a linear chain of edges through `nodes` in order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`DagError`] from [`add_edge`](Self::add_edge).
    pub fn add_chain(&mut self, nodes: &[NodeId]) -> Result<(), DagError> {
        for pair in nodes.windows(2) {
            self.add_edge(pair[0], pair[1])?;
        }
        Ok(())
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::Empty`] for a node-less graph or
    /// [`DagError::Cycle`] if the edge set is cyclic (unreachable through
    /// the public API, but kept for defense in depth and deserialized data).
    pub fn build(self) -> Result<Dag, DagError> {
        if self.nodes.is_empty() {
            return Err(DagError::Empty);
        }
        let n = self.nodes.len();
        let mut parents = vec![Vec::new(); n];
        let mut children = vec![Vec::new(); n];
        for &(from, to) in &self.edges {
            children[from.index()].push(to);
            parents[to.index()].push(from);
        }

        // Kahn's algorithm to verify acyclicity.
        let mut indeg: Vec<usize> = parents.iter().map(Vec::len).collect();
        let mut stack: Vec<usize> =
            indeg.iter().enumerate().filter(|(_, &d)| d == 0).map(|(i, _)| i).collect();
        let mut seen = 0;
        while let Some(i) = stack.pop() {
            seen += 1;
            for c in &children[i] {
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    stack.push(c.index());
                }
            }
        }
        if seen != n {
            // A cycle implies some node kept nonzero indegree; fall back
            // to node 0 rather than panicking if that ever fails to hold.
            let culprit = indeg.iter().position(|&d| d > 0).unwrap_or(0);
            return Err(DagError::Cycle(NodeId(culprit as u32)));
        }

        Ok(Dag {
            name: self.name,
            relative_deadline: self.relative_deadline,
            nodes: self.nodes,
            parents: CsrAdjacency::from_rows(&parents),
            children: CsrAdjacency::from_rows(&children),
            edge_count: self.edges.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AccTypeId;

    fn spec() -> NodeSpec {
        NodeSpec::new(AccTypeId(0), Dur::from_us(1))
    }

    #[test]
    fn empty_graph_rejected() {
        let b = DagBuilder::new("x", Dur::from_us(1));
        assert_eq!(b.build().unwrap_err(), DagError::Empty);
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = DagBuilder::new("x", Dur::from_us(1));
        let a = b.add_node(spec());
        assert_eq!(b.add_edge(a, NodeId(9)), Err(DagError::UnknownNode(NodeId(9))));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = DagBuilder::new("x", Dur::from_us(1));
        let a = b.add_node(spec());
        assert_eq!(b.add_edge(a, a), Err(DagError::SelfLoop(a)));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = DagBuilder::new("x", Dur::from_us(1));
        let a = b.add_node(spec());
        let c = b.add_node(spec());
        b.add_edge(a, c).unwrap();
        assert_eq!(b.add_edge(a, c), Err(DagError::DuplicateEdge(a, c)));
    }

    #[test]
    fn chain_builds_linear_graph() {
        let mut b = DagBuilder::new("chain", Dur::from_us(1));
        let ids: Vec<NodeId> = (0..5).map(|_| b.add_node(spec())).collect();
        b.add_chain(&ids).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.roots().collect::<Vec<_>>(), vec![ids[0]]);
        assert_eq!(g.leaves().collect::<Vec<_>>(), vec![ids[4]]);
    }

    #[test]
    fn cycle_detected_in_build() {
        // Bypass add_edge's monotonic id discipline by wiring a cycle directly.
        let mut b = DagBuilder::new("cyc", Dur::from_us(1));
        let a = b.add_node(spec());
        let c = b.add_node(spec());
        b.add_edge(a, c).unwrap();
        b.edges.push((c, a)); // simulate corrupted/deserialized input
        assert!(matches!(b.build(), Err(DagError::Cycle(_))));
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        assert_eq!(DagError::Empty.to_string(), "graph has no nodes");
        assert_eq!(
            DagError::DuplicateEdge(NodeId(1), NodeId(2)).to_string(),
            "duplicate edge n1 -> n2"
        );
    }
}
