//! Graphviz DOT export for task graphs.

use crate::graph::Dag;
use std::fmt::Write as _;

impl Dag {
    /// Renders the graph in Graphviz DOT format, one node per task with
    /// its accelerator type, label, and compute time.
    ///
    /// # Examples
    ///
    /// ```
    /// use relief_dag::{AccTypeId, DagBuilder, NodeSpec};
    /// use relief_sim::Dur;
    ///
    /// # fn main() -> Result<(), relief_dag::DagError> {
    /// let mut b = DagBuilder::new("demo", Dur::from_ms(1));
    /// let a = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(5)).with_label("producer"));
    /// let c = b.add_node(NodeSpec::new(AccTypeId(1), Dur::from_us(9)));
    /// b.add_edge(a, c)?;
    /// let dot = b.build()?.to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("n0 -> n1"));
    /// assert!(dot.contains("producer"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name().replace('"', "'"));
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [shape=box, style=rounded];");
        for id in self.node_ids() {
            let spec = self.node(id);
            let label = if spec.label.is_empty() { "task" } else { &spec.label };
            let _ = writeln!(
                out,
                "  {id} [label=\"{}\\n{} {:.1}us\"];",
                label.replace('"', "'"),
                spec.acc,
                spec.compute.as_us_f64()
            );
        }
        for id in self.node_ids() {
            for &c in self.children(id) {
                let _ = writeln!(out, "  {id} -> {c};");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{AccTypeId, DagBuilder, NodeSpec};
    use relief_sim::Dur;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut b = DagBuilder::new("x", Dur::from_us(1));
        let a = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(1)).with_label("a"));
        let c = b.add_node(NodeSpec::new(AccTypeId(1), Dur::from_us(2)).with_label("c"));
        let d = b.add_node(NodeSpec::new(AccTypeId(1), Dur::from_us(3)));
        b.add_edge(a, c).unwrap();
        b.add_edge(a, d).unwrap();
        let dot = b.build().unwrap().to_dot();
        assert_eq!(dot.matches(" -> ").count(), 2);
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n0 -> n2;"));
        assert!(dot.contains("acc1 3.0us"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn quotes_are_escaped() {
        let mut b = DagBuilder::new("evil\"name", Dur::from_us(1));
        b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(1)).with_label("la\"bel"));
        let dot = b.build().unwrap().to_dot();
        assert!(!dot.contains("\"evil\"name\""));
        assert!(dot.contains("evil'name"));
        assert!(dot.contains("la'bel"));
    }
}
