//! Task-DAG model for accelerator scheduling.
//!
//! Applications offloaded to a chain of loosely-coupled accelerators are
//! represented as directed acyclic graphs of tasks ("nodes", the paper uses
//! the terms interchangeably). Each node runs on one accelerator *type*,
//! produces an output buffer consumed by its children, and inherits a
//! deadline from the DAG through critical-path analysis.
//!
//! This crate is purely structural: it knows nothing about scratchpads,
//! DMA, or scheduling policies. It provides
//!
//! * [`Dag`] / [`DagBuilder`] — validated immutable task graphs,
//! * [`analysis`] — topological order, longest-path (critical-path)
//!   analysis, and the three deadline-assignment schemes the paper's
//!   policies need (DAG deadline, GEDF-N node deadlines, HetSched
//!   sub-deadline-ratio deadlines).
//!
//! # Examples
//!
//! Build a two-node producer/consumer graph and assign deadlines:
//!
//! ```
//! use relief_dag::{AccTypeId, DagBuilder, NodeSpec};
//! use relief_sim::Dur;
//!
//! # fn main() -> Result<(), relief_dag::DagError> {
//! let mut b = DagBuilder::new("demo", Dur::from_us(100));
//! let producer = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(10)).with_output_bytes(4096));
//! let consumer = b.add_node(NodeSpec::new(AccTypeId(1), Dur::from_us(20)));
//! b.add_edge(producer, consumer)?;
//! let dag = b.build()?;
//!
//! assert_eq!(dag.len(), 2);
//! assert_eq!(dag.edge_count(), 1);
//! assert_eq!(dag.children(producer), &[consumer]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]


pub mod analysis;
pub mod builder;
pub mod dot;
pub mod graph;

pub use analysis::{DagTiming, DeadlineAssignment};
pub use builder::{DagBuilder, DagError};
pub use graph::{AccTypeId, Dag, NodeId, NodeSpec};
