//! Immutable task-graph types.

use relief_sim::Dur;
use std::fmt;

/// Identifier of an accelerator *type* (e.g. `convolution`, `elem-matrix`).
///
/// The DAG layer treats types as opaque resource classes; the accelerator
/// crate maps them to concrete models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AccTypeId(pub u32);

impl fmt::Display for AccTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "acc{}", self.0)
    }
}

/// Index of a node within one [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's position in [`Dag::nodes`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Static description of one task, mirroring the paper's `struct node`
/// (Table III) minus the runtime bookkeeping fields, which live in the
/// simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeSpec {
    /// Accelerator type this task must run on.
    pub acc: AccTypeId,
    /// Pure compute time of the task on its accelerator (profiled; the paper
    /// shows fixed-function accelerator compute time is a deterministic
    /// function of input size and operation — Observation 7).
    pub compute: Dur,
    /// Bytes this task writes to its output buffer; every out-edge carries
    /// this many bytes to the consumer.
    pub output_bytes: u64,
    /// Bytes this task always reads from main memory in addition to its
    /// parent edges (root images, weight matrices, per-iteration constants).
    pub dram_input_bytes: u64,
    /// Human-readable kernel label (e.g. `"conv5x5"`, `"sigmoid"`).
    pub label: String,
}

impl NodeSpec {
    /// Creates a task for accelerator type `acc` with the given compute
    /// time, no output, and no extra DRAM input.
    pub fn new(acc: AccTypeId, compute: Dur) -> Self {
        NodeSpec { acc, compute, output_bytes: 0, dram_input_bytes: 0, label: String::new() }
    }

    /// Sets the output-buffer size in bytes.
    pub fn with_output_bytes(mut self, bytes: u64) -> Self {
        self.output_bytes = bytes;
        self
    }

    /// Sets extra always-from-DRAM input bytes.
    pub fn with_dram_input_bytes(mut self, bytes: u64) -> Self {
        self.dram_input_bytes = bytes;
        self
    }

    /// Sets the kernel label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// Flattened compressed-sparse-row adjacency: `targets[offsets[i]..offsets[i+1]]`
/// is row `i`. One contiguous allocation per direction instead of one `Vec`
/// per node, so the simulator's per-event parent/child walks are pure slice
/// reads with no pointer chasing and nothing to clone.
///
/// Within each row the targets keep the edge *insertion* order of the
/// builder — transfer issue order in the simulator depends on it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub(crate) struct CsrAdjacency {
    pub(crate) offsets: Vec<u32>,
    pub(crate) targets: Vec<NodeId>,
}

impl CsrAdjacency {
    /// Flattens per-node rows into CSR form, preserving row order.
    pub(crate) fn from_rows(rows: &[Vec<NodeId>]) -> Self {
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut targets = Vec::with_capacity(rows.iter().map(Vec::len).sum());
        offsets.push(0);
        for row in rows {
            targets.extend_from_slice(row);
            offsets.push(targets.len() as u32);
        }
        CsrAdjacency { offsets, targets }
    }

    pub(crate) fn row(&self, i: usize) -> &[NodeId] {
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// A validated, immutable task graph with a relative deadline.
///
/// Construct through [`DagBuilder`](crate::DagBuilder), which guarantees
/// acyclicity and edge validity. Nodes are stored in insertion order;
/// [`Dag::topological_order`](crate::analysis) is computed on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dag {
    pub(crate) name: String,
    pub(crate) relative_deadline: Dur,
    pub(crate) nodes: Vec<NodeSpec>,
    pub(crate) parents: CsrAdjacency,
    pub(crate) children: CsrAdjacency,
    pub(crate) edge_count: usize,
}

impl Dag {
    /// Application name (e.g. `"canny"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Relative deadline of the whole DAG (e.g. 16.6 ms at 60 FPS).
    pub fn relative_deadline(&self) -> Dur {
        self.relative_deadline
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a graph with no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The static description of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node(&self, node: NodeId) -> &NodeSpec {
        &self.nodes[node.index()]
    }

    /// All node specs in id order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Ids of all nodes, in id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Parents of `node` (tasks whose output it consumes), in edge
    /// insertion order.
    pub fn parents(&self, node: NodeId) -> &[NodeId] {
        self.parents.row(node.index())
    }

    /// Children of `node` (tasks that consume its output), in edge
    /// insertion order.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        self.children.row(node.index())
    }

    /// Nodes with no parents (ready as soon as the DAG arrives).
    pub fn roots(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&n| self.parents(n).is_empty())
    }

    /// Nodes with no children (their completion completes the DAG).
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&n| self.children(n).is_empty())
    }

    /// Bytes `node` reads over its in-edges plus its always-DRAM input.
    pub fn input_bytes(&self, node: NodeId) -> u64 {
        let from_parents: u64 =
            self.parents(node).iter().map(|&p| self.node(p).output_bytes).sum();
        from_parents + self.node(node).dram_input_bytes
    }

    /// Total bytes moved if every load and store goes to main memory:
    /// every edge is written once and read once, every root/extra input is
    /// read, and every output is written.
    ///
    /// This is the normalization base of the paper's Fig. 5.
    pub fn total_bytes_no_forwarding(&self) -> u64 {
        self.node_ids()
            .map(|n| self.input_bytes(n) + self.node(n).output_bytes)
            .sum()
    }

    /// Sum of compute time over all nodes (Table II "Compute" column).
    pub fn total_compute(&self) -> Dur {
        self.nodes.iter().map(|n| n.compute).sum()
    }

    /// Number of distinct accelerator types used.
    pub fn distinct_acc_types(&self) -> usize {
        let mut types: Vec<AccTypeId> = self.nodes.iter().map(|n| n.acc).collect();
        types.sort_unstable();
        types.dedup();
        types.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagBuilder;

    fn diamond() -> Dag {
        // a -> b, a -> c, b -> d, c -> d
        let mut b = DagBuilder::new("diamond", Dur::from_us(100));
        let a = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(1)).with_output_bytes(10));
        let n1 = b.add_node(NodeSpec::new(AccTypeId(1), Dur::from_us(2)).with_output_bytes(20));
        let n2 = b.add_node(NodeSpec::new(AccTypeId(1), Dur::from_us(3)).with_output_bytes(30));
        let d = b.add_node(
            NodeSpec::new(AccTypeId(0), Dur::from_us(4))
                .with_output_bytes(40)
                .with_dram_input_bytes(5),
        );
        b.add_edge(a, n1).unwrap();
        b.add_edge(a, n2).unwrap();
        b.add_edge(n1, d).unwrap();
        b.add_edge(n2, d).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn structure_queries() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.roots().collect::<Vec<_>>(), vec![NodeId(0)]);
        assert_eq!(g.leaves().collect::<Vec<_>>(), vec![NodeId(3)]);
        assert_eq!(g.parents(NodeId(3)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.children(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.distinct_acc_types(), 2);
    }

    #[test]
    fn byte_accounting() {
        let g = diamond();
        // d reads b(20) + c(30) + 5 extra = 55.
        assert_eq!(g.input_bytes(NodeId(3)), 55);
        // No-forwarding total: a(0 in + 10 out) + b(10+20) + c(10+30) + d(55+40).
        assert_eq!(g.total_bytes_no_forwarding(), 10 + 30 + 40 + 95);
    }

    #[test]
    fn compute_total() {
        assert_eq!(diamond().total_compute(), Dur::from_us(10));
    }

    #[test]
    fn spec_builder_chain() {
        let s = NodeSpec::new(AccTypeId(7), Dur::from_ns(5))
            .with_output_bytes(1)
            .with_dram_input_bytes(2)
            .with_label("conv5x5");
        assert_eq!(s.acc, AccTypeId(7));
        assert_eq!(s.output_bytes, 1);
        assert_eq!(s.dram_input_bytes, 2);
        assert_eq!(s.label, "conv5x5");
    }

    #[test]
    fn csr_rows_preserve_insertion_order_and_handle_empty_rows() {
        let rows = vec![
            vec![NodeId(3), NodeId(1)],
            vec![],
            vec![NodeId(0)],
            vec![],
        ];
        let csr = CsrAdjacency::from_rows(&rows);
        assert_eq!(csr.offsets, vec![0, 2, 2, 3, 3]);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(csr.row(i), row.as_slice());
        }
    }

    #[test]
    fn display_impls() {
        assert_eq!(AccTypeId(3).to_string(), "acc3");
        assert_eq!(NodeId(12).to_string(), "n12");
    }
}
