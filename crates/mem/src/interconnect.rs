//! Bus and crossbar interconnect models.

use crate::config::InterconnectKind;
use relief_sim::{Dur, Time, Timeline};

/// Endpoint index used by the interconnect: port 0 is the DRAM controller,
/// ports `1 + i` are accelerator scratchpads.
fn port_of(spad: Option<usize>) -> usize {
    match spad {
        None => 0,
        Some(i) => 1 + i,
    }
}

/// The system interconnect.
///
/// * **Bus** (default): one timeline per direction of a full-duplex bus.
///   Transfers *toward* memory use the write lane; reads from memory and
///   scratchpad-to-scratchpad forwards use the read lane.
/// * **Crossbar**: a timeline per source port and per destination port;
///   independent producer/consumer pairs proceed concurrently and only
///   endpoint ports serialize.
///
/// Occupancy (Fig. 13: "percentage of cycles for which the interconnect had
/// at least one transaction going through") is tracked as the union of all
/// lane/port busy intervals with a monotone watermark, which is exact for
/// the engine's in-order chunk issue.
#[derive(Debug, Clone)]
pub struct Interconnect {
    kind: InterconnectKind,
    lane_read: Timeline,
    lane_write: Timeline,
    src_ports: Vec<Timeline>,
    dst_ports: Vec<Timeline>,
    covered_until: Time,
    union_busy: Dur,
}

impl Interconnect {
    /// Creates an interconnect of `kind` connecting DRAM and `num_spads`
    /// scratchpads.
    pub fn new(kind: InterconnectKind, num_spads: usize) -> Self {
        let ports = 1 + num_spads;
        Interconnect {
            kind,
            lane_read: Timeline::new(),
            lane_write: Timeline::new(),
            src_ports: vec![Timeline::new(); ports],
            dst_ports: vec![Timeline::new(); ports],
            covered_until: Time::ZERO,
            union_busy: Dur::ZERO,
        }
    }

    /// Topology kind.
    pub fn kind(&self) -> InterconnectKind {
        self.kind
    }

    /// Mutable timelines a transaction from `src` to `dst` must reserve.
    /// Endpoints are `None` for DRAM and `Some(i)` for scratchpad `i`.
    ///
    /// Allocates the returned `Vec`; the simulation hot path uses
    /// [`earliest_start`](Self::earliest_start) +
    /// [`reserve_from`](Self::reserve_from) instead, which touch the same
    /// lanes without boxing them. This accessor remains for the reference
    /// cost path and for tests that drive lanes directly.
    pub fn lanes_mut(
        &mut self,
        src: Option<usize>,
        dst: Option<usize>,
    ) -> Vec<&mut Timeline> {
        match self.kind {
            InterconnectKind::Bus => {
                if dst.is_none() {
                    vec![&mut self.lane_write]
                } else {
                    vec![&mut self.lane_read]
                }
            }
            InterconnectKind::Crossbar => {
                let s = port_of(src);
                let d = port_of(dst);
                vec![&mut self.src_ports[s], &mut self.dst_ports[d]]
            }
        }
    }

    /// Earliest instant at or after `now` when every lane a `src -> dst`
    /// transaction needs is free. Same lane selection as
    /// [`lanes_mut`](Self::lanes_mut), no allocation.
    pub fn earliest_start(&self, src: Option<usize>, dst: Option<usize>, now: Time) -> Time {
        match self.kind {
            InterconnectKind::Bus => {
                if dst.is_none() {
                    self.lane_write.earliest_start(now)
                } else {
                    self.lane_read.earliest_start(now)
                }
            }
            InterconnectKind::Crossbar => self.src_ports[port_of(src)]
                .earliest_start(now)
                .max(self.dst_ports[port_of(dst)].earliest_start(now)),
        }
    }

    /// Reserves every lane of a `src -> dst` transaction for `dur`
    /// starting exactly at `start` (at or after
    /// [`earliest_start`](Self::earliest_start)). Lane-for-lane identical
    /// to reserving the [`lanes_mut`](Self::lanes_mut) set jointly.
    pub fn reserve_from(
        &mut self,
        src: Option<usize>,
        dst: Option<usize>,
        now: Time,
        start: Time,
        dur: Dur,
    ) {
        match self.kind {
            InterconnectKind::Bus => {
                if dst.is_none() {
                    self.lane_write.reserve_from(now, start, dur);
                } else {
                    self.lane_read.reserve_from(now, start, dur);
                }
            }
            InterconnectKind::Crossbar => {
                self.src_ports[port_of(src)].reserve_from(now, start, dur);
                self.dst_ports[port_of(dst)].reserve_from(now, start, dur);
            }
        }
    }

    /// Records that the interconnect carried a transaction over
    /// `[start, end)` for union-occupancy accounting.
    pub fn note_busy(&mut self, start: Time, end: Time) {
        let s = start.max(self.covered_until);
        if end > s {
            self.union_busy += end - s;
            self.covered_until = end;
        }
    }

    /// Union busy time across all lanes/ports.
    pub fn busy(&self) -> Dur {
        self.union_busy
    }

    /// Sum of queueing delay across all lanes/ports (diagnostic; the paper
    /// notes the bus queuing delay averages under a cycle).
    pub fn total_queued(&self) -> Dur {
        let mut q = self.lane_read.stats().queued + self.lane_write.stats().queued;
        for t in self.src_ports.iter().chain(&self.dst_ports) {
            q += t.stats().queued;
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relief_sim::timeline::reserve_joint;

    #[test]
    fn bus_directions_are_independent() {
        let mut icn = Interconnect::new(InterconnectKind::Bus, 2);
        let d = Dur::from_ns(100);
        {
            let mut lanes = icn.lanes_mut(Some(0), None); // SPAD0 -> DRAM (write lane)
            reserve_joint(&mut lanes, &[d], Time::ZERO);
        }
        {
            // A simultaneous read-direction transfer does not queue.
            let mut lanes = icn.lanes_mut(None, Some(1));
            let (s, _) = reserve_joint(&mut lanes, &[d], Time::ZERO);
            assert_eq!(s, Time::ZERO);
        }
        {
            // But a second write-direction transfer does.
            let mut lanes = icn.lanes_mut(Some(1), None);
            let (s, _) = reserve_joint(&mut lanes, &[d], Time::ZERO);
            assert_eq!(s, Time::from_ns(100));
        }
    }

    #[test]
    fn bus_serializes_spad_to_spad_with_reads() {
        let mut icn = Interconnect::new(InterconnectKind::Bus, 3);
        let d = Dur::from_ns(50);
        {
            let mut lanes = icn.lanes_mut(None, Some(0));
            reserve_joint(&mut lanes, &[d], Time::ZERO);
        }
        // SPAD1 -> SPAD2 shares the read lane.
        let mut lanes = icn.lanes_mut(Some(1), Some(2));
        let (s, _) = reserve_joint(&mut lanes, &[d], Time::ZERO);
        assert_eq!(s, Time::from_ns(50));
    }

    #[test]
    fn crossbar_allows_disjoint_pairs_concurrently() {
        let mut icn = Interconnect::new(InterconnectKind::Crossbar, 4);
        let d = Dur::from_ns(50);
        {
            let mut lanes = icn.lanes_mut(Some(0), Some(1));
            let (s, _) = reserve_joint(&mut lanes, &[d, d], Time::ZERO);
            assert_eq!(s, Time::ZERO);
        }
        {
            // Disjoint pair: no contention.
            let mut lanes = icn.lanes_mut(Some(2), Some(3));
            let (s, _) = reserve_joint(&mut lanes, &[d, d], Time::ZERO);
            assert_eq!(s, Time::ZERO);
        }
        {
            // Shared destination port: serializes.
            let mut lanes = icn.lanes_mut(Some(2), Some(1));
            let (s, _) = reserve_joint(&mut lanes, &[d, d], Time::ZERO);
            assert_eq!(s, Time::from_ns(50));
        }
    }

    #[test]
    fn union_busy_merges_overlaps() {
        let mut icn = Interconnect::new(InterconnectKind::Bus, 1);
        icn.note_busy(Time::from_ns(0), Time::from_ns(10));
        icn.note_busy(Time::from_ns(5), Time::from_ns(15)); // 5ns overlap
        icn.note_busy(Time::from_ns(20), Time::from_ns(30));
        assert_eq!(icn.busy(), Dur::from_ns(25));
    }

    #[test]
    fn note_busy_ignores_fully_covered_intervals() {
        let mut icn = Interconnect::new(InterconnectKind::Bus, 1);
        icn.note_busy(Time::from_ns(0), Time::from_ns(100));
        icn.note_busy(Time::from_ns(10), Time::from_ns(50));
        assert_eq!(icn.busy(), Dur::from_ns(100));
    }
}
