//! Memory-system models for the RELIEF SoC simulator.
//!
//! This crate models the data-movement substrate of Table VI's platform:
//!
//! * a single LPDDR5 channel ([`config::MemConfig::dram_bandwidth`],
//!   calibrated to the *effective* bandwidth implied by Table I — see
//!   DESIGN.md §8),
//! * a full-duplex system bus or an n×m crossbar ([`Interconnect`]),
//! * one DMA engine per accelerator,
//! * a chunked [`TransferEngine`] that moves bytes along a [`Route`]
//!   (DRAM↔scratchpad or scratchpad→scratchpad) and produces the queuing
//!   delays the paper's contention scenarios study.
//!
//! Transfers are split into chunks (default 4 KiB); each chunk jointly
//! reserves the resources on its route, so concurrent DMAs interleave at
//! chunk granularity — a fair-sharing approximation of gem5's packet-level
//! arbitration.
//!
//! # Examples
//!
//! ```
//! use relief_mem::{MemConfig, Port, Progress, Route, TransferEngine};
//! use relief_sim::Time;
//!
//! let mut engine = TransferEngine::new(MemConfig::default(), 2);
//! // Read 64 KiB from DRAM into accelerator 0's scratchpad.
//! let route = Route { src: Port::Dram, dst: Port::Spad(0) };
//! let (id, first_chunk_done) = engine.begin(route, 65_536, 0, Time::ZERO);
//! assert!(first_chunk_done > Time::ZERO);
//! // Drive chunks until the transfer completes.
//! let mut t = first_chunk_done;
//! loop {
//!     match engine.on_chunk_done(id, t) {
//!         Progress::Chunk(next) => t = next,
//!         Progress::Done { end, .. } => { assert_eq!(end, t); break; }
//!     }
//! }
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]


pub mod config;
pub mod interconnect;
pub mod transfer;

pub use config::{InterconnectKind, MemConfig};
pub use interconnect::Interconnect;
pub use transfer::{Port, Progress, Route, TransferEngine, TransferId};

// Thread-safety audit: `MemConfig` travels inside `SocConfig` from
// campaign specs into worker threads; keep it `Send + Sync`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MemConfig>();
};
