//! Memory-system configuration (Table VI).

/// Interconnect topology between accelerators and memory.
///
/// The paper evaluates both ends of the cost/performance spectrum
/// (§V-H, Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum InterconnectKind {
    /// Full-duplex shared bus, 16 B wide, 14.9 GB/s peak per direction.
    #[default]
    Bus,
    /// Crossbar switch: up to n×m concurrent transactions; contention only
    /// at source/destination ports.
    Crossbar,
}

/// Memory-system parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemConfig {
    /// Effective DRAM channel bandwidth in bytes/second.
    ///
    /// Calibrated from Table I: `canny-non-max` moves 3 × 65 536 B in
    /// 30.45 µs ⇒ ≈6.46 GB/s, about half of the LPDDR5-6400 channel peak of
    /// 12.8 GB/s (typical LPDDR efficiency).
    pub dram_bandwidth: u64,
    /// Interconnect lane / port bandwidth in bytes/second (Table VI:
    /// 14.9 GB/s).
    pub interconnect_bandwidth: u64,
    /// Per-accelerator DMA engine bandwidth in bytes/second. Matches the
    /// interconnect so the DMA is never an artificial bottleneck.
    pub dma_bandwidth: u64,
    /// Transfer chunk granularity in bytes; smaller chunks interleave
    /// concurrent transfers more fairly at the cost of more events.
    pub chunk_bytes: u64,
    /// Topology.
    pub interconnect: InterconnectKind,
}

impl MemConfig {
    /// Effective DRAM bandwidth implied by Table I (bytes/second).
    pub const DEFAULT_DRAM_BW: u64 = 6_458_000_000;
    /// Table VI bus peak bandwidth (bytes/second).
    pub const DEFAULT_ICN_BW: u64 = 14_900_000_000;
    /// Default chunk granularity (bytes).
    pub const DEFAULT_CHUNK: u64 = 4096;

    /// Configuration with a crossbar instead of the default bus.
    pub fn with_crossbar(mut self) -> Self {
        self.interconnect = InterconnectKind::Crossbar;
        self
    }

    /// Validates invariants the transfer engine relies on.
    ///
    /// # Panics
    ///
    /// Panics if any bandwidth or the chunk size is zero.
    pub fn validate(&self) {
        assert!(self.dram_bandwidth > 0, "dram bandwidth must be positive");
        assert!(self.interconnect_bandwidth > 0, "interconnect bandwidth must be positive");
        assert!(self.dma_bandwidth > 0, "dma bandwidth must be positive");
        assert!(self.chunk_bytes > 0, "chunk size must be positive");
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            dram_bandwidth: Self::DEFAULT_DRAM_BW,
            interconnect_bandwidth: Self::DEFAULT_ICN_BW,
            dma_bandwidth: Self::DEFAULT_ICN_BW,
            chunk_bytes: Self::DEFAULT_CHUNK,
            interconnect: InterconnectKind::Bus,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_vi_calibration() {
        let c = MemConfig::default();
        assert_eq!(c.dram_bandwidth, 6_458_000_000);
        assert_eq!(c.interconnect_bandwidth, 14_900_000_000);
        assert_eq!(c.interconnect, InterconnectKind::Bus);
        c.validate();
    }

    #[test]
    fn crossbar_builder() {
        assert_eq!(MemConfig::default().with_crossbar().interconnect, InterconnectKind::Crossbar);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        MemConfig { chunk_bytes: 0, ..Default::default() }.validate();
    }

    #[test]
    fn calibration_reproduces_table_i_memory_time() {
        // Three 128x128x4 planes through DRAM at the calibrated bandwidth
        // should take ~30.45us (canny-non-max / elem-matrix in Table I).
        use relief_sim::Dur;
        let t = Dur::for_bytes(3 * 65_536, MemConfig::default().dram_bandwidth);
        let us = t.as_us_f64();
        assert!((us - 30.45).abs() < 0.05, "got {us}");
    }
}
