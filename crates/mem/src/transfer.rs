//! Chunked DMA transfers through the memory system.

use crate::config::MemConfig;
use crate::interconnect::Interconnect;
use relief_sim::timeline::reserve_joint;
use relief_sim::{Dur, SlotAlloc, Time, Timeline};
use relief_trace::{Endpoint, EventKind, ResourceId, Tracer};
use std::fmt;

/// A transfer endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Port {
    /// The main-memory channel.
    Dram,
    /// The scratchpad of accelerator instance `i`.
    Spad(usize),
}

impl Port {
    fn spad_index(self) -> Option<usize> {
        match self {
            Port::Dram => None,
            Port::Spad(i) => Some(i),
        }
    }

    fn endpoint(self) -> Endpoint {
        match self {
            Port::Dram => Endpoint::Dram,
            Port::Spad(i) => Endpoint::Spad(i as u32),
        }
    }
}

/// Source and destination of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Route {
    /// Where bytes are read from.
    pub src: Port,
    /// Where bytes are written to.
    pub dst: Port,
}

impl Route {
    /// True when the route touches main memory.
    pub fn uses_dram(&self) -> bool {
        self.src == Port::Dram || self.dst == Port::Dram
    }

    /// True for a scratchpad-to-scratchpad forward.
    pub fn is_forward(&self) -> bool {
        matches!((self.src, self.dst), (Port::Spad(_), Port::Spad(_)))
    }
}

/// Handle for an in-flight transfer: a dense arena slot plus the
/// generation under which it was allocated. Slots are reused after
/// completion (free-list), so the generation is what distinguishes a
/// live handle from a stale one — debug builds assert on every
/// [`TransferEngine::on_chunk_done`] that the handle's generation still
/// matches the slot's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransferId {
    slot: u32,
    generation: u32,
}

impl TransferId {
    /// Dense arena slot index, `< TransferEngine::slots()` for a live
    /// handle. Callers may keep their own per-transfer side data in
    /// slot-indexed columns (the accelerator simulator keys transfer
    /// purposes this way) instead of a map.
    #[must_use]
    pub fn slot(self) -> usize {
        self.slot as usize
    }
}

impl fmt::Display for TransferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xfer{}g{}", self.slot, self.generation)
    }
}

/// Outcome of driving a transfer by one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// Another chunk was issued; it completes at the given instant.
    Chunk(Time),
    /// The transfer finished.
    Done {
        /// When the first chunk began service.
        start: Time,
        /// When the last chunk completed.
        end: Time,
        /// Total bytes moved.
        bytes: u64,
    },
}

/// Everything the per-chunk path reads and writes for one in-flight
/// transfer, packed into a single 48-byte row so a chunk event touches
/// one cache line of transfer state. Endpoints are stored compactly
/// (`-1` = DRAM, else the scratchpad index) — cheaper to test than the
/// `usize`-payload [`Port`] enum and a third the size.
#[derive(Debug, Clone, Copy)]
struct HotXfer {
    /// Source endpoint: `-1` for DRAM, else the scratchpad index.
    src: i32,
    /// Destination endpoint, same encoding as `src`.
    dst: i32,
    /// Driving DMA engine index.
    dma: u32,
    /// When the first chunk began service; `Time::MAX` until then.
    first_start: Time,
    /// Completion time of the latest chunk issued so far.
    last_end: Time,
    /// Accumulated time chunks waited before service began.
    queued: Dur,
    /// Bytes not yet issued as chunks.
    remaining: u64,
}

impl HotXfer {
    fn route(&self) -> Route {
        Route { src: port_from_compact(self.src), dst: port_from_compact(self.dst) }
    }
}

fn port_to_compact(p: Port) -> i32 {
    match p {
        Port::Dram => -1,
        Port::Spad(i) => i as i32,
    }
}

fn port_from_compact(x: i32) -> Port {
    if x < 0 { Port::Dram } else { Port::Spad(x as usize) }
}

/// `Some(spad index)` for a scratchpad endpoint, `None` for DRAM —
/// compact-encoding analogue of [`Port::spad_index`].
fn spad_of(x: i32) -> Option<usize> {
    if x < 0 { None } else { Some(x as usize) }
}

/// DRAM-channel blackout schedule: a lazily drawn stream of
/// `(down_ps, up_ps)` windows during which no new chunk may start on a
/// DRAM route. The feed is typically infinite (MTTF-derived, stateless
/// seeded — see `relief-fault`), so only the frontier window is held;
/// DRAM-route chunk starts are non-decreasing (each chunk reserves the
/// channel from its gated start), which is what lets the cursor advance
/// monotonically through the stream.
struct DramOutages {
    feed: Box<dyn Iterator<Item = (u64, u64)>>,
    /// The frontier window: every earlier window has already been passed.
    next: (u64, u64),
    /// Windows that actually delayed a chunk start.
    applied: u64,
}

impl fmt::Debug for DramOutages {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DramOutages")
            .field("next", &self.next)
            .field("applied", &self.applied)
            .finish_non_exhaustive()
    }
}

/// Pushes a chunk's start time past any DRAM blackout window covering it
/// and advances the window cursor. Free function over disjoint fields so
/// both chunk paths can call it while other engine fields are borrowed.
/// Emits one `ChannelOutage` trace record per window that delays a start.
fn gate_dram_start(outages: &mut Option<DramOutages>, tracer: &Tracer, mut start: Time) -> Time {
    let Some(o) = outages.as_mut() else { return start };
    loop {
        let (down, up) = o.next;
        if start.as_ps() < down {
            return start;
        }
        if start.as_ps() < up {
            o.applied += 1;
            tracer.emit(start.as_ps(), || EventKind::ChannelOutage { start_ps: down, end_ps: up });
            start = Time::from_ps(up);
        }
        // The window is behind the (possibly pushed) start; fetch the
        // next one and re-check — consecutive windows never overlap but
        // a long stall can skip several.
        o.next = o.feed.next().unwrap_or((u64::MAX, u64::MAX));
    }
}

/// Moves bytes along routes through the DRAM channel, the interconnect, and
/// per-accelerator DMA engines, one chunk at a time.
///
/// The caller owns event scheduling: [`begin`](TransferEngine::begin) issues
/// the first chunk and returns its completion time; each
/// [`on_chunk_done`](TransferEngine::on_chunk_done) issues the next chunk or
/// reports completion. Chunk-granularity issue is what lets concurrent
/// transfers share a resource fairly instead of serializing whole buffers.
///
/// In-flight transfer state lives in a slab arena indexed by the dense
/// slot of each [`TransferId`], split hot/cold: everything the per-chunk
/// path touches is packed into one [`HotXfer`] row (a single cache line
/// per transfer instead of one per field), while the begin/completion
/// metadata (`bytes`/`serial`) stays in parallel cold columns. Slots are
/// free-listed, so a steady-state run allocates nothing per transfer
/// once the arena reaches the concurrency high-water mark, and the
/// per-chunk lookup is a bounds check instead of a hash probe.
#[derive(Debug)]
pub struct TransferEngine {
    config: MemConfig,
    dram: Timeline,
    icn: Interconnect,
    dmas: Vec<Timeline>,
    /// Scratchpad read ports: concurrent forwards out of one producer's
    /// scratchpad serialize here (one read port per SPAD).
    spad_ports: Vec<Timeline>,
    /// Slot allocator for the transfer arena below.
    slots: SlotAlloc,
    /// Hot rows (read and written on every chunk event), slot-indexed.
    hot: Vec<HotXfer>,
    // Cold columns (touched only at begin and completion):
    bytes: Vec<u64>,
    serial: Vec<u64>,
    /// Monotonic transfer number emitted in `DmaStart`/`DmaEnd` trace
    /// records — the pre-arena sequential numbering, kept so traces stay
    /// byte-identical across slot reuse.
    next_serial: u64,
    /// Service durations of a full `chunk_bytes` chunk on the
    /// interconnect, a DMA engine, and the DRAM channel. Almost every
    /// chunk is full-sized, so precomputing these keeps the 128-bit
    /// bandwidth division off the per-chunk path.
    chunk_icn_dur: Dur,
    chunk_dma_dur: Dur,
    chunk_dram_dur: Dur,
    /// Routes chunk issue through the pre-optimisation path (boxed lane
    /// lists, per-chunk bandwidth divisions). Identical reservations by
    /// construction; only the host-side cost differs.
    reference_alloc_path: bool,
    dram_read_bytes: u64,
    dram_write_bytes: u64,
    spad_to_spad_bytes: u64,
    /// Conservation ledger: bytes accepted by `begin`, bytes of transfers
    /// that ran to completion, and bytes of transfers cancelled mid-flight
    /// (full payloads in all three). At drain,
    /// `begun == completed + cancelled`.
    begun_bytes: u64,
    completed_bytes: u64,
    cancelled_bytes: u64,
    /// DRAM-channel blackout windows; `None` when the channel is perfect.
    dram_outages: Option<DramOutages>,
    tracer: Tracer,
}

impl TransferEngine {
    /// Creates an engine for `num_accs` accelerators.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(config: MemConfig, num_accs: usize) -> Self {
        config.validate();
        TransferEngine {
            icn: Interconnect::new(config.interconnect, num_accs),
            dmas: vec![Timeline::new(); num_accs],
            spad_ports: vec![Timeline::new(); num_accs],
            dram: Timeline::new(),
            slots: SlotAlloc::new(),
            hot: Vec::new(),
            bytes: Vec::new(),
            serial: Vec::new(),
            next_serial: 0,
            chunk_icn_dur: Dur::for_bytes(config.chunk_bytes, config.interconnect_bandwidth),
            chunk_dma_dur: Dur::for_bytes(config.chunk_bytes, config.dma_bandwidth),
            chunk_dram_dur: Dur::for_bytes(config.chunk_bytes, config.dram_bandwidth),
            reference_alloc_path: false,
            config,
            dram_read_bytes: 0,
            dram_write_bytes: 0,
            spad_to_spad_bytes: 0,
            begun_bytes: 0,
            completed_bytes: 0,
            cancelled_bytes: 0,
            dram_outages: None,
            tracer: Tracer::off(),
        }
    }

    /// Installs a DRAM-channel blackout schedule: no new chunk may start
    /// on a DRAM route inside any `(down_ps, up_ps)` window. Windows must
    /// be non-overlapping and sorted; the feed may be infinite (only the
    /// frontier window is held).
    pub fn set_dram_outages(&mut self, mut windows: Box<dyn Iterator<Item = (u64, u64)>>) {
        let next = windows.next().unwrap_or((u64::MAX, u64::MAX));
        self.dram_outages = Some(DramOutages { feed: windows, next, applied: 0 });
    }

    /// How many blackout windows have actually delayed a chunk start.
    pub fn channel_outages_applied(&self) -> u64 {
        self.dram_outages.as_ref().map_or(0, |o| o.applied)
    }

    /// Switches chunk issue to the pre-optimisation cost path (see
    /// `reference_alloc_path` field docs). For benchmarking only.
    pub fn set_reference_alloc_path(&mut self, on: bool) {
        self.reference_alloc_path = on;
    }

    /// Per-chunk service durations for `chunk` bytes on the interconnect,
    /// a DMA engine, and the DRAM channel — precomputed for a full chunk,
    /// divided out only for the trailing partial chunk.
    fn chunk_durs(&self, chunk: u64) -> (Dur, Dur, Dur) {
        if chunk == self.config.chunk_bytes {
            (self.chunk_icn_dur, self.chunk_dma_dur, self.chunk_dram_dur)
        } else {
            (
                Dur::for_bytes(chunk, self.config.interconnect_bandwidth),
                Dur::for_bytes(chunk, self.config.dma_bandwidth),
                Dur::for_bytes(chunk, self.config.dram_bandwidth),
            )
        }
    }

    /// Attaches a tracer: transfers emit `DmaStart` / `DmaEnd` records and
    /// the DRAM channel timeline reports `ResourceBusy` occupancy.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.dram.set_tracer(tracer.clone(), ResourceId::Dram);
        self.tracer = tracer;
    }

    /// Starts a transfer of `bytes` along `route`, driven by accelerator
    /// `dma`'s engine. Returns the transfer id and the completion time of
    /// the first chunk (equal to `now` for zero-byte transfers).
    ///
    /// # Panics
    ///
    /// Panics if `dma` is out of range or the route connects DRAM to DRAM.
    pub fn begin(&mut self, route: Route, bytes: u64, dma: usize, now: Time) -> (TransferId, Time) {
        assert!(dma < self.dmas.len(), "dma index out of range");
        assert!(
            route.src != Port::Dram || route.dst != Port::Dram,
            "DRAM-to-DRAM transfers are not modeled"
        );
        let serial = self.next_serial;
        self.next_serial += 1;
        let (slot, generation) = self.slots.alloc();
        let s = slot as usize;
        let row = HotXfer {
            src: port_to_compact(route.src),
            dst: port_to_compact(route.dst),
            dma: dma as u32,
            first_start: Time::MAX,
            last_end: now,
            queued: Dur::ZERO,
            remaining: bytes,
        };
        if s == self.hot.len() {
            // First time this slot exists: grow the arena by one.
            self.hot.push(row);
            self.bytes.push(bytes);
            self.serial.push(serial);
        } else {
            // Free-list reuse: overwrite in place, no allocation.
            self.hot[s] = row;
            self.bytes[s] = bytes;
            self.serial[s] = serial;
        }
        self.tracer.emit(now.as_ps(), || EventKind::DmaStart {
            xfer: serial,
            dma: dma as u32,
            src: route.src.endpoint(),
            dst: route.dst.endpoint(),
            bytes,
        });
        match route {
            Route { src: Port::Dram, .. } => self.dram_read_bytes += bytes,
            Route { dst: Port::Dram, .. } => self.dram_write_bytes += bytes,
            _ => self.spad_to_spad_bytes += bytes,
        }
        self.begun_bytes += bytes;
        let first = self.issue_chunk(s, now);
        (TransferId { slot, generation }, first)
    }

    /// Advances a transfer after its previous chunk completed at `now`.
    ///
    /// # Panics
    ///
    /// Debug builds panic when `id` is stale (already completed — its
    /// slot was released, or released and reused at a newer generation).
    pub fn on_chunk_done(&mut self, id: TransferId, now: Time) -> Progress {
        self.slots.check(id.slot, id.generation);
        let s = id.slot as usize;
        let h = self.hot[s];
        if h.remaining == 0 {
            let start = if h.first_start == Time::MAX { h.last_end } else { h.first_start };
            let end = h.last_end;
            let bytes = self.bytes[s];
            let (route, serial) = (h.route(), self.serial[s]);
            self.tracer.emit(end.as_ps(), || EventKind::DmaEnd {
                xfer: serial,
                dma: h.dma,
                src: route.src.endpoint(),
                dst: route.dst.endpoint(),
                bytes,
                start_ps: start.as_ps(),
                queued_ps: h.queued.as_ps(),
            });
            self.slots.release(id.slot, id.generation);
            self.completed_bytes += bytes;
            return Progress::Done { start, end, bytes };
        }
        Progress::Chunk(self.issue_chunk(s, now))
    }

    /// Cancels an in-flight transfer: already-issued chunks keep their
    /// reservations (the bytes moved over the wire), the not-yet-issued
    /// remainder is rolled back from the route byte attribution, and the
    /// slot is released — no `DmaEnd` will be emitted. Returns the bytes
    /// actually moved (issued chunks). Used by ECC forwarding
    /// invalidation and request-timeout cancellation.
    ///
    /// # Panics
    ///
    /// Debug builds panic when `id` is stale (already completed or
    /// cancelled).
    pub fn cancel(&mut self, id: TransferId, now: Time) -> u64 {
        self.slots.check(id.slot, id.generation);
        let s = id.slot as usize;
        let h = self.hot[s];
        let total = self.bytes[s];
        let moved = total - h.remaining;
        let (route, serial) = (h.route(), self.serial[s]);
        match route {
            Route { src: Port::Dram, .. } => self.dram_read_bytes -= h.remaining,
            Route { dst: Port::Dram, .. } => self.dram_write_bytes -= h.remaining,
            _ => self.spad_to_spad_bytes -= h.remaining,
        }
        self.cancelled_bytes += total;
        self.tracer.emit(now.as_ps(), || EventKind::DmaCancelled {
            xfer: serial,
            dma: h.dma,
            src: route.src.endpoint(),
            dst: route.dst.endpoint(),
            bytes: moved,
        });
        self.slots.release(id.slot, id.generation);
        moved
    }

    /// True when `id` refers to a still-in-flight transfer — lets callers
    /// drop stale chunk events for transfers cancelled in the meantime.
    pub fn is_live(&self, id: TransferId) -> bool {
        self.slots.is_live(id.slot, id.generation)
    }

    /// Issues the next chunk of the transfer in slot `s`; returns its
    /// completion time.
    ///
    /// The correlated reservation mirrors [`reserve_joint`]: every
    /// involved resource starts at the latest availability across the set
    /// and is held for its own duration — but the resources are reserved
    /// through direct field borrows, so the per-chunk path allocates
    /// nothing, and the transfer state is read straight out of the hot
    /// arena columns.
    fn issue_chunk(&mut self, s: usize, now: Time) -> Time {
        if self.reference_alloc_path {
            return self.issue_chunk_reference(s, now);
        }
        let h = &mut self.hot[s];
        let chunk = h.remaining.min(self.config.chunk_bytes);
        if chunk == 0 {
            // Zero-byte transfer: complete immediately at `now`.
            h.last_end = now;
            if h.first_start == Time::MAX {
                h.first_start = now;
            }
            return now;
        }
        h.remaining -= chunk;
        let dma = h.dma as usize;
        let uses_dram = h.src < 0 || h.dst < 0;
        let src = spad_of(h.src);
        let dst = spad_of(h.dst);

        let (icn_dur, dma_dur, dram_dur) = self.chunk_durs(chunk);

        let mut start = now;
        if uses_dram {
            start = start.max(self.dram.earliest_start(now));
        }
        if let Some(si) = src {
            // The producer scratchpad's read port.
            start = start.max(self.spad_ports[si].earliest_start(now));
        }
        start = start.max(self.icn.earliest_start(src, dst, now));
        start = start.max(self.dmas[dma].earliest_start(now));
        if uses_dram {
            start = gate_dram_start(&mut self.dram_outages, &self.tracer, start);
        }

        let mut end = start;
        if uses_dram {
            end = end.max(self.dram.reserve_from(now, start, dram_dur).1);
        }
        if let Some(si) = src {
            end = end.max(self.spad_ports[si].reserve_from(now, start, icn_dur).1);
        }
        self.icn.reserve_from(src, dst, now, start, icn_dur);
        end = end.max(start + icn_dur);
        end = end.max(self.dmas[dma].reserve_from(now, start, dma_dur).1);

        self.icn.note_busy(start, start + icn_dur);

        let h = &mut self.hot[s];
        if h.first_start == Time::MAX {
            h.first_start = start;
        }
        h.queued += start.saturating_since(now);
        h.last_end = h.last_end.max(end);
        end
    }

    /// The pre-optimisation chunk path, kept verbatim so `xtask bench`
    /// can record the old cost on the same build: boxes the lane set,
    /// recomputes bandwidth divisions per chunk, and reserves through
    /// [`reserve_joint`]. Reservation-for-reservation identical to
    /// [`issue_chunk`](Self::issue_chunk).
    fn issue_chunk_reference(&mut self, s: usize, now: Time) -> Time {
        let chunk = self.hot[s].remaining.min(self.config.chunk_bytes);
        if chunk == 0 {
            let h = &mut self.hot[s];
            h.last_end = now;
            if h.first_start == Time::MAX {
                h.first_start = now;
            }
            return now;
        }
        self.hot[s].remaining -= chunk;
        let route = self.hot[s].route();

        let icn_dur = Dur::for_bytes(chunk, self.config.interconnect_bandwidth);
        let dma_dur = Dur::for_bytes(chunk, self.config.dma_bandwidth);
        let dram_dur = Dur::for_bytes(chunk, self.config.dram_bandwidth);

        let mut resources: Vec<&mut Timeline> = Vec::with_capacity(5);
        let mut durs: Vec<Dur> = Vec::with_capacity(5);
        if route.uses_dram() {
            resources.push(&mut self.dram);
            durs.push(dram_dur);
        }
        let src = route.src.spad_index();
        let dst = route.dst.spad_index();
        if let Some(si) = src {
            resources.push(&mut self.spad_ports[si]);
            durs.push(icn_dur);
        }
        let lanes = self.icn.lanes_mut(src, dst);
        for lane in lanes {
            resources.push(lane);
            durs.push(icn_dur);
        }
        resources.push(&mut self.dmas[self.hot[s].dma as usize]);
        durs.push(dma_dur);

        let (start, end) = if self.dram_outages.is_some() && route.uses_dram() {
            // The blackout gate sits between the joint earliest-start fold
            // and the reservations, so `reserve_joint` is inlined here —
            // identical except for the gate, which both paths apply after
            // maxing over every involved resource.
            let mut start = resources.iter().fold(now, |acc, r| acc.max(r.earliest_start(now)));
            start = gate_dram_start(&mut self.dram_outages, &self.tracer, start);
            let mut end = start;
            for (r, &d) in resources.iter_mut().zip(&durs) {
                end = end.max(r.reserve_from(now, start, d).1);
            }
            (start, end)
        } else {
            reserve_joint(&mut resources, &durs, now)
        };
        self.icn.note_busy(start, start + icn_dur);

        let h = &mut self.hot[s];
        if h.first_start == Time::MAX {
            h.first_start = start;
        }
        h.queued += start.saturating_since(now);
        h.last_end = h.last_end.max(end);
        end
    }

    /// Number of transfers still in flight.
    pub fn in_flight(&self) -> usize {
        self.slots.live()
    }

    /// Number of arena slots ever allocated — the upper bound (exclusive)
    /// of [`TransferId::slot`] across live handles, i.e. the length a
    /// slot-indexed side table must have.
    pub fn slots(&self) -> usize {
        self.slots.slots()
    }

    /// Total DRAM busy time so far.
    pub fn dram_busy(&self) -> Dur {
        self.dram.stats().busy
    }

    /// Union interconnect busy time so far (Fig. 13 numerator).
    pub fn interconnect_busy(&self) -> Dur {
        self.icn.busy()
    }

    /// Bytes read from DRAM so far.
    pub fn dram_read_bytes(&self) -> u64 {
        self.dram_read_bytes
    }

    /// Bytes written to DRAM so far.
    pub fn dram_write_bytes(&self) -> u64 {
        self.dram_write_bytes
    }

    /// Bytes forwarded scratchpad-to-scratchpad so far.
    pub fn spad_to_spad_bytes(&self) -> u64 {
        self.spad_to_spad_bytes
    }

    /// Conservation ledger `(begun, completed, cancelled)` — full
    /// payloads accepted by [`begin`](Self::begin), completed, and
    /// cancelled. With no transfer in flight,
    /// `begun == completed + cancelled`.
    pub fn byte_ledger(&self) -> (u64, u64, u64) {
        (self.begun_bytes, self.completed_bytes, self.cancelled_bytes)
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(engine: &mut TransferEngine, id: TransferId, mut t: Time) -> (Time, Time, u64) {
        loop {
            match engine.on_chunk_done(id, t) {
                Progress::Chunk(next) => t = next,
                Progress::Done { start, end, bytes } => return (start, end, bytes),
            }
        }
    }

    #[test]
    fn uncontended_dram_read_matches_bandwidth() {
        let mut e = TransferEngine::new(MemConfig::default(), 1);
        let bytes = 65_536;
        let (id, first) = e.begin(Route { src: Port::Dram, dst: Port::Spad(0) }, bytes, 0, Time::ZERO);
        let (start, end, b) = drive(&mut e, id, first);
        assert_eq!(start, Time::ZERO);
        assert_eq!(b, bytes);
        // DRAM (6.458 GB/s) is the bottleneck: ~10.15us per plane.
        let us = (end - start).as_us_f64();
        assert!((us - 10.148).abs() < 0.02, "got {us}");
        assert_eq!(e.dram_read_bytes(), bytes);
        assert_eq!(e.in_flight(), 0);
    }

    #[test]
    fn spad_to_spad_does_not_touch_dram() {
        let mut e = TransferEngine::new(MemConfig::default(), 2);
        let (id, first) = e.begin(Route { src: Port::Spad(0), dst: Port::Spad(1) }, 65_536, 1, Time::ZERO);
        let (start, end, _) = drive(&mut e, id, first);
        assert_eq!(e.dram_busy(), Dur::ZERO);
        assert_eq!(e.spad_to_spad_bytes(), 65_536);
        // Bus at 14.9 GB/s: ~4.4us per plane — faster than the DRAM path.
        let us = (end - start).as_us_f64();
        assert!((us - 4.399).abs() < 0.02, "got {us}");
    }

    /// Drives several transfers concurrently with a mini event loop,
    /// returning each transfer's end time, positionally aligned with
    /// `starts` — indexed slots instead of a per-call map allocation.
    fn drive_concurrent(engine: &mut TransferEngine, starts: Vec<(TransferId, Time)>) -> Vec<Time> {
        let mut queue = relief_sim::EventQueue::new();
        for (i, (id, t)) in starts.iter().enumerate() {
            queue.push(*t, (i, *id));
        }
        let mut ends: Vec<Option<Time>> = vec![None; starts.len()];
        while let Some((now, (i, id))) = queue.pop() {
            match engine.on_chunk_done(id, now) {
                Progress::Chunk(next) => queue.push(next, (i, id)),
                Progress::Done { end, .. } => ends[i] = Some(end),
            }
        }
        ends.into_iter().map(|e| e.expect("every transfer completed")).collect()
    }

    #[test]
    fn concurrent_dram_transfers_share_bandwidth() {
        let mut e = TransferEngine::new(MemConfig::default(), 2);
        let bytes = 65_536;
        let r0 = Route { src: Port::Dram, dst: Port::Spad(0) };
        let r1 = Route { src: Port::Dram, dst: Port::Spad(1) };
        let (id0, f0) = e.begin(r0, bytes, 0, Time::ZERO);
        let (id1, f1) = e.begin(r1, bytes, 1, Time::ZERO);
        let ends = drive_concurrent(&mut e, vec![(id0, f0), (id1, f1)]);
        let solo = Dur::for_bytes(bytes, MemConfig::default().dram_bandwidth);
        // Both should take roughly 2x the solo time (fair interleaving),
        // not 1x / 2x (whole-transfer serialization).
        let last = ends[0].max(ends[1]).saturating_since(Time::ZERO);
        assert!(last >= solo * 19 / 10, "shared: {last} vs solo {solo}");
        let first = ends[0].min(ends[1]).saturating_since(Time::ZERO);
        assert!(first >= solo * 18 / 10, "loser finished too early: {first}");
    }

    #[test]
    fn crossbar_isolates_disjoint_forwards() {
        let cfg = MemConfig::default().with_crossbar();
        let mut e = TransferEngine::new(cfg, 4);
        let bytes = 65_536;
        let (a, fa) = e.begin(Route { src: Port::Spad(0), dst: Port::Spad(1) }, bytes, 1, Time::ZERO);
        let (b, fb) = e.begin(Route { src: Port::Spad(2), dst: Port::Spad(3) }, bytes, 3, Time::ZERO);
        let (_, ea, _) = drive(&mut e, a, fa);
        let (_, eb, _) = drive(&mut e, b, fb);
        let solo = Dur::for_bytes(bytes, cfg.interconnect_bandwidth);
        // No interference: each finishes in about solo time.
        assert!(ea.saturating_since(Time::ZERO) <= solo * 11 / 10);
        assert!(eb.saturating_since(Time::ZERO) <= solo * 11 / 10);
    }

    #[test]
    fn bus_serializes_what_crossbar_parallelizes() {
        let run = |cfg: MemConfig| {
            let mut e = TransferEngine::new(cfg, 4);
            let bytes = 65_536;
            let (a, fa) = e.begin(Route { src: Port::Spad(0), dst: Port::Spad(1) }, bytes, 1, Time::ZERO);
            let (b, fb) = e.begin(Route { src: Port::Spad(2), dst: Port::Spad(3) }, bytes, 3, Time::ZERO);
            let (_, ea, _) = drive(&mut e, a, fa);
            let (_, eb, _) = drive(&mut e, b, fb);
            ea.max(eb)
        };
        let bus = run(MemConfig::default());
        let xbar = run(MemConfig::default().with_crossbar());
        assert!(bus > xbar, "bus {bus} should be slower than crossbar {xbar}");
    }

    #[test]
    fn zero_byte_transfer_completes_immediately() {
        let mut e = TransferEngine::new(MemConfig::default(), 1);
        let now = Time::from_us(5);
        let (id, first) = e.begin(Route { src: Port::Dram, dst: Port::Spad(0) }, 0, 0, now);
        assert_eq!(first, now);
        match e.on_chunk_done(id, first) {
            Progress::Done { start, end, bytes } => {
                assert_eq!((start, end, bytes), (now, now, 0));
            }
            p => panic!("expected Done, got {p:?}"),
        }
    }

    #[test]
    fn interconnect_busy_tracks_transfers() {
        let mut e = TransferEngine::new(MemConfig::default(), 1);
        assert_eq!(e.interconnect_busy(), Dur::ZERO);
        let (id, f) = e.begin(Route { src: Port::Dram, dst: Port::Spad(0) }, 8192, 0, Time::ZERO);
        drive(&mut e, id, f);
        // Two 4 KiB chunks, each rounded up to a picosecond independently.
        let icn_time = Dur::for_bytes(4096, MemConfig::default().interconnect_bandwidth) * 2;
        assert_eq!(e.interconnect_busy(), icn_time);
    }

    #[test]
    fn concurrent_forwards_from_one_producer_serialize_on_its_port() {
        // Two consumers (distinct DMAs) pulling from SPAD 0 at once: the
        // producer's read port serializes them even on a crossbar.
        let cfg = MemConfig::default().with_crossbar();
        let mut e = TransferEngine::new(cfg, 3);
        let bytes = 65_536;
        let (a, fa) = e.begin(Route { src: Port::Spad(0), dst: Port::Spad(1) }, bytes, 1, Time::ZERO);
        let (b, fb) = e.begin(Route { src: Port::Spad(0), dst: Port::Spad(2) }, bytes, 2, Time::ZERO);
        let ends = drive_concurrent(&mut e, vec![(a, fa), (b, fb)]);
        let solo = Dur::for_bytes(bytes, cfg.interconnect_bandwidth);
        let last = ends[0].max(ends[1]).saturating_since(Time::ZERO);
        assert!(last >= solo * 19 / 10, "port contention must serialize: {last} vs solo {solo}");
    }

    #[test]
    fn distinct_producers_forward_concurrently_on_crossbar() {
        let cfg = MemConfig::default().with_crossbar();
        let mut e = TransferEngine::new(cfg, 4);
        let bytes = 65_536;
        let (a, fa) = e.begin(Route { src: Port::Spad(0), dst: Port::Spad(2) }, bytes, 2, Time::ZERO);
        let (b, fb) = e.begin(Route { src: Port::Spad(1), dst: Port::Spad(3) }, bytes, 3, Time::ZERO);
        let ends = drive_concurrent(&mut e, vec![(a, fa), (b, fb)]);
        let solo = Dur::for_bytes(bytes, cfg.interconnect_bandwidth);
        for end in ends {
            assert!(end.saturating_since(Time::ZERO) <= solo * 11 / 10);
        }
    }

    /// The allocation-free chunk path and the reference path must produce
    /// identical reservations: same per-transfer outcomes, same resource
    /// stats, same occupancy — on bus and crossbar, full and partial
    /// chunks, contended and not.
    #[test]
    fn fast_and_reference_paths_are_equivalent() {
        for crossbar in [false, true] {
            let cfg = if crossbar {
                MemConfig::default().with_crossbar()
            } else {
                MemConfig::default()
            };
            let mut fast = TransferEngine::new(cfg, 4);
            let mut reference = TransferEngine::new(cfg, 4);
            reference.set_reference_alloc_path(true);
            // Mixed routes, sizes that exercise partial trailing chunks
            // and zero-byte completion, staggered starts for contention.
            let plan = [
                (Route { src: Port::Dram, dst: Port::Spad(0) }, 65_536, 0, 0),
                (Route { src: Port::Spad(0), dst: Port::Spad(1) }, 10_000, 1, 2),
                (Route { src: Port::Spad(1), dst: Port::Dram }, 4_097, 1, 5),
                (Route { src: Port::Spad(2), dst: Port::Spad(3) }, 0, 3, 5),
                (Route { src: Port::Dram, dst: Port::Spad(2) }, 123, 2, 7),
            ];
            let mut outcomes = Vec::new();
            for e in [&mut fast, &mut reference] {
                let starts: Vec<(TransferId, Time)> = plan
                    .iter()
                    .map(|&(route, bytes, dma, at_us)| {
                        e.begin(route, bytes, dma, Time::from_us(at_us))
                    })
                    .collect();
                let ends = drive_concurrent(e, starts.clone());
                outcomes.push((starts, ends));
            }
            assert_eq!(outcomes[0], outcomes[1], "crossbar={crossbar}");
            assert_eq!(fast.dram_busy(), reference.dram_busy(), "crossbar={crossbar}");
            assert_eq!(
                fast.interconnect_busy(),
                reference.interconnect_busy(),
                "crossbar={crossbar}"
            );
            assert_eq!(fast.dram.stats(), reference.dram.stats());
            for (a, b) in fast.dmas.iter().zip(&reference.dmas) {
                assert_eq!(a.stats(), b.stats());
                assert_eq!(a.free_at(), b.free_at());
            }
            for (a, b) in fast.spad_ports.iter().zip(&reference.spad_ports) {
                assert_eq!(a.stats(), b.stats());
            }
            assert_eq!(fast.icn.total_queued(), reference.icn.total_queued());
            assert_eq!(fast.dram_read_bytes(), reference.dram_read_bytes());
            assert_eq!(fast.dram_write_bytes(), reference.dram_write_bytes());
            assert_eq!(fast.spad_to_spad_bytes(), reference.spad_to_spad_bytes());
        }
    }

    #[test]
    fn dram_outage_gate_delays_chunk_starts_identically_on_both_paths() {
        let windows = vec![(0u64, 1_000_000u64), (3_000_000, 3_500_000)];
        let run = |reference: bool| {
            let mut e = TransferEngine::new(MemConfig::default(), 2);
            e.set_reference_alloc_path(reference);
            e.set_dram_outages(Box::new(windows.clone().into_iter()));
            let (a, fa) =
                e.begin(Route { src: Port::Dram, dst: Port::Spad(0) }, 20_000, 0, Time::ZERO);
            let (b, fb) =
                e.begin(Route { src: Port::Spad(0), dst: Port::Spad(1) }, 8_192, 1, Time::ZERO);
            let ends = drive_concurrent(&mut e, vec![(a, fa), (b, fb)]);
            (ends, e.channel_outages_applied(), e.dram_busy())
        };
        let (fast_ends, fast_applied, fast_busy) = run(false);
        let (ref_ends, ref_applied, ref_busy) = run(true);
        assert_eq!(fast_ends, ref_ends);
        assert_eq!(fast_applied, ref_applied);
        assert_eq!(fast_busy, ref_busy);
        // The first window covers t=0, so the DRAM read cannot start
        // before 1us; the SPAD forward is not gated.
        assert!(fast_applied >= 1, "window at t=0 must delay the DRAM read");
        assert!(fast_ends[0] > Time::from_ps(1_000_000));
        // Without outages the read finishes well before 1us + transfer time.
        let mut clean = TransferEngine::new(MemConfig::default(), 2);
        let (id, first) =
            clean.begin(Route { src: Port::Dram, dst: Port::Spad(0) }, 20_000, 0, Time::ZERO);
        let (_, clean_end, _) = drive(&mut clean, id, first);
        assert!(fast_ends[0] >= clean_end + Dur::from_ps(1_000_000));
    }

    #[test]
    fn cancel_rolls_back_unissued_bytes_and_keeps_ledger_conserved() {
        let mut e = TransferEngine::new(MemConfig::default(), 2);
        let bytes = 65_536;
        // Complete one transfer fully, then cancel a second after one chunk.
        let (done_id, f0) =
            e.begin(Route { src: Port::Dram, dst: Port::Spad(0) }, bytes, 0, Time::ZERO);
        let (_, end0, _) = drive(&mut e, done_id, f0);
        let (cancel_id, first) =
            e.begin(Route { src: Port::Spad(0), dst: Port::Spad(1) }, bytes, 1, end0);
        assert!(e.is_live(cancel_id));
        // One chunk has been issued by `begin`; cancel at its completion.
        let moved = e.cancel(cancel_id, first);
        assert_eq!(moved, MemConfig::default().chunk_bytes);
        assert!(!e.is_live(cancel_id));
        assert_eq!(e.in_flight(), 0);
        // Attribution keeps only the issued chunk of the cancelled forward.
        assert_eq!(e.dram_read_bytes(), bytes);
        assert_eq!(e.spad_to_spad_bytes(), moved);
        let (begun, completed, cancelled) = e.byte_ledger();
        assert_eq!(begun, 2 * bytes);
        assert_eq!(completed, bytes);
        assert_eq!(cancelled, bytes);
        assert_eq!(begun, completed + cancelled);
    }

    #[test]
    fn completed_slots_are_reused_without_growth() {
        // Sequential begin/complete cycles must keep hitting the same
        // arena slot: the high-water mark stays at the peak concurrency
        // (1 here), so steady state allocates nothing per transfer.
        let mut e = TransferEngine::new(MemConfig::default(), 1);
        let mut t = Time::ZERO;
        let mut ids = Vec::new();
        for _ in 0..16 {
            let (id, first) = e.begin(Route { src: Port::Dram, dst: Port::Spad(0) }, 8192, 0, t);
            ids.push(id);
            let (_, end, _) = drive(&mut e, id, first);
            t = end;
        }
        assert_eq!(e.slots(), 1, "one-at-a-time transfers must reuse one slot");
        assert_eq!(e.in_flight(), 0);
        // Same slot, distinct generations: every retired handle is unique.
        assert_eq!(ids.iter().map(|id| id.slot()).max(), Some(0));
        let mut seen = ids.clone();
        seen.dedup();
        assert_eq!(seen.len(), ids.len(), "generations must distinguish reused slots");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale slab handle")]
    fn stale_transfer_handle_fires_debug_assertion() {
        let mut e = TransferEngine::new(MemConfig::default(), 1);
        let (id, first) = e.begin(Route { src: Port::Dram, dst: Port::Spad(0) }, 4096, 0, Time::ZERO);
        drive(&mut e, id, first);
        // The transfer completed and its slot was released (and possibly
        // reused); driving the old handle again must be caught.
        let _ = e.begin(Route { src: Port::Dram, dst: Port::Spad(0) }, 4096, 0, Time::ZERO);
        e.on_chunk_done(id, Time::from_us(99));
    }

    #[test]
    #[should_panic(expected = "dma index out of range")]
    fn bad_dma_index_panics() {
        let mut e = TransferEngine::new(MemConfig::default(), 1);
        e.begin(Route { src: Port::Dram, dst: Port::Spad(0) }, 1, 5, Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "DRAM-to-DRAM")]
    fn dram_to_dram_rejected() {
        let mut e = TransferEngine::new(MemConfig::default(), 1);
        e.begin(Route { src: Port::Dram, dst: Port::Dram }, 1, 0, Time::ZERO);
    }
}
