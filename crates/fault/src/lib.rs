//! Deterministic, seeded fault injection for the RELIEF simulator.
//!
//! The simulator's determinism contract requires that a fault campaign be
//! a pure function of its configuration: the same [`FaultConfig`] must
//! yield the same fault schedule whether the campaign runs on one worker
//! thread or sixteen, and regardless of the order in which the event loop
//! happens to interleave tasks. A mutable RNG threaded through the
//! simulation would break that — every extra draw would shift all later
//! decisions — so [`FaultPlan`] makes every decision *stateless*: each
//! fault verdict is a pure hash of `(seed, fault domain, stable identity,
//! attempt)`, folded through FNV-1a into a [`SplitMix64`] stream and
//! thresholded against the configured rate. Two simulations asking the
//! same question always get the same answer, and questions never interact.
//!
//! The taxonomy (mirrors the trace events in `relief-trace`):
//!
//! * **Transient task fault** — a task's compute completes but its output
//!   is corrupt. The scheduler discards the output, restores the parents'
//!   reader counts, and re-queues the task after an exponential-backoff
//!   delay, up to [`FaultConfig::max_retries`] times; after that the task
//!   (and its DAG) is aborted.
//! * **DMA transfer fault** — an input transfer delivers corrupt data.
//!   The transfer retries *from DRAM*: if the original source was a
//!   producer scratchpad, the forwarding window is considered lost. After
//!   `max_retries` the engine falls back to a verified (ECC-checked) DRAM
//!   read that always succeeds, keeping every transfer bounded.
//! * **Accelerator-unit outage** — a unit goes offline on a deterministic
//!   MTTF-derived schedule. It finishes its current task (quarantine is
//!   non-preemptive), is removed from the dispatch candidate set and from
//!   the forwarding source set, and rejoins when its restore fires.
//! * **DRAM-channel outage** — the main-memory channel blacks out on its
//!   own MTTF-derived schedule (same stateless seeding as unit outages,
//!   separate hash domain). No new chunk may begin service inside a
//!   blackout window; chunks already in flight complete.
//! * **Per-chunk ECC corruption** — one chunk of a *forwarded*
//!   (scratchpad-to-scratchpad) input transfer fails its ECC check. The
//!   whole transfer is cancelled, the forwarding window is considered
//!   invalidated, and the edge re-fetches from DRAM after the same
//!   bounded exponential backoff task retries use. Chunks of DRAM reads
//!   never fault (the modeled DRAM path is ECC-verified end to end), so
//!   every edge delivery terminates.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use relief_sim::SplitMix64;
use std::fmt;

/// 64-bit FNV-1a over a byte string (the same stable, dependency-free
/// hash the campaign engine uses for spec-derived seeding).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fault-injection knobs. The all-[`Default`] configuration injects
/// nothing and leaves the simulator's behaviour bit-identical to a build
/// without the fault layer.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault plan. Independent of the simulator's jitter seed
    /// so fault schedules can be swept without perturbing compute times.
    pub seed: u64,
    /// Probability that one task-compute attempt produces a corrupt
    /// output, in `[0, 1)`.
    pub task_fault_rate: f64,
    /// Probability that one input DMA transfer attempt delivers corrupt
    /// data, in `[0, 1)`.
    pub dma_fault_rate: f64,
    /// Retry budget per task and per transfer. Attempt indices are
    /// 0-based: a task may fault on attempts `0..=max_retries` and is
    /// aborted when attempt `max_retries` faults.
    pub max_retries: u32,
    /// Base re-dispatch delay after a task fault, in picoseconds; attempt
    /// `a` waits `retry_backoff_ps << a` (exponential backoff).
    pub retry_backoff_ps: u64,
    /// Mean time to failure of an accelerator unit, in picoseconds.
    /// `0` disables unit outages.
    pub unit_mttf_ps: u64,
    /// Repair (quarantine) duration of a failed unit, in picoseconds.
    pub unit_repair_ps: u64,
    /// Probability that one chunk of a forwarded (SPAD-to-SPAD) input
    /// transfer fails its ECC check, in `[0, 1)`. A corrupt chunk cancels
    /// the transfer and forces a backed-off re-fetch from DRAM.
    pub ecc_chunk_rate: f64,
    /// Mean time to failure of the DRAM channel, in picoseconds.
    /// `0` disables channel outages.
    pub dram_mttf_ps: u64,
    /// Blackout duration of a failed DRAM channel, in picoseconds.
    pub dram_repair_ps: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xFA57,
            task_fault_rate: 0.0,
            dma_fault_rate: 0.0,
            max_retries: 3,
            retry_backoff_ps: 2_000_000, // 2 us
            unit_mttf_ps: 0,
            unit_repair_ps: 400_000_000, // 400 us
            ecc_chunk_rate: 0.0,
            dram_mttf_ps: 0,
            dram_repair_ps: 50_000_000, // 50 us
        }
    }
}

/// A rejected [`FaultConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfigError(String);

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault config: {}", self.0)
    }
}

impl std::error::Error for FaultConfigError {}

impl FaultConfig {
    /// True when this configuration can inject at least one fault kind.
    /// When false, the simulator takes no fault-layer branches at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.task_fault_rate > 0.0
            || self.dma_fault_rate > 0.0
            || self.unit_mttf_ps > 0
            || self.ecc_chunk_rate > 0.0
            || self.dram_mttf_ps > 0
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultConfigError`] naming the offending knob when a
    /// rate is outside `[0, 1)` or non-finite, or an enabled outage model
    /// has a zero repair time.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        for (name, rate) in [
            ("task_fault_rate", self.task_fault_rate),
            ("dma_fault_rate", self.dma_fault_rate),
            ("ecc_chunk_rate", self.ecc_chunk_rate),
        ] {
            if !rate.is_finite() || !(0.0..1.0).contains(&rate) {
                return Err(FaultConfigError(format!("{name} must be in [0, 1), got {rate}")));
            }
        }
        if self.unit_mttf_ps > 0 && self.unit_repair_ps == 0 {
            return Err(FaultConfigError(
                "unit_repair_ps must be nonzero when unit_mttf_ps is set".into(),
            ));
        }
        if self.dram_mttf_ps > 0 && self.dram_repair_ps == 0 {
            return Err(FaultConfigError(
                "dram_repair_ps must be nonzero when dram_mttf_ps is set".into(),
            ));
        }
        Ok(())
    }
}

/// Fault-decision domains, mixed into the hash so a task fault and a DMA
/// fault with the same numeric identity stay independent.
const DOMAIN_TASK: u8 = 1;
const DOMAIN_DMA: u8 = 2;
const DOMAIN_UNIT: u8 = 3;
const DOMAIN_CHANNEL: u8 = 4;
const DOMAIN_ECC: u8 = 5;

/// One scheduled unit outage window, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// When the unit goes offline.
    pub down_ps: u64,
    /// When its restore event fires.
    pub up_ps: u64,
}

/// The deterministic outage schedule of one accelerator unit: an infinite
/// iterator of non-overlapping [`Outage`] windows. Up-times are uniform in
/// `[mttf/2, 3*mttf/2]`, drawn from a per-unit [`SplitMix64`] stream, so
/// the whole schedule is a pure function of `(seed, unit index)`.
#[derive(Debug, Clone)]
pub struct OutageSchedule {
    rng: SplitMix64,
    at_ps: u64,
    mttf_ps: u64,
    repair_ps: u64,
}

impl Iterator for OutageSchedule {
    type Item = Outage;

    fn next(&mut self) -> Option<Outage> {
        if self.mttf_ps == 0 {
            return None;
        }
        let half = (self.mttf_ps / 2).max(1);
        let up_time = self.rng.u64_inclusive(half, self.mttf_ps.saturating_add(half));
        let down_ps = self.at_ps.saturating_add(up_time.max(1));
        let up_ps = down_ps.saturating_add(self.repair_ps.max(1));
        self.at_ps = up_ps;
        Some(Outage { down_ps, up_ps })
    }
}

/// A fault plan: stateless, order-independent fault decisions derived from
/// a [`FaultConfig`].
///
/// # Examples
///
/// ```
/// use relief_fault::{FaultConfig, FaultPlan};
///
/// let cfg = FaultConfig { task_fault_rate: 0.5, ..FaultConfig::default() };
/// let a = FaultPlan::new(cfg.clone());
/// let b = FaultPlan::new(cfg);
/// // Decisions are pure functions of (config, identity, attempt):
/// for node in 0..64 {
///     assert_eq!(a.task_faults(0, node, 0), b.task_faults(0, node, 0));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Builds a plan over `cfg`.
    #[must_use]
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan { cfg }
    }

    /// The underlying configuration.
    #[must_use]
    pub fn cfg(&self) -> &FaultConfig {
        &self.cfg
    }

    /// True when any fault kind can fire.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// The stateless coin flip: hash `(seed, domain, a, b)` into a
    /// SplitMix64 stream and threshold its first uniform draw.
    fn decide(&self, domain: u8, a: u64, b: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let mut bytes = [0u8; 25];
        bytes[..8].copy_from_slice(&self.cfg.seed.to_le_bytes());
        bytes[8] = domain;
        bytes[9..17].copy_from_slice(&a.to_le_bytes());
        bytes[17..25].copy_from_slice(&b.to_le_bytes());
        SplitMix64::new(fnv1a(&bytes)).chance(rate)
    }

    /// Whether compute attempt `attempt` of task `(instance, node)`
    /// produces a corrupt output.
    #[must_use]
    pub fn task_faults(&self, instance: u32, node: u32, attempt: u32) -> bool {
        self.decide(
            DOMAIN_TASK,
            (u64::from(instance) << 32) | u64::from(node),
            u64::from(attempt),
            self.cfg.task_fault_rate,
        )
    }

    /// Whether delivery attempt `attempt` of the input transfer into task
    /// `(instance, node)` from `parent` (the parent's node index, or
    /// [`u32::MAX`] for a primary DRAM input) is corrupt. Attempts at or
    /// beyond [`FaultConfig::max_retries`] never fault — the modeled
    /// fallback is a verified DRAM read — so transfers stay bounded.
    #[must_use]
    pub fn dma_faults(&self, instance: u32, node: u32, parent: u32, attempt: u32) -> bool {
        if attempt >= self.cfg.max_retries {
            return false;
        }
        self.decide(
            DOMAIN_DMA,
            (u64::from(instance) << 32) | u64::from(node),
            (u64::from(parent) << 32) | u64::from(attempt),
            self.cfg.dma_fault_rate,
        )
    }

    /// Whether chunk `chunk` of delivery attempt `attempt` of the
    /// forwarded input transfer into task `(instance, node)` from `parent`
    /// fails its ECC check. Attempts at or beyond
    /// [`FaultConfig::max_retries`] never fault (the fallback DRAM read is
    /// ECC-verified), so edge deliveries stay bounded. The chunk index is
    /// folded in at 24 bits and the attempt at 8, which covers every
    /// transfer the simulator models (chunks are 4 KiB, payloads well
    /// under 64 GiB, retry budgets single-digit).
    #[must_use]
    pub fn ecc_chunk_faults(
        &self,
        instance: u32,
        node: u32,
        parent: u32,
        chunk: u32,
        attempt: u32,
    ) -> bool {
        if attempt >= self.cfg.max_retries {
            return false;
        }
        self.decide(
            DOMAIN_ECC,
            (u64::from(instance) << 32) | u64::from(node),
            (u64::from(parent) << 32)
                | (u64::from(chunk & 0x00FF_FFFF) << 8)
                | u64::from(attempt & 0xFF),
            self.cfg.ecc_chunk_rate,
        )
    }

    /// Re-dispatch delay after fault number `attempt` of a task, in
    /// picoseconds: exponential backoff with a shift cap so the delay
    /// saturates instead of overflowing.
    #[must_use]
    pub fn backoff_ps(&self, attempt: u32) -> u64 {
        self.cfg.retry_backoff_ps.saturating_mul(1u64 << attempt.min(16))
    }

    /// The outage schedule of accelerator unit `inst`. Empty (yields
    /// nothing) when outages are disabled.
    #[must_use]
    pub fn outages(&self, inst: u32) -> OutageSchedule {
        OutageSchedule {
            rng: SplitMix64::new(fnv1a(&{
                let mut bytes = [0u8; 17];
                bytes[..8].copy_from_slice(&self.cfg.seed.to_le_bytes());
                bytes[8] = DOMAIN_UNIT;
                bytes[9..17].copy_from_slice(&u64::from(inst).to_le_bytes());
                bytes
            })),
            at_ps: 0,
            mttf_ps: self.cfg.unit_mttf_ps,
            repair_ps: self.cfg.unit_repair_ps,
        }
    }

    /// The blackout schedule of the DRAM channel: an infinite iterator of
    /// non-overlapping windows, seeded exactly like unit outages but in
    /// its own hash domain. Empty when channel outages are disabled.
    #[must_use]
    pub fn channel_outages(&self) -> OutageSchedule {
        OutageSchedule {
            rng: SplitMix64::new(fnv1a(&{
                let mut bytes = [0u8; 17];
                bytes[..8].copy_from_slice(&self.cfg.seed.to_le_bytes());
                bytes[8] = DOMAIN_CHANNEL;
                bytes[9..17].copy_from_slice(&0u64.to_le_bytes());
                bytes
            })),
            at_ps: 0,
            mttf_ps: self.cfg.dram_mttf_ps,
            repair_ps: self.cfg.dram_repair_ps,
        }
    }

    /// A canonical, byte-comparable rendering of the fault schedule over
    /// `insts` accelerator units and task/DMA identities up to
    /// `(instances, nodes)`: the determinism tests compare two plans'
    /// digests byte for byte.
    #[must_use]
    pub fn schedule_digest(&self, insts: u32, instances: u32, nodes: u32) -> String {
        let mut out = String::new();
        for i in 0..insts {
            out.push_str(&format!("unit{i}:"));
            for w in self.outages(i).take(8) {
                out.push_str(&format!(" {}..{}", w.down_ps, w.up_ps));
            }
            out.push('\n');
        }
        if self.cfg.dram_mttf_ps > 0 {
            out.push_str("channel:");
            for w in self.channel_outages().take(8) {
                out.push_str(&format!(" {}..{}", w.down_ps, w.up_ps));
            }
            out.push('\n');
        }
        for d in 0..instances {
            for n in 0..nodes {
                for attempt in 0..=self.cfg.max_retries {
                    if self.task_faults(d, n, attempt) {
                        out.push_str(&format!("task d{d}:n{n} a{attempt}\n"));
                    }
                    if self.dma_faults(d, n, u32::MAX, attempt) {
                        out.push_str(&format!("dma d{d}:n{n} dram a{attempt}\n"));
                    }
                    if self.cfg.ecc_chunk_rate > 0.0 && self.ecc_chunk_faults(d, n, 0, 0, attempt)
                    {
                        out.push_str(&format!("ecc d{d}:n{n} c0 a{attempt}\n"));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faulty() -> FaultConfig {
        FaultConfig {
            task_fault_rate: 0.3,
            dma_fault_rate: 0.2,
            unit_mttf_ps: 10_000_000,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn default_config_is_inert_and_valid() {
        let cfg = FaultConfig::default();
        assert!(!cfg.enabled());
        cfg.validate().unwrap();
        let plan = FaultPlan::new(cfg);
        for n in 0..100 {
            assert!(!plan.task_faults(0, n, 0));
            assert!(!plan.dma_faults(0, n, u32::MAX, 0));
        }
        assert_eq!(plan.outages(0).next(), None);
    }

    #[test]
    fn validation_rejects_bad_rates() {
        for bad in [-0.1, 1.0, 1.5, f64::NAN, f64::INFINITY] {
            let cfg = FaultConfig { task_fault_rate: bad, ..FaultConfig::default() };
            assert!(cfg.validate().is_err(), "rate {bad} must be rejected");
        }
        let cfg = FaultConfig { unit_mttf_ps: 10, unit_repair_ps: 0, ..FaultConfig::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn decisions_are_pure_and_order_independent() {
        let a = FaultPlan::new(faulty());
        let b = FaultPlan::new(faulty());
        // Query b in reverse order: answers must still match a's.
        let keys: Vec<(u32, u32, u32)> =
            (0..4).flat_map(|d| (0..16).map(move |n| (d, n, d % 3))).collect();
        let fwd: Vec<bool> = keys.iter().map(|&(d, n, a_)| a.task_faults(d, n, a_)).collect();
        let rev: Vec<bool> =
            keys.iter().rev().map(|&(d, n, a_)| b.task_faults(d, n, a_)).collect();
        assert_eq!(fwd, rev.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn rates_roughly_respected() {
        let plan = FaultPlan::new(FaultConfig { task_fault_rate: 0.25, ..FaultConfig::default() });
        let hits = (0..4000).filter(|&n| plan.task_faults(0, n, 0)).count();
        assert!((800..1200).contains(&hits), "0.25 rate produced {hits}/4000 faults");
    }

    #[test]
    fn domains_are_independent() {
        let plan = FaultPlan::new(FaultConfig {
            task_fault_rate: 0.5,
            dma_fault_rate: 0.5,
            ..FaultConfig::default()
        });
        let task: Vec<bool> = (0..256).map(|n| plan.task_faults(0, n, 0)).collect();
        let dma: Vec<bool> = (0..256).map(|n| plan.dma_faults(0, n, 0, 0)).collect();
        assert_ne!(task, dma, "task and DMA domains must not alias");
    }

    #[test]
    fn dma_fallback_never_faults() {
        let cfg = FaultConfig { dma_fault_rate: 0.999, max_retries: 2, ..FaultConfig::default() };
        let plan = FaultPlan::new(cfg);
        for n in 0..100 {
            assert!(!plan.dma_faults(0, n, 0, 2), "attempt == max_retries must succeed");
        }
    }

    #[test]
    fn backoff_is_exponential_and_saturating() {
        let plan = FaultPlan::new(FaultConfig { retry_backoff_ps: 100, ..FaultConfig::default() });
        assert_eq!(plan.backoff_ps(0), 100);
        assert_eq!(plan.backoff_ps(1), 200);
        assert_eq!(plan.backoff_ps(3), 800);
        assert!(plan.backoff_ps(u32::MAX) >= plan.backoff_ps(16));
    }

    #[test]
    fn outage_windows_are_ordered_and_deterministic() {
        let plan = FaultPlan::new(faulty());
        let a: Vec<Outage> = plan.outages(3).take(16).collect();
        let b: Vec<Outage> = FaultPlan::new(faulty()).outages(3).take(16).collect();
        assert_eq!(a, b);
        let mut last = 0;
        for w in &a {
            assert!(w.down_ps > last, "windows must be strictly ordered");
            assert!(w.up_ps > w.down_ps);
            last = w.up_ps;
        }
        // Different units get different schedules.
        let c: Vec<Outage> = plan.outages(4).take(16).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn memory_side_knobs_enable_and_validate() {
        let cfg = FaultConfig { ecc_chunk_rate: 0.01, ..FaultConfig::default() };
        assert!(cfg.enabled());
        cfg.validate().unwrap();
        let cfg = FaultConfig { dram_mttf_ps: 1_000_000, ..FaultConfig::default() };
        assert!(cfg.enabled());
        cfg.validate().unwrap();
        let bad = FaultConfig { ecc_chunk_rate: 1.0, ..FaultConfig::default() };
        assert!(bad.validate().is_err());
        let bad = FaultConfig { dram_mttf_ps: 10, dram_repair_ps: 0, ..FaultConfig::default() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn ecc_verdicts_are_pure_bounded_and_chunk_sensitive() {
        let cfg = FaultConfig { ecc_chunk_rate: 0.5, max_retries: 2, ..FaultConfig::default() };
        let a = FaultPlan::new(cfg.clone());
        let b = FaultPlan::new(cfg);
        let fwd: Vec<bool> = (0..256).map(|c| a.ecc_chunk_faults(1, 2, 0, c, 0)).collect();
        let again: Vec<bool> = (0..256).map(|c| b.ecc_chunk_faults(1, 2, 0, c, 0)).collect();
        assert_eq!(fwd, again, "ECC verdicts must be pure functions of identity");
        assert!(fwd.iter().any(|&v| v), "rate 0.5 over 256 chunks must corrupt something");
        assert!(!fwd.iter().all(|&v| v));
        // The fallback attempt never faults, so re-fetches terminate.
        for c in 0..256 {
            assert!(!a.ecc_chunk_faults(1, 2, 0, c, 2));
        }
        // Distinct chunks of one transfer get independent verdicts.
        let other_attempt: Vec<bool> =
            (0..256).map(|c| a.ecc_chunk_faults(1, 2, 0, c, 1)).collect();
        assert_ne!(fwd, other_attempt, "attempts must not alias");
    }

    #[test]
    fn channel_outages_are_deterministic_and_distinct_from_units() {
        let cfg = FaultConfig {
            unit_mttf_ps: 10_000_000,
            dram_mttf_ps: 10_000_000,
            dram_repair_ps: 1_000_000,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(cfg.clone());
        let a: Vec<Outage> = plan.channel_outages().take(16).collect();
        let b: Vec<Outage> = FaultPlan::new(cfg).channel_outages().take(16).collect();
        assert_eq!(a, b);
        let mut last = 0;
        for w in &a {
            assert!(w.down_ps > last && w.up_ps > w.down_ps);
            last = w.up_ps;
        }
        // The channel schedule must not alias accelerator unit 0's.
        let unit0: Vec<u64> = plan.outages(0).take(16).map(|w| w.down_ps).collect();
        let chan: Vec<u64> = a.iter().map(|w| w.down_ps).collect();
        assert_ne!(unit0, chan, "channel and unit outage domains must differ");
        // Disabled channel outages yield nothing.
        assert_eq!(FaultPlan::new(FaultConfig::default()).channel_outages().next(), None);
    }

    #[test]
    fn digest_is_seed_sensitive() {
        let a = FaultPlan::new(faulty()).schedule_digest(4, 4, 32);
        let b = FaultPlan::new(faulty()).schedule_digest(4, 4, 32);
        assert_eq!(a, b);
        let other = FaultPlan::new(FaultConfig { seed: 0xDEAD, ..faulty() });
        assert_ne!(a, other.schedule_digest(4, 4, 32));
    }
}
