//! Schedule traces: what ran where, when, and how its data arrived.
//!
//! When [`SocConfig::record_trace`](crate::SocConfig) is set, the
//! simulator attaches a [`SpanCollector`] sink to its `relief-trace`
//! tracer; the collector distills the structured event stream down to one
//! [`Span`] per executed task (from `ComputeEnd` events, which are
//! self-contained). [`Trace::render`] prints the per-accelerator schedule
//! the way the paper's Figure 2 draws it, with forwarding (`~`) and
//! colocation (`=`) annotations on each task's input.

use relief_core::TaskKey;
use relief_sim::Time;
use relief_trace::{EventKind, TraceEvent, TraceSink};
use std::fmt::Write as _;

/// One executed task's compute interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Accelerator instance the task ran on.
    pub inst: usize,
    /// Compute start.
    pub start: Time,
    /// Compute end.
    pub end: Time,
    /// Which task this was.
    pub key: TaskKey,
    /// Human-readable label (`"C.n3"`).
    pub label: String,
    /// Input edges satisfied by scratchpad-to-scratchpad forwarding.
    pub forwarded_inputs: u32,
    /// Input edges satisfied by colocation.
    pub colocated_inputs: u32,
}

impl Span {
    /// Annotation prefix: `=` colocated, `~` forwarded, `.` DRAM-fed.
    fn marker(&self) -> char {
        if self.colocated_inputs > 0 {
            '='
        } else if self.forwarded_inputs > 0 {
            '~'
        } else {
            '.'
        }
    }
}

/// A full run's schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Executed task spans, in completion order.
    pub spans: Vec<Span>,
}

impl Trace {
    /// Builds a trace from a structured event stream, keeping one span per
    /// `ComputeEnd` event (other event kinds are ignored).
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut collector = SpanCollector::default();
        for ev in events {
            collector.emit(ev.clone());
        }
        Trace { spans: collector.take_spans() }
    }

    /// Spans that ran on `inst`, in start order.
    pub fn per_instance(&self, inst: usize) -> Vec<&Span> {
        let mut spans: Vec<&Span> = self.spans.iter().filter(|s| s.inst == inst).collect();
        spans.sort_by_key(|s| s.start);
        spans
    }

    /// Number of accelerator instances that executed anything.
    pub fn instances(&self) -> usize {
        self.spans.iter().map(|s| s.inst + 1).max().unwrap_or(0)
    }

    /// Renders the schedule, one line per accelerator instance:
    ///
    /// ```text
    /// acc0: [0-20 .D1:n0] [20-50 =D1:n1] ...
    /// acc1: [50-100 ~D1:n2] ...
    /// ```
    ///
    /// `=` marks a colocated input, `~` a forwarded one, `.` DRAM.
    pub fn render(&self, names: &[String]) -> String {
        let mut out = String::new();
        for inst in 0..self.instances() {
            let name = names.get(inst).cloned().unwrap_or_else(|| format!("acc{inst}"));
            let _ = write!(out, "{name}:");
            for s in self.per_instance(inst) {
                let _ = write!(
                    out,
                    " [{:.0}-{:.0} {}{}]",
                    s.start.as_us_f64(),
                    s.end.as_us_f64(),
                    s.marker(),
                    s.label
                );
            }
            out.push('\n');
        }
        out
    }

    /// True when `a`'s span ends no later than `b`'s begins.
    pub fn ran_before(&self, a: TaskKey, b: TaskKey) -> bool {
        let find = |k: TaskKey| self.spans.iter().find(|s| s.key == k);
        match (find(a), find(b)) {
            (Some(sa), Some(sb)) => sa.end <= sb.start,
            _ => false,
        }
    }
}

/// A [`TraceSink`] that keeps only `ComputeEnd` events, each distilled
/// into a [`Span`]. The simulator attaches one internally when
/// [`SocConfig::record_trace`](crate::SocConfig) is set.
#[derive(Debug, Default)]
pub struct SpanCollector {
    spans: Vec<Span>,
}

impl SpanCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        SpanCollector::default()
    }

    /// Removes and returns the collected spans, in completion order.
    pub fn take_spans(&mut self) -> Vec<Span> {
        std::mem::take(&mut self.spans)
    }
}

impl TraceSink for SpanCollector {
    fn emit(&mut self, ev: TraceEvent) {
        if let EventKind::ComputeEnd { task, inst, start_ps, label, forwarded_inputs, colocated_inputs } =
            ev.kind
        {
            self.spans.push(Span {
                inst: inst as usize,
                start: Time::from_ps(start_ps),
                end: Time::from_ps(ev.at_ps),
                key: TaskKey::new(task.instance, task.node),
                label,
                forwarded_inputs,
                colocated_inputs,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(inst: usize, start: u64, end: u64, node: u32, fwd: u32, coloc: u32) -> Span {
        Span {
            inst,
            start: Time::from_us(start),
            end: Time::from_us(end),
            key: TaskKey::new(0, node),
            label: format!("A:n{node}"),
            forwarded_inputs: fwd,
            colocated_inputs: coloc,
        }
    }

    #[test]
    fn renders_in_start_order_per_instance() {
        let trace = Trace {
            spans: vec![span(0, 20, 30, 1, 0, 1), span(0, 0, 10, 0, 0, 0), span(1, 5, 9, 2, 1, 0)],
        };
        let out = trace.render(&["A".into(), "B".into()]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "A: [0-10 .A:n0] [20-30 =A:n1]");
        assert_eq!(lines[1], "B: [5-9 ~A:n2]");
    }

    #[test]
    fn markers() {
        assert_eq!(span(0, 0, 1, 0, 0, 0).marker(), '.');
        assert_eq!(span(0, 0, 1, 0, 2, 0).marker(), '~');
        assert_eq!(span(0, 0, 1, 0, 2, 1).marker(), '='); // colocation wins
    }

    #[test]
    fn ordering_queries() {
        let trace = Trace { spans: vec![span(0, 0, 10, 0, 0, 0), span(0, 10, 20, 1, 0, 0)] };
        assert!(trace.ran_before(TaskKey::new(0, 0), TaskKey::new(0, 1)));
        assert!(!trace.ran_before(TaskKey::new(0, 1), TaskKey::new(0, 0)));
        assert!(!trace.ran_before(TaskKey::new(0, 0), TaskKey::new(0, 9)));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert_eq!(t.instances(), 0);
        assert_eq!(t.render(&[]), "");
    }
}
