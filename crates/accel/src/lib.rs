//! SoC simulator for RELIEF: accelerators, scratchpad forwarding, and the
//! hardware-manager runtime.
//!
//! This crate models the platform of the paper's Table VI end to end:
//!
//! * [`kinds`] — the seven elementary accelerators of Table I with their
//!   profiled compute times, scratchpad capacities, and calibrated
//!   transfer volumes;
//! * [`config`] — the SoC configuration (instances per type, memory
//!   system, policy, predictors, forwarding switches, manager overhead);
//! * [`sim`] — the discrete-event simulation: hardware-manager runtime
//!   (ready queues, drivers, interrupt service), double-buffered
//!   scratchpad outputs with `ongoing_reads` WAR tracking, the
//!   scratchpad-to-scratchpad forwarding mechanism, colocation, and the
//!   write-back rules of §III-C.
//!
//! # Examples
//!
//! Run Canny-like work under two policies and compare forwards:
//!
//! ```
//! use relief_accel::{AppSpec, SocConfig, SocSim};
//! use relief_core::PolicyKind;
//! use relief_dag::{AccTypeId, DagBuilder, NodeSpec};
//! use relief_sim::Dur;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), relief_dag::DagError> {
//! let mut b = DagBuilder::new("chain", Dur::from_ms(1));
//! let n: Vec<_> = (0..4)
//!     .map(|_| b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(10)).with_output_bytes(8192)))
//!     .collect();
//! b.add_chain(&n)?;
//! let dag = Arc::new(b.build()?);
//!
//! let run = |p| {
//!     SocSim::new(SocConfig::generic(vec![1], p), vec![AppSpec::once("A", dag.clone())])
//!         .run()
//!         .stats
//! };
//! let relief = run(PolicyKind::Relief);
//! assert_eq!(relief.apps["A"].colocations, 3); // whole chain colocates
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]


pub mod config;
pub mod kinds;
pub mod result;
pub mod sim;
pub mod trace;
pub mod workload;

pub use config::{BwPredictorKind, SocConfig};
pub use kinds::{AccKind, PLANE_BYTES};
pub use result::{PredictionStats, SimResult};
pub use sim::SocSim;
pub use trace::{Span, SpanCollector, Trace};
pub use workload::AppSpec;

// Thread-safety audit for the campaign engine's worker contract: the
// *inputs* a worker receives (`SocConfig`, `AppSpec`) and the *outputs*
// it returns (`SimResult`) must cross threads...
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<SocConfig>();
    assert_send_sync::<SimResult>();
    assert_send::<AppSpec>();
};

// ...while `SocSim` itself must NOT: it shares `Rc<RefCell<…>>` trace
// sinks with its policy, so each worker is required to construct, run,
// and drop the whole simulator thread-locally (the second leg of the
// determinism contract in `relief_bench::campaign`). If `SocSim` ever
// became `Send`, the `AmbiguousIfSend` impls below would both apply and
// this constant would stop compiling — a prompt to re-review that the
// engine's construct-inside-worker invariant still holds.
trait AmbiguousIfSend<A> {
    fn some_item() {}
}
impl<T: ?Sized> AmbiguousIfSend<()> for T {}
#[allow(dead_code)]
struct NotSendGuard;
impl<T: ?Sized + Send> AmbiguousIfSend<NotSendGuard> for T {}
const _: fn() = <SocSim as AmbiguousIfSend<_>>::some_item;
