//! The seven elementary accelerators (Table I).
//!
//! Each accelerator is an ultra-low-latency fixed-function engine with a
//! private scratchpad, profiled in the paper for a 128×128 input. Compute
//! time is a function of the requested operation (e.g. a 3×3 convolution
//! costs 9/25 of the profiled 5×5); transfer volumes are calibrated so the
//! standalone DRAM memory time of each kind reproduces Table I's "Memory"
//! column at the effective bandwidth of `relief_mem::MemConfig` (see
//! DESIGN.md §8).

use relief_dag::AccTypeId;
use relief_sim::Dur;
use std::fmt;

/// Bytes of one 128×128 image plane at 4 B/pixel.
pub const PLANE_BYTES: u64 = 128 * 128 * 4;

/// The elementary accelerator types of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccKind {
    /// Suppress pixels that likely don't belong to edges.
    CannyNonMax,
    /// Convolution with a maximum filter size of 5×5.
    Convolution,
    /// Mark and boost edge pixels based on a threshold.
    EdgeTracking,
    /// Element-wise matrix ops: add, mult, sqr, sqrt, atan2, tanh, sigmoid.
    ElemMatrix,
    /// Convert an RGB image to grayscale.
    Grayscale,
    /// Enhance maximal corner values in 3×3 grids, suppress others.
    HarrisNonMax,
    /// Demosaic, color-correct, and gamma-correct raw camera images.
    Isp,
}

impl AccKind {
    /// All seven kinds, in `AccTypeId` order.
    pub const ALL: [AccKind; 7] = [
        AccKind::CannyNonMax,
        AccKind::Convolution,
        AccKind::EdgeTracking,
        AccKind::ElemMatrix,
        AccKind::Grayscale,
        AccKind::HarrisNonMax,
        AccKind::Isp,
    ];

    /// The DAG-layer type id of this kind.
    pub fn type_id(self) -> AccTypeId {
        // Every kind appears in ALL by construction.
        #[allow(clippy::expect_used)]
        AccTypeId(Self::ALL.iter().position(|k| *k == self).expect("kind in ALL") as u32)
    }

    /// The kind for a DAG-layer type id, if it names one of the seven.
    pub fn from_type_id(id: AccTypeId) -> Option<AccKind> {
        Self::ALL.get(id.0 as usize).copied()
    }

    /// Kernel name as used in Table I.
    pub fn name(self) -> &'static str {
        match self {
            AccKind::CannyNonMax => "canny-non-max",
            AccKind::Convolution => "convolution",
            AccKind::EdgeTracking => "edge-tracking",
            AccKind::ElemMatrix => "elem-matrix",
            AccKind::Grayscale => "grayscale",
            AccKind::HarrisNonMax => "harris-non-max",
            AccKind::Isp => "ISP",
        }
    }

    /// Profiled compute time for the default operation on a 128×128 input
    /// (Table I "Compute" column).
    pub fn compute_time(self) -> Dur {
        let us = match self {
            AccKind::CannyNonMax => 443.02,
            AccKind::Convolution => 1545.61,
            AccKind::EdgeTracking => 324.73,
            AccKind::ElemMatrix => 10.94,
            AccKind::Grayscale => 10.26,
            AccKind::HarrisNonMax => 105.01,
            AccKind::Isp => 34.88,
        };
        Dur::from_us_f64(us)
    }

    /// Scratchpad capacity in bytes (Table I).
    pub fn spad_bytes(self) -> u64 {
        match self {
            AccKind::CannyNonMax => 262_144,
            AccKind::Convolution => 196_708,
            AccKind::EdgeTracking => 98_432,
            AccKind::ElemMatrix => 262_144,
            AccKind::Grayscale => 180_224,
            AccKind::HarrisNonMax => 196_608,
            AccKind::Isp => 115_204,
        }
    }

    /// Output-buffer size in bytes, calibrated so that the standalone
    /// `inputs + output` DRAM time reproduces Table I's "Memory" column.
    pub fn output_bytes(self) -> u64 {
        match self {
            // 2 planes in + 1 plane out = 30.44us.
            AccKind::CannyNonMax => PLANE_BYTES,
            // 1 plane in + 0.8 plane out = 18.26us.
            AccKind::Convolution => 52_429,
            // 1 plane in + 0.336 plane out = 13.56us.
            AccKind::EdgeTracking => 22_020,
            // 2 planes in + 1 plane out = 30.44us.
            AccKind::ElemMatrix => PLANE_BYTES,
            // 1 plane in + 0.5 plane out = 15.22us.
            AccKind::Grayscale => PLANE_BYTES / 2,
            // 1 plane in + 0.357 plane out = 13.77us.
            AccKind::HarrisNonMax => 23_400,
            // 0.359 plane raw in + 0.5 plane out = 8.71us.
            AccKind::Isp => PLANE_BYTES / 2,
        }
    }

    /// Bytes the ISP reads from the (raw Bayer) camera buffer in DRAM.
    pub fn isp_raw_input_bytes() -> u64 {
        23_530
    }
}

impl fmt::Display for AccKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relief_mem::MemConfig;

    #[test]
    fn type_ids_round_trip() {
        for (i, kind) in AccKind::ALL.iter().enumerate() {
            assert_eq!(kind.type_id(), AccTypeId(i as u32));
            assert_eq!(AccKind::from_type_id(AccTypeId(i as u32)), Some(*kind));
        }
        assert_eq!(AccKind::from_type_id(AccTypeId(7)), None);
    }

    #[test]
    fn names_match_table_i() {
        assert_eq!(AccKind::ElemMatrix.to_string(), "elem-matrix");
        assert_eq!(AccKind::Isp.name(), "ISP");
    }

    /// Standalone DRAM memory time of each kind must reproduce Table I's
    /// "Memory" column within a percent.
    #[test]
    fn memory_times_match_table_i() {
        let bw = MemConfig::default().dram_bandwidth;
        let cases: [(AccKind, u64, f64); 7] = [
            (AccKind::CannyNonMax, 2 * PLANE_BYTES, 30.45),
            (AccKind::Convolution, PLANE_BYTES, 18.25),
            (AccKind::EdgeTracking, PLANE_BYTES, 13.56),
            (AccKind::ElemMatrix, 2 * PLANE_BYTES, 30.44),
            (AccKind::Grayscale, PLANE_BYTES / 2 + AccKind::Isp.output_bytes(), 15.23),
            (AccKind::HarrisNonMax, PLANE_BYTES, 13.77),
            (AccKind::Isp, AccKind::isp_raw_input_bytes(), 8.71),
        ];
        for (kind, in_bytes, expect_us) in cases {
            let total = in_bytes + kind.output_bytes();
            let t = Dur::for_bytes(total, bw).as_us_f64();
            let err = (t - expect_us).abs() / expect_us;
            assert!(err < 0.02, "{kind}: modeled {t:.2}us vs Table I {expect_us}us");
        }
    }

    #[test]
    fn compute_times_match_table_i() {
        assert_eq!(AccKind::Convolution.compute_time(), Dur::from_us_f64(1545.61));
        assert_eq!(AccKind::ElemMatrix.compute_time(), Dur::from_us_f64(10.94));
    }

    #[test]
    fn spad_capacities_match_table_i() {
        let total: u64 = AccKind::ALL.iter().map(|k| k.spad_bytes()).sum();
        assert_eq!(total, 262_144 + 196_708 + 98_432 + 262_144 + 180_224 + 196_608 + 115_204);
    }
}
