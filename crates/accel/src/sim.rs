//! End-to-end SoC simulation (§III-C system architecture).
//!
//! [`SocSim`] glues the pieces together the way the paper's platform does:
//!
//! * applications arrive as DAGs; a **hardware manager** parses nodes into
//!   per-accelerator-type ready queues through the active scheduling policy
//!   and launches them via driver functions;
//! * each accelerator runs `input DMA → compute → (output handling)`
//!   non-preemptively, with a **double-buffered output scratchpad** so a
//!   producer can start its next task while consumers still read its
//!   previous output;
//! * **forwarding**: a consumer launched while its producer's output is
//!   still live in the producer's scratchpad pulls it scratchpad-to-
//!   scratchpad, bypassing DRAM; `ongoing_reads` counting enforces
//!   write-after-read ordering (Table IV);
//! * **colocation**: a consumer launched on its producer's accelerator
//!   right after it reads the data in place — no movement at all;
//! * **write-back rules** (§III-C.2): a finishing node's output is written
//!   to DRAM immediately unless every child is next in line for execution;
//!   deferred outputs are lazily written back if their partition is needed
//!   before all children have consumed them.

// The event handlers `expect` on scheduler invariants by design (a running
// task exists wherever a completion fires, tracked transfers resolve,
// etc.): these document the event-loop state machine, and violating one
// is a simulator bug that must stop the run, not a recoverable input.
#![allow(clippy::expect_used)]
use crate::config::SocConfig;
use crate::result::{PredictionStats, SimResult};
use crate::trace::{SpanCollector, Trace};
use crate::workload::AppSpec;
use relief_core::predict::{DataMovePredictor, DataMoveQuery};
use relief_core::{
    ComputeProfile, MemTimePredictor, Policy, ReadyQueues, TaskEntry, TaskKey,
};
use relief_dag::{Dag, DagTiming, DeadlineAssignment, NodeId};
use relief_fault::{FaultPlan, Outage, OutageSchedule};
use relief_mem::{Port, Progress, Route, TransferEngine, TransferId};
use relief_metrics::{AppStats, FaultStats, Histogram, RunStats, ServiceStats, TrafficStats};
use relief_service::{AdmissionState, QosClass, SelfHealConfig, ShedReason, StreamPlan};
use relief_sim::{
    AppId, Dur, EventQueue, Intern, InternId, KindId, SlotAlloc, SplitMix64, StallError,
    StallKind, Time, Timeline,
};
use relief_trace::{EventKind, InputSource, ResourceId, ServiceClass, ShedCause, TaskRef, Tracer};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

/// Converts a task key into the trace layer's id type.
fn tref(key: TaskKey) -> TaskRef {
    TaskRef { instance: key.instance, node: key.node }
}

/// Converts a service QoS class into the trace layer's mirror enum.
fn sclass(q: QosClass) -> ServiceClass {
    match q {
        QosClass::Latency => ServiceClass::Latency,
        QosClass::Standard => ServiceClass::Standard,
        QosClass::BestEffort => ServiceClass::BestEffort,
    }
}

/// Steady-state sojourn histogram layout: 50 µs bins spanning 30 ms.
const SOJOURN_BIN_PS: u64 = 50_000_000;
const SOJOURN_BINS: usize = 600;
/// Steady-state node-latency histogram layout: 20 µs bins spanning 10 ms.
const NODE_LATENCY_BIN_PS: u64 = 20_000_000;
const NODE_LATENCY_BINS: usize = 500;
/// Breaker time-in-open histogram layout: 250 µs bins spanning 30 ms.
const OPEN_BIN_PS: u64 = 250_000_000;
const OPEN_BINS: usize = 120;
/// Retry-count histogram layout: unit bins, attempts 0..15 (overflow above).
const RETRY_BIN: u64 = 1;
const RETRY_BINS: usize = 16;

/// Where a completed node's output currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutLoc {
    /// Not produced yet.
    NotProduced,
    /// Live only in the producer's scratchpad partition.
    Spad { inst: usize, part: usize },
    /// Write-back to DRAM in flight; scratchpad copy still live.
    WbInFlight { inst: usize, part: usize },
    /// In DRAM, scratchpad copy still live (forwardable).
    SpadAndDram { inst: usize, part: usize },
    /// Only in DRAM (scratchpad copy overwritten).
    Dram,
    /// Fully consumed and discarded (intermediate results are dispensable).
    Dropped,
}

impl OutLoc {
    /// The live scratchpad location, if any.
    fn spad(self) -> Option<(usize, usize)> {
        match self {
            OutLoc::Spad { inst, part }
            | OutLoc::WbInFlight { inst, part }
            | OutLoc::SpadAndDram { inst, part } => Some((inst, part)),
            _ => None,
        }
    }

    /// True when a DRAM copy exists.
    fn in_dram(self) -> bool {
        matches!(self, OutLoc::SpadAndDram { .. } | OutLoc::Dram)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodePhase {
    Waiting,
    Ready,
    Launched,
    Done,
    /// Exhausted its fault-retry budget; never completes. Siblings still
    /// drain, but the owning DAG instance is marked aborted and never
    /// reports completion.
    Aborted,
}

/// Per-node runtime bookkeeping (the mutable part of Table III's node
/// struct).
#[derive(Debug, Clone)]
struct NodeRt {
    phase: NodePhase,
    completed_parents: usize,
    /// Children that have not yet consumed this node's output.
    pending_readers: usize,
    out: OutLoc,
    /// Predictions captured at ready-queue insertion (Table VIII).
    pred_compute: Dur,
    pred_bytes: u64,
    pred_bw: f64,
    actual_compute: Dur,
    actual_bytes: u64,
    /// 0-based compute attempt (only ever nonzero under fault injection).
    attempts: u32,
    /// True after a task fault until a retry completes successfully.
    faulted: bool,
}

impl NodeRt {
    fn new(children: usize) -> Self {
        NodeRt {
            phase: NodePhase::Waiting,
            completed_parents: 0,
            pending_readers: children,
            out: OutLoc::NotProduced,
            pred_compute: Dur::ZERO,
            pred_bytes: 0,
            pred_bw: 0.0,
            actual_compute: Dur::ZERO,
            actual_bytes: 0,
            attempts: 0,
            faulted: false,
        }
    }
}

/// One live DAG instance.
#[derive(Debug)]
struct DagInst {
    app_idx: usize,
    dag: Arc<Dag>,
    arrival: Time,
    /// Shared with the per-app cache in [`SocSim::app_deadlines`]:
    /// deadlines are a pure function of the (immutable) DAG and the DRAM
    /// bandwidth, so repeat arrivals reuse the first arrival's assignment.
    deadlines: Arc<DeadlineAssignment>,
    nodes: Vec<NodeRt>,
    remaining: usize,
    /// Faults (task + DMA + ECC) this instance has absorbed; a deadline
    /// miss on an instance with `faults > 0` is attributed to fault
    /// recovery.
    faults: u64,
    /// A node exhausted its retry budget; the instance never completes.
    aborted: bool,
    /// Cancelled by a request timeout: queued entries are dropped at
    /// launch, running compute drains without publishing, and the
    /// instance never completes.
    cancelled: bool,
    /// Stream request index this instance serves (hedges inherit the
    /// original's, so the hedge draw chain stays per-request).
    req_index: u64,
    /// 0-based delivery attempt: 0 for the original admission, +1 per
    /// hedged relaunch.
    attempt: u32,
    /// The serviced request's first arrival (== `arrival` except for
    /// hedges, whose end-to-end sojourn spans every attempt).
    first_arrival: Time,
    /// Monotonic admission serial — the *public* instance identity.
    /// Every [`TaskKey`], trace event, fault-plan draw, and statistic
    /// uses the serial, so recycling the storage slot underneath is
    /// unobservable. Equal to the slot index when nothing recycles
    /// (reference mode).
    serial: u32,
    /// Generation of this slot's allocation (see [`SlotAlloc`]).
    gen: u32,
    /// Live references that index this slot: queued ready entries,
    /// the running task, tracked transfers, parked retries/re-fetches,
    /// and scheduled `Requeue` events each hold one pin. A slot is only
    /// recycled once every pin drains, so a pinned dense index can never
    /// alias a reused slot.
    pins: u32,
    /// Output-scratchpad partitions still holding this instance's data.
    /// Completed instances keep their last outputs resident until
    /// evicted, so retirement waits for the holds to drain too.
    holds: u32,
    /// Slot released back to the allocator; the struct contents are a
    /// husk awaiting overwrite by the next admission.
    retired: bool,
}

/// Circuit-breaker phase (closed → open → half-open → closed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerPhase {
    Closed,
    Open,
    HalfOpen,
}

/// One tenant's circuit breaker (`relief-service` self-healing). Every
/// transition happens lazily at an arrival or request-outcome event, so
/// the breaker schedules no events of its own and stays bit-inert when
/// its knobs are off.
#[derive(Debug, Clone, Copy)]
struct Breaker {
    phase: BreakerPhase,
    /// Consecutive request failures while closed.
    failures: u32,
    /// Consecutive probe successes while half-open.
    successes: u32,
    /// When the breaker last entered `Open`; carried through half-open so
    /// the close event reports the full open duration.
    opened_at: Time,
}

impl Breaker {
    fn new() -> Self {
        Breaker { phase: BreakerPhase::Closed, failures: 0, successes: 0, opened_at: Time::ZERO }
    }
}

/// One output scratchpad partition (Table IV's `acc_state` entries).
#[derive(Debug, Clone, Copy, Default)]
struct Partition {
    holder: Option<TaskKey>,
    /// Storage slot of `holder`'s instance (the holder's hold on the
    /// partition keeps the slot alive, so the dense index stays valid).
    holder_slot: u32,
    ongoing_reads: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunPhase {
    /// Waiting for a free output partition.
    WaitPartition,
    /// Input DMA in progress; `pending` transfers outstanding.
    Inputs { pending: usize },
    /// Functional unit running.
    Compute,
}

#[derive(Debug)]
struct Running {
    key: TaskKey,
    /// Storage slot of `key`'s instance (pinned while the task runs).
    slot: u32,
    phase: RunPhase,
    /// Output partition claimed for this task (valid once past
    /// `WaitPartition`).
    out_part: usize,
    /// Partition read in place by a colocated edge, excluded from
    /// allocation.
    coloc_part: Option<usize>,
    /// Total input bytes (for functional-unit scratchpad accounting).
    input_bytes: u64,
    /// Input edges satisfied by forwarding / colocation (trace).
    fwd_inputs: u32,
    coloc_inputs: u32,
    /// When compute began (trace).
    compute_start: Time,
}

/// One accelerator instance.
#[derive(Debug)]
struct AccInst {
    running: Option<Running>,
    /// Previously executed node — the colocation tracker (§III-B).
    last_node: Option<TaskKey>,
    parts: Vec<Partition>,
    compute_busy: Dur,
    /// Offline (fault-injected outage): removed from the dispatch
    /// candidate set and denied as a forwarding source until restored.
    /// Non-preemptive — a task already running here completes.
    quarantined: bool,
}

/// What an in-flight transfer is for.
#[derive(Debug, Clone, Copy)]
enum Purpose {
    /// A child pulling one parent edge (from DRAM or a producer SPAD).
    /// `attempt` is the 0-based delivery attempt (fault retries re-read
    /// the checkpointed DRAM copy with `attempt + 1`). `dst` is the
    /// consumer's accelerator instance — tasks are non-preemptive, so the
    /// consumer cannot move while its inputs are in flight, and carrying
    /// the index here saves a linear scan of the instances on completion.
    InputEdge {
        child: TaskKey,
        parent: TaskKey,
        src_spad: Option<(usize, usize)>,
        attempt: u32,
        dst: usize,
        /// Storage slot of the owning instance (pinned by the transfer).
        slot: u32,
    },
    /// A child pulling its always-DRAM input bytes (`dst`, `slot` as
    /// above).
    DramInput { child: TaskKey, attempt: u32, dst: usize, slot: u32 },
    /// A producer writing its output back to DRAM. Write-backs are outside
    /// the fault domain: they are the checkpointing path retries rely on,
    /// so the model treats them as ECC-verified.
    WriteBack { node: TaskKey, slot: u32 },
}

impl Purpose {
    /// Storage slot of the instance this transfer pins.
    fn dag_slot(self) -> u32 {
        match self {
            Purpose::InputEdge { slot, .. }
            | Purpose::DramInput { slot, .. }
            | Purpose::WriteBack { slot, .. } => slot,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrival(usize),
    Chunk(TransferId),
    ComputeDone(usize),
    Launch,
    /// A faulted task's backoff expired; re-insert it into its ready
    /// queue. Carries the instance's storage slot (the scheduled requeue
    /// pins it, so the dense index stays valid until the event fires).
    Requeue { slot: u32, key: TaskKey },
    /// Accelerator instance goes offline (fault-injected outage).
    UnitDown(usize),
    /// Accelerator instance comes back online.
    UnitUp(usize),
    /// An open-loop tenant's next request arrives (`relief-service`).
    StreamArrival(usize),
    /// An ECC-invalidated forwarded edge's backoff expired; re-fetch the
    /// parent's checkpointed DRAM copy into the waiting consumer. The
    /// payload indexes [`SocSim::refetches`] — parked out of line so `Ev`
    /// stays two words (the near rung is a memmove-heavy sorted vec; a
    /// fat variant would tax every event, and re-fetches are rare).
    EccRefetch(u32),
    /// A streamed request's deadline-derived timeout expired. A timeout
    /// deliberately outlives resolved requests, so it carries both the
    /// storage slot and the admission serial: a mismatch (or a retired
    /// slot) means the slot was recycled and the event is stale.
    Timeout { slot: u32, serial: u32 },
}

/// Every queued event pays `Ev`'s size in near-rung memmove traffic, so
/// fat payloads must be parked out of line (see [`Ev::EccRefetch`]).
const _: () = assert!(std::mem::size_of::<Ev>() <= 16);

/// One parked ECC re-fetch request (see [`Ev::EccRefetch`]); slots are
/// reused through [`SocSim::free_refetches`].
#[derive(Debug, Clone, Copy)]
struct Refetch {
    child: TaskKey,
    parent: TaskKey,
    attempt: u32,
    dst: u32,
    /// Storage slot of `child`'s instance; the parked re-fetch inherits
    /// the cancelled transfer's pin on it.
    slot: u32,
}

/// The simulated SoC.
///
/// Build with a [`SocConfig`] and a workload, then call
/// [`run`](SocSim::run).
///
/// # Examples
///
/// ```
/// use relief_accel::{AppSpec, SocConfig, SocSim};
/// use relief_core::PolicyKind;
/// use relief_dag::{AccTypeId, DagBuilder, NodeSpec};
/// use relief_sim::Dur;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), relief_dag::DagError> {
/// let mut b = DagBuilder::new("pair", Dur::from_ms(1));
/// let p = b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(10)).with_output_bytes(4096));
/// let c = b.add_node(NodeSpec::new(AccTypeId(1), Dur::from_us(10)).with_output_bytes(4096));
/// b.add_edge(p, c)?;
/// let dag = Arc::new(b.build()?);
///
/// let cfg = SocConfig::generic(vec![1, 1], PolicyKind::Relief);
/// let result = SocSim::new(cfg, vec![AppSpec::once("X", dag)]).run();
/// assert_eq!(result.stats.apps["X"].dags_completed, 1);
/// assert_eq!(result.stats.apps["X"].forwards, 1); // p -> c forwarded
/// # Ok(())
/// # }
/// ```
pub struct SocSim {
    cfg: SocConfig,
    apps: Vec<AppSpec>,
    policy: Box<dyn Policy>,
    queues: ReadyQueues,
    engine: TransferEngine,
    insts: Vec<AccInst>,
    /// Instance ids per accelerator type id.
    type_insts: Vec<Vec<usize>>,
    /// Live DAG instances, indexed by *storage slot* (not by the public
    /// serial). With recycling on, retired instances' slots are reused by
    /// later admissions, so the vector plateaus at the in-flight
    /// high-water mark instead of growing with every arrival.
    dags: Vec<DagInst>,
    /// Slot allocator for `dags`; its generation counters invalidate any
    /// reference that outlives its instance (see [`Ev::Timeout`]).
    dag_slots: SlotAlloc,
    /// Next admission serial (the public instance id; see
    /// [`DagInst::serial`]).
    next_dag_serial: u32,
    /// Whether retired instances release their slot for reuse. On for
    /// every fast-path run; reference mode keeps the pre-optimisation
    /// ever-growing vector so slot == serial == index throughout.
    recycle_on: bool,
    /// Per-app free lists of retired `NodeRt` vectors: a steady-state
    /// admission reuses a same-shape vector in place of allocating.
    node_pools: Vec<Vec<Vec<NodeRt>>>,
    /// Instances admitted but not yet completed, aborted, or cancelled —
    /// the O(1) replacement for scanning `dags` when deciding whether the
    /// run still has live work.
    active_work: usize,
    /// Data-movement prediction errors folded out of retired instances,
    /// tagged with the admission serial so
    /// [`finalize`](Self::finalize) can restore the pre-recycling
    /// admission-order sample sequence exactly.
    retired_dm: Vec<(u32, f64)>,
    events: EventQueue<Ev>,
    now: Time,
    seq: u64,
    /// In-flight transfer purposes, indexed by the engine's dense slot id
    /// ([`TransferId::slot`]): a bounds check instead of a hash probe on
    /// every chunk event, with slot reuse keeping the column at the
    /// high-water mark of concurrent transfers.
    transfers: Vec<Option<Purpose>>,
    /// In-flight transfer ids by slot, so the chaos paths (ECC
    /// invalidation, timeout cancellation) can address transfers the
    /// purpose column tracks.
    transfer_ids: Vec<Option<TransferId>>,
    /// Per-slot count of delivered chunks, the ECC verdict's chunk
    /// identity; reset whenever a slot is re-tracked.
    chunk_seq: Vec<u32>,
    manager: Timeline,
    mem_pred: MemTimePredictor,
    profile: ComputeProfile,
    rng: SplitMix64,
    // --- fault injection (`relief-fault`) ---
    /// Stateless fault decisions; a pure function of `cfg.fault`, so fault
    /// schedules are identical at any campaign parallelism.
    fault: FaultPlan,
    fault_stats: FaultStats,
    /// Per-instance outage streams (empty iterators when outages are off).
    outage_iters: Vec<OutageSchedule>,
    /// The armed outage window per instance, if any.
    next_outage: Vec<Option<Outage>>,
    /// Arrival events still in the queue (initial + repeat re-arms); with
    /// live DAG work, the signal that outage re-arming may continue
    /// without keeping a drained simulation alive forever.
    pending_arrivals: usize,
    // --- open-loop streaming (`relief-service`) ---
    /// Stateless arrival plan; a pure function of `cfg.stream`, so arrival
    /// schedules are identical at any campaign parallelism.
    stream: StreamPlan,
    /// Cached `stream.enabled()`: the hot handlers branch on this.
    stream_on: bool,
    /// Token buckets + in-flight cap; evolves in event order within the run.
    admission: AdmissionState,
    service_stats: ServiceStats,
    /// Next request index per tenant (tenant `t` streams app spec `t`).
    stream_next_index: Vec<u64>,
    /// Cached per-tenant QoS class.
    tenant_class: Vec<QosClass>,
    /// Cached self-healing knobs (`cfg.stream.self_heal`).
    heal: SelfHealConfig,
    /// Per-tenant circuit breakers; empty when the breaker is off.
    breakers: Vec<Breaker>,
    /// Whether anything in this run can cancel an in-flight transfer
    /// (ECC invalidation or request timeouts); gates the per-chunk
    /// liveness check off the fault-free hot path.
    cancels_on: bool,
    /// Parked [`Ev::EccRefetch`] payloads, indexed by the event's `u32`.
    refetches: Vec<Refetch>,
    /// Free slots in `refetches`.
    free_refetches: Vec<u32>,
    // --- per-app caches (pure functions of the immutable app specs) ---
    /// Deadline assignment computed on each app's first arrival.
    app_deadlines: Vec<Option<Arc<DeadlineAssignment>>>,
    /// Whether the app's kernels are already in the compute profile.
    app_profiled: Vec<bool>,
    /// App spec index → interned symbol id. The `per_app_*` accumulators
    /// are dense vectors indexed by [`AppId`], converted to the public
    /// string-keyed maps once in [`finalize`](Self::finalize).
    app_ids: Vec<AppId>,
    /// Per app spec, the node labels' interned [`KindId`]s in node-id
    /// order (filled on the app's first arrival, alongside profiling), so
    /// [`make_entry`](Self::make_entry) predicts compute time without
    /// hashing the label string.
    app_kind_ids: Vec<Vec<KindId>>,
    // --- hot-path scratch buffers (reused across events; emptied after
    // each use — see DESIGN.md "Hot-path architecture") ---
    batch_scratch: Vec<TaskEntry>,
    ready_scratch: Vec<NodeId>,
    idle_scratch: Vec<usize>,
    dm_bytes_scratch: Vec<u64>,
    /// Per-accelerator-type child counter for the all-children-forward
    /// prediction; zeroed after every use.
    child_type_counts: Vec<usize>,
    // --- statistics ---
    app_stats: Vec<AppStats>,
    per_app_mem_time: Vec<Dur>,
    per_app_compute_time: Vec<Dur>,
    colocated_bytes: u64,
    spad_access_bytes: u64,
    all_dram_baseline_bytes: u64,
    sched_ops: u64,
    sched_time: Dur,
    prediction: PredictionStats,
    /// Fan-out handle shared (as clones) by every instrumented component.
    tracer: Tracer,
    /// Internal sink distilling `ComputeEnd` events into the ASCII
    /// schedule trace; attached only when `cfg.record_trace` is set.
    span_sink: Option<Rc<RefCell<SpanCollector>>>,
    last_completion: Time,
    truncated: bool,
}

impl SocSim {
    /// Creates a simulation of `apps` on the platform described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid or a DAG references an accelerator type
    /// the platform does not provide.
    pub fn new(cfg: SocConfig, apps: Vec<AppSpec>) -> Self {
        cfg.validate();
        let num_types = cfg.acc_instances.len();
        for app in &apps {
            for spec in app.dag.nodes() {
                assert!(
                    (spec.acc.0 as usize) < num_types,
                    "dag '{}' uses unknown accelerator type {}",
                    app.dag.name(),
                    spec.acc
                );
            }
        }
        let total_insts = cfg.total_instances();
        let mut type_insts = vec![Vec::new(); num_types];
        let mut insts = Vec::with_capacity(total_insts);
        for (t, &count) in cfg.acc_instances.iter().enumerate() {
            for _ in 0..count {
                type_insts[t].push(insts.len());
                insts.push(AccInst {
                    running: None,
                    last_node: None,
                    parts: vec![Partition::default(); cfg.output_partitions],
                    compute_busy: Dur::ZERO,
                    quarantined: false,
                });
            }
        }
        let mut events =
            if cfg.reference_hot_path { EventQueue::reference() } else { EventQueue::new() };
        // Seed the event queue with releases. Closed loop: every app's
        // fixed arrival. Open loop (`relief-service`): each tenant's first
        // generated arrival inside the duration horizon; subsequent
        // arrivals are armed one at a time as their predecessors fire.
        let stream = StreamPlan::new(cfg.stream.clone());
        let stream_on = stream.enabled();
        let mut pending_arrivals = 0usize;
        if stream_on {
            assert_eq!(
                cfg.stream.tenants.len(),
                apps.len(),
                "stream mode needs exactly one tenant per app spec"
            );
            assert!(
                apps.iter().all(|a| !a.repeat),
                "stream mode replaces closed-loop repetition; use arrival rates instead"
            );
            for t in 0..apps.len() {
                if let Some(gap) = stream.gap_ps(t as u32, 0, 0) {
                    if gap <= cfg.stream.duration_ps {
                        events.push(Time::from_ps(gap), Ev::StreamArrival(t));
                        pending_arrivals += 1;
                    }
                }
            }
        } else {
            for (i, app) in apps.iter().enumerate() {
                events.push(app.arrival, Ev::Arrival(i));
                pending_arrivals += 1;
            }
        }
        let mut service_stats = ServiceStats::default();
        let heal = cfg.stream.self_heal.clone();
        if stream_on {
            service_stats.warmup_ps = cfg.stream.warmup_ps;
            service_stats.duration_ps = cfg.stream.duration_ps;
            for c in &mut service_stats.classes {
                c.sojourn = Histogram::new(SOJOURN_BIN_PS, SOJOURN_BINS);
                c.node_latency = Histogram::new(NODE_LATENCY_BIN_PS, NODE_LATENCY_BINS);
            }
            // The self-heal histograms exist only when the knobs are on,
            // so a knobs-off run's stats stay `Default`-equal bit for bit.
            if heal.enabled() {
                service_stats.retry_hist = Histogram::new(RETRY_BIN, RETRY_BINS);
                service_stats.open_hist = Histogram::new(OPEN_BIN_PS, OPEN_BINS);
            }
        }
        let breakers = if stream_on && heal.breaker_enabled() {
            vec![Breaker::new(); apps.len()]
        } else {
            Vec::new()
        };
        let admission = AdmissionState::new(&cfg.stream);
        let tenant_class: Vec<QosClass> = cfg.stream.tenants.iter().map(|t| t.qos).collect();
        let mut app_syms: Intern<AppId> = Intern::new();
        let app_ids: Vec<AppId> = apps.iter().map(|a| app_syms.intern(&a.symbol)).collect();
        // Arm the first deterministic outage window of every instance.
        let fault = FaultPlan::new(cfg.fault.clone());
        let fault_on = fault.enabled();
        let mut outage_iters: Vec<OutageSchedule> =
            (0..total_insts).map(|i| fault.outages(i as u32)).collect();
        let mut next_outage: Vec<Option<Outage>> = vec![None; total_insts];
        for (i, it) in outage_iters.iter_mut().enumerate() {
            if let Some(w) = it.next() {
                next_outage[i] = Some(w);
                events.push(Time::from_ps(w.down_ps), Ev::UnitDown(i));
            }
        }
        let mem_pred = MemTimePredictor {
            bandwidth: cfg.bw_predictor.build(cfg.mem.dram_bandwidth),
            data_movement: cfg.dm_predictor,
            icn_bandwidth: cfg.mem.interconnect_bandwidth,
        };
        let app_stats = apps
            .iter()
            .map(|a| AppStats {
                name: a.symbol.clone(),
                deadline: a.dag.relative_deadline(),
                ..AppStats::default()
            })
            .collect();
        let n_apps = apps.len();
        let recycle_on = !cfg.reference_hot_path;
        let mut sim = SocSim {
            policy: cfg.policy.build(),
            queues: ReadyQueues::new(num_types),
            engine: TransferEngine::new(cfg.mem, total_insts),
            insts,
            type_insts,
            dags: Vec::new(),
            dag_slots: SlotAlloc::new(),
            next_dag_serial: 0,
            recycle_on,
            node_pools: vec![Vec::new(); n_apps],
            active_work: 0,
            retired_dm: Vec::new(),
            events,
            now: Time::ZERO,
            seq: 0,
            transfers: Vec::new(),
            transfer_ids: Vec::new(),
            chunk_seq: Vec::new(),
            manager: Timeline::new(),
            mem_pred,
            profile: ComputeProfile::new(),
            rng: SplitMix64::new(cfg.seed),
            fault,
            fault_stats: FaultStats::default(),
            outage_iters,
            next_outage,
            pending_arrivals,
            stream,
            stream_on,
            admission,
            service_stats,
            stream_next_index: vec![0; n_apps],
            tenant_class,
            cancels_on: fault_on || (stream_on && heal.enabled()),
            heal,
            breakers,
            refetches: Vec::new(),
            free_refetches: Vec::new(),
            app_deadlines: vec![None; n_apps],
            app_profiled: vec![false; n_apps],
            app_kind_ids: vec![Vec::new(); n_apps],
            batch_scratch: Vec::new(),
            ready_scratch: Vec::new(),
            idle_scratch: Vec::new(),
            dm_bytes_scratch: Vec::new(),
            child_type_counts: vec![0; num_types],
            app_stats,
            per_app_mem_time: vec![Dur::ZERO; app_syms.len()],
            per_app_compute_time: vec![Dur::ZERO; app_syms.len()],
            app_ids,
            colocated_bytes: 0,
            spad_access_bytes: 0,
            all_dram_baseline_bytes: 0,
            sched_ops: 0,
            sched_time: Dur::ZERO,
            prediction: PredictionStats::default(),
            tracer: Tracer::off(),
            span_sink: None,
            last_completion: Time::ZERO,
            truncated: false,
            cfg,
            apps,
        };
        if sim.cfg.reference_hot_path {
            sim.queues.set_reference_linear_scans(true);
            sim.engine.set_reference_alloc_path(true);
        }
        if sim.cfg.fault.dram_mttf_ps > 0 {
            // Deterministic DRAM-channel blackout windows: installed before
            // any transfer begins, so the engine's gate sees the schedule
            // from picosecond zero.
            let windows = sim.fault.channel_outages().map(|w| (w.down_ps, w.up_ps));
            sim.engine.set_dram_outages(Box::new(windows));
        }
        if sim.cfg.record_trace {
            let sink = Rc::new(RefCell::new(SpanCollector::new()));
            sim.tracer.attach(sink.clone());
            sim.span_sink = Some(sink);
        }
        sim.wire_tracer();
        sim
    }

    /// Attaches every sink of `tracer` to the simulation: the event queue,
    /// the transfer engine, the scheduling policy, the manager timeline,
    /// and the task-lifecycle instrumentation all report through it.
    /// Composes with `record_trace` (the internal span collector stays
    /// attached) and may be called with several tracers to fan out.
    pub fn with_tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer.merge(tracer);
        self.wire_tracer();
        self
    }

    /// Replaces the policy object while keeping `cfg.policy` (and thus the
    /// reported policy name and modeled insert cost) untouched. This is the
    /// schedule-replay hook: a [`relief_core::ScheduleReplay`] standing in
    /// for the recorded policy reproduces its run bit-exactly because every
    /// cost the simulator models still comes from the recorded
    /// configuration.
    pub fn with_policy_object(mut self, policy: Box<dyn Policy>) -> Self {
        self.policy = policy;
        self.wire_tracer();
        self
    }

    /// Re-distributes clones of the current tracer to every instrumented
    /// component. Must be called whenever the sink set changes.
    fn wire_tracer(&mut self) {
        self.events.set_tracer(self.tracer.clone());
        self.engine.set_tracer(self.tracer.clone());
        self.policy.set_tracer(self.tracer.clone());
        self.manager.set_tracer(self.tracer.clone(), ResourceId::Manager);
    }

    /// Runs the simulation to completion (all work drained, or the
    /// configured time limit reached) and returns the collected results.
    ///
    /// The fast path drains same-timestamp event *cohorts* into a reused
    /// scratch vector and dispatches each in one pass, hoisting the
    /// time-limit check (and `now` update) out of the per-event loop;
    /// events a handler pushes at the current instant form the *next*
    /// cohort at the same time, which is exactly the order the per-event
    /// loop would pop them in (they get later sequence numbers). Reference
    /// mode keeps the pre-optimisation per-event loop.
    pub fn run(self) -> SimResult {
        match self.try_run() {
            Ok(result) => result,
            Err(stall) => panic!("{stall}"),
        }
    }

    /// Like [`run`](Self::run), but converts a detected stall — the event
    /// queue draining with live work left, or the watchdog's no-progress
    /// window elapsing without simulated time advancing — into a typed
    /// [`StallError`] carrying a diagnostic dump, instead of panicking.
    /// Campaign drivers use this to fail one cell loudly rather than
    /// wedging the whole run.
    ///
    /// # Errors
    ///
    /// Returns [`StallError`] when the simulation deadlocks or livelocks
    /// (both are model bugs, never a legitimate outcome of valid input).
    pub fn try_run(mut self) -> Result<SimResult, StallError> {
        let window = self.cfg.watchdog_window;
        let mut last_time = Time::ZERO;
        let mut last_advance = 0u64;
        if self.cfg.reference_hot_path {
            while let Some((at, ev)) = self.events.pop() {
                if let Some(limit) = self.cfg.time_limit {
                    if at > limit {
                        self.truncated = true;
                        break;
                    }
                }
                self.now = at;
                if at > last_time {
                    last_time = at;
                    last_advance = self.events.dispatched();
                }
                self.dispatch(ev);
                if window > 0 && self.events.dispatched() - last_advance > window {
                    return Err(self.stall(StallKind::NoProgressWindow));
                }
            }
            return self.finish();
        }
        let mut cohort: Vec<Ev> = Vec::new();
        while let Some(at) = self.events.pop_cohort(&mut cohort) {
            if let Some(limit) = self.cfg.time_limit {
                if at > limit {
                    // The per-event loop pops (and counts) exactly one
                    // event past the limit before breaking; mirror that so
                    // the dispatch trace and count stay bit-identical.
                    self.events.mark_dispatched(at);
                    self.truncated = true;
                    break;
                }
            }
            self.now = at;
            if at > last_time {
                last_time = at;
                last_advance = self.events.dispatched();
            }
            for &ev in &cohort {
                self.events.mark_dispatched(at);
                self.dispatch(ev);
            }
            if window > 0 && self.events.dispatched() - last_advance > window {
                return Err(self.stall(StallKind::NoProgressWindow));
            }
        }
        self.finish()
    }

    /// Post-drain gate: a non-truncated run whose queue emptied while a
    /// live (neither aborted nor cancelled) instance still has work is
    /// deadlocked — a dependency or bookkeeping bug, not a result.
    fn finish(self) -> Result<SimResult, StallError> {
        if self.cfg.watchdog_window > 0 && !self.truncated && self.active_work > 0 {
            return Err(self.stall(StallKind::DrainedWithWorkLeft));
        }
        Ok(self.finalize())
    }

    /// Most stuck instances a stall dump itemises; past the cap the dump
    /// closes with an aggregate count so a heavily loaded soak's watchdog
    /// error stays readable (and bounded) instead of listing thousands of
    /// in-flight requests.
    const STALL_DUMP_MAX_INSTANCES: usize = 16;

    /// Assembles the stall diagnostic: queue depths, per-unit occupancy,
    /// in-flight transfers, the quarantine set, and the stuck instances.
    fn stall(&self, kind: StallKind) -> StallError {
        use std::fmt::Write as _;
        let mut dump = String::new();
        let _ = writeln!(dump, "ready-queue depth: {}", self.queues.len());
        let _ = writeln!(dump, "pending arrivals: {}", self.pending_arrivals);
        let in_flight = self.transfers.iter().filter(|t| t.is_some()).count();
        let _ = writeln!(dump, "in-flight transfers: {in_flight}");
        let quarantined: Vec<usize> =
            (0..self.insts.len()).filter(|&i| self.insts[i].quarantined).collect();
        let _ = writeln!(dump, "quarantined units: {quarantined:?}");
        for (i, inst) in self.insts.iter().enumerate() {
            if let Some(r) = &inst.running {
                let _ = writeln!(
                    dump,
                    "unit {i}: running {}:{} in {:?}",
                    r.key.instance, r.key.node, r.phase
                );
            }
        }
        let mut stuck = 0usize;
        for d in &self.dags {
            if d.retired || d.remaining == 0 || d.aborted || d.cancelled {
                continue;
            }
            stuck += 1;
            if stuck <= Self::STALL_DUMP_MAX_INSTANCES {
                let _ = writeln!(
                    dump,
                    "instance {} ({}): {} of {} nodes left",
                    d.serial,
                    self.apps[d.app_idx].symbol,
                    d.remaining,
                    d.dag.len()
                );
            }
        }
        if stuck > Self::STALL_DUMP_MAX_INSTANCES {
            let _ =
                writeln!(dump, "… and {} more stuck instances", stuck - Self::STALL_DUMP_MAX_INSTANCES);
        }
        StallError {
            kind,
            at_ps: self.now.as_ps(),
            events_dispatched: self.events.dispatched(),
            dump,
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Arrival(app_idx) => self.on_arrival(app_idx),
            Ev::Chunk(id) => self.on_chunk(id),
            Ev::ComputeDone(inst) => self.on_compute_done(inst),
            Ev::Launch => self.try_launch_all(),
            Ev::Requeue { slot, key } => self.on_requeue(slot, key),
            Ev::UnitDown(inst) => self.on_unit_down(inst),
            Ev::UnitUp(inst) => self.on_unit_up(inst),
            Ev::StreamArrival(tenant) => self.on_stream_arrival(tenant),
            Ev::EccRefetch(idx) => self.on_ecc_refetch(idx),
            Ev::Timeout { slot, serial } => self.on_timeout(slot, serial),
        }
    }

    // ------------------------------------------------------------------
    // Arrival
    // ------------------------------------------------------------------

    fn on_arrival(&mut self, app_idx: usize) {
        // Every queued Arrival incremented the count; a miscount is a
        // bookkeeping bug that would silently mis-drive the outage
        // re-arming and drain decisions, so fail loudly instead of
        // saturating over it.
        debug_assert!(self.pending_arrivals > 0, "arrival fired without a pending count");
        self.pending_arrivals =
            self.pending_arrivals.checked_sub(1).expect("arrival fired without a pending count");
        self.admit_dag(app_idx);
    }

    /// An open-loop tenant's request arrived: account it, arm the
    /// tenant's next arrival (if it lands inside the duration horizon),
    /// and run admission control — an admitted request releases a DAG
    /// instance exactly like a closed-loop arrival, a shed request leaves
    /// no trace in the simulation proper.
    fn on_stream_arrival(&mut self, tenant: usize) {
        debug_assert!(self.pending_arrivals > 0, "arrival fired without a pending count");
        self.pending_arrivals =
            self.pending_arrivals.checked_sub(1).expect("arrival fired without a pending count");
        let index = self.stream_next_index[tenant];
        self.stream_next_index[tenant] = index + 1;
        let class = self.tenant_class[tenant];
        self.service_stats.classes[class.index()].arrivals += 1;
        self.tracer.emit(self.now.as_ps(), || EventKind::StreamArrival {
            tenant: tenant as u32,
            index,
            class: sclass(class),
        });
        // Arm the tenant's next arrival. `now` is arrival `index`'s exact
        // time, so the gap draw stays a pure function of the identity.
        if let Some(gap) = self.stream.gap_ps(tenant as u32, index + 1, self.now.as_ps()) {
            let at = self.now.as_ps().saturating_add(gap);
            if at <= self.stream.cfg().duration_ps {
                self.pending_arrivals += 1;
                self.events.push(Time::from_ps(at), Ev::StreamArrival(tenant));
            }
        }
        // Circuit breaker (self-healing): a tenant whose requests keep
        // failing is cut off before the token bucket ever sees it. Open
        // sheds outright; past the open window the breaker half-opens and
        // admits a seeded fraction of arrivals as probes.
        if !self.breakers.is_empty() {
            let mut b = self.breakers[tenant];
            let through = match b.phase {
                BreakerPhase::Closed => true,
                BreakerPhase::Open
                    if self.now.saturating_since(b.opened_at)
                        >= Dur::from_ps(self.heal.breaker_open_ps) =>
                {
                    b.phase = BreakerPhase::HalfOpen;
                    b.successes = 0;
                    self.tracer.emit(self.now.as_ps(), || EventKind::BreakerHalfOpen {
                        tenant: tenant as u32,
                    });
                    self.stream.probe_admit(tenant as u32, index)
                }
                BreakerPhase::Open => false,
                BreakerPhase::HalfOpen => self.stream.probe_admit(tenant as u32, index),
            };
            self.breakers[tenant] = b;
            if !through {
                self.service_stats.classes[class.index()].shed_breaker += 1;
                self.tracer.emit(self.now.as_ps(), || EventKind::RequestShed {
                    tenant: tenant as u32,
                    index,
                    class: sclass(class),
                    cause: ShedCause::Breaker,
                });
                return;
            }
        }
        match self.admission.try_admit(self.now.as_ps(), tenant, class) {
            Ok(()) => {
                self.service_stats.classes[class.index()].admitted += 1;
                let (instance, slot) = self.admit_dag(tenant);
                self.arm_request(instance, slot, index, 0, self.now);
                self.tracer.emit(self.now.as_ps(), || EventKind::RequestAdmitted {
                    tenant: tenant as u32,
                    index,
                    instance,
                });
            }
            Err(reason) => {
                let c = &mut self.service_stats.classes[class.index()];
                let cause = match reason {
                    ShedReason::Bucket => {
                        c.shed_bucket += 1;
                        ShedCause::Bucket
                    }
                    ShedReason::Capacity => {
                        c.shed_capacity += 1;
                        ShedCause::Capacity
                    }
                };
                self.tracer.emit(self.now.as_ps(), || EventKind::RequestShed {
                    tenant: tenant as u32,
                    index,
                    class: sclass(class),
                    cause,
                });
            }
        }
    }

    /// Releases one instance of app `app_idx` at the current time: the
    /// shared tail of closed-loop arrivals and admitted open-loop
    /// requests. Returns the new instance's `(serial, slot)` pair: the
    /// serial is the public identity, the slot its (possibly recycled)
    /// storage index.
    fn admit_dag(&mut self, app_idx: usize) -> (u32, u32) {
        let dag = Arc::clone(&self.apps[app_idx].dag);
        // Static analysis at arrival: predicted runtimes under the Max
        // predictors drive critical-path deadlines (§III-B). The assignment
        // is a pure function of the immutable DAG and the DRAM bandwidth,
        // so repeat arrivals of the same app reuse the cached result.
        let cached = if self.cfg.reference_hot_path {
            None
        } else {
            self.app_deadlines[app_idx].clone()
        };
        let deadlines = cached.unwrap_or_else(|| {
            let dram_bw = self.cfg.mem.dram_bandwidth;
            let timing = DagTiming::compute(&dag, |n| {
                let spec = dag.node(n);
                let bytes = dag.input_bytes(n) + spec.output_bytes;
                spec.compute + Dur::for_bytes(bytes, dram_bw)
            });
            let d = Arc::new(DeadlineAssignment::from_timing(&dag, &timing));
            self.app_deadlines[app_idx] = Some(Arc::clone(&d));
            d
        });
        // Boot-time profiling of compute times (§III-B): one observation
        // per (accelerator, operation) pair, so only an app's first arrival
        // can add anything.
        if !self.app_profiled[app_idx] || self.cfg.reference_hot_path {
            for spec in dag.nodes() {
                if self.profile.predict(spec.acc, &spec.label).is_none() {
                    self.profile.observe(spec.acc, &spec.label, spec.compute);
                }
            }
            if self.app_kind_ids[app_idx].is_empty() {
                // Intern each node's label once; `make_entry` predicts by
                // these dense ids on every subsequent ready-queue insert.
                let kinds = dag
                    .nodes()
                    .iter()
                    .map(|spec| self.profile.intern_kind(&spec.label))
                    .collect::<Vec<_>>();
                self.app_kind_ids[app_idx] = kinds;
            }
            self.app_profiled[app_idx] = true;
        }
        // Steady-state zero-allocation path: a retired instance of the
        // same app donated its `NodeRt` vector (same shape — one slot per
        // node), so the reset happens in place.
        let nodes = match self.node_pools[app_idx].pop() {
            Some(mut pooled) => {
                debug_assert_eq!(pooled.len(), dag.len());
                for (rt, n) in pooled.iter_mut().zip(dag.node_ids()) {
                    *rt = NodeRt::new(dag.children(n).len());
                }
                pooled
            }
            None => dag.node_ids().map(|n| NodeRt::new(dag.children(n).len())).collect(),
        };
        let remaining = dag.len();
        let instance = self.next_dag_serial;
        self.next_dag_serial += 1;
        let (slot, gen) = self.dag_slots.alloc();
        let inst = DagInst {
            app_idx,
            dag,
            arrival: self.now,
            deadlines,
            nodes,
            remaining,
            faults: 0,
            aborted: false,
            cancelled: false,
            req_index: 0,
            attempt: 0,
            first_arrival: self.now,
            serial: instance,
            gen,
            pins: 0,
            holds: 0,
            retired: false,
        };
        if slot as usize == self.dags.len() {
            self.dags.push(inst);
        } else {
            self.dags[slot as usize] = inst;
        }
        self.active_work += 1;
        self.tracer.emit(self.now.as_ps(), || EventKind::DagArrived {
            instance,
            app: self.apps[app_idx].symbol.clone(),
            nodes: remaining as u32,
        });

        let dag = Arc::clone(&self.dags[slot as usize].dag);
        let mut batch = self.take_batch_buf();
        for n in dag.roots() {
            self.dags[slot as usize].nodes[n.index()].phase = NodePhase::Ready;
            batch.push(self.make_entry(TaskKey::new(instance, n.0), slot, false, None));
        }
        self.enqueue_batch(batch);
        (instance, slot)
    }

    // ------------------------------------------------------------------
    // Instance recycling
    // ------------------------------------------------------------------

    /// Releases one pin (queued entry, running task, tracked transfer,
    /// parked retry) on the instance in `slot`, retiring it if that was
    /// the last live reference.
    fn unpin_dag(&mut self, slot: u32) {
        let d = &mut self.dags[slot as usize];
        debug_assert!(d.pins > 0, "pin underflow on slot {slot}");
        d.pins -= 1;
        self.maybe_retire(slot);
    }

    /// Retires the instance in `slot` if it is settled (completed,
    /// aborted, or cancelled) and nothing references it anymore. Pins and
    /// holds are maintained unconditionally, but only recycling runs act
    /// on them — reference mode keeps every instance resident so slot ==
    /// serial == index holds throughout.
    fn maybe_retire(&mut self, slot: u32) {
        if !self.recycle_on {
            return;
        }
        let d = &self.dags[slot as usize];
        if d.retired || d.pins > 0 || d.holds > 0 {
            return;
        }
        if d.remaining == 0 || d.aborted || d.cancelled {
            self.retire(slot);
        }
    }

    /// Folds the instance's remaining per-node statistics into the
    /// retired accumulators, returns its `NodeRt` storage to the app's
    /// pool, and releases the slot for reuse.
    fn retire(&mut self, slot: u32) {
        let s = slot as usize;
        debug_assert_eq!(
            self.dags[s].remaining,
            self.dags[s].nodes.iter().filter(|n| n.phase != NodePhase::Done).count(),
            "remaining counter disagrees with node phases at retirement"
        );
        let nodes = std::mem::take(&mut self.dags[s].nodes);
        let serial = self.dags[s].serial;
        // Data-movement prediction errors (Table VIII) fold out here so
        // `finalize` stays O(live set); the serial tag restores admission
        // order there. Soak mode drops the per-node samples entirely.
        if !self.cfg.bounded_memory {
            for rt in &nodes {
                if rt.phase == NodePhase::Done && rt.actual_bytes > 0 && rt.pred_bytes > 0 {
                    let err =
                        (rt.actual_bytes as f64 - rt.pred_bytes as f64) / rt.pred_bytes as f64;
                    self.retired_dm.push((serial, err));
                }
            }
        }
        let d = &mut self.dags[s];
        d.retired = true;
        let gen = d.gen;
        let app_idx = d.app_idx;
        self.node_pools[app_idx].push(nodes);
        self.dag_slots.release(slot, gen);
    }

    // ------------------------------------------------------------------
    // Request self-healing (relief-service)
    // ------------------------------------------------------------------

    /// Stamps a freshly admitted streamed instance with its request
    /// identity and arms its deadline-derived timeout when the
    /// self-healing timeouts are on.
    fn arm_request(&mut self, instance: u32, slot: u32, index: u64, attempt: u32, first_arrival: Time) {
        let rel = {
            let d = &mut self.dags[slot as usize];
            d.req_index = index;
            d.attempt = attempt;
            d.first_arrival = first_arrival;
            d.dag.relative_deadline()
        };
        if self.heal.timeouts_enabled() {
            let timeout = Dur::from_ps((rel.as_ps() as f64 * self.heal.timeout_factor) as u64);
            self.events.push(self.now + timeout, Ev::Timeout { slot, serial: instance });
        }
    }

    /// A streamed request's timeout expired. If the instance is still in
    /// flight it is past the point of meeting its budget: cancel it,
    /// reclaim queue slots and units, and — within the class hedge budget
    /// and a seeded draw — relaunch the request as a fresh instance.
    fn on_timeout(&mut self, slot: u32, serial: u32) {
        let instance = serial;
        let (tenant, req_index, attempt, first_arrival) = {
            let d = &self.dags[slot as usize];
            if d.retired || d.serial != serial {
                return; // the slot was recycled; the request resolved long ago
            }
            if d.remaining == 0 || d.aborted || d.cancelled {
                return; // resolved before the timeout fired
            }
            (d.app_idx, d.req_index, d.attempt, d.first_arrival)
        };
        let class = self.tenant_class[tenant];
        self.cancel_instance(slot);
        self.service_stats.classes[class.index()].timed_out += 1;
        self.tracer.emit(self.now.as_ps(), || EventKind::RequestTimedOut {
            tenant: tenant as u32,
            instance,
            class: sclass(class),
            attempt,
        });
        self.admission.release();
        self.breaker_outcome(tenant, false);
        // The hedge bypasses the token bucket — the original admission
        // paid the token — but still respects the class capacity share,
        // and its deadline restarts at the relaunch while its sojourn
        // stays anchored to the first arrival.
        let next = attempt + 1;
        if next <= self.heal.hedge_budget[class.index()]
            && self.stream.hedge_launch(tenant as u32, req_index, attempt)
            && self.admission.try_occupy(class)
        {
            self.service_stats.classes[class.index()].hedged += 1;
            let (hedge, hedge_slot) = self.admit_dag(tenant);
            self.arm_request(hedge, hedge_slot, req_index, next, first_arrival);
            self.tracer.emit(self.now.as_ps(), || EventKind::HedgeLaunched {
                tenant: tenant as u32,
                instance: hedge,
                attempt: next,
            });
        }
        // Freed queue slots, partitions, and units may unblock live work.
        self.retry_stalled();
        self.try_launch_all();
    }

    /// Tombstones a DAG instance: cancels its in-flight input transfers,
    /// releases accelerators holding its unstarted work, and marks it so
    /// queued entries are dropped at launch and running compute drains
    /// without publishing.
    fn cancel_instance(&mut self, slot: u32) {
        self.dags[slot as usize].cancelled = true;
        // The caller checked the instance was live (neither completed nor
        // aborted nor already cancelled), so it was counting here.
        self.active_work -= 1;
        // Write-backs are left to finish: they are the checkpointing path,
        // and an abandoned `WbInFlight` would wedge its partition forever.
        // Pin releases below defer retirement to the end of the function:
        // the instance must stay resident while this loop still reads it.
        for t in 0..self.transfers.len() {
            let Some(purpose) = self.transfers[t] else { continue };
            let (src_spad, pslot) = match purpose {
                Purpose::InputEdge { src_spad, slot: pslot, .. } => (src_spad, pslot),
                Purpose::DramInput { slot: pslot, .. } => (None, pslot),
                Purpose::WriteBack { .. } => continue,
            };
            if pslot != slot {
                continue;
            }
            let id = self.transfer_ids[t].expect("tracked transfer has an id");
            self.engine.cancel(id, self.now);
            self.service_stats.timeout_cancelled_xfers += 1;
            self.transfers[t] = None;
            self.dags[slot as usize].pins -= 1;
            if let Some((si, sp)) = src_spad {
                let p = &mut self.insts[si].parts[sp];
                p.ongoing_reads = p.ongoing_reads.saturating_sub(1);
            }
        }
        // Release units whose resident task belongs to the instance and
        // has not started computing (compute is non-preemptive; it drains
        // and is discarded at completion).
        for i in 0..self.insts.len() {
            let held = self.insts[i]
                .running
                .as_ref()
                .is_some_and(|r| r.slot == slot && r.phase != RunPhase::Compute);
            if !held {
                continue;
            }
            let r = self.insts[i].running.take().expect("checked above");
            self.dags[slot as usize].pins -= 1;
            if r.out_part != usize::MAX {
                let part = &mut self.insts[i].parts[r.out_part];
                debug_assert_eq!(part.holder, Some(r.key));
                part.holder = None;
                self.dags[slot as usize].holds -= 1;
            }
        }
        self.maybe_retire(slot);
    }

    /// Feeds one request outcome of `tenant` into its circuit breaker.
    /// Outcomes of requests admitted before an open neither close nor
    /// re-open it; the half-open transition happens lazily at arrivals.
    fn breaker_outcome(&mut self, tenant: usize, success: bool) {
        if self.breakers.is_empty() {
            return;
        }
        let mut b = self.breakers[tenant];
        match (b.phase, success) {
            (BreakerPhase::Closed, true) => b.failures = 0,
            (BreakerPhase::Closed, false) => {
                b.failures += 1;
                if b.failures >= self.heal.breaker_failures {
                    b.phase = BreakerPhase::Open;
                    b.opened_at = self.now;
                    let failures = b.failures;
                    self.tracer.emit(self.now.as_ps(), || EventKind::BreakerOpened {
                        tenant: tenant as u32,
                        failures,
                    });
                }
            }
            (BreakerPhase::HalfOpen, true) => {
                b.successes += 1;
                if b.successes >= self.heal.probes_to_close {
                    b.phase = BreakerPhase::Closed;
                    b.failures = 0;
                    let open_ps = self.now.saturating_since(b.opened_at).as_ps();
                    self.service_stats.open_hist.record(open_ps);
                    self.tracer.emit(self.now.as_ps(), || EventKind::BreakerClosed {
                        tenant: tenant as u32,
                        open_ps,
                    });
                }
            }
            (BreakerPhase::HalfOpen, false) => {
                // A failed probe re-opens immediately: the failure count
                // reported is the probe itself.
                b.phase = BreakerPhase::Open;
                b.opened_at = self.now;
                b.failures = 0;
                self.tracer.emit(self.now.as_ps(), || EventKind::BreakerOpened {
                    tenant: tenant as u32,
                    failures: 1,
                });
            }
            (BreakerPhase::Open, _) => {}
        }
        self.breakers[tenant] = b;
    }

    // ------------------------------------------------------------------
    // Entry construction & enqueueing
    // ------------------------------------------------------------------

    /// Builds a ready-queue entry: predicted runtime (profiled compute +
    /// predicted memory time), deadline resolved for the active policy's
    /// scheme, forwarding-candidate flag for RELIEF. The entry pins the
    /// instance (carried in [`TaskEntry::slot`]) until it is popped.
    fn make_entry(
        &mut self,
        key: TaskKey,
        slot: u32,
        fwd_candidate: bool,
        coloc_edge: Option<usize>,
    ) -> TaskEntry {
        let nid = NodeId(key.node);
        // A cheap Arc clone detaches the graph borrow from `self`, so the
        // spec (and its label) can be read in place — no per-entry clone.
        let dag = Arc::clone(&self.dags[slot as usize].dag);
        let spec = dag.node(nid);
        let acc = spec.acc;
        let pred_compute = if self.cfg.reference_hot_path {
            // Reproduce the pre-optimisation per-entry label allocation
            // and string-keyed profile lookup.
            let owned = spec.label.clone();
            self.profile.predict(acc, &owned).unwrap_or(spec.compute)
        } else {
            let app_idx = self.dags[slot as usize].app_idx;
            let kind = self.app_kind_ids[app_idx][nid.index()];
            self.profile.predict_id(acc, kind).unwrap_or(spec.compute)
        };
        let query = self.dm_query(slot, key.node, coloc_edge);
        let pred_mem = self.mem_pred.predict(&query);
        let runtime = pred_compute + pred_mem;

        let (rel, arrival) = {
            let d = &self.dags[slot as usize];
            let rel = match self.policy.deadline_scheme() {
                relief_core::DeadlineScheme::Dag => d.deadlines.dag,
                relief_core::DeadlineScheme::NodeCriticalPath => d.deadlines.node_deadline(nid),
                relief_core::DeadlineScheme::HetSchedSdr => d.deadlines.hetsched_deadline(nid),
            };
            (rel, d.arrival)
        };
        let deadline = arrival + rel;

        let pred_bytes = self.cfg.dm_predictor.estimate(&query).total();
        let pred_bw = self.mem_pred.bandwidth.predict();
        self.restore_dm_bytes_buf(query);
        let rt = &mut self.dags[slot as usize].nodes[nid.index()];
        rt.pred_compute = pred_compute;
        rt.pred_bytes = pred_bytes;
        rt.pred_bw = pred_bw;
        self.dags[slot as usize].pins += 1;

        let seq = self.seq;
        self.seq += 1;
        let mut e = TaskEntry::new(key, acc, runtime, deadline).with_seq(seq).with_slot(slot);
        if fwd_candidate {
            e = e.forwarding_candidate();
        }
        e
    }

    /// The data-movement query for node `node` of the instance in `slot`
    /// (§III-B).
    ///
    /// The query's edge-byte list is the reused [`SocSim::dm_bytes_scratch`]
    /// buffer; callers hand it back via
    /// [`restore_dm_bytes_buf`](Self::restore_dm_bytes_buf) once done.
    fn dm_query(&mut self, slot: u32, node: u32, coloc_edge: Option<usize>) -> DataMoveQuery {
        let d = &self.dags[slot as usize];
        let dag = Arc::clone(&d.dag);
        let deadlines = Arc::clone(&d.deadlines);
        let nid = NodeId(node);
        let spec = dag.node(nid);
        let mut parent_edge_bytes = if self.cfg.reference_hot_path {
            Vec::new()
        } else {
            std::mem::take(&mut self.dm_bytes_scratch)
        };
        parent_edge_bytes.clear();
        parent_edge_bytes.extend(dag.parents(nid).iter().map(|&p| dag.node(p).output_bytes));

        // Output prediction: all children forward iff (a) the children fit
        // distinct accelerator instances per type and (b) this node is the
        // latest-finishing parent (by deadline) of every child.
        let all_children_forward = if self.cfg.dm_predictor == DataMovePredictor::Predicted {
            let children = dag.children(nid);
            !children.is_empty() && {
                // Count children per accelerator type in the zeroed scratch
                // counter (type ids are validated < num_types at build).
                for &c in children {
                    self.child_type_counts[dag.node(c).acc.0 as usize] += 1;
                }
                let fits = self
                    .child_type_counts
                    .iter()
                    .zip(&self.cfg.acc_instances)
                    .all(|(&have, &cap)| have <= cap);
                for &c in children {
                    self.child_type_counts[dag.node(c).acc.0 as usize] = 0;
                }
                let latest = children.iter().all(|&c| {
                    dag.parents(c).iter().all(|&p| {
                        deadlines.node_deadline(p) <= deadlines.node_deadline(nid)
                    })
                });
                fits && latest
            }
        } else {
            false
        };

        DataMoveQuery {
            parent_edge_bytes,
            dram_input_bytes: spec.dram_input_bytes,
            output_bytes: spec.output_bytes,
            colocated_parent_edge: coloc_edge,
            all_children_forward,
        }
    }

    /// Returns a finished query's edge-byte buffer to the scratch slot.
    fn restore_dm_bytes_buf(&mut self, query: DataMoveQuery) {
        if !self.cfg.reference_hot_path {
            self.dm_bytes_scratch = query.parent_edge_bytes;
        }
    }

    /// Hands out the reusable ready-batch buffer (or a fresh allocation in
    /// reference mode). [`enqueue_batch`](Self::enqueue_batch) takes it
    /// back.
    fn take_batch_buf(&mut self) -> Vec<TaskEntry> {
        if self.cfg.reference_hot_path {
            Vec::new()
        } else {
            let mut batch = std::mem::take(&mut self.batch_scratch);
            batch.clear();
            batch
        }
    }

    /// Feeds a batch through the policy and schedules a launch pass after
    /// the modeled manager latency. `batch` must come from
    /// [`take_batch_buf`](Self::take_batch_buf); its storage returns to the
    /// scratch slot here.
    fn enqueue_batch(&mut self, mut batch: Vec<TaskEntry>) {
        let inserted = batch.len() as u64;
        for e in &batch {
            self.tracer
                .emit(self.now.as_ps(), || EventKind::TaskReady { task: tref(e.key), acc: e.acc.0 });
        }
        self.refresh_idle_counts();
        self.policy.enqueue_ready(&mut self.queues, &mut batch, self.now, &self.idle_scratch);
        if !self.cfg.reference_hot_path {
            self.batch_scratch = batch;
        }
        self.sched_ops += inserted;
        let launch_at = if self.cfg.model_sched_overhead {
            let cost = self.cfg.sched_base_cost + self.cfg.sched_insert_cost * inserted;
            self.sched_time += cost;
            let (_, end) = self.manager.reserve(self.now, cost);
            end
        } else {
            self.now
        };
        self.events.push(launch_at, Ev::Launch);
    }

    /// Rebuilds the per-type idle-instance counts in
    /// [`SocSim::idle_scratch`].
    fn refresh_idle_counts(&mut self) {
        let mut idle = if self.cfg.reference_hot_path {
            Vec::new()
        } else {
            std::mem::take(&mut self.idle_scratch)
        };
        idle.clear();
        idle.extend(self.type_insts.iter().map(|ids| {
            ids.iter()
                .filter(|&&i| self.insts[i].running.is_none() && !self.insts[i].quarantined)
                .count()
        }));
        self.idle_scratch = idle;
    }

    // ------------------------------------------------------------------
    // Launching
    // ------------------------------------------------------------------

    fn try_launch_all(&mut self) {
        for t in 0..self.type_insts.len() {
            while let Some(&inst_idx) = self.type_insts[t]
                .iter()
                .find(|&&i| self.insts[i].running.is_none() && !self.insts[i].quarantined)
            {
                let insts = &self.insts;
                let Some((entry, pin)) = self.policy.pop_placed(
                    &mut self.queues,
                    relief_dag::AccTypeId(t as u32),
                    self.now,
                    &|i| insts.get(i).is_some_and(|u| u.running.is_none() && !u.quarantined),
                ) else {
                    break;
                };
                if self.cancels_on && self.dags[entry.slot as usize].cancelled {
                    // Reclaimed queue slot: a timed-out request's entry is
                    // dropped on pop, leaving the unit to live work. The
                    // entry's pin kept the slot valid until this check.
                    self.unpin_dag(entry.slot);
                    continue;
                }
                let chosen = match pin {
                    // A placement-aware policy (schedule replay) pins the
                    // instance; it only releases a task whose pin is idle.
                    Some(i) => i,
                    // Otherwise prefer the instance that enables
                    // colocation: the idle instance whose previously
                    // executed node is a parent of this task with its
                    // output still live there.
                    None => self
                        .colocation_instance(t, entry.key, entry.slot)
                        .filter(|&i| self.insts[i].running.is_none() && !self.insts[i].quarantined)
                        .unwrap_or(inst_idx),
                };
                self.launch(chosen, entry);
            }
        }
    }

    /// The idle instance of type `t` on which `key` would colocate, if
    /// any. `last_node` may name a long-retired instance, but it is only
    /// ever *compared* against keys of the live instance in `slot`;
    /// serials are never reused, so a stale tracker can never match — and
    /// the node lookup happens on the live side only after a match.
    fn colocation_instance(&self, t: usize, key: TaskKey, slot: u32) -> Option<usize> {
        if !self.cfg.colocation || self.cfg.output_partitions < 2 {
            return None;
        }
        let d = &self.dags[slot as usize];
        let parents = d.dag.parents(NodeId(key.node));
        self.type_insts[t].iter().copied().find(|&i| {
            self.insts[i].last_node.is_some_and(|ln| {
                parents.iter().any(|&p| {
                    let pk = TaskKey::new(key.instance, p.0);
                    pk == ln && self.node_rt(slot, p.0).out.spad().is_some_and(|(si, _)| si == i)
                })
            })
        })
    }

    fn node_rt(&self, slot: u32, node: u32) -> &NodeRt {
        &self.dags[slot as usize].nodes[node as usize]
    }

    fn node_rt_mut(&mut self, slot: u32, node: u32) -> &mut NodeRt {
        &mut self.dags[slot as usize].nodes[node as usize]
    }

    fn launch(&mut self, inst_idx: usize, entry: TaskEntry) {
        let key = entry.key;
        let slot = entry.slot;
        self.node_rt_mut(slot, key.node).phase = NodePhase::Launched;
        self.tracer.emit(self.now.as_ps(), || EventKind::TaskDispatched {
            task: tref(key),
            inst: inst_idx as u32,
        });
        // Colocation check: the previously executed node on this
        // accelerator is a parent whose output is still live here.
        let coloc_part = if self.cfg.colocation && self.cfg.output_partitions >= 2 {
            let d = &self.dags[slot as usize];
            d.dag.parents(NodeId(key.node)).iter().find_map(|&p| {
                let pk = TaskKey::new(key.instance, p.0);
                (self.insts[inst_idx].last_node == Some(pk))
                    .then(|| self.node_rt(slot, p.0).out.spad())
                    .flatten()
                    .filter(|&(si, part)| {
                        si == inst_idx && self.insts[inst_idx].parts[part].holder == Some(pk)
                    })
                    .map(|(_, part)| part)
            })
        } else {
            None
        };
        // The popped entry's pin transfers to the running task.
        self.insts[inst_idx].running = Some(Running {
            key,
            slot,
            phase: RunPhase::WaitPartition,
            out_part: usize::MAX,
            coloc_part,
            input_bytes: 0,
            fwd_inputs: 0,
            coloc_inputs: 0,
            compute_start: Time::ZERO,
        });
        self.try_alloc_and_proceed(inst_idx);
    }

    /// Attempts to claim an output partition; on success, starts the input
    /// phase. On failure, triggers a lazy write-back if that is what blocks
    /// reuse, and leaves the task in `WaitPartition`.
    fn try_alloc_and_proceed(&mut self, inst_idx: usize) {
        let (key, slot, coloc_part) = {
            let r = self.insts[inst_idx].running.as_ref().expect("task assigned");
            if r.phase != RunPhase::WaitPartition {
                return;
            }
            (r.key, r.slot, r.coloc_part)
        };

        let mut chosen: Option<usize> = None;
        let mut lazy_wb: Option<(TaskKey, u32)> = None;
        for p in 0..self.insts[inst_idx].parts.len() {
            if Some(p) == coloc_part {
                continue;
            }
            let part = self.insts[inst_idx].parts[p];
            match part.holder {
                None => {
                    chosen = Some(p);
                    break;
                }
                Some(h) => {
                    if part.ongoing_reads > 0 {
                        continue; // wait for readers to finish
                    }
                    // The holder's hold keeps its slot alive, so the
                    // dense index carried in the partition stays valid.
                    let rt = self.node_rt(part.holder_slot, h.node);
                    if rt.phase != NodePhase::Done {
                        continue; // still being produced
                    }
                    match rt.out {
                        OutLoc::WbInFlight { .. } => continue, // wait for WB
                        OutLoc::Spad { .. } if rt.pending_readers > 0 => {
                            // Data still needed but only in SPAD: lazily
                            // write it back before reuse.
                            lazy_wb = Some((h, part.holder_slot));
                            continue;
                        }
                        _ => {
                            chosen = Some(p);
                            break;
                        }
                    }
                }
            }
        }

        let Some(p) = chosen else {
            if let Some((h, h_slot)) = lazy_wb {
                self.issue_writeback(h, h_slot, true);
            }
            return; // stay in WaitPartition; retried on partition events
        };

        // Claim the partition: transition the old holder's output state
        // and move the hold to the claimant (claim before release, so an
        // instance evicting its own older output never hits zero holds).
        let evicted = self.insts[inst_idx].parts[p].holder.map(|old| {
            let old_slot = self.insts[inst_idx].parts[p].holder_slot;
            let rt = self.node_rt_mut(old_slot, old.node);
            rt.out = match rt.out {
                OutLoc::SpadAndDram { .. } => OutLoc::Dram,
                OutLoc::Spad { .. } => OutLoc::Dropped,
                other => other,
            };
            old_slot
        });
        self.insts[inst_idx].parts[p].holder = Some(key);
        self.insts[inst_idx].parts[p].holder_slot = slot;
        self.dags[slot as usize].holds += 1;
        if let Some(old_slot) = evicted {
            self.dags[old_slot as usize].holds -= 1;
            self.maybe_retire(old_slot);
        }
        {
            let r = self.insts[inst_idx].running.as_mut().expect("task assigned");
            r.out_part = p;
        }
        self.start_inputs(inst_idx);
    }

    /// Classifies every input edge (colocation / forward / DRAM), starts
    /// the DMA transfers, and accounts the data-movement statistics.
    fn start_inputs(&mut self, inst_idx: usize) {
        let (key, slot) = {
            let r = self.insts[inst_idx].running.as_ref().expect("task assigned");
            (r.key, r.slot)
        };
        let app_idx = self.dags[slot as usize].app_idx;
        // The Arc clone detaches the parent/child slices from `self`'s
        // borrow, so the loop needs no owned copy of either.
        let dag = Arc::clone(&self.dags[slot as usize].dag);
        let nid = NodeId(key.node);
        if self.cfg.reference_hot_path {
            // Reproduce the pre-optimisation owned copies of the node spec
            // and parent list.
            let _spec = dag.node(nid).clone();
            let _parents = dag.parents(nid).to_vec();
        }
        let coloc_part = self.insts[inst_idx].running.as_ref().expect("task assigned").coloc_part;

        let mut pending = 0usize;
        let mut input_bytes = 0u64;
        for &p in dag.parents(nid) {
            let pk = TaskKey::new(key.instance, p.0);
            let bytes = dag.node(p).output_bytes;
            input_bytes += bytes;
            self.app_stats[app_idx].edges_consumed += 1;

            // Colocation: data already in place on this accelerator.
            let is_coloc = coloc_part.is_some()
                && self.node_rt(slot, pk.node).out.spad() == coloc_part.map(|c| (inst_idx, c))
                && self.insts[inst_idx].last_node == Some(pk);
            if is_coloc {
                self.app_stats[app_idx].colocations += 1;
                self.colocated_bytes += bytes;
                self.consume_reader(slot, pk.node);
                self.insts[inst_idx].running.as_mut().expect("task assigned").coloc_inputs += 1;
                self.tracer.emit(self.now.as_ps(), || EventKind::InputSourced {
                    task: tref(key),
                    inst: inst_idx as u32,
                    parent: Some(tref(pk)),
                    source: InputSource::Colocated,
                    bytes,
                });
                continue;
            }

            // Forwarding: producer output still live in its scratchpad —
            // and the producing unit online (a quarantined unit's SPAD is
            // unreachable; consumers fall back to the checkpointed DRAM
            // copy).
            let fwd_src = if self.cfg.forwarding {
                self.node_rt(slot, pk.node)
                    .out
                    .spad()
                    .filter(|&(si, sp)| self.insts[si].parts[sp].holder == Some(pk))
                    .filter(|&(si, _)| !self.insts[si].quarantined)
            } else {
                None
            };
            let (route, src_spad) = match fwd_src {
                Some((si, sp)) => {
                    self.insts[si].parts[sp].ongoing_reads += 1;
                    self.app_stats[app_idx].forwards += 1;
                    self.insts[inst_idx].running.as_mut().expect("task assigned").fwd_inputs += 1;
                    self.spad_access_bytes += 2 * bytes; // producer read + local write
                    (Route { src: Port::Spad(si), dst: Port::Spad(inst_idx) }, Some((si, sp)))
                }
                None => {
                    debug_assert!(
                        self.node_rt(slot, pk.node).out.in_dram()
                            || !self.cfg.forwarding
                            || self
                                .node_rt(slot, pk.node)
                                .out
                                .spad()
                                .is_some_and(|(si, _)| self.insts[si].quarantined),
                        "parent output must be in DRAM when not forwardable"
                    );
                    self.spad_access_bytes += bytes; // local write
                    (Route { src: Port::Dram, dst: Port::Spad(inst_idx) }, None)
                }
            };
            self.tracer.emit(self.now.as_ps(), || EventKind::InputSourced {
                task: tref(key),
                inst: inst_idx as u32,
                parent: Some(tref(pk)),
                source: match src_spad {
                    Some((si, _)) => InputSource::Forwarded { from_inst: si as u32 },
                    None => InputSource::Dram,
                },
                bytes,
            });
            let (id, first) = self.engine.begin(route, bytes, inst_idx, self.now);
            self.track(
                id,
                Purpose::InputEdge {
                    child: key,
                    parent: pk,
                    src_spad,
                    attempt: 0,
                    dst: inst_idx,
                    slot,
                },
            );
            self.events.push(first, Ev::Chunk(id));
            self.node_rt_mut(slot, key.node).actual_bytes += bytes;
            pending += 1;
        }

        let dram_input_bytes = dag.node(nid).dram_input_bytes;
        if dram_input_bytes > 0 {
            let bytes = dram_input_bytes;
            input_bytes += bytes;
            self.spad_access_bytes += bytes;
            self.tracer.emit(self.now.as_ps(), || EventKind::InputSourced {
                task: tref(key),
                inst: inst_idx as u32,
                parent: None,
                source: InputSource::Dram,
                bytes,
            });
            let route = Route { src: Port::Dram, dst: Port::Spad(inst_idx) };
            let (id, first) = self.engine.begin(route, bytes, inst_idx, self.now);
            self.track(id, Purpose::DramInput { child: key, attempt: 0, dst: inst_idx, slot });
            self.events.push(first, Ev::Chunk(id));
            self.node_rt_mut(slot, key.node).actual_bytes += bytes;
            pending += 1;
        }

        let r = self.insts[inst_idx].running.as_mut().expect("task assigned");
        r.input_bytes = input_bytes;
        if pending == 0 {
            self.start_compute(inst_idx);
        } else {
            r.phase = RunPhase::Inputs { pending };
        }
    }

    /// One child consumed one of the parent node's output copies.
    fn consume_reader(&mut self, slot: u32, parent_node: u32) {
        let rt = self.node_rt_mut(slot, parent_node);
        rt.pending_readers = rt.pending_readers.saturating_sub(1);
    }

    fn start_compute(&mut self, inst_idx: usize) {
        let (key, slot, input_bytes) = {
            let now = self.now;
            let r = self.insts[inst_idx].running.as_mut().expect("task assigned");
            r.phase = RunPhase::Compute;
            r.compute_start = now;
            (r.key, r.slot, r.input_bytes)
        };
        self.tracer.emit(self.now.as_ps(), || EventKind::ComputeStart {
            task: tref(key),
            inst: inst_idx as u32,
        });
        let d = &self.dags[slot as usize];
        let spec = d.dag.node(NodeId(key.node));
        let jitter = if self.cfg.compute_jitter > 0.0 {
            1.0 + self.rng.f64_range(-self.cfg.compute_jitter, self.cfg.compute_jitter)
        } else {
            1.0
        };
        let dur = spec.compute.scale(jitter);
        let out_bytes = spec.output_bytes;
        // Functional unit touches its inputs and output in the scratchpad.
        self.spad_access_bytes += input_bytes + out_bytes;
        self.insts[inst_idx].compute_busy += dur;
        let app_idx = self.dags[slot as usize].app_idx;
        self.per_app_compute_time[self.app_ids[app_idx].index()] += dur;
        self.node_rt_mut(slot, key.node).actual_compute = dur;
        self.events.push(self.now + dur, Ev::ComputeDone(inst_idx));
    }

    // ------------------------------------------------------------------
    // Completion (the manager's interrupt service routine, §III-C.2)
    // ------------------------------------------------------------------

    fn on_compute_done(&mut self, inst_idx: usize) {
        let r = self.insts[inst_idx].running.take().expect("compute was running");
        debug_assert_eq!(r.phase, RunPhase::Compute);
        let key = r.key;
        let slot = r.slot;
        // A timed-out (cancelled) request's node drains without
        // publishing: the output is discarded, the partition freed, and
        // the unit picks up live work. No `ComputeEnd` is emitted and no
        // fault verdict is drawn — the request's outcome is already
        // settled.
        if self.cancels_on && self.dags[slot as usize].cancelled {
            let part = &mut self.insts[inst_idx].parts[r.out_part];
            debug_assert_eq!(part.holder, Some(key));
            part.holder = None;
            self.dags[slot as usize].holds -= 1;
            self.unpin_dag(slot); // the drained task's pin; may retire
            self.retry_stalled();
            self.try_launch_all();
            return;
        }
        // Transient task fault (relief-fault): the attempt consumed its
        // resources, but the output is corrupt — discard and recover
        // instead of publishing. No `ComputeEnd` is emitted, so every
        // completed task still has exactly one compute span.
        if self.fault.enabled() {
            let attempt = self.node_rt(slot, key.node).attempts;
            if self.fault.task_faults(key.instance, key.node, attempt) {
                self.on_task_fault(inst_idx, r, attempt);
                return;
            }
        }
        self.insts[inst_idx].last_node = Some(key);
        // All-loads-and-stores-to-DRAM baseline (Fig. 5 normalization).
        {
            let out = self.dags[slot as usize].dag.node(NodeId(key.node)).output_bytes;
            self.all_dram_baseline_bytes += r.input_bytes + out;
        }
        {
            let app_idx = self.dags[slot as usize].app_idx;
            self.tracer.emit(self.now.as_ps(), || EventKind::ComputeEnd {
                task: tref(key),
                inst: inst_idx as u32,
                start_ps: r.compute_start.as_ps(),
                label: format!("{}:n{}", self.apps[app_idx].symbol, key.node),
                forwarded_inputs: r.fwd_inputs,
                colocated_inputs: r.coloc_inputs,
            });
        }

        // Publish the output into the claimed partition.
        {
            let rt = self.node_rt_mut(slot, key.node);
            rt.phase = NodePhase::Done;
            rt.out = OutLoc::Spad { inst: inst_idx, part: r.out_part };
        }
        if self.node_rt(slot, key.node).faulted {
            self.node_rt_mut(slot, key.node).faulted = false;
            self.fault_stats.recovered += 1;
        }
        self.last_completion = self.now;

        // Per-node statistics.
        let (app_idx, node_deadline, dag_done, dag_runtime_met, dag_arrival) = {
            let d = &mut self.dags[slot as usize];
            d.remaining -= 1;
            let nd = d.arrival + d.deadlines.node_deadline(NodeId(key.node));
            let dag_done = d.remaining == 0 && !d.aborted;
            let met = self.now.saturating_since(d.arrival) <= d.dag.relative_deadline();
            (d.app_idx, nd, dag_done, met, d.arrival)
        };
        {
            let stats = &mut self.app_stats[app_idx];
            stats.nodes_completed += 1;
            if self.now <= node_deadline {
                stats.node_deadlines_met += 1;
            }
        }
        // Steady-state per-class node accounting (service mode): samples
        // before the warm-up cutoff are cold-start transient and excluded.
        if self.stream_on && self.now.as_ps() >= self.service_stats.warmup_ps {
            let c = &mut self.service_stats.classes[self.tenant_class[app_idx].index()];
            c.nodes_measured += 1;
            if self.now <= node_deadline {
                c.node_deadlines_met += 1;
            }
            c.node_latency.record(self.now.saturating_since(dag_arrival).as_ps());
        }
        {
            // Table VIII sign convention: (actual − predicted) / predicted,
            // so negative means the predictor overestimated. Soak mode
            // drops the O(total-requests) sample to stay bounded.
            let rt = self.node_rt(slot, key.node);
            if rt.pred_compute.as_ps() > 0 && !self.cfg.bounded_memory {
                let err = (rt.actual_compute.as_ps() as f64 - rt.pred_compute.as_ps() as f64)
                    / rt.pred_compute.as_ps() as f64;
                self.prediction.compute_rel_errors.push(err);
            }
        }

        // Wake children whose dependencies are now satisfied. The Arc
        // clone detaches the child slice from `self`, so no owned copy.
        let dag = Arc::clone(&self.dags[slot as usize].dag);
        let children = dag.children(NodeId(key.node));
        if self.cfg.reference_hot_path {
            // Reproduce the pre-optimisation owned child list.
            let _children = children.to_vec();
        }
        let mut newly_ready = if self.cfg.reference_hot_path {
            Vec::new()
        } else {
            let mut buf = std::mem::take(&mut self.ready_scratch);
            buf.clear();
            buf
        };
        for &c in children {
            let num_parents = dag.parents(c).len();
            let rt = &mut self.dags[slot as usize].nodes[c.index()];
            rt.completed_parents += 1;
            if rt.completed_parents == num_parents {
                rt.phase = NodePhase::Ready;
                newly_ready.push(c);
            }
        }

        // Colocation prediction for the data-movement predictor (§III-B):
        // the earliest-deadline newly ready child colocates with the
        // finisher if they share an accelerator type.
        let coloc_child = if self.cfg.dm_predictor == DataMovePredictor::Predicted {
            let d = &self.dags[slot as usize];
            let finisher_acc = dag.node(NodeId(key.node)).acc;
            newly_ready
                .iter()
                .copied()
                .min_by_key(|&c| d.deadlines.node_deadline(c))
                .filter(|&c| dag.node(c).acc == finisher_acc)
        } else {
            None
        };

        let mut batch = self.take_batch_buf();
        for &c in &newly_ready {
            let coloc_edge = (coloc_child == Some(c)).then(|| {
                dag.parents(c)
                    .iter()
                    .position(|&p| p.0 == key.node)
                    .expect("finisher is a parent")
            });
            batch.push(self.make_entry(TaskKey::new(key.instance, c.0), slot, true, coloc_edge));
        }
        if !self.cfg.reference_hot_path {
            self.ready_scratch = newly_ready;
        }
        self.enqueue_batch(batch);

        // Write-back decision (§III-C.2): write back immediately unless
        // every child is next in line to forward. A Ready child is next in
        // line iff it is escalated or at its queue head (Ready ⟺ queued is
        // a simulator invariant); an already Launched/Done child is
        // forwarding or colocating right now, which also counts.
        //
        // Under fault injection the deferral is disabled (checkpointing
        // mode): every output gets a DRAM copy so a faulted retry — or a
        // consumer cut off by a quarantined forwarding source — always has
        // verified data to re-read. Forwarding itself still happens; only
        // the write-back *elision* is given up.
        let all_next_in_line = !self.fault.enabled()
            && self.cfg.forwarding
            && !children.is_empty()
            && match self.policy.writeback_elision(key) {
                // Schedule replay: the decision is part of the plan (the
                // live decision hinged on the recording policy's
                // escalations, which replay does not re-enact).
                Some(elide) => elide,
                None => children.iter().all(|&c| {
                    let ck = TaskKey::new(key.instance, c.0);
                    match self.node_rt(slot, c.0).phase {
                        NodePhase::Waiting | NodePhase::Aborted => false,
                        NodePhase::Launched | NodePhase::Done => true,
                        NodePhase::Ready => {
                            self.queues.is_escalated_or_head(dag.node(c).acc, ck)
                        }
                    }
                }),
            };
        if !all_next_in_line {
            self.issue_writeback(key, slot, false);
        }

        if dag_done {
            self.on_dag_done(key.instance, slot, app_idx, dag_runtime_met);
        }
        // The finished task's pin releases last: a completed instance
        // retires only once its partitions are evicted (the holds), so
        // this is a no-op unless the run is draining oddly — but the
        // accounting stays uniform.
        self.unpin_dag(slot);
    }

    fn on_dag_done(&mut self, instance: u32, slot: u32, app_idx: usize, met: bool) {
        self.tracer.emit(self.now.as_ps(), || EventKind::DagDone { instance, met });
        self.active_work -= 1;
        let faults = self.dags[slot as usize].faults;
        if !met && faults > 0 {
            // The instance absorbed fault-recovery delay and missed its
            // deadline: attribute the miss (a fault-free miss under the
            // same contention is possible, but the attribution is what the
            // resilience campaign sweeps).
            self.fault_stats.fault_attributed_misses += 1;
            self.tracer
                .emit(self.now.as_ps(), || EventKind::FaultAttributedMiss { instance, faults });
        }
        let runtime = self.now.saturating_since(self.dags[slot as usize].arrival);
        let stats = &mut self.app_stats[app_idx];
        stats.dags_completed += 1;
        if met {
            stats.dag_deadlines_met += 1;
        }
        // Soak mode: the per-completion runtime sample is the one
        // unbounded closed-loop accumulator; drop it there.
        if !self.cfg.bounded_memory {
            stats.dag_runtimes.push(runtime);
        }
        if self.stream_on {
            // The request's in-flight slot frees; its end-to-end sojourn
            // feeds the steady-state (post-warm-up) histogram. The sojourn
            // is anchored to the request's *first* arrival, so a hedged
            // completion reports the time the client actually waited
            // (identical to `runtime` when hedging is off).
            self.admission.release();
            let sojourn =
                self.now.saturating_since(self.dags[slot as usize].first_arrival);
            let class = self.tenant_class[app_idx];
            let c = &mut self.service_stats.classes[class.index()];
            c.completed += 1;
            if met {
                c.dag_deadlines_met += 1;
            }
            if self.now.as_ps() >= self.service_stats.warmup_ps {
                self.service_stats.classes[class.index()].sojourn.record(sojourn.as_ps());
            }
            if self.heal.enabled() {
                let attempt = self.dags[slot as usize].attempt;
                self.service_stats.retry_hist.record(u64::from(attempt));
                self.breaker_outcome(app_idx, true);
            }
            self.tracer.emit(self.now.as_ps(), || EventKind::RequestCompleted {
                tenant: app_idx as u32,
                instance,
                class: sclass(class),
                sojourn_ps: sojourn.as_ps(),
                met,
            });
        }
        if self.apps[app_idx].repeat {
            self.pending_arrivals += 1;
            self.events.push(self.now, Ev::Arrival(app_idx));
        }
    }

    // ------------------------------------------------------------------
    // Fault recovery (relief-fault)
    // ------------------------------------------------------------------

    /// Handles a corrupt compute attempt: release the claimed output
    /// partition, restore the parents' reader counts (the retry will
    /// re-consume every edge), and either schedule a backoff re-queue or
    /// abort the task when its retry budget is exhausted.
    fn on_task_fault(&mut self, inst_idx: usize, r: Running, attempt: u32) {
        let key = r.key;
        let slot = r.slot;
        self.fault_stats.task_faults += 1;
        self.dags[slot as usize].faults += 1;
        self.tracer.emit(self.now.as_ps(), || EventKind::TaskFaulted {
            task: tref(key),
            inst: inst_idx as u32,
            attempt,
        });
        // Release the output partition: nothing was published into it.
        {
            let part = &mut self.insts[inst_idx].parts[r.out_part];
            debug_assert_eq!(part.holder, Some(key));
            debug_assert_eq!(part.ongoing_reads, 0, "unpublished output cannot have readers");
            part.holder = None;
            self.dags[slot as usize].holds -= 1;
        }
        // Every input edge was consumed exactly once by compute end
        // (colocated edges at input classification, transferred edges at
        // delivery); restore the counts so the retry's re-consumption
        // keeps each parent's reader bookkeeping exact. Checkpointing mode
        // guarantees each parent output still has a DRAM copy to re-read.
        let dag = Arc::clone(&self.dags[slot as usize].dag);
        for &p in dag.parents(NodeId(key.node)) {
            self.node_rt_mut(slot, p.0).pending_readers += 1;
        }
        {
            let rt = self.node_rt_mut(slot, key.node);
            debug_assert_eq!(rt.out, OutLoc::NotProduced);
            rt.faulted = true;
        }
        let max_retries = self.fault.cfg().max_retries;
        if attempt < max_retries {
            self.node_rt_mut(slot, key.node).attempts = attempt + 1;
            self.node_rt_mut(slot, key.node).phase = NodePhase::Waiting; // Ready ⟺ queued
            let backoff = Dur::from_ps(self.fault.backoff_ps(attempt));
            // The scheduled requeue takes its own pin before the running
            // task's pin drops below.
            self.dags[slot as usize].pins += 1;
            self.events.push(self.now + backoff, Ev::Requeue { slot, key });
        } else {
            self.fault_stats.tasks_aborted += 1;
            self.node_rt_mut(slot, key.node).phase = NodePhase::Aborted;
            let was_aborted = std::mem::replace(&mut self.dags[slot as usize].aborted, true);
            if !was_aborted {
                self.active_work -= 1;
                if self.stream_on {
                    // The instance will never complete; free its in-flight
                    // slot exactly once (later sibling aborts must not
                    // double-release). An aborted request is a failure the
                    // tenant's circuit breaker must see.
                    self.admission.release();
                    let tenant = self.dags[slot as usize].app_idx;
                    self.breaker_outcome(tenant, false);
                }
            }
            self.tracer.emit(self.now.as_ps(), || EventKind::TaskAborted {
                task: tref(key),
                attempts: attempt + 1,
            });
        }
        self.unpin_dag(slot); // the faulted task's pin
        // The freed partition and idle unit may unblock stalled work.
        self.retry_stalled();
        self.try_launch_all();
    }

    /// A faulted task's backoff expired: rebuild its ready-queue entry
    /// (laxity and predictions recomputed from current state — the retry
    /// is *not* a forwarding candidate, so RELIEF's feasibility check sees
    /// it without escalating it) and re-insert it.
    fn on_requeue(&mut self, slot: u32, key: TaskKey) {
        if self.dags[slot as usize].cancelled {
            // The request timed out while the retry backed off; the
            // requeue's pin was the last thing keeping the husk alive.
            self.unpin_dag(slot);
            return;
        }
        debug_assert_eq!(self.node_rt(slot, key.node).phase, NodePhase::Waiting);
        let attempt = self.node_rt(slot, key.node).attempts;
        let acc = {
            let d = &self.dags[slot as usize];
            d.dag.node(NodeId(key.node)).acc
        };
        self.fault_stats.task_retries += 1;
        self.tracer.emit(self.now.as_ps(), || EventKind::TaskRetried {
            task: tref(key),
            acc: acc.0,
            attempt,
        });
        self.node_rt_mut(slot, key.node).phase = NodePhase::Ready;
        let mut batch = self.take_batch_buf();
        batch.push(self.make_entry(key, slot, false, None));
        // The fresh queue entry re-pinned the instance; the requeue's own
        // pin hands off to it.
        self.dags[slot as usize].pins -= 1;
        self.enqueue_batch(batch);
    }

    /// A deterministic outage window opened: take the unit offline. The
    /// quarantine is non-preemptive (a task already running here drains),
    /// but the unit leaves the dispatch candidate set and its scratchpad
    /// is denied as a forwarding source until the restore fires.
    fn on_unit_down(&mut self, inst_idx: usize) {
        let Some(w) = self.next_outage[inst_idx] else { return };
        self.insts[inst_idx].quarantined = true;
        self.fault_stats.unit_quarantines += 1;
        self.tracer.emit(self.now.as_ps(), || EventKind::UnitQuarantined {
            inst: inst_idx as u32,
            until_ps: w.up_ps,
        });
        self.events.push(Time::from_ps(w.up_ps), Ev::UnitUp(inst_idx));
    }

    /// The outage's repair completed: the unit rejoins the candidate set.
    /// The next outage window is armed only while work remains, so a
    /// drained simulation is not kept alive by an infinite outage stream.
    fn on_unit_up(&mut self, inst_idx: usize) {
        self.insts[inst_idx].quarantined = false;
        self.tracer
            .emit(self.now.as_ps(), || EventKind::UnitRestored { inst: inst_idx as u32 });
        self.events.push(self.now, Ev::Launch);
        // Cancelled instances never finish their remaining nodes, so they
        // must not keep the outage stream (and thus the run) alive.
        let outstanding = self.pending_arrivals > 0 || self.active_work > 0;
        self.next_outage[inst_idx] = if outstanding {
            let next = self.outage_iters[inst_idx].next();
            if let Some(w) = next {
                self.events.push(Time::from_ps(w.down_ps), Ev::UnitDown(inst_idx));
            }
            next
        } else {
            None
        };
    }

    // ------------------------------------------------------------------
    // Write-back
    // ------------------------------------------------------------------

    /// Starts writing `key`'s output back to main memory, if it is live in
    /// a scratchpad and not already written back or in flight. `lazy`
    /// marks write-backs triggered by partition reclamation rather than
    /// task completion (§III-C.2).
    fn issue_writeback(&mut self, key: TaskKey, slot: u32, lazy: bool) {
        let (inst, part) = match self.node_rt(slot, key.node).out {
            OutLoc::Spad { inst, part } => (inst, part),
            _ => return,
        };
        self.node_rt_mut(slot, key.node).out = OutLoc::WbInFlight { inst, part };
        let bytes = {
            let d = &self.dags[slot as usize];
            d.dag.node(NodeId(key.node)).output_bytes
        };
        self.spad_access_bytes += bytes; // producer SPAD read
        self.node_rt_mut(slot, key.node).actual_bytes += bytes;
        self.tracer.emit(self.now.as_ps(), || EventKind::WritebackIssued {
            task: tref(key),
            inst: inst as u32,
            bytes,
            lazy,
        });
        let route = Route { src: Port::Spad(inst), dst: Port::Dram };
        let (id, first) = self.engine.begin(route, bytes, inst, self.now);
        self.track(id, Purpose::WriteBack { node: key, slot });
        self.events.push(first, Ev::Chunk(id));
    }

    // ------------------------------------------------------------------
    // Transfer progress
    // ------------------------------------------------------------------

    /// Records an in-flight transfer's purpose under its dense slot id.
    /// The transfer pins its owning DAG instance until untracked.
    fn track(&mut self, id: TransferId, purpose: Purpose) {
        self.dags[purpose.dag_slot() as usize].pins += 1;
        let slot = id.slot();
        if slot >= self.transfers.len() {
            self.transfers.resize(slot + 1, None);
            self.transfer_ids.resize(slot + 1, None);
            self.chunk_seq.resize(slot + 1, 0);
        }
        debug_assert!(self.transfers[slot].is_none(), "slot reused while purpose still tracked");
        self.transfers[slot] = Some(purpose);
        self.transfer_ids[slot] = Some(id);
        self.chunk_seq[slot] = 0;
    }

    fn on_chunk(&mut self, id: TransferId) {
        if self.cancels_on && !self.engine.is_live(id) {
            // The transfer was cancelled (ECC invalidation or request
            // timeout) after this chunk event was scheduled.
            return;
        }
        // Per-chunk ECC verdict on forwarded edges (relief-fault): each
        // chunk event marks one chunk's arrival, so the chunk that just
        // landed is checked before the engine advances the transfer.
        if self.fault.enabled() {
            if let Some(Purpose::InputEdge {
                child,
                parent,
                src_spad: Some(src),
                attempt,
                dst,
                slot,
            }) = self.transfers[id.slot()]
            {
                let chunk = self.chunk_seq[id.slot()];
                self.chunk_seq[id.slot()] = chunk + 1;
                if self.fault.ecc_chunk_faults(child.instance, child.node, parent.node, chunk, attempt)
                {
                    let req =
                        Refetch { child, parent, attempt, dst: dst as u32, slot };
                    self.on_ecc_fault(id, src, req);
                    return;
                }
            }
        }
        match self.engine.on_chunk_done(id, self.now) {
            Progress::Chunk(next) => self.events.push(next, Ev::Chunk(id)),
            Progress::Done { start, end, bytes } => {
                let purpose = self.transfers[id.slot()].take().expect("tracked transfer");
                self.on_transfer_done(purpose, start, end, bytes);
                // Unpin after the handler: a fault recovery inside it may
                // re-track a fresh transfer for the same instance, and the
                // pin count must never dip to zero in between.
                self.unpin_dag(purpose.dag_slot());
            }
        }
    }

    fn on_transfer_done(&mut self, purpose: Purpose, start: Time, end: Time, bytes: u64) {
        let dur = end.saturating_since(start);
        match purpose {
            Purpose::InputEdge { child, parent, src_spad, attempt, dst, slot } => {
                self.account_mem_time(slot, bytes, src_spad.is_some());
                if src_spad.is_none() {
                    self.observe_bandwidth(slot, child.node, bytes, dur);
                }
                if let Some((si, sp)) = src_spad {
                    let p = &mut self.insts[si].parts[sp];
                    p.ongoing_reads = p.ongoing_reads.saturating_sub(1);
                }
                // DMA corruption (relief-fault): the bytes moved (and were
                // accounted above) but are unusable. The edge is consumed
                // only on successful delivery, so the retry's bookkeeping
                // stays exact.
                if self.fault.enabled()
                    && self.fault.dma_faults(child.instance, child.node, parent.node, attempt)
                {
                    self.on_dma_fault(child, Some(parent), bytes, attempt, dst, slot);
                    return;
                }
                self.consume_reader(slot, parent.node);
                self.input_transfer_done(child, dst);
                // A partition may have become reusable.
                self.retry_stalled();
            }
            Purpose::DramInput { child, attempt, dst, slot } => {
                self.account_mem_time(slot, bytes, false);
                self.observe_bandwidth(slot, child.node, bytes, dur);
                if self.fault.enabled()
                    && self.fault.dma_faults(child.instance, child.node, u32::MAX, attempt)
                {
                    self.on_dma_fault(child, None, bytes, attempt, dst, slot);
                    return;
                }
                self.input_transfer_done(child, dst);
            }
            Purpose::WriteBack { node, slot } => {
                self.account_mem_time(slot, bytes, false);
                self.observe_bandwidth(slot, node.node, bytes, dur);
                if let OutLoc::WbInFlight { inst, part } = self.node_rt(slot, node.node).out {
                    self.node_rt_mut(slot, node.node).out = OutLoc::SpadAndDram { inst, part };
                }
                // Children stalled on this write-back (forwarding disabled)
                // and tasks stalled on the partition can proceed now.
                self.retry_stalled();
            }
        }
    }

    /// Re-issues a corrupt input delivery from DRAM. The forwarding window
    /// is *lost* on retry: even if the first attempt pulled from the
    /// producer's scratchpad, the retry reads the checkpointed DRAM copy
    /// (issued at the producer's completion, since fault injection forces
    /// write-backs), and the edge no longer counts as forwarded — the
    /// forwarding statistics recorded at issue time stand for the bytes
    /// that did move, while the recovery traffic is plain DRAM traffic.
    /// `FaultPlan::dma_faults` never faults attempt `max_retries`, so the
    /// chain is bounded by a verified final read.
    fn on_dma_fault(
        &mut self,
        child: TaskKey,
        parent: Option<TaskKey>,
        bytes: u64,
        attempt: u32,
        dst: usize,
        slot: u32,
    ) {
        self.fault_stats.dma_faults += 1;
        self.dags[slot as usize].faults += 1;
        self.tracer.emit(self.now.as_ps(), || EventKind::DmaFaulted {
            task: tref(child),
            parent: parent.map(tref),
            bytes,
            attempt,
        });
        let inst_idx = self.consumer_inst(child, dst);
        self.spad_access_bytes += bytes; // the retry rewrites the local SPAD
        self.node_rt_mut(slot, child.node).actual_bytes += bytes;
        let route = Route { src: Port::Dram, dst: Port::Spad(inst_idx) };
        let (id, first) = self.engine.begin(route, bytes, inst_idx, self.now);
        let purpose = match parent {
            Some(pk) => Purpose::InputEdge {
                child,
                parent: pk,
                src_spad: None,
                attempt: attempt + 1,
                dst: inst_idx,
                slot,
            },
            None => Purpose::DramInput { child, attempt: attempt + 1, dst: inst_idx, slot },
        };
        self.track(id, purpose);
        self.events.push(first, Ev::Chunk(id));
        // The released forwarding-source partition may unblock a claim.
        self.retry_stalled();
    }

    /// A forwarded chunk failed its ECC check: the forwarding window is
    /// invalidated. The whole transfer is cancelled (chunks that already
    /// moved keep their attribution — the bytes crossed the wire before
    /// failing verification), the producer partition's reader count
    /// drops, and after a bounded backoff the edge re-fetches the
    /// parent's checkpointed DRAM copy — which exists by construction,
    /// since fault injection forces write-backs.
    /// `req` carries the failing edge with its *current* attempt number;
    /// the parked re-fetch is stored with the attempt bumped.
    fn on_ecc_fault(&mut self, id: TransferId, src: (usize, usize), req: Refetch) {
        let attempt = req.attempt;
        self.fault_stats.ecc_faults += 1;
        self.fault_stats.forward_invalidations += 1;
        self.dags[req.slot as usize].faults += 1;
        let moved = self.engine.cancel(id, self.now);
        // The cancelled transfer's pin on the instance transfers to the
        // parked re-fetch below, so no count changes hands here.
        self.transfers[id.slot()] = None;
        self.account_mem_time(req.slot, moved, true);
        let (si, sp) = src;
        {
            let p = &mut self.insts[si].parts[sp];
            p.ongoing_reads = p.ongoing_reads.saturating_sub(1);
        }
        self.tracer.emit(self.now.as_ps(), || EventKind::EccCorrupted {
            task: tref(req.child),
            parent: tref(req.parent),
            attempt,
        });
        let backoff = Dur::from_ps(self.fault.backoff_ps(attempt));
        let req = Refetch { attempt: attempt + 1, ..req };
        let idx = match self.free_refetches.pop() {
            Some(i) => {
                self.refetches[i as usize] = req;
                i
            }
            None => {
                self.refetches.push(req);
                self.refetches.len() as u32 - 1
            }
        };
        self.events.push(self.now + backoff, Ev::EccRefetch(idx));
        // The released reader may unblock a partition claim.
        self.retry_stalled();
    }

    /// An ECC invalidation's backoff expired: re-read the corrupted edge
    /// from DRAM. The consumer cannot have moved (tasks are
    /// non-preemptive and it is still in its input phase); if its request
    /// was cancelled in the meantime the re-fetch is dropped — the unit
    /// was already released.
    fn on_ecc_refetch(&mut self, idx: u32) {
        let Refetch { child, parent, attempt, dst, slot } = self.refetches[idx as usize];
        self.free_refetches.push(idx);
        let dst = dst as usize;
        if self.dags[slot as usize].cancelled {
            // The request timed out during the backoff; drop the parked
            // pin (the unit was already released at cancellation).
            self.unpin_dag(slot);
            return;
        }
        let bytes = {
            let d = &self.dags[slot as usize];
            d.dag.node(NodeId(parent.node)).output_bytes
        };
        self.spad_access_bytes += bytes; // the retry rewrites the local SPAD
        self.node_rt_mut(slot, child.node).actual_bytes += bytes;
        let route = Route { src: Port::Dram, dst: Port::Spad(dst) };
        let (id, first) = self.engine.begin(route, bytes, dst, self.now);
        self.track(id, Purpose::InputEdge { child, parent, src_spad: None, attempt, dst, slot });
        // The fresh transfer re-pinned the instance; the parked re-fetch's
        // pin hands off to it.
        self.dags[slot as usize].pins -= 1;
        self.events.push(first, Ev::Chunk(id));
    }

    /// Charges a transfer's *service* time (volume over the path's peak
    /// bandwidth) to its application. Table II's "Memory" columns are sum
    /// totals that do not account for overlap, so queuing delay — which
    /// double-counts overlapped transfers — is deliberately excluded here;
    /// contention still shows up in end-to-end time and occupancy.
    fn account_mem_time(&mut self, slot: u32, bytes: u64, forwarded: bool) {
        let rate = if forwarded {
            self.cfg.mem.interconnect_bandwidth
        } else {
            self.cfg.mem.dram_bandwidth
        };
        let app_idx = self.dags[slot as usize].app_idx;
        self.per_app_mem_time[self.app_ids[app_idx].index()] += Dur::for_bytes(bytes, rate);
    }

    fn observe_bandwidth(&mut self, slot: u32, node: u32, bytes: u64, dur: Dur) {
        if bytes == 0 || dur.is_zero() {
            return;
        }
        let achieved = bytes as f64 / dur.as_secs_f64();
        let pred = self.node_rt(slot, node).pred_bw;
        if pred > 0.0 && !self.cfg.bounded_memory {
            // (actual − predicted) / predicted: Max always overestimates
            // under contention, yielding Table VIII's negative errors.
            // Soak mode drops the sample but keeps feeding the predictor.
            self.prediction.bw_rel_errors.push((achieved - pred) / pred);
        }
        self.mem_pred.observe_bandwidth(achieved);
    }

    /// The accelerator instance running `child`. The fast path trusts the
    /// index carried in the transfer's [`Purpose`] (tasks are
    /// non-preemptive, so the consumer cannot migrate while its inputs are
    /// in flight); reference mode reproduces the pre-optimisation linear
    /// scan of the instances.
    fn consumer_inst(&self, child: TaskKey, carried: usize) -> usize {
        if self.cfg.reference_hot_path {
            return self
                .insts
                .iter()
                .position(|i| i.running.as_ref().is_some_and(|r| r.key == child))
                .expect("child is running somewhere");
        }
        debug_assert!(
            self.insts[carried].running.as_ref().is_some_and(|r| r.key == child),
            "stale consumer instance carried in transfer purpose"
        );
        carried
    }

    fn input_transfer_done(&mut self, child: TaskKey, dst: usize) {
        let inst_idx = self.consumer_inst(child, dst);
        let done = {
            let r = self.insts[inst_idx].running.as_mut().expect("running");
            match &mut r.phase {
                RunPhase::Inputs { pending } => {
                    *pending -= 1;
                    *pending == 0
                }
                _ => unreachable!("input transfer completed outside input phase"),
            }
        };
        if done {
            self.start_compute(inst_idx);
        }
    }

    /// Conservation invariants, checked at the end of every run in debug
    /// builds and under the `invariants` feature:
    ///
    /// * bytes begun == bytes completed + bytes cancelled (once no
    ///   transfer is in flight — a truncated run legitimately leaves
    ///   in-flight remainders);
    /// * each instance's `remaining` counter equals its count of
    ///   not-completed nodes, so no task is ever both completed and
    ///   cancelled/aborted.
    #[cfg(any(debug_assertions, feature = "invariants"))]
    fn check_invariants(&self) {
        let (begun, completed, cancelled) = self.engine.byte_ledger();
        if !self.truncated && self.transfers.iter().all(Option::is_none) {
            assert_eq!(
                begun,
                completed + cancelled,
                "byte conservation violated: begun {begun} != completed {completed} \
                 + cancelled {cancelled}"
            );
        }
        for (i, d) in self.dags.iter().enumerate() {
            if d.retired {
                // A retired slot's node storage went back to the pool; its
                // remaining-vs-phases equality was asserted at retirement.
                continue;
            }
            let not_done = d.nodes.iter().filter(|n| n.phase != NodePhase::Done).count();
            assert_eq!(
                d.remaining, not_done,
                "instance {i}: remaining counter disagrees with node phases"
            );
        }
    }

    /// Retries every task stalled in `WaitPartition`.
    fn retry_stalled(&mut self) {
        for i in 0..self.insts.len() {
            let stalled = self.insts[i]
                .running
                .as_ref()
                .is_some_and(|r| r.phase == RunPhase::WaitPartition);
            if stalled {
                self.try_alloc_and_proceed(i);
            }
        }
    }

    // ------------------------------------------------------------------
    // Finalization
    // ------------------------------------------------------------------

    fn finalize(mut self) -> SimResult {
        self.fault_stats.channel_outages = self.engine.channel_outages_applied();
        #[cfg(any(debug_assertions, feature = "invariants"))]
        self.check_invariants();
        // Data-movement prediction errors (Table VIII): compare per
        // completed node once all movement is settled. Retired instances
        // folded their contributions at retirement; merging those with the
        // still-live instances and sorting by admission serial reproduces
        // the exact push order of a walk over never-recycled storage.
        if !self.cfg.bounded_memory {
            let mut dm = std::mem::take(&mut self.retired_dm);
            for d in &self.dags {
                if d.retired {
                    continue;
                }
                for rt in &d.nodes {
                    if rt.phase == NodePhase::Done && rt.actual_bytes > 0 && rt.pred_bytes > 0 {
                        let err = (rt.actual_bytes as f64 - rt.pred_bytes as f64)
                            / rt.pred_bytes as f64;
                        dm.push((d.serial, err));
                    }
                }
            }
            dm.sort_by_key(|&(serial, _)| serial);
            self.prediction.dm_rel_errors.extend(dm.into_iter().map(|(_, err)| err));
        }

        let exec_time = match self.cfg.time_limit {
            Some(limit) if self.truncated => limit.saturating_since(Time::ZERO),
            _ => self.last_completion.saturating_since(Time::ZERO),
        };

        // Starvation: a repeating app that never completed while others did.
        let any_completed = self.app_stats.iter().any(|a| a.dags_completed > 0);
        for (i, app) in self.apps.iter().enumerate() {
            if app.repeat && any_completed && self.app_stats[i].dags_completed == 0 {
                self.app_stats[i].starved = true;
            }
        }

        let traffic = TrafficStats {
            dram_read_bytes: self.engine.dram_read_bytes(),
            dram_write_bytes: self.engine.dram_write_bytes(),
            spad_to_spad_bytes: self.engine.spad_to_spad_bytes(),
            colocated_bytes: self.colocated_bytes,
            spad_access_bytes: self.spad_access_bytes,
            all_dram_bytes: self.all_dram_baseline_bytes,
        };
        // The only point where the dense AppId-indexed accumulators take
        // their public string-keyed form: one pass over the app specs
        // builds all three maps (app specs sharing a symbol collapse to
        // the same key with the same dense accumulator, exactly as the
        // separate per-map loops did).
        let mut apps_map = BTreeMap::new();
        let mut per_app_mem_time = BTreeMap::new();
        let mut per_app_compute_time = BTreeMap::new();
        for (a, id) in self.app_stats.iter().zip(&self.app_ids) {
            let name = a.name.clone();
            per_app_mem_time.insert(name.clone(), self.per_app_mem_time[id.index()]);
            per_app_compute_time.insert(name.clone(), self.per_app_compute_time[id.index()]);
            apps_map.insert(name, a.clone());
        }
        let edges_total = self.app_stats.iter().map(|a| a.edges_consumed).sum();
        let stats = RunStats {
            policy: self.cfg.policy.name().to_string(),
            exec_time,
            traffic,
            apps: apps_map,
            accel_busy: self.insts.iter().map(|i| i.compute_busy).sum(),
            interconnect_busy: self.engine.interconnect_busy(),
            dram_busy: self.engine.dram_busy(),
            scheduler_ops: self.sched_ops,
            scheduler_time: self.sched_time,
            edges_total,
            faults: self.fault_stats,
            service: std::mem::take(&mut self.service_stats),
        };
        let trace = match &self.span_sink {
            Some(sink) => Trace { spans: sink.borrow_mut().take_spans() },
            None => Trace::default(),
        };
        SimResult {
            stats,
            per_app_mem_time,
            per_app_compute_time,
            prediction: self.prediction,
            trace,
            events_dispatched: self.events.dispatched(),
            live_high_water: self.dag_slots.slots() as u64,
        }
    }
}
