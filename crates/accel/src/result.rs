//! Simulation outputs beyond the generic [`RunStats`].

use relief_metrics::RunStats;
use relief_sim::Dur;
use std::collections::BTreeMap;

/// Signed relative prediction errors collected during a run (Table VIII).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PredictionStats {
    /// Per completed node: `(actual − predicted) / predicted` compute time
    /// (Table VIII convention: negative = overestimation).
    pub compute_rel_errors: Vec<f64>,
    /// Per completed node: `(actual − predicted) / predicted` bytes moved.
    pub dm_rel_errors: Vec<f64>,
    /// Per DRAM transfer: `(achieved − predicted) / predicted` bandwidth.
    pub bw_rel_errors: Vec<f64>,
}

impl PredictionStats {
    /// Mean signed error in percent; 0 when empty.
    pub fn mean_signed_pct(errors: &[f64]) -> f64 {
        if errors.is_empty() {
            0.0
        } else {
            100.0 * errors.iter().sum::<f64>() / errors.len() as f64
        }
    }

    /// Mean absolute error in percent; 0 when empty.
    pub fn mean_abs_pct(errors: &[f64]) -> f64 {
        if errors.is_empty() {
            0.0
        } else {
            100.0 * errors.iter().map(|e| e.abs()).sum::<f64>() / errors.len() as f64
        }
    }
}

/// Everything one SoC simulation reports.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Figure-level statistics.
    pub stats: RunStats,
    /// Sum of DMA transfer durations per application (Table II "Mem"
    /// columns; totals without accounting for overlap, as in the paper).
    pub per_app_mem_time: BTreeMap<String, Dur>,
    /// Sum of compute durations per application (Table II "Compute").
    pub per_app_compute_time: BTreeMap<String, Dur>,
    /// Predictor accuracy samples.
    pub prediction: PredictionStats,
    /// Executed-task schedule (empty unless
    /// [`SocConfig::record_trace`](crate::SocConfig) was set).
    pub trace: crate::trace::Trace,
    /// Events dispatched (diagnostic).
    pub events_dispatched: u64,
    /// High-water mark of concurrently live DAG-instance slots
    /// (diagnostic). With instance recycling active this is the peak
    /// in-flight population — the bound a soak run's memory plateaus at;
    /// in reference mode (no recycling) it equals total admissions.
    /// Campaign-cache reads report 0 (the field is host-side, not part
    /// of the simulated outcome, and is not cached).
    pub live_high_water: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_summaries() {
        let e = [0.01, -0.03, 0.02];
        assert!((PredictionStats::mean_signed_pct(&e) - 0.0).abs() < 1e-9);
        assert!((PredictionStats::mean_abs_pct(&e) - 2.0).abs() < 1e-9);
        assert_eq!(PredictionStats::mean_signed_pct(&[]), 0.0);
        assert_eq!(PredictionStats::mean_abs_pct(&[]), 0.0);
    }
}
