//! SoC configuration (Table VI platform).

use crate::kinds::AccKind;
use relief_core::predict::DataMovePredictor;
use relief_core::{BandwidthPredictor, PolicyKind};
use relief_fault::FaultConfig;
use relief_mem::MemConfig;
use relief_service::StreamConfig;
use relief_sim::{Dur, Time};

/// Which bandwidth-prediction scheme to instantiate (§III-B / Table VIII).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BwPredictorKind {
    /// Assume peak effective bandwidth (the paper's default).
    Max,
    /// Last observed value.
    Last,
    /// Mean of the last `n` observations (paper: n = 15).
    Average(usize),
    /// EWMA with weight `alpha` (paper: α = 0.25).
    Ewma(f64),
}

impl BwPredictorKind {
    /// Scheme name as used in Table VIII.
    pub fn name(&self) -> &'static str {
        match self {
            BwPredictorKind::Max => "Max",
            BwPredictorKind::Last => "Last",
            BwPredictorKind::Average(_) => "Average",
            BwPredictorKind::Ewma(_) => "EWMA",
        }
    }

    /// Builds the predictor for a given peak bandwidth.
    pub fn build(&self, max_bw: u64) -> BandwidthPredictor {
        match *self {
            BwPredictorKind::Max => BandwidthPredictor::max(max_bw),
            BwPredictorKind::Last => BandwidthPredictor::last(max_bw),
            BwPredictorKind::Average(n) => BandwidthPredictor::average(max_bw, n),
            BwPredictorKind::Ewma(a) => BandwidthPredictor::ewma(max_bw, a),
        }
    }
}

/// Full configuration of one simulated SoC run.
#[derive(Debug, Clone)]
pub struct SocConfig {
    /// Number of accelerator instances per accelerator type id.
    pub acc_instances: Vec<usize>,
    /// Memory-system parameters.
    pub mem: MemConfig,
    /// Active scheduling policy.
    pub policy: PolicyKind,
    /// Bandwidth-prediction scheme for laxity estimation.
    pub bw_predictor: BwPredictorKind,
    /// Data-movement-prediction scheme for laxity estimation.
    pub dm_predictor: DataMovePredictor,
    /// Scratchpad-to-scratchpad forwarding hardware present.
    pub forwarding: bool,
    /// Colocation (running a consumer on its producer's accelerator with
    /// zero data movement) permitted.
    pub colocation: bool,
    /// Output scratchpad partitions per accelerator (Table IV allows up to
    /// 3; the evaluated platform double-buffers output).
    pub output_partitions: usize,
    /// Hard simulation cap (the paper uses 50 ms for continuous
    /// contention). `None` runs until all work drains.
    pub time_limit: Option<Time>,
    /// Whether the hardware manager's scheduling latency is modeled.
    pub model_sched_overhead: bool,
    /// Fixed ISR cost per completion interrupt.
    pub sched_base_cost: Dur,
    /// Cost per ready-queue insertion (policy-dependent; Fig. 12).
    pub sched_insert_cost: Dur,
    /// Relative uniform jitter applied to actual compute times, so the
    /// compute predictor has something to mispredict (Table VIII measures
    /// 0.03 % error on real hardware models).
    pub compute_jitter: f64,
    /// RNG seed (jitter only; the simulator is otherwise deterministic).
    pub seed: u64,
    /// Record a per-task schedule trace (see `relief_accel::trace`).
    pub record_trace: bool,
    /// Route the simulator through the pre-optimisation hot path: linear
    /// ready-queue scans, per-arrival deadline recomputation, and fresh
    /// heap allocations instead of reused scratch buffers. Behaviour is
    /// identical by construction — only the host-side cost changes — so the
    /// wall-clock benchmark can measure the optimised and reference paths
    /// on the same build and assert their results match.
    pub reference_hot_path: bool,
    /// Fault-injection plan knobs (`relief-fault`). The default injects
    /// nothing and leaves every output byte-identical to a fault-free
    /// build; any enabled knob also switches the simulator into
    /// checkpointing mode (every output is written back to DRAM so
    /// retries always have a verified copy to re-read).
    pub fault: FaultConfig,
    /// Open-loop streaming knobs (`relief-service`). The default is
    /// disabled and leaves every output byte-identical to a build without
    /// the service layer; when enabled, tenant `t` streams instances of
    /// the workload's app spec at index `t` and the closed-loop t=0
    /// releases are replaced by the arrival plan.
    pub stream: StreamConfig,
    /// Watchdog no-progress window: the maximum events dispatched without
    /// simulated time advancing before the run is declared livelocked and
    /// converted into a [`relief_sim::StallError`]. The default is far
    /// above any legitimate same-timestamp cohort; `0` disables the
    /// watchdog. Detection only — a run that never trips it is
    /// byte-identical at any setting.
    pub watchdog_window: u64,
    /// Soak mode: drop every O(total-requests) sample collection
    /// (per-node prediction-error samples, per-instance DAG runtimes) so
    /// an arbitrarily long run's memory stays bounded by the in-flight
    /// set. This *changes the reported statistics* (the affected vectors
    /// come back empty), so campaigns must leave it off; only the soak
    /// benchmark sets it. Scheduling decisions, traces, and event counts
    /// are unaffected.
    pub bounded_memory: bool,
}

impl SocConfig {
    /// Per-insert scheduler cost defaults per policy, shaped after Fig. 12:
    /// RELIEF's sorted insert plus feasibility scan costs the most, FCFS's
    /// tail append the least.
    pub fn default_insert_cost(policy: PolicyKind) -> Dur {
        let ns = match policy {
            PolicyKind::Fcfs => 150,
            PolicyKind::GedfD => 300,
            PolicyKind::GedfN => 320,
            PolicyKind::Ll => 350,
            PolicyKind::Lax => 380,
            PolicyKind::HetSched => 420,
            PolicyKind::Relief => 700,
            PolicyKind::ReliefLax => 750,
            PolicyKind::ReliefHet => 700,
            PolicyKind::ReliefUnthrottled => 550,
            // FCFS-priced while relaxed, RELIEF-priced under pressure;
            // a single modeled cost splits the difference low, since the
            // switch exists to spend most epochs in the cheap mode.
            PolicyKind::Adaptive => 250,
        };
        Dur::from_ns(ns)
    }

    /// The paper's mobile platform: one instance of each of the seven
    /// elementary accelerators, LPDDR5 + full-duplex bus, double-buffered
    /// outputs, Max predictors, forwarding and colocation available.
    pub fn mobile(policy: PolicyKind) -> Self {
        SocConfig {
            acc_instances: vec![1; AccKind::ALL.len()],
            mem: MemConfig::default(),
            policy,
            bw_predictor: BwPredictorKind::Max,
            dm_predictor: DataMovePredictor::Max,
            forwarding: true,
            colocation: true,
            output_partitions: 2,
            time_limit: None,
            model_sched_overhead: true,
            sched_base_cost: Dur::from_ns(200),
            sched_insert_cost: Self::default_insert_cost(policy),
            compute_jitter: 0.0005,
            seed: 0x5EED,
            record_trace: false,
            reference_hot_path: false,
            fault: FaultConfig::default(),
            stream: StreamConfig::default(),
            watchdog_window: 2_000_000,
            bounded_memory: false,
        }
    }

    /// A generic platform for tests and synthetic workloads: `instances[i]`
    /// accelerators of type `i`.
    pub fn generic(instances: Vec<usize>, policy: PolicyKind) -> Self {
        SocConfig { acc_instances: instances, ..Self::mobile(policy) }
    }

    /// Switches the policy (and its default insert cost).
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self.sched_insert_cost = Self::default_insert_cost(policy);
        self
    }

    /// Disables forwarding and colocation (the Table II "no fwd" baseline).
    pub fn without_forwarding(mut self) -> Self {
        self.forwarding = false;
        self.colocation = false;
        self
    }

    /// Caps simulated time (continuous contention uses 50 ms).
    pub fn with_time_limit(mut self, limit: Time) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Installs a fault-injection plan.
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Installs an open-loop streaming plan.
    pub fn with_stream(mut self, stream: StreamConfig) -> Self {
        self.stream = stream;
        self
    }

    /// Enables soak mode (see [`SocConfig::bounded_memory`]).
    pub fn with_bounded_memory(mut self) -> Self {
        self.bounded_memory = true;
        self
    }

    /// Total accelerator instances.
    pub fn total_instances(&self) -> usize {
        self.acc_instances.iter().sum()
    }

    /// Validates invariants the simulator relies on.
    ///
    /// # Panics
    ///
    /// Panics on zero accelerator types, zero output partitions, a
    /// negative/NaN jitter, or an invalid fault configuration.
    pub fn validate(&self) {
        assert!(!self.acc_instances.is_empty(), "need at least one accelerator type");
        assert!(self.output_partitions >= 1, "need at least one output partition");
        assert!(
            self.compute_jitter.is_finite() && (0.0..1.0).contains(&self.compute_jitter),
            "compute jitter must be in [0, 1)"
        );
        if let Err(e) = self.fault.validate() {
            panic!("{e}");
        }
        if let Err(e) = self.stream.validate() {
            panic!("{e}");
        }
        self.mem.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobile_platform_shape() {
        let c = SocConfig::mobile(PolicyKind::Relief);
        assert_eq!(c.acc_instances, vec![1; 7]);
        assert_eq!(c.total_instances(), 7);
        assert_eq!(c.output_partitions, 2);
        assert!(c.forwarding && c.colocation);
        c.validate();
    }

    #[test]
    fn builders() {
        let c = SocConfig::mobile(PolicyKind::Fcfs)
            .with_policy(PolicyKind::Relief)
            .without_forwarding()
            .with_time_limit(Time::from_ms(50));
        assert_eq!(c.policy, PolicyKind::Relief);
        assert!(!c.forwarding && !c.colocation);
        assert_eq!(c.time_limit, Some(Time::from_ms(50)));
        assert_eq!(c.sched_insert_cost, SocConfig::default_insert_cost(PolicyKind::Relief));
    }

    #[test]
    fn insert_costs_ordered_like_fig12() {
        let c = |p| SocConfig::default_insert_cost(p);
        assert!(c(PolicyKind::Fcfs) < c(PolicyKind::GedfD));
        assert!(c(PolicyKind::HetSched) < c(PolicyKind::Relief));
    }

    #[test]
    fn bw_predictor_kinds_build() {
        assert_eq!(BwPredictorKind::Max.build(100).predict(), 100.0);
        assert_eq!(BwPredictorKind::Average(15).name(), "Average");
        assert_eq!(BwPredictorKind::Ewma(0.25).name(), "EWMA");
        assert_eq!(BwPredictorKind::Last.build(7).name(), "Last");
    }

    #[test]
    #[should_panic(expected = "invalid fault config")]
    fn bad_fault_rate_rejected() {
        let mut c = SocConfig::mobile(PolicyKind::Fcfs);
        c.fault.task_fault_rate = 1.5;
        c.validate();
    }

    #[test]
    fn default_fault_config_is_disabled() {
        let c = SocConfig::mobile(PolicyKind::Relief);
        assert!(!c.fault.enabled());
        let f = FaultConfig { task_fault_rate: 0.1, ..FaultConfig::default() };
        let c = c.with_fault(f.clone());
        assert!(c.fault.enabled());
        assert_eq!(c.fault, f);
        c.validate();
    }

    #[test]
    fn default_stream_config_is_disabled() {
        use relief_service::{QosClass, TenantCfg};
        let c = SocConfig::mobile(PolicyKind::Relief);
        assert!(!c.stream.enabled());
        let s = StreamConfig {
            duration_ps: 1_000_000,
            tenants: vec![TenantCfg::new(QosClass::Latency, 1000.0)],
            ..StreamConfig::default()
        };
        let c = c.with_stream(s.clone());
        assert!(c.stream.enabled());
        assert_eq!(c.stream, s);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "invalid stream config")]
    fn bad_stream_warmup_rejected() {
        let mut c = SocConfig::mobile(PolicyKind::Fcfs);
        c.stream.warmup_ps = 10;
        c.stream.duration_ps = 5;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "output partition")]
    fn zero_partitions_rejected() {
        let mut c = SocConfig::mobile(PolicyKind::Fcfs);
        c.output_partitions = 0;
        c.validate();
    }
}
