//! Workload description handed to the simulator.

use relief_dag::Dag;
use relief_sim::Time;
use std::sync::Arc;

/// One application to run on the simulated SoC.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Short symbol used in the paper's figures (C, D, G, H, L).
    pub symbol: String,
    /// The application's task graph.
    pub dag: Arc<Dag>,
    /// When the first instance arrives.
    pub arrival: Time,
    /// Re-instantiate the DAG immediately upon completion (the continuous
    /// contention scenario, §IV-C).
    pub repeat: bool,
}

impl AppSpec {
    /// A single run of `dag` arriving at t = 0.
    pub fn once(symbol: impl Into<String>, dag: Arc<Dag>) -> Self {
        AppSpec { symbol: symbol.into(), dag, arrival: Time::ZERO, repeat: false }
    }

    /// A continuously re-arriving run of `dag` starting at t = 0.
    pub fn continuous(symbol: impl Into<String>, dag: Arc<Dag>) -> Self {
        AppSpec { repeat: true, ..Self::once(symbol, dag) }
    }

    /// Changes the arrival time.
    pub fn arriving_at(mut self, at: Time) -> Self {
        self.arrival = at;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relief_dag::{AccTypeId, DagBuilder, NodeSpec};
    use relief_sim::Dur;

    #[test]
    fn constructors() {
        let mut b = DagBuilder::new("x", Dur::from_us(10));
        b.add_node(NodeSpec::new(AccTypeId(0), Dur::from_us(1)));
        let dag = Arc::new(b.build().unwrap());
        let a = AppSpec::once("C", dag.clone());
        assert!(!a.repeat);
        assert_eq!(a.arrival, Time::ZERO);
        let b = AppSpec::continuous("C", dag).arriving_at(Time::from_us(5));
        assert!(b.repeat);
        assert_eq!(b.arrival, Time::from_us(5));
    }
}
