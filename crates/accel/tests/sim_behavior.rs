//! Behavioral tests of the SoC simulator: forwarding, colocation,
//! write-back rules, contention, deadlines, and traffic conservation.

use relief_accel::{AppSpec, SocConfig, SocSim};
use relief_core::PolicyKind;
use relief_dag::{AccTypeId, Dag, DagBuilder, NodeSpec};
use relief_metrics::RunStats;
use relief_sim::{Dur, Time};
use std::sync::Arc;

fn node(acc: u32, compute_us: u64, out: u64) -> NodeSpec {
    NodeSpec::new(AccTypeId(acc), Dur::from_us(compute_us)).with_output_bytes(out)
}

/// Linear chain of `n` nodes, all on accelerator type 0.
fn chain_same_type(n: usize, deadline: Dur) -> Arc<Dag> {
    let mut b = DagBuilder::new("chain", deadline);
    let ids: Vec<_> = (0..n).map(|_| b.add_node(node(0, 10, 8192))).collect();
    b.add_chain(&ids).unwrap();
    Arc::new(b.build().unwrap())
}

/// Linear chain alternating between types 0 and 1.
fn chain_alternating(n: usize, deadline: Dur) -> Arc<Dag> {
    let mut b = DagBuilder::new("alt", deadline);
    let ids: Vec<_> = (0..n).map(|i| b.add_node(node((i % 2) as u32, 10, 8192))).collect();
    b.add_chain(&ids).unwrap();
    Arc::new(b.build().unwrap())
}

fn run(cfg: SocConfig, apps: Vec<AppSpec>) -> RunStats {
    SocSim::new(cfg, apps).run().stats
}

#[test]
fn chain_on_one_accelerator_fully_colocates_under_relief() {
    let dag = chain_same_type(6, Dur::from_ms(10));
    let stats = run(
        SocConfig::generic(vec![1], PolicyKind::Relief),
        vec![AppSpec::once("A", dag)],
    );
    let a = &stats.apps["A"];
    assert_eq!(a.dags_completed, 1);
    assert_eq!(a.edges_consumed, 5);
    assert_eq!(a.colocations, 5);
    assert_eq!(a.forwards, 0);
    assert_eq!(a.dag_deadlines_met, 1);
}

#[test]
fn alternating_chain_forwards_under_relief() {
    let dag = chain_alternating(6, Dur::from_ms(10));
    let stats = run(
        SocConfig::generic(vec![1, 1], PolicyKind::Relief),
        vec![AppSpec::once("A", dag)],
    );
    let a = &stats.apps["A"];
    assert_eq!(a.forwards, 5, "every edge crosses accelerators and forwards");
    assert_eq!(a.colocations, 0);
    assert!(stats.traffic.spad_to_spad_bytes > 0);
}

#[test]
fn forwarding_disabled_moves_everything_through_dram() {
    let dag = chain_alternating(6, Dur::from_ms(10));
    let stats = run(
        SocConfig::generic(vec![1, 1], PolicyKind::Relief).without_forwarding(),
        vec![AppSpec::once("A", dag)],
    );
    let a = &stats.apps["A"];
    assert_eq!(a.forwards, 0);
    assert_eq!(a.colocations, 0);
    assert_eq!(stats.traffic.spad_to_spad_bytes, 0);
    assert_eq!(stats.traffic.colocated_bytes, 0);
    // Conservation: without forwarding, observed DRAM traffic equals the
    // all-DRAM baseline exactly.
    assert_eq!(stats.traffic.dram_bytes(), stats.traffic.all_dram_bytes);
}

#[test]
fn forwarding_reduces_dram_traffic_and_never_exceeds_baseline() {
    let dag = chain_alternating(8, Dur::from_ms(10));
    let apps = |d: &Arc<Dag>| vec![AppSpec::once("A", d.clone())];
    let fwd = run(SocConfig::generic(vec![1, 1], PolicyKind::Relief), apps(&dag));
    let nofwd =
        run(SocConfig::generic(vec![1, 1], PolicyKind::Relief).without_forwarding(), apps(&dag));
    assert!(fwd.traffic.dram_bytes() < nofwd.traffic.dram_bytes());
    assert!(fwd.traffic.total_if_all_dram() <= fwd.traffic.all_dram_bytes);
    assert_eq!(fwd.traffic.all_dram_bytes, nofwd.traffic.all_dram_bytes);
}

#[test]
fn every_policy_completes_the_same_work() {
    let dag = chain_alternating(7, Dur::from_ms(10));
    for policy in PolicyKind::ALL {
        let stats = run(
            SocConfig::generic(vec![1, 1], policy),
            vec![AppSpec::once("A", dag.clone()), AppSpec::once("B", dag.clone())],
        );
        for app in stats.apps.values() {
            assert_eq!(app.dags_completed, 1, "{policy}: {} did not finish", app.name);
            assert_eq!(app.nodes_completed, 7, "{policy}");
            assert_eq!(app.edges_consumed, 6, "{policy}");
        }
        assert_eq!(stats.edges_total, 12, "{policy}");
        assert!(stats.forwards() + stats.colocations() <= stats.edges_total);
    }
}

#[test]
fn relief_forwards_at_least_as_much_as_baselines_under_contention() {
    // Two alternating chains compete for two accelerators — the scenario
    // where deadline-oblivious interleaving destroys forwarding windows.
    let dag = chain_alternating(8, Dur::from_ms(10));
    let apps = || {
        vec![
            AppSpec::once("A", dag.clone()),
            AppSpec::once("B", dag.clone()),
            AppSpec::once("C", dag.clone()),
        ]
    };
    let score = |p: PolicyKind| {
        let s = run(SocConfig::generic(vec![1, 1], p), apps());
        s.forwards() + s.colocations()
    };
    let relief = score(PolicyKind::Relief);
    for p in [PolicyKind::Fcfs, PolicyKind::GedfN, PolicyKind::Lax, PolicyKind::HetSched] {
        assert!(
            relief >= score(p),
            "RELIEF ({relief}) must not trail {p} ({})",
            score(p)
        );
    }
}

#[test]
fn infeasible_deadlines_are_reported_missed() {
    // 6 x 10us of compute against a 1us deadline: completes, but misses.
    let dag = chain_same_type(6, Dur::from_us(1));
    let stats = run(SocConfig::generic(vec![1], PolicyKind::Relief), vec![AppSpec::once("A", dag)]);
    let a = &stats.apps["A"];
    assert_eq!(a.dags_completed, 1);
    assert_eq!(a.dag_deadlines_met, 0);
    assert!(a.node_deadlines_met < a.nodes_completed);
    assert!(a.max_slowdown().unwrap() > 1.0);
}

#[test]
fn continuous_mode_repeats_until_time_limit() {
    let dag = chain_same_type(3, Dur::from_ms(1));
    let cfg = SocConfig::generic(vec![1], PolicyKind::Relief).with_time_limit(Time::from_ms(2));
    let stats = run(cfg, vec![AppSpec::continuous("A", dag)]);
    let a = &stats.apps["A"];
    assert!(a.dags_completed > 1, "continuous app must re-arrive (got {})", a.dags_completed);
    assert_eq!(stats.exec_time, Dur::from_ms(2));
}

#[test]
fn starvation_is_flagged() {
    // Two continuous apps on one accelerator; one has far tighter laxity.
    // Under LAX, the doomed one is perpetually de-prioritized.
    let fast = chain_same_type(2, Dur::from_ms(4));
    let mut b = DagBuilder::new("slow", Dur::from_us(50)); // hopeless deadline
    let ids: Vec<_> = (0..4).map(|_| b.add_node(node(0, 200, 8192))).collect();
    b.add_chain(&ids).unwrap();
    let slow = Arc::new(b.build().unwrap());
    let cfg = SocConfig::generic(vec![1], PolicyKind::Lax).with_time_limit(Time::from_ms(3));
    let stats = run(
        cfg,
        vec![AppSpec::continuous("fast", fast), AppSpec::continuous("slow", slow)],
    );
    assert!(stats.apps["fast"].dags_completed > 0);
    assert!(stats.apps["slow"].starved || stats.apps["slow"].dags_completed == 0);
}

#[test]
fn parallel_instances_increase_throughput() {
    // Two independent single-node DAGs on the same type: with 2 instances
    // they run concurrently.
    let single = {
        let mut b = DagBuilder::new("one", Dur::from_ms(1));
        b.add_node(node(0, 100, 0));
        Arc::new(b.build().unwrap())
    };
    let apps =
        || vec![AppSpec::once("A", single.clone()), AppSpec::once("B", single.clone())];
    let t1 = run(SocConfig::generic(vec![1], PolicyKind::Fcfs), apps()).exec_time;
    let t2 = run(SocConfig::generic(vec![2], PolicyKind::Fcfs), apps()).exec_time;
    assert!(t2 < t1, "2 instances ({t2}) must beat 1 ({t1})");
}

#[test]
fn multi_parent_node_waits_for_all_parents() {
    // p1 (fast) and p2 (slow) both feed c; c must not run before p2 ends.
    let mut b = DagBuilder::new("join", Dur::from_ms(5));
    let p1 = b.add_node(node(0, 10, 4096));
    let p2 = b.add_node(node(1, 500, 4096));
    let c = b.add_node(node(2, 10, 0));
    b.add_edge(p1, c).unwrap();
    b.add_edge(p2, c).unwrap();
    let dag = Arc::new(b.build().unwrap());
    let stats = run(
        SocConfig::generic(vec![1, 1, 1], PolicyKind::Relief),
        vec![AppSpec::once("A", dag)],
    );
    let a = &stats.apps["A"];
    assert_eq!(a.nodes_completed, 3);
    // c's completion implies the DAG ran at least p2's 500us.
    assert!(stats.exec_time > Dur::from_us(500));
    // p1's output outlives p2's compute in the scratchpad (double
    // buffering, nothing else contends), so both edges can forward.
    assert_eq!(a.forwards + a.colocations, 2);
}

#[test]
fn zero_output_nodes_are_handled() {
    let mut b = DagBuilder::new("z", Dur::from_ms(1));
    let a = b.add_node(node(0, 10, 0)); // no output bytes at all
    let c = b.add_node(node(1, 10, 0));
    b.add_edge(a, c).unwrap();
    let dag = Arc::new(b.build().unwrap());
    let stats = run(
        SocConfig::generic(vec![1, 1], PolicyKind::Relief),
        vec![AppSpec::once("A", dag)],
    );
    assert_eq!(stats.apps["A"].dags_completed, 1);
}

#[test]
fn dram_extra_inputs_are_fetched() {
    let mut b = DagBuilder::new("w", Dur::from_ms(1));
    b.add_node(node(0, 10, 0).with_dram_input_bytes(65_536));
    let dag = Arc::new(b.build().unwrap());
    let stats =
        run(SocConfig::generic(vec![1], PolicyKind::Fcfs), vec![AppSpec::once("A", dag)]);
    assert_eq!(stats.traffic.dram_read_bytes, 65_536);
}

#[test]
fn scheduler_overhead_accumulates_and_can_be_disabled() {
    let dag = chain_same_type(5, Dur::from_ms(10));
    let with = run(
        SocConfig::generic(vec![1], PolicyKind::Relief),
        vec![AppSpec::once("A", dag.clone())],
    );
    assert!(with.scheduler_ops >= 5);
    assert!(!with.scheduler_time.is_zero());
    let mut cfg = SocConfig::generic(vec![1], PolicyKind::Relief);
    cfg.model_sched_overhead = false;
    let without = run(cfg, vec![AppSpec::once("A", dag)]);
    assert!(without.scheduler_time.is_zero());
    assert!(without.exec_time <= with.exec_time);
}

#[test]
fn determinism_same_seed_same_result() {
    let dag = chain_alternating(8, Dur::from_ms(10));
    let apps = || vec![AppSpec::once("A", dag.clone()), AppSpec::once("B", dag.clone())];
    let r1 = run(SocConfig::generic(vec![1, 1], PolicyKind::Relief), apps());
    let r2 = run(SocConfig::generic(vec![1, 1], PolicyKind::Relief), apps());
    assert_eq!(r1, r2);
}

#[test]
fn occupancy_and_energy_are_sane() {
    let dag = chain_alternating(8, Dur::from_ms(10));
    let stats = run(
        SocConfig::generic(vec![1, 1], PolicyKind::Relief),
        vec![AppSpec::once("A", dag)],
    );
    assert!(stats.accel_occupancy() > 0.0);
    assert!(stats.interconnect_occupancy() > 0.0 && stats.interconnect_occupancy() <= 1.0);
    let e = relief_metrics::EnergyModel::new().energy(&stats.traffic, stats.exec_time);
    assert!(e.dram_nj > 0.0 && e.spad_nj > 0.0);
}

#[test]
#[should_panic(expected = "unknown accelerator type")]
fn dag_with_unknown_acc_type_is_rejected() {
    let mut b = DagBuilder::new("bad", Dur::from_ms(1));
    b.add_node(node(5, 1, 0));
    let dag = Arc::new(b.build().unwrap());
    SocSim::new(SocConfig::generic(vec![1], PolicyKind::Fcfs), vec![AppSpec::once("A", dag)]);
}

#[test]
fn single_output_partition_still_completes() {
    // With 1 partition, colocation-in-place is disabled and write-backs
    // serialize partition reuse; everything must still drain.
    let dag = chain_same_type(6, Dur::from_ms(10));
    let mut cfg = SocConfig::generic(vec![1], PolicyKind::Relief);
    cfg.output_partitions = 1;
    let stats = run(cfg, vec![AppSpec::once("A", dag)]);
    let a = &stats.apps["A"];
    assert_eq!(a.dags_completed, 1);
    assert_eq!(a.colocations, 0, "in-place reads need a second partition");
}

#[test]
fn wide_fanout_respects_partition_war_ordering() {
    // One producer with 6 consumers on another type with 1 instance: the
    // consumers cannot all be next in line, so the producer writes back and
    // late consumers read DRAM; ongoing_reads must keep data live for the
    // first.
    let mut b = DagBuilder::new("fan", Dur::from_ms(10));
    let p = b.add_node(node(0, 10, 16_384));
    for _ in 0..6 {
        let c = b.add_node(node(1, 10, 0));
        b.add_edge(p, c).unwrap();
    }
    let dag = Arc::new(b.build().unwrap());
    let stats = run(
        SocConfig::generic(vec![1, 1], PolicyKind::Relief),
        vec![AppSpec::once("A", dag)],
    );
    let a = &stats.apps["A"];
    assert_eq!(a.nodes_completed, 7);
    assert_eq!(a.edges_consumed, 6);
    // The producer stays idle afterwards, so its data is never overwritten
    // and every consumer can still forward...
    assert_eq!(a.forwards, 6);
    // ...but because not all six were next in line at completion, the
    // write-back to DRAM was issued anyway (§III-C.2).
    assert!(stats.traffic.dram_write_bytes >= 16_384);
}

#[test]
fn overwritten_output_falls_back_to_dram_via_lazy_writeback() {
    // X keeps the consumer type busy for 400us. Y's producer output is
    // deferred (its child is next in line), but Z's chain then needs the
    // producer's partition, forcing a lazy write-back; by the time Y's
    // consumer runs, the data lives only in DRAM.
    let mut bx = DagBuilder::new("x", Dur::from_ms(10));
    bx.add_node(node(1, 400, 0));
    let x = Arc::new(bx.build().unwrap());

    let mut by = DagBuilder::new("y", Dur::from_ms(10));
    let p = by.add_node(node(0, 10, 8192));
    let c = by.add_node(node(1, 10, 0));
    by.add_edge(p, c).unwrap();
    let y = Arc::new(by.build().unwrap());

    let mut bz = DagBuilder::new("z", Dur::from_ms(10));
    let ids: Vec<_> = (0..3).map(|_| bz.add_node(node(0, 10, 8192))).collect();
    bz.add_chain(&ids).unwrap();
    let z = Arc::new(bz.build().unwrap());

    let stats = run(
        SocConfig::generic(vec![1, 1], PolicyKind::Fcfs),
        vec![AppSpec::once("X", x), AppSpec::once("Y", y), AppSpec::once("Z", z)],
    );
    for app in stats.apps.values() {
        assert_eq!(
            app.dags_completed, 1,
            "{} must complete despite partition pressure",
            app.name
        );
    }
    // Y's edge could not forward: the producer's scratchpad copy was
    // recycled for Z's chain before the consumer ran.
    assert_eq!(stats.apps["Y"].forwards, 0);
    assert_eq!(stats.apps["Y"].colocations, 0);
    // The lazy write-back put the data in DRAM.
    assert!(stats.traffic.dram_write_bytes >= 8192);
}

#[test]
fn trace_is_empty_unless_enabled() {
    let dag = chain_same_type(4, Dur::from_ms(10));
    let off = SocSim::new(
        SocConfig::generic(vec![1], PolicyKind::Relief),
        vec![AppSpec::once("A", dag.clone())],
    )
    .run();
    assert!(off.trace.spans.is_empty());
    let mut cfg = SocConfig::generic(vec![1], PolicyKind::Relief);
    cfg.record_trace = true;
    let on = SocSim::new(cfg, vec![AppSpec::once("A", dag)]).run();
    assert_eq!(on.trace.spans.len(), 4);
    // The colocated chain renders with '=' markers after the root.
    let rendered = on.trace.render(&["em".into()]);
    assert!(rendered.contains("=A:n1"));
    assert!(rendered.contains(".A:n0"));
}

#[test]
fn trace_spans_match_stats() {
    let dag = chain_alternating(6, Dur::from_ms(10));
    let mut cfg = SocConfig::generic(vec![1, 1], PolicyKind::Relief);
    cfg.record_trace = true;
    let r = SocSim::new(cfg, vec![AppSpec::once("A", dag)]).run();
    let fwd: u32 = r.trace.spans.iter().map(|s| s.forwarded_inputs).sum();
    let coloc: u32 = r.trace.spans.iter().map(|s| s.colocated_inputs).sum();
    assert_eq!(fwd as u64, r.stats.apps["A"].forwards);
    assert_eq!(coloc as u64, r.stats.apps["A"].colocations);
}

#[test]
fn extension_policies_complete_workloads() {
    let dag = chain_alternating(8, Dur::from_ms(10));
    for policy in PolicyKind::EXTENSIONS {
        let stats = run(
            SocConfig::generic(vec![1, 1], policy),
            vec![AppSpec::once("A", dag.clone()), AppSpec::once("B", dag.clone())],
        );
        for app in stats.apps.values() {
            assert_eq!(app.dags_completed, 1, "{policy}: {}", app.name);
        }
    }
}

#[test]
fn crossbar_never_slower_than_bus() {
    let dag = chain_alternating(8, Dur::from_ms(10));
    let apps = || {
        vec![
            AppSpec::once("A", dag.clone()),
            AppSpec::once("B", dag.clone()),
            AppSpec::once("C", dag.clone()),
        ]
    };
    let bus = run(SocConfig::generic(vec![2, 2], PolicyKind::Fcfs), apps());
    let mut cfg = SocConfig::generic(vec![2, 2], PolicyKind::Fcfs);
    cfg.mem = cfg.mem.with_crossbar();
    let xbar = run(cfg, apps());
    assert!(xbar.exec_time <= bus.exec_time);
    // Both complete identical work.
    assert_eq!(bus.edges_total, xbar.edges_total);
}

#[test]
fn dynamic_bandwidth_predictor_changes_nothing_material() {
    // Observation 8 at the unit level: swapping the BW predictor leaves
    // completed work identical and forwards within noise.
    let dag = chain_alternating(10, Dur::from_ms(10));
    let apps = || vec![AppSpec::once("A", dag.clone()), AppSpec::once("B", dag.clone())];
    let mut base_cfg = SocConfig::generic(vec![1, 1], PolicyKind::Relief);
    base_cfg.bw_predictor = relief_accel::BwPredictorKind::Max;
    let base = run(base_cfg, apps());
    for pred in [
        relief_accel::BwPredictorKind::Last,
        relief_accel::BwPredictorKind::Average(15),
        relief_accel::BwPredictorKind::Ewma(0.25),
    ] {
        let mut cfg = SocConfig::generic(vec![1, 1], PolicyKind::Relief);
        cfg.bw_predictor = pred;
        let r = run(cfg, apps());
        assert_eq!(r.apps["A"].nodes_completed, base.apps["A"].nodes_completed);
        let diff =
            (r.forwards() + r.colocations()).abs_diff(base.forwards() + base.colocations());
        assert!(diff <= 2, "{}: forwards moved by {diff}", pred.name());
    }
}

#[test]
fn per_app_accounting_sums_to_totals() {
    let dag = chain_alternating(6, Dur::from_ms(10));
    let result = SocSim::new(
        SocConfig::generic(vec![1, 1], PolicyKind::Relief),
        vec![AppSpec::once("A", dag.clone()), AppSpec::once("B", dag)],
    )
    .run();
    let stats = &result.stats;
    let app_fwd: u64 = stats.apps.values().map(|a| a.forwards).sum();
    assert_eq!(app_fwd, stats.forwards());
    let app_edges: u64 = stats.apps.values().map(|a| a.edges_consumed).sum();
    assert_eq!(app_edges, stats.edges_total);
    // Per-app compute sums to total accelerator busy time.
    let compute: relief_sim::Dur = result.per_app_compute_time.values().copied().sum();
    assert_eq!(compute, stats.accel_busy);
}

#[test]
fn staggered_arrivals_are_honored() {
    let dag = chain_same_type(3, Dur::from_ms(5));
    let mut cfg = SocConfig::generic(vec![1], PolicyKind::Fcfs);
    cfg.record_trace = true;
    let r = SocSim::new(
        cfg,
        vec![
            AppSpec::once("A", dag.clone()).arriving_at(Time::from_us(500)),
            AppSpec::once("B", dag),
        ],
    )
    .run();
    // B (arrives at 0) runs its whole chain before A starts anything.
    let first_a = r
        .trace
        .spans
        .iter()
        .filter(|s| s.label.starts_with("A"))
        .map(|s| s.start)
        .min()
        .expect("A executed");
    assert!(first_a >= Time::from_us(500));
    assert_eq!(r.stats.apps["A"].dags_completed, 1);
}
