//! Million-request soak benchmark (`xtask bench --soak`): sustained
//! MMPP overload through the open-loop service frontend, run in
//! bounded-memory mode so the only thing allowed to grow with arrival
//! count is the arrival count itself.
//!
//! The soak exists to prove the serving claim, not to reproduce a paper
//! figure: with generational instance recycling on (the default hot
//! path), a run that admits hundreds of thousands of requests must keep
//! its live `DagInst` slot count — [`SimResult::live_high_water`] — at
//! O(in-flight), and its host RSS must plateau rather than track total
//! arrivals. [`SoakSpec::live_bound`] is the hard ceiling the bench and
//! the `soak-smoke` check gate on.
//!
//! Cells run through the campaign engine (cache disabled — this is a
//! wall-clock benchmark), so the deterministic part of the report is
//! byte-identical at any `--jobs`; wall time, ns/event, and peak RSS
//! are the only host-dependent outputs and are reported separately.

use crate::campaign::{execute, CampaignResults, CampaignSpec, ExecOptions, PlatformSpec, WorkloadSpec};
use relief_accel::SocConfig;
use relief_core::PolicyKind;
use relief_metrics::report::Table;
use relief_service::{AdmissionConfig, ArrivalProcess, SelfHealConfig, StreamConfig, TenantCfg};
use std::time::Instant;

/// Knobs of one soak run.
#[derive(Debug, Clone)]
pub struct SoakSpec {
    /// Arrival-stream seed shared by every cell.
    pub seed: u64,
    /// Per-tenant mean arrival rate, requests/s (the MMPP burst/duty
    /// parameters keep the mean at this value).
    pub rate: f64,
    /// Stream duration, picoseconds (arrivals stop here; the run drains).
    pub duration_ps: u64,
    /// Warm-up truncation for the service histograms, picoseconds.
    pub warmup_ps: u64,
    /// Global in-flight admission cap; overload beyond it is shed, which
    /// is what keeps the live set — and therefore memory — bounded.
    pub max_in_flight: u32,
    /// Hard ceiling on [`SimResult::live_high_water`]: admitted
    /// in-flight instances plus completed instances still pinned by a
    /// scratchpad-partition hold. A run above this bound fails the bench.
    pub live_bound: u64,
    /// Policies under test, one campaign cell each.
    pub policies: Vec<PolicyKind>,
}

impl Default for SoakSpec {
    fn default() -> Self {
        SoakSpec {
            // 3 tenants x 2000 req/s x 100 s x 2 policy cells = 1.2M
            // arrivals: past the million-request mark the ROADMAP's
            // serving story is calibrated against.
            seed: 0x50AC,
            rate: 2_000.0,
            duration_ps: 100_000_000_000_000, // 100 s of arrivals
            warmup_ps: 5_000_000_000_000,     // first 5 s excluded
            max_in_flight: 24,
            live_bound: 256,
            policies: vec![PolicyKind::Fcfs, PolicyKind::Relief],
        }
    }
}

/// The calibrated burst shape every soak cell streams: 4x bursts, 25 %
/// duty, 1 ms cycle — the same defaults `--arrival mmpp` resolves to,
/// pinned here so the soak trajectory stays comparable across PRs.
fn mmpp() -> ArrivalProcess {
    ArrivalProcess::Mmpp { burst: 4.0, on_fraction: 0.25, cycle_ps: 1_000_000_000 }
}

impl SoakSpec {
    /// The short variant behind `xtask check`'s `soak-smoke` step and
    /// `bench --soak --smoke`: same shape, 0.5 s of arrivals (~3k per
    /// cell) — enough admissions for slots to recycle many times over,
    /// quick enough for CI.
    #[must_use]
    pub fn smoke() -> Self {
        SoakSpec {
            duration_ps: 500_000_000_000,
            warmup_ps: 50_000_000_000,
            ..SoakSpec::default()
        }
    }

    /// The reduced variant `bench --check` gates on: 10 s of arrivals
    /// (~120k requests) — long enough for a stable ns/event, an order of
    /// magnitude cheaper than the full soak.
    #[must_use]
    pub fn check() -> Self {
        SoakSpec {
            duration_ps: 10_000_000_000_000,
            warmup_ps: 1_000_000_000_000,
            ..SoakSpec::default()
        }
    }

    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.policies.is_empty() {
            return Err("soak needs at least one policy".into());
        }
        if !self.rate.is_finite() || self.rate <= 0.0 {
            return Err(format!("soak rate {} must be positive and finite", self.rate));
        }
        if self.live_bound == 0 {
            return Err("soak live_bound must be nonzero".into());
        }
        if self.max_in_flight == 0 {
            return Err("soak needs an in-flight cap (unbounded admission defeats it)".into());
        }
        self.stream_config().validate().map_err(|e| e.to_string())
    }

    /// The stream every cell drives: the CGL tenant trio under the
    /// calibrated MMPP shape, admission-capped, self-healing off.
    fn stream_config(&self) -> StreamConfig {
        StreamConfig {
            seed: self.seed,
            duration_ps: self.duration_ps,
            warmup_ps: self.warmup_ps,
            process: mmpp(),
            tenants: crate::service::TENANT_APPS
                .iter()
                .map(|&(_, q)| TenantCfg::new(q, self.rate))
                .collect(),
            admission: AdmissionConfig {
                max_in_flight: self.max_in_flight,
                ..AdmissionConfig::default()
            },
            self_heal: SelfHealConfig::default(),
        }
    }

    /// Expands into a campaign: one platform (the soaked stream in
    /// bounded-memory mode), one cell per policy.
    pub fn campaign(&self) -> CampaignSpec {
        let stream = self.stream_config();
        let label = format!(
            "mobile+soak-mmppr{:.0}s{:x}d{}us+adm{}+bm",
            self.rate,
            self.seed,
            self.duration_ps / 1_000_000,
            self.max_in_flight,
        );
        CampaignSpec {
            name: "soak".into(),
            policies: self.policies.clone(),
            workloads: vec![WorkloadSpec::custom("service/CGL", None, crate::service::tenant_workload)],
            platforms: vec![PlatformSpec::custom(label, move |p| {
                SocConfig::mobile(p).with_stream(stream.clone()).with_bounded_memory()
            })],
            replicates: 1,
        }
    }

    /// Runs the soak on `jobs` workers and aggregates the outcome.
    ///
    /// # Errors
    ///
    /// Returns a message when a cell panics, a cell's event counters
    /// disagree with its stats, or the live-set high-water mark exceeds
    /// [`SoakSpec::live_bound`].
    pub fn run(&self, jobs: usize) -> Result<SoakOutcome, String> {
        self.validate()?;
        let specs = self.campaign().expand();
        let t0 = Instant::now();
        let results = execute(specs, &ExecOptions { jobs, ..ExecOptions::default() });
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let failures = results.failures();
        if !failures.is_empty() {
            return Err(format!("soak cells failed: {failures:?}"));
        }
        let mismatched = results.mismatched();
        if !mismatched.is_empty() {
            return Err(format!("soak cells mismatched: {mismatched:?}"));
        }
        let mut arrivals = 0u64;
        let mut events = 0u64;
        let mut live_high_water = 0u64;
        for o in &results.outcomes {
            if let Ok(rec) = &o.outcome {
                arrivals += rec.result.stats.service.arrivals();
                events += rec.result.events_dispatched;
                live_high_water = live_high_water.max(rec.result.live_high_water);
            }
        }
        let outcome = SoakOutcome {
            report: self.render(&results),
            wall_ns,
            arrivals,
            events,
            live_high_water,
        };
        if live_high_water > self.live_bound {
            return Err(format!(
                "live-set high-water mark {live_high_water} exceeds the configured bound {} — \
                 instance recycling is not keeping memory O(in-flight)\n{}",
                self.live_bound, outcome.report
            ));
        }
        Ok(outcome)
    }

    /// The deterministic per-cell table: everything here is
    /// simulation-derived, so two executions at different `--jobs` must
    /// render byte-identically.
    fn render(&self, results: &CampaignResults) -> String {
        let mut t = Table::with_columns(&[
            "policy",
            "arrivals",
            "admitted",
            "shed %",
            "att lat %",
            "events",
            "live hw",
        ]);
        for (i, spec) in self.campaign().expand().iter().enumerate() {
            let policy = self.policies[i % self.policies.len()].name().to_string();
            match results.get(&spec.label()) {
                Some(rec) => {
                    let svc = &rec.result.stats.service;
                    t.row(vec![
                        policy,
                        svc.arrivals().to_string(),
                        svc.admitted().to_string(),
                        format!("{:.1}", svc.shed_rate() * 100.0),
                        format!("{:.1}", svc.classes[0].attainment() * 100.0),
                        rec.result.events_dispatched.to_string(),
                        rec.result.live_high_water.to_string(),
                    ]);
                }
                None => {
                    let mut row = vec![policy];
                    row.extend((0..6).map(|_| "FAILED".to_string()));
                    t.row(row);
                }
            }
        }
        format!(
            "[soak: CGL | mmpp 4x/25%/1ms | seed {:#x} | {} us stream, {} us warm-up \
             | in-flight cap {} | live bound {}]\n{}",
            self.seed,
            self.duration_ps / 1_000_000,
            self.warmup_ps / 1_000_000,
            self.max_in_flight,
            self.live_bound,
            t.render()
        )
    }
}

/// Everything one soak run produced.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// The deterministic per-cell table ([`SoakSpec::render`]).
    pub report: String,
    /// Wall-clock nanoseconds across all cells.
    pub wall_ns: u64,
    /// Total stream arrivals across all cells.
    pub arrivals: u64,
    /// Total simulator events dispatched across all cells.
    pub events: u64,
    /// Largest per-cell live-slot high-water mark.
    pub live_high_water: u64,
}

impl SoakOutcome {
    /// Host nanoseconds per dispatched simulator event.
    #[must_use]
    pub fn ns_per_event(&self) -> f64 {
        self.wall_ns as f64 / self.events.max(1) as f64
    }
}

/// Peak resident-set size of this process in megabytes, from
/// `/proc/self/status` `VmHWM` — `None` off Linux or when unreadable.
#[must_use]
pub fn rss_peak_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A soak small enough for unit tests: 50 ms of arrivals (~300).
    fn tiny() -> SoakSpec {
        SoakSpec {
            duration_ps: 50_000_000_000,
            warmup_ps: 5_000_000_000,
            policies: vec![PolicyKind::Relief],
            ..SoakSpec::default()
        }
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        assert!(SoakSpec::default().validate().is_ok());
        assert!(SoakSpec { policies: vec![], ..SoakSpec::default() }.validate().is_err());
        assert!(SoakSpec { rate: 0.0, ..SoakSpec::default() }.validate().is_err());
        assert!(SoakSpec { live_bound: 0, ..SoakSpec::default() }.validate().is_err());
        assert!(SoakSpec { max_in_flight: 0, ..SoakSpec::default() }.validate().is_err());
    }

    #[test]
    fn tiny_soak_recycles_and_stays_bounded() {
        let spec = tiny();
        let outcome = spec.run(1).unwrap();
        assert!(outcome.arrivals > 100, "too few arrivals: {}", outcome.arrivals);
        assert!(outcome.events > outcome.arrivals);
        assert!(outcome.live_high_water > 0);
        assert!(
            outcome.live_high_water <= spec.live_bound,
            "live high-water {} above bound {}",
            outcome.live_high_water,
            spec.live_bound
        );
        assert!(outcome.report.contains("RELIEF"), "{}", outcome.report);
        assert!(outcome.ns_per_event() > 0.0);
    }

    #[test]
    fn tiny_soak_report_is_jobs_invariant() {
        let spec = tiny();
        let a = spec.run(1).unwrap();
        let b = spec.run(2).unwrap();
        assert_eq!(a.report, b.report, "soak report must not depend on --jobs");
        assert_eq!(a.events, b.events);
        assert_eq!(a.live_high_water, b.live_high_water);
    }

    #[test]
    fn rss_probe_is_sane() {
        // On Linux the probe must read a positive peak; elsewhere None.
        if let Some(mb) = rss_peak_mb() {
            assert!(mb > 0.0);
        }
    }
}
