//! The "% of oracle" campaign table.
//!
//! For each Table II scenario (one benchmark application alone on the
//! mobile SoC), `relief-oracle` computes an ahead-of-time scheduling
//! bound and every online policy's makespan is reported as a percentage
//! of it — the gap each scheduler leaves on the table. The oracle is
//! verified in-line: the winning schedule is replayed through the full
//! simulator and must reproduce the predicted makespan bit-exactly
//! (a `[replay-mismatch]` cell would flag the violation rather than
//! silently publishing a wrong bound).
//!
//! Rows are computed on `jobs` worker threads (each `solve` call is a
//! pure function of its scenario) and assembled in scenario order, so
//! stdout is byte-identical at any `--jobs` level — the same contract
//! the campaign engine gives every other table.

use crate::FAIRNESS_POLICIES;
use relief_accel::{AppSpec, SocConfig};
use relief_core::PolicyKind;
use relief_metrics::report::Table;
use relief_oracle::{solve, OracleOptions, OracleResult};
use relief_workloads::App;

/// The policies the table reports "% of oracle" for: the paper's
/// fairness set plus the adaptive extension.
pub fn reported_policies() -> Vec<PolicyKind> {
    let mut v = FAIRNESS_POLICIES.to_vec();
    v.push(PolicyKind::Adaptive);
    v
}

/// Search budget for the campaign table. Small on purpose: the online
/// incumbents already carry a sound bound, the search only tightens it,
/// and every property (dominance, bit-exact replay) holds at any budget.
pub fn campaign_options() -> OracleOptions {
    OracleOptions { beam_width: 2, max_expansions: 600 }
}

/// Solves one Table II scenario (one application alone on mobile).
pub fn solve_solo(app: App) -> OracleResult {
    let apps = vec![AppSpec::once(app.symbol(), app.dag())];
    #[allow(clippy::expect_used)] // solo closed-loop workloads are always valid
    solve(SocConfig::mobile, &apps, &campaign_options())
        .expect("solo app scenarios are closed and deterministic")
}

/// One rendered row: scenario label, oracle makespan, provenance, and
/// "% of oracle" per reported policy. Includes the in-line replay check.
fn row_for(app: App) -> Vec<String> {
    let res = solve_solo(app);
    let apps = vec![AppSpec::once(app.symbol(), app.dag())];
    let replayed = res.replay(SocConfig::mobile, &apps);
    let verified = replayed.stats.exec_time.as_ps() == res.makespan_ps;

    let mut cells = vec![
        app.symbol().to_string(),
        format!("{:.3}", res.makespan_ps as f64 / 1e9),
        if !verified {
            "[replay-mismatch]".to_string()
        } else if res.from_search {
            "search".to_string()
        } else {
            res.impersonates.name().to_string()
        },
    ];
    for policy in reported_policies() {
        let pct = res
            .percent_of_oracle(policy)
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "-".to_string());
        cells.push(pct);
    }
    cells
}

/// Renders the "% of oracle" table on `jobs` worker threads.
pub fn table_oracle(jobs: usize) -> String {
    let scenarios: Vec<App> = App::ALL.to_vec();
    let rows = parallel_rows(&scenarios, jobs.max(1));

    let mut cols = vec!["app", "oracle ms", "bound from"];
    let names: Vec<String> =
        reported_policies().iter().map(|p| format!("{} %", p.name())).collect();
    cols.extend(names.iter().map(String::as_str));
    let mut t = Table::with_columns(&cols);
    for row in rows {
        t.row(row);
    }
    format!(
        "[oracle] makespan lower bound vs online policies, Table II scenarios\n\
         (policy makespan as % of oracle; bound verified by bit-exact schedule replay)\n{}",
        t.render()
    )
}

/// Computes `row_for` over `scenarios` on up to `jobs` threads,
/// returning rows in scenario order regardless of completion order.
fn parallel_rows(scenarios: &[App], jobs: usize) -> Vec<Vec<String>> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let next = AtomicUsize::new(0);
    let out: Mutex<Vec<Option<Vec<String>>>> = Mutex::new(vec![None; scenarios.len()]);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(scenarios.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&app) = scenarios.get(i) else { break };
                let row = row_for(app);
                #[allow(clippy::unwrap_used)] // a poisoned lock is already a test failure
                {
                    out.lock().unwrap()[i] = Some(row);
                }
            });
        }
    });
    #[allow(clippy::unwrap_used)] // every slot was filled by the scope above
    out.into_inner().unwrap().into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_table_is_identical_at_any_jobs_level() {
        let serial = table_oracle(1);
        let parallel = table_oracle(4);
        assert_eq!(serial, parallel, "oracle table must be byte-identical at any --jobs");
        for app in App::ALL {
            assert!(serial.contains(&format!("\n{} ", app.symbol())), "row for {app:?}");
        }
        assert!(serial.contains("RELIEF %"));
        assert!(serial.contains("ADAPTIVE %"));
        assert!(!serial.contains("[replay-mismatch]"), "bound must verify:\n{serial}");
    }
}
