//! Resilience campaign: miss-rate and forwarding-rate vs fault rate.
//!
//! Sweeps the deterministic fault plan of `relief-fault` across the
//! campaign engine: one platform axis value per fault rate, every
//! requested policy, one shared workload. The fault knobs are folded
//! into each platform's label, so every cell has its own canonical
//! identity (and therefore its own replicate seeds and cache key), and
//! the whole sweep inherits the engine's determinism contract — the
//! rendered report is byte-identical at any `--jobs`.
//!
//! Rate 0 is always a valid axis value: it is the fault-free baseline
//! and produces exactly the numbers an unfaulted run would.

use crate::campaign::{CampaignResults, CampaignSpec, ExecOptions, PlatformSpec, WorkloadSpec};
use relief_accel::SocConfig;
use relief_core::PolicyKind;
use relief_fault::FaultConfig;
use relief_metrics::report::Table;
use relief_workloads::Contention;
use std::fmt::Write as _;

/// Knobs of one resilience sweep.
#[derive(Debug, Clone)]
pub struct ResilienceSpec {
    /// Fault-plan seed shared by every faulted cell.
    pub seed: u64,
    /// Per-attempt task/DMA fault probabilities to sweep; `0` cells run
    /// the fault-free baseline.
    pub rates: Vec<f64>,
    /// Accelerator-unit MTTF in picoseconds (`0` disables outages).
    pub mttf_ps: u64,
    /// Policies under test, in row order.
    pub policies: Vec<PolicyKind>,
    /// Workload every cell runs.
    pub workload: WorkloadSpec,
}

impl Default for ResilienceSpec {
    fn default() -> Self {
        let mixes = Contention::High.mixes();
        ResilienceSpec {
            seed: FaultConfig::default().seed,
            rates: vec![0.0, 0.001, 0.005, 0.02],
            mttf_ps: 0,
            policies: vec![
                PolicyKind::Fcfs,
                PolicyKind::Lax,
                PolicyKind::HetSched,
                PolicyKind::Relief,
            ],
            workload: WorkloadSpec::mix(Contention::High, &mixes[0]),
        }
    }
}

impl ResilienceSpec {
    /// Validates the sweep axes.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending knob when an axis is empty
    /// or a rate is outside `[0, 1)`.
    pub fn validate(&self) -> Result<(), String> {
        if self.rates.is_empty() {
            return Err("resilience sweep needs at least one fault rate".into());
        }
        if self.policies.is_empty() {
            return Err("resilience sweep needs at least one policy".into());
        }
        for &r in &self.rates {
            if !r.is_finite() || !(0.0..1.0).contains(&r) {
                return Err(format!("fault rate {r} outside [0, 1)"));
            }
        }
        // Delegate the remaining knob checks (repair time etc.) to the
        // fault crate so the two validators cannot drift apart.
        self.fault_config(self.rates[0])
            .validate()
            .map_err(|e| e.to_string())
    }

    /// The fault configuration of one swept cell.
    fn fault_config(&self, rate: f64) -> FaultConfig {
        FaultConfig {
            seed: self.seed,
            task_fault_rate: rate,
            dma_fault_rate: rate,
            unit_mttf_ps: self.mttf_ps,
            ..FaultConfig::default()
        }
    }

    /// The platform label of one swept cell. Encodes every fault knob:
    /// the label is the run's canonical identity, and two cells with
    /// different fault plans must never collide.
    fn platform_label(&self, rate: f64) -> String {
        let mut label = format!("mobile+f{rate:.4}s{:x}", self.seed);
        if self.mttf_ps > 0 {
            let _ = write!(label, "+mttf{}us", self.mttf_ps / 1_000_000);
        }
        label
    }

    /// Expands the sweep into a campaign: policy-major, then one
    /// platform per fault rate in the order given.
    pub fn campaign(&self) -> CampaignSpec {
        let platforms = self
            .rates
            .iter()
            .map(|&rate| {
                let fault = self.fault_config(rate);
                PlatformSpec::custom(self.platform_label(rate), move |p| {
                    SocConfig::mobile(p).with_fault(fault.clone())
                })
            })
            .collect();
        CampaignSpec {
            name: "resilience".into(),
            policies: self.policies.clone(),
            workloads: vec![self.workload.clone()],
            platforms,
            replicates: 1,
        }
    }

    /// Renders executed results as the sweep's report table: one row per
    /// (policy, fault rate) in expansion order, with the injected /
    /// recovered / aborted fault counts next to the deadline and
    /// forwarding outcomes they explain. Failed runs render as a
    /// `FAILED` row instead of silently disappearing.
    pub fn render(&self, results: &CampaignResults) -> String {
        let mut t = Table::with_columns(&[
            "policy",
            "rate",
            "injected",
            "recovered",
            "aborted",
            "quarantines",
            "ddl % (node)",
            "fwd+coloc %",
            "fault-miss",
        ]);
        // One workload and one replicate, so the expansion is policy-major
        // with the platform (= rate) axis cycling fastest.
        for (i, spec) in self.campaign().expand().iter().enumerate() {
            let rate = format!("{:.4}", self.rates[i % self.rates.len()]);
            match results.get(&spec.label()) {
                Some(rec) => {
                    let s = &rec.result.stats;
                    let f = &s.faults;
                    t.row(vec![
                        spec.policy.name().to_string(),
                        rate,
                        f.injected().to_string(),
                        f.recovered.to_string(),
                        f.tasks_aborted.to_string(),
                        f.unit_quarantines.to_string(),
                        format!("{:.1}", s.node_deadline_percent()),
                        format!("{:.1}", s.forward_percent()),
                        f.fault_attributed_misses.to_string(),
                    ]);
                }
                None => {
                    let mut row = vec![spec.policy.name().to_string(), rate];
                    row.extend((0..7).map(|_| "FAILED".to_string()));
                    t.row(row);
                }
            }
        }
        format!(
            "[resilience: {} | seed {:#x} | mttf {} us]\n{}",
            self.workload.label(),
            self.seed,
            self.mttf_ps / 1_000_000,
            t.render()
        )
    }
}

/// Parses a resilience binary's CLI into a sweep plus execution options.
///
/// Recognised flags: `--fault-seed <N>` (decimal or `0x` hex),
/// `--fault-rate <R[,R…]>`, `--mttf-us <N>`, `--jobs <N>`,
/// `--no-cache` (disable the persistent campaign cache, on by default).
///
/// # Errors
///
/// Returns a printable message (never panics) on unknown flags, missing
/// or malformed values, and axis values a [`ResilienceSpec`] rejects.
pub fn parse_cli(
    args: impl IntoIterator<Item = String>,
) -> Result<(ResilienceSpec, ExecOptions), String> {
    let mut spec = ResilienceSpec::default();
    let mut opts =
        ExecOptions { cache: crate::cache::CacheConfig::standard(), ..Default::default() };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fault-seed" => {
                let v = it.next().ok_or("--fault-seed needs a value")?;
                spec.seed = parse_seed(&v)?;
            }
            "--fault-rate" => {
                let v = it.next().ok_or("--fault-rate needs a value")?;
                spec.rates = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<f64>()
                            .map_err(|_| format!("bad --fault-rate '{}'", s.trim()))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--mttf-us" => {
                let v = it.next().ok_or("--mttf-us needs a value")?;
                let us: u64 = v.parse().map_err(|_| format!("bad --mttf-us '{v}'"))?;
                spec.mttf_ps = us.saturating_mul(1_000_000);
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                opts.jobs = v.parse().map_err(|_| format!("bad --jobs '{v}'"))?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--no-cache" => opts.cache = crate::cache::CacheConfig::disabled(),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    spec.validate()?;
    Ok((spec, opts))
}

/// Parses a seed as decimal or `0x`-prefixed hex.
fn parse_seed(v: &str) -> Result<u64, String> {
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.map_err(|_| format!("bad seed '{v}'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{execute, ExecOptions};

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn cli_round_trips_and_rejects() {
        let (spec, opts) = parse_cli(args(&[
            "--fault-seed",
            "0xBEEF",
            "--fault-rate",
            "0,0.01",
            "--mttf-us",
            "500",
            "--jobs",
            "3",
            "--no-cache",
        ]))
        .unwrap();
        assert_eq!(spec.seed, 0xBEEF);
        assert_eq!(spec.rates, vec![0.0, 0.01]);
        assert_eq!(spec.mttf_ps, 500_000_000);
        assert_eq!(opts.jobs, 3);
        assert!(!opts.cache.enabled, "--no-cache must disable the store");
        let (_, opts) = parse_cli(args(&[])).unwrap();
        assert!(opts.cache.enabled, "the persistent cache defaults on");

        assert!(parse_cli(args(&["--fault-rate", "1.5"])).is_err());
        assert!(parse_cli(args(&["--fault-rate", "nan"])).is_err());
        assert!(parse_cli(args(&["--fault-seed"])).is_err());
        assert!(parse_cli(args(&["--frobnicate"])).is_err());
        assert!(parse_cli(args(&["--jobs", "0"])).is_err());
    }

    #[test]
    fn labels_encode_every_fault_knob() {
        let spec = ResilienceSpec { mttf_ps: 2_000_000_000, ..Default::default() };
        let labels: Vec<String> =
            spec.campaign().platforms.iter().map(|p| p.label().to_string()).collect();
        assert_eq!(labels[0], "mobile+f0.0000sfa57+mttf2000us");
        assert_eq!(labels[2], "mobile+f0.0050sfa57+mttf2000us");
        // Distinct knobs → distinct identities.
        let reseeded = ResilienceSpec { seed: 1, ..spec.clone() };
        assert_ne!(spec.campaign().hash(), reseeded.campaign().hash());
    }

    #[test]
    fn faulted_cells_inject_and_baseline_stays_clean() {
        let mixes = Contention::Low.mixes();
        let spec = ResilienceSpec {
            rates: vec![0.0, 0.05],
            policies: vec![PolicyKind::Relief],
            workload: WorkloadSpec::mix(Contention::Low, &mixes[0]),
            ..Default::default()
        };
        spec.validate().unwrap();
        let results = execute(spec.campaign().expand(), &ExecOptions::default());
        assert!(results.failures().is_empty(), "{:?}", results.failures());
        assert!(results.mismatched().is_empty(), "{:?}", results.mismatched());
        let runs = spec.campaign().expand();
        let baseline = &results.get(&runs[0].label()).unwrap().result.stats;
        let faulted = &results.get(&runs[1].label()).unwrap().result.stats;
        assert_eq!(baseline.faults.injected(), 0);
        assert!(faulted.faults.injected() > 0, "rate 0.05 injected nothing");
        let report = spec.render(&results);
        assert!(report.contains("RELIEF"), "{report}");
        assert!(report.contains("0.0500"), "{report}");
    }
}
