//! Service campaign: latency-vs-load and goodput-vs-overload, per
//! policy, under the open-loop streaming frontend of `relief-service`.
//!
//! Sweeps the per-tenant arrival rate across the campaign engine: one
//! platform axis value per rate, every requested policy, one shared
//! three-tenant workload (Canny = `Latency`, GRU = `Standard`, LSTM =
//! `BestEffort`). Every stream knob is folded into the platform label,
//! so each cell has its own canonical identity, and the sweep inherits
//! the engine's determinism contract — the rendered report is
//! byte-identical at any `--jobs`.
//!
//! Unlike closed-loop campaigns, service cells carry no simulated-time
//! cap: arrivals stop at the configured stream duration and the run
//! drains, so the event/stats reconciliation stays active for every
//! cell.

use crate::campaign::{CampaignResults, CampaignSpec, ExecOptions, PlatformSpec, WorkloadSpec};
use relief_accel::{AppSpec, SocConfig};
use relief_core::PolicyKind;
use relief_metrics::report::Table;
use relief_metrics::{Histogram, RunStats, SERVICE_CLASSES};
use relief_service::{
    AdmissionConfig, ArrivalProcess, QosClass, SelfHealConfig, StreamConfig, TenantCfg,
};
use relief_workloads::App;
use std::fmt::Write as _;

/// The fixed tenant trio every service cell streams: one app per QoS
/// class, covering a vision pipeline, a small RNN, and a large RNN.
pub(crate) const TENANT_APPS: [(App, QosClass); 3] = [
    (App::Canny, QosClass::Latency),
    (App::Gru, QosClass::Standard),
    (App::Lstm, QosClass::BestEffort),
];

/// Knobs of one service sweep.
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// Arrival-stream seed shared by every cell.
    pub seed: u64,
    /// Per-tenant arrival rates (requests/s) to sweep; each value is one
    /// load point applied to all three tenants.
    pub rates: Vec<f64>,
    /// Arrival process shared by every cell.
    pub process: ArrivalProcess,
    /// Stream duration, picoseconds (arrivals stop here; the run drains).
    pub duration_ps: u64,
    /// Warm-up truncation: samples before this simulated time are
    /// excluded from latency/sojourn histograms and deadline attainment.
    pub warmup_ps: u64,
    /// Global in-flight admission cap (`0` disables admission control —
    /// every arrival is admitted and nothing is shed).
    pub max_in_flight: u32,
    /// Policies under test, in row order.
    pub policies: Vec<PolicyKind>,
}

impl Default for ServiceSpec {
    fn default() -> Self {
        ServiceSpec {
            seed: StreamConfig::default().seed,
            rates: vec![50.0, 150.0, 400.0],
            process: ArrivalProcess::Poisson,
            duration_ps: 50_000_000_000, // 50 ms of arrivals
            warmup_ps: 5_000_000_000,    // first 5 ms excluded
            max_in_flight: 12,
            policies: vec![
                PolicyKind::Fcfs,
                PolicyKind::Lax,
                PolicyKind::HetSched,
                PolicyKind::Relief,
            ],
        }
    }
}

impl ServiceSpec {
    /// Validates the sweep axes.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending knob when an axis is empty
    /// or a rate is not a positive finite number.
    pub fn validate(&self) -> Result<(), String> {
        if self.rates.is_empty() {
            return Err("service sweep needs at least one arrival rate".into());
        }
        if self.policies.is_empty() {
            return Err("service sweep needs at least one policy".into());
        }
        for &r in &self.rates {
            if !r.is_finite() || r <= 0.0 {
                return Err(format!("arrival rate {r} must be positive and finite"));
            }
        }
        // Delegate the remaining knob checks (duration, warm-up, process
        // shape) to the service crate so the validators cannot drift.
        self.stream_config(self.rates[0])
            .validate()
            .map_err(|e| e.to_string())
    }

    /// The stream configuration of one swept cell. Also reused by the
    /// `xtask bench --service` wall-clock microbench (`crate::walltime`).
    pub(crate) fn stream_config(&self, rate: f64) -> StreamConfig {
        StreamConfig {
            seed: self.seed,
            duration_ps: self.duration_ps,
            warmup_ps: self.warmup_ps,
            process: self.process.clone(),
            tenants: TENANT_APPS.iter().map(|&(_, q)| TenantCfg::new(q, rate)).collect(),
            admission: if self.max_in_flight > 0 {
                AdmissionConfig {
                    max_in_flight: self.max_in_flight,
                    ..AdmissionConfig::default()
                }
            } else {
                AdmissionConfig::default()
            },
            self_heal: SelfHealConfig::default(),
        }
    }

    /// The platform label of one swept cell. Encodes every stream knob:
    /// the label is the run's canonical identity, and two cells with
    /// different arrival plans must never collide.
    fn platform_label(&self, rate: f64) -> String {
        let mut label = format!(
            "mobile+svc-{}r{rate:.0}s{:x}d{}us",
            self.process.name(),
            self.seed,
            self.duration_ps / 1_000_000,
        );
        if self.max_in_flight > 0 {
            let _ = write!(label, "+adm{}", self.max_in_flight);
        }
        label
    }

    /// The shared three-tenant workload (one app spec per tenant, in
    /// tenant order; closed-loop releases are replaced by the stream).
    fn workload(&self) -> WorkloadSpec {
        WorkloadSpec::custom("service/CGL", None, tenant_workload)
    }

    /// Expands the sweep into a campaign: policy-major, then one
    /// platform per arrival rate in the order given.
    pub fn campaign(&self) -> CampaignSpec {
        let platforms = self
            .rates
            .iter()
            .map(|&rate| {
                let stream = self.stream_config(rate);
                PlatformSpec::custom(self.platform_label(rate), move |p| {
                    SocConfig::mobile(p).with_stream(stream.clone())
                })
            })
            .collect();
        CampaignSpec {
            name: "service".into(),
            policies: self.policies.clone(),
            workloads: vec![self.workload()],
            platforms,
            replicates: 1,
        }
    }

    /// Renders executed results as two tables: latency-vs-load (sojourn
    /// quantiles of the `Latency` tenant plus per-class p99 node
    /// latency) and goodput-vs-overload (per-class goodput, the shed
    /// split, and the attainment spread between `Latency` and
    /// `BestEffort`). One row per (policy, rate) in expansion order;
    /// failed runs render as `FAILED` rows instead of disappearing.
    pub fn render(&self, results: &CampaignResults) -> String {
        let mut lat = Table::with_columns(&[
            "policy",
            "rate/s",
            "arrivals",
            "shed %",
            "L p50 us",
            "L p99 us",
            "L p999 us",
            "np99 lat",
            "np99 std",
            "np99 be",
        ]);
        let mut good = Table::with_columns(&[
            "policy",
            "rate/s",
            "good lat/s",
            "good std/s",
            "good be/s",
            "shed bkt",
            "shed cap",
            "att lat %",
            "att be %",
        ]);
        // One workload and one replicate, so the expansion is policy-major
        // with the platform (= rate) axis cycling fastest.
        for (i, spec) in self.campaign().expand().iter().enumerate() {
            let policy = spec.policy.name().to_string();
            let rate = format!("{:.0}", self.rates[i % self.rates.len()]);
            match results.get(&spec.label()) {
                Some(rec) => {
                    let s = &rec.result.stats;
                    lat.row(latency_row(policy.clone(), rate.clone(), s));
                    good.row(goodput_row(policy, rate, s));
                }
                None => {
                    let mut l = vec![policy.clone(), rate.clone()];
                    l.extend((0..8).map(|_| "FAILED".to_string()));
                    lat.row(l);
                    let mut g = vec![policy, rate];
                    g.extend((0..7).map(|_| "FAILED".to_string()));
                    good.row(g);
                }
            }
        }
        format!(
            "[service: CGL | {} arrivals | seed {:#x} | {} us stream, {} us warm-up \
             | in-flight cap {}]\nlatency vs load (sojourn = Latency tenant):\n{}\n\
             goodput vs overload:\n{}",
            self.process.name(),
            self.seed,
            self.duration_ps / 1_000_000,
            self.warmup_ps / 1_000_000,
            self.max_in_flight,
            lat.render(),
            good.render()
        )
    }
}

/// The tenant trio as app specs, one per tenant in tenant order.
pub(crate) fn tenant_workload() -> Vec<AppSpec> {
    TENANT_APPS.iter().map(|&(app, _)| AppSpec::once(app.symbol(), app.dag())).collect()
}

/// A histogram quantile in microseconds, `-` when empty.
fn q_us(h: &Histogram, q: f64) -> String {
    match h.quantile_ps(q) {
        Some(ps) => format!("{:.1}", ps as f64 / 1e6),
        None => "-".to_string(),
    }
}

/// One latency-vs-load row.
fn latency_row(policy: String, rate: String, s: &RunStats) -> Vec<String> {
    let svc = &s.service;
    let lat = &svc.classes[0];
    let mut row = vec![
        policy,
        rate,
        svc.arrivals().to_string(),
        format!("{:.1}", svc.shed_rate() * 100.0),
        q_us(&lat.sojourn, 0.50),
        q_us(&lat.sojourn, 0.99),
        q_us(&lat.sojourn, 0.999),
    ];
    for c in 0..SERVICE_CLASSES.len() {
        row.push(q_us(&svc.classes[c].node_latency, 0.99));
    }
    row
}

/// One goodput-vs-overload row.
fn goodput_row(policy: String, rate: String, s: &RunStats) -> Vec<String> {
    let svc = &s.service;
    vec![
        policy,
        rate,
        format!("{:.0}", svc.goodput_per_s(0)),
        format!("{:.0}", svc.goodput_per_s(1)),
        format!("{:.0}", svc.goodput_per_s(2)),
        svc.shed_bucket().to_string(),
        svc.shed_capacity().to_string(),
        format!("{:.1}", svc.classes[0].attainment() * 100.0),
        format!("{:.1}", svc.classes[2].attainment() * 100.0),
    ]
}

/// Parses a service binary's CLI into a sweep plus execution options.
///
/// Recognised flags: `--stream-seed <N>` (decimal or `0x` hex),
/// `--rate <R[,R…]>` (per-tenant requests/s), `--arrival
/// <det|poisson|mmpp|diurnal>`, `--duration-us <N>`, `--warmup-us <N>`,
/// `--max-in-flight <N>` (`0` = admission off), `--jobs <N>`,
/// `--no-cache` (disable the persistent campaign cache, on by default).
///
/// # Errors
///
/// Returns a printable message (never panics) on unknown flags, missing
/// or malformed values, and axis values a [`ServiceSpec`] rejects.
pub fn parse_cli(
    args: impl IntoIterator<Item = String>,
) -> Result<(ServiceSpec, ExecOptions), String> {
    let mut spec = ServiceSpec::default();
    let mut opts =
        ExecOptions { cache: crate::cache::CacheConfig::standard(), ..Default::default() };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--stream-seed" => {
                let v = it.next().ok_or("--stream-seed needs a value")?;
                spec.seed = parse_seed(&v)?;
            }
            "--rate" => {
                let v = it.next().ok_or("--rate needs a value")?;
                spec.rates = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<f64>()
                            .map_err(|_| format!("bad --rate '{}'", s.trim()))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--arrival" => {
                let v = it.next().ok_or("--arrival needs a value")?;
                spec.process = ArrivalProcess::parse(&v)?;
            }
            "--duration-us" => {
                let v = it.next().ok_or("--duration-us needs a value")?;
                let us: u64 =
                    v.parse().map_err(|_| format!("bad --duration-us '{v}'"))?;
                spec.duration_ps = us.saturating_mul(1_000_000);
            }
            "--warmup-us" => {
                let v = it.next().ok_or("--warmup-us needs a value")?;
                let us: u64 = v.parse().map_err(|_| format!("bad --warmup-us '{v}'"))?;
                spec.warmup_ps = us.saturating_mul(1_000_000);
            }
            "--max-in-flight" => {
                let v = it.next().ok_or("--max-in-flight needs a value")?;
                spec.max_in_flight =
                    v.parse().map_err(|_| format!("bad --max-in-flight '{v}'"))?;
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                opts.jobs = v.parse().map_err(|_| format!("bad --jobs '{v}'"))?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--no-cache" => opts.cache = crate::cache::CacheConfig::disabled(),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    spec.validate()?;
    Ok((spec, opts))
}

/// Parses a seed as decimal or `0x`-prefixed hex.
fn parse_seed(v: &str) -> Result<u64, String> {
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.map_err(|_| format!("bad seed '{v}'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{execute, ExecOptions};

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn cli_round_trips_and_rejects() {
        let (spec, opts) = parse_cli(args(&[
            "--stream-seed",
            "0xBEEF",
            "--rate",
            "100,4000",
            "--arrival",
            "mmpp",
            "--duration-us",
            "5000",
            "--warmup-us",
            "500",
            "--max-in-flight",
            "8",
            "--jobs",
            "3",
            "--no-cache",
        ]))
        .unwrap();
        assert_eq!(spec.seed, 0xBEEF);
        assert_eq!(spec.rates, vec![100.0, 4_000.0]);
        assert_eq!(spec.process.name(), "mmpp");
        assert_eq!(spec.duration_ps, 5_000_000_000);
        assert_eq!(spec.warmup_ps, 500_000_000);
        assert_eq!(spec.max_in_flight, 8);
        assert_eq!(opts.jobs, 3);
        assert!(!opts.cache.enabled, "--no-cache must disable the store");
        let (_, opts) = parse_cli(args(&[])).unwrap();
        assert!(opts.cache.enabled, "the persistent cache defaults on");

        assert!(parse_cli(args(&["--rate", "0"])).is_err());
        assert!(parse_cli(args(&["--rate", "nan"])).is_err());
        assert!(parse_cli(args(&["--arrival", "fractal"])).is_err());
        assert!(parse_cli(args(&["--stream-seed"])).is_err());
        assert!(parse_cli(args(&["--frobnicate"])).is_err());
        assert!(parse_cli(args(&["--jobs", "0"])).is_err());
    }

    #[test]
    fn labels_encode_every_stream_knob() {
        let spec = ServiceSpec::default();
        let labels: Vec<String> =
            spec.campaign().platforms.iter().map(|p| p.label().to_string()).collect();
        assert_eq!(labels[0], "mobile+svc-poissonr50sfeedd50000us+adm12");
        assert_eq!(labels[2], "mobile+svc-poissonr400sfeedd50000us+adm12");
        // Admission off drops the suffix; distinct knobs → distinct ids.
        let open = ServiceSpec { max_in_flight: 0, ..spec.clone() };
        assert!(open.campaign().platforms[0].label().ends_with("us"));
        let reseeded = ServiceSpec { seed: 1, ..spec.clone() };
        assert_ne!(spec.campaign().hash(), reseeded.campaign().hash());
        let det = ServiceSpec { process: ArrivalProcess::Deterministic, ..spec };
        assert_ne!(det.campaign().platforms[0].label(), labels[0]);
    }

    #[test]
    fn overload_sheds_and_latency_class_keeps_priority() {
        let spec = ServiceSpec {
            rates: vec![50.0, 400.0],
            duration_ps: 30_000_000_000,
            warmup_ps: 3_000_000_000,
            policies: vec![PolicyKind::Relief],
            ..Default::default()
        };
        spec.validate().unwrap();
        let results = execute(spec.campaign().expand(), &ExecOptions::default());
        assert!(results.failures().is_empty(), "{:?}", results.failures());
        assert!(results.mismatched().is_empty(), "{:?}", results.mismatched());
        let runs = spec.campaign().expand();
        let light = &results.get(&runs[0].label()).unwrap().result.stats.service;
        let heavy = &results.get(&runs[1].label()).unwrap().result.stats.service;
        assert!(light.arrivals() > 0, "light cell saw no arrivals");
        assert!(heavy.arrivals() > light.arrivals());
        assert!(heavy.shed_capacity() > 0, "overload cell shed nothing");
        let lat = heavy.classes[0].attainment();
        let be = heavy.classes[2].attainment();
        assert!(
            lat > be,
            "Latency attainment {lat:.3} not above BestEffort {be:.3}"
        );
        let report = spec.render(&results);
        assert!(report.contains("RELIEF"), "{report}");
        assert!(report.contains("goodput vs overload"), "{report}");
    }
}
