//! Content-addressed persistent campaign cache.
//!
//! Every campaign cell is a pure function of its [`RunSpec`]: the policy,
//! workload label, platform label, and replicate index determine the seed
//! and therefore every output byte (see `crate::campaign`'s determinism
//! contract). That makes results cacheable by *content address*: the
//! FNV-1a hash of the spec's canonical label salted with a code-version
//! string names a file under the cache directory, and re-running a
//! campaign only simulates cells whose entry is absent, stale, or
//! unreadable.
//!
//! Design rules:
//!
//! * **Byte-identical output.** A cache hit deserializes the exact
//!   `SimResult` and `EventCounters` the original run produced (floats
//!   round-trip through their IEEE bit patterns), and reconciliation
//!   mismatches are recomputed from those — so campaign stdout is
//!   byte-identical with a cold or warm cache at any `--jobs` level.
//! * **Corrupt-entry tolerance.** Any parse failure — truncation, a
//!   schema bump, a salt or label mismatch, stray bytes — degrades to a
//!   cache miss and the cell re-simulates; the fresh result then
//!   overwrites the bad entry via an atomic temp-file rename.
//! * **No third-party formats.** The workspace is hermetic (no serde at
//!   run time), so entries are a whitespace-separated token stream:
//!   `u64` in decimal, `f64` as 16-hex-digit bit patterns, strings
//!   percent-encoded behind an `s` prefix, collections length-prefixed.
//! * **Trace captures bypass the cache.** Runs captured via
//!   `ExecOptions::trace_labels` carry a full text trace that is not
//!   persisted; they are neither served from nor stored to the cache.
//!
//! Besides per-cell records the cache also stores *rendered artifacts*
//! (the oracle table, the Fig. 12 host-latency table) so a warm
//! `all_experiments` rerun recomputes nothing at all.

use crate::campaign::{fnv1a, RunRecord, RunSpec};
use relief_accel::{PredictionStats, SimResult, Span, Trace};
use relief_core::TaskKey;
use relief_metrics::{
    reconcile, AppStats, ClassServiceStats, FaultStats, Histogram, RunStats, ServiceStats,
    TrafficStats,
};
use relief_sim::{Dur, Time};
use relief_trace::EventCounters;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// On-disk schema identifier; the first token of every entry. Bump the
/// version suffix whenever the serialized layout changes shape — old
/// entries then parse as misses instead of garbage.
pub const SCHEMA: &str = "relief-campaign-cache/v2";

/// Code-version salt folded into every content address. Bump whenever
/// simulator *semantics* change (anything that can alter a `SimResult`
/// byte), so every stale entry misses at once. The `xtask check`
/// cache-hygiene step asserts the on-disk cache contains no entries
/// written under another salt.
pub const CODE_SALT: &str = "relief-sim/2026-08-09.chaos-hardened-serving";

/// Default cache location, relative to the working directory.
pub const DEFAULT_DIR: &str = "target/campaign-cache";

/// Where (and whether) campaign results persist between processes.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Master switch; when false, lookups miss and stores are dropped.
    pub enabled: bool,
    /// Directory holding the entries (created on first store).
    pub dir: PathBuf,
    /// Code-version salt mixed into every key and stored in every entry.
    pub salt: String,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::disabled()
    }
}

impl CacheConfig {
    /// A disabled cache: every lookup misses, every store is a no-op.
    /// This is the `ExecOptions::default()` setting, so tests and library
    /// callers never touch the filesystem unless they opt in.
    pub fn disabled() -> Self {
        CacheConfig { enabled: false, dir: PathBuf::new(), salt: String::new() }
    }

    /// The standard persistent cache the campaign binaries use:
    /// [`DEFAULT_DIR`] (overridable via the `RELIEF_CACHE_DIR`
    /// environment variable) under the current [`CODE_SALT`].
    pub fn standard() -> Self {
        let dir = std::env::var_os("RELIEF_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(DEFAULT_DIR));
        CacheConfig::at(dir)
    }

    /// An enabled cache rooted at `dir` under the current [`CODE_SALT`]
    /// (tests point this at a temp directory).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        CacheConfig { enabled: true, dir: dir.into(), salt: CODE_SALT.to_string() }
    }

    /// The entry file for a cell label: 16 hex digits of
    /// `fnv1a(salt ⧺ 0x1f ⧺ label)`.
    fn entry_path(&self, label: &str, ext: &str) -> PathBuf {
        let mut key = self.salt.clone().into_bytes();
        key.push(0x1f);
        key.extend_from_slice(label.as_bytes());
        self.dir.join(format!("{:016x}.{ext}", fnv1a(&key)))
    }

    /// Fetches a cached record for `spec`, or `None` on any miss:
    /// disabled cache, absent file, schema/salt/label mismatch, or a
    /// corrupt body. Reconciliation mismatches are recomputed from the
    /// deserialized counters and stats exactly as a live run would.
    pub fn lookup(&self, spec: &RunSpec) -> Option<RunRecord> {
        if !self.enabled {
            return None;
        }
        let label = spec.label();
        let text = std::fs::read_to_string(self.entry_path(&label, "run")).ok()?;
        let mut r = Reader::new(&text);
        r.expect_header(&self.salt, &label)?;
        let result = read_sim_result(&mut r)?;
        let counters = read_counters(&mut r)?;
        r.finish()?;
        // Truncated runs legitimately disagree byte-wise (transfers in
        // flight at the cap) — same rule as `execute_instrumented`.
        let truncated = spec.config().time_limit.is_some();
        let mismatches =
            if truncated { Vec::new() } else { reconcile(&counters, &result.stats) };
        Some(RunRecord { result, counters, mismatches, trace_text: None })
    }

    /// Persists one run's record. Disabled caches, trace-captured records
    /// (their text trace is not persisted), and I/O failures all degrade
    /// to "not stored" — the cache is an accelerator, never a correctness
    /// dependency.
    pub fn store(&self, spec: &RunSpec, rec: &RunRecord) {
        if !self.enabled || rec.trace_text.is_some() {
            return;
        }
        let label = spec.label();
        let mut w = Writer::new(&self.salt, &label);
        write_sim_result(&mut w, &rec.result);
        write_counters(&mut w, &rec.counters);
        self.commit(&self.entry_path(&label, "run"), &w.finish());
    }

    /// Fetches a cached rendered artifact (an already-formatted report
    /// string) stored under `name`.
    pub fn lookup_artifact(&self, name: &str) -> Option<String> {
        if !self.enabled {
            return None;
        }
        let text = std::fs::read_to_string(self.entry_path(name, "art")).ok()?;
        let mut r = Reader::new(&text);
        r.expect_header(&self.salt, name)?;
        let body = r.string()?;
        r.finish()?;
        Some(body)
    }

    /// Persists a rendered artifact string under `name`.
    pub fn store_artifact(&self, name: &str, body: &str) {
        if !self.enabled {
            return;
        }
        let mut w = Writer::new(&self.salt, name);
        w.string(body);
        self.commit(&self.entry_path(name, "art"), &w.finish());
    }

    /// Atomically installs `content` at `path` (temp file + rename), so a
    /// concurrent reader sees either the old entry or the new one, never
    /// a torn write. All I/O errors are swallowed: a failed store is a
    /// future cache miss, not a campaign failure.
    fn commit(&self, path: &Path, content: &str) {
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        if std::fs::write(&tmp, content).is_ok() && std::fs::rename(&tmp, path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Scans the cache directory for entries whose header does not carry
    /// the current schema and salt, returning the offending file names.
    /// Unreadable files count as stale (they would never hit). Used by
    /// the `xtask check` cache-hygiene step; an absent directory is
    /// vacuously clean.
    pub fn stale_entries(&self) -> Vec<String> {
        let Ok(dir) = std::fs::read_dir(&self.dir) else { return Vec::new() };
        let mut stale = Vec::new();
        for entry in dir.flatten() {
            let path = entry.path();
            let ext = path.extension().and_then(|e| e.to_str());
            if !matches!(ext, Some("run" | "art")) {
                continue;
            }
            let fresh = std::fs::read_to_string(&path).ok().is_some_and(|text| {
                let mut r = Reader::new(&text);
                r.tok() == Some(SCHEMA) && r.string().as_deref() == Some(&self.salt)
            });
            if !fresh {
                stale.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        stale.sort();
        stale
    }
}

// ---------------------------------------------------------------------
// Token-stream writer
// ---------------------------------------------------------------------

/// Serializer over the whitespace token stream. Every `write` pushes one
/// token and a separator; `finish` appends the end marker the reader
/// uses to detect truncation.
struct Writer {
    out: String,
}

impl Writer {
    fn new(salt: &str, label: &str) -> Self {
        let mut w = Writer { out: String::with_capacity(4096) };
        w.out.push_str(SCHEMA);
        w.out.push(' ');
        w.string(salt);
        w.string(label);
        w.out.push('\n');
        w
    }

    fn u64(&mut self, v: u64) {
        let _ = write!(self.out, "{v} ");
    }

    fn f64(&mut self, v: f64) {
        let _ = write!(self.out, "{:016x} ", v.to_bits());
    }

    fn boolean(&mut self, v: bool) {
        self.out.push(if v { '1' } else { '0' });
        self.out.push(' ');
    }

    fn time(&mut self, t: Time) {
        self.u64(t.as_ps());
    }

    fn dur(&mut self, d: Dur) {
        self.u64(d.as_ps());
    }

    /// Strings are one token: an `s` prefix (so the empty string is a
    /// valid token) followed by the bytes with everything outside the
    /// graphic-ASCII range — and `%` itself — percent-encoded.
    fn string(&mut self, s: &str) {
        self.out.push('s');
        for &b in s.as_bytes() {
            if b.is_ascii_graphic() && b != b'%' {
                self.out.push(b as char);
            } else {
                let _ = write!(self.out, "%{b:02x}");
            }
        }
        self.out.push(' ');
    }

    fn vec_f64(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f64(x);
        }
    }

    fn hist(&mut self, h: &Histogram) {
        let (width, counts, overflow, total, sum, max) = h.to_parts();
        self.u64(width);
        self.u64(counts.len() as u64);
        for &c in counts {
            self.u64(c);
        }
        self.u64(overflow);
        self.u64(total);
        self.u64(sum);
        self.u64(max);
    }

    fn finish(mut self) -> String {
        self.out.push_str(".\n");
        self.out
    }
}

// ---------------------------------------------------------------------
// Token-stream reader
// ---------------------------------------------------------------------

/// Deserializer over the token stream. Every accessor returns `None` on
/// malformed or missing input; callers propagate with `?` so any corrupt
/// entry collapses to a cache miss.
struct Reader<'a> {
    toks: std::str::SplitAsciiWhitespace<'a>,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Reader { toks: text.split_ascii_whitespace() }
    }

    fn tok(&mut self) -> Option<&'a str> {
        self.toks.next()
    }

    /// Verifies the schema / salt / label header tokens.
    fn expect_header(&mut self, salt: &str, label: &str) -> Option<()> {
        (self.tok()? == SCHEMA).then_some(())?;
        (self.string()? == salt).then_some(())?;
        (self.string()? == label).then_some(())
    }

    fn u64(&mut self) -> Option<u64> {
        self.tok()?.parse().ok()
    }

    fn u32(&mut self) -> Option<u32> {
        self.tok()?.parse().ok()
    }

    fn boolean(&mut self) -> Option<bool> {
        match self.tok()? {
            "0" => Some(false),
            "1" => Some(true),
            _ => None,
        }
    }

    fn f64(&mut self) -> Option<f64> {
        let t = self.tok()?;
        (t.len() == 16).then_some(())?;
        Some(f64::from_bits(u64::from_str_radix(t, 16).ok()?))
    }

    fn time(&mut self) -> Option<Time> {
        Some(Time::from_ps(self.u64()?))
    }

    fn dur(&mut self) -> Option<Dur> {
        Some(Dur::from_ps(self.u64()?))
    }

    /// Guards length-prefixed loops against absurd counts from corrupt
    /// entries (a flipped high bit must not allocate petabytes).
    fn len(&mut self) -> Option<usize> {
        let n = self.u64()?;
        (n <= 1 << 32).then_some(n as usize)
    }

    fn string(&mut self) -> Option<String> {
        let t = self.tok()?.strip_prefix('s')?;
        let mut bytes = Vec::with_capacity(t.len());
        let mut it = t.bytes();
        while let Some(b) = it.next() {
            if b == b'%' {
                let hi = it.next()?;
                let lo = it.next()?;
                let hex = [hi, lo];
                let hex = std::str::from_utf8(&hex).ok()?;
                bytes.push(u8::from_str_radix(hex, 16).ok()?);
            } else {
                bytes.push(b);
            }
        }
        String::from_utf8(bytes).ok()
    }

    fn vec_f64(&mut self) -> Option<Vec<f64>> {
        let n = self.len()?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn hist(&mut self) -> Option<Histogram> {
        let width = self.u64()?;
        let n = self.len()?;
        let counts = (0..n).map(|_| self.u64()).collect::<Option<Vec<_>>>()?;
        let overflow = self.u64()?;
        let total = self.u64()?;
        let sum = self.u64()?;
        let max = self.u64()?;
        Some(Histogram::from_parts(width, counts, overflow, total, sum, max))
    }

    /// Consumes the end marker and requires exhaustion — a valid prefix
    /// with trailing garbage is still a corrupt entry.
    fn finish(mut self) -> Option<()> {
        (self.tok()? == ".").then_some(())?;
        self.tok().is_none().then_some(())
    }
}

// ---------------------------------------------------------------------
// Structure layer: field-by-field, in declaration order
// ---------------------------------------------------------------------

fn write_sim_result(w: &mut Writer, r: &SimResult) {
    write_run_stats(w, &r.stats);
    write_dur_map(w, &r.per_app_mem_time);
    write_dur_map(w, &r.per_app_compute_time);
    w.vec_f64(&r.prediction.compute_rel_errors);
    w.vec_f64(&r.prediction.dm_rel_errors);
    w.vec_f64(&r.prediction.bw_rel_errors);
    w.u64(r.trace.spans.len() as u64);
    for s in &r.trace.spans {
        w.u64(s.inst as u64);
        w.time(s.start);
        w.time(s.end);
        w.u64(u64::from(s.key.instance));
        w.u64(u64::from(s.key.node));
        w.string(&s.label);
        w.u64(u64::from(s.forwarded_inputs));
        w.u64(u64::from(s.colocated_inputs));
    }
    w.u64(r.events_dispatched);
}

fn read_sim_result(r: &mut Reader) -> Option<SimResult> {
    let stats = read_run_stats(r)?;
    let per_app_mem_time = read_dur_map(r)?;
    let per_app_compute_time = read_dur_map(r)?;
    let prediction = PredictionStats {
        compute_rel_errors: r.vec_f64()?,
        dm_rel_errors: r.vec_f64()?,
        bw_rel_errors: r.vec_f64()?,
    };
    let n = r.len()?;
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        spans.push(Span {
            inst: r.u64()? as usize,
            start: r.time()?,
            end: r.time()?,
            key: TaskKey::new(r.u32()?, r.u32()?),
            label: r.string()?,
            forwarded_inputs: r.u32()?,
            colocated_inputs: r.u32()?,
        });
    }
    Some(SimResult {
        stats,
        per_app_mem_time,
        per_app_compute_time,
        prediction,
        trace: Trace { spans },
        events_dispatched: r.u64()?,
        live_high_water: 0,
    })
}

fn write_dur_map(w: &mut Writer, m: &BTreeMap<String, Dur>) {
    w.u64(m.len() as u64);
    for (k, &v) in m {
        w.string(k);
        w.dur(v);
    }
}

fn read_dur_map(r: &mut Reader) -> Option<BTreeMap<String, Dur>> {
    let n = r.len()?;
    let mut m = BTreeMap::new();
    for _ in 0..n {
        let k = r.string()?;
        m.insert(k, r.dur()?);
    }
    Some(m)
}

fn write_run_stats(w: &mut Writer, s: &RunStats) {
    w.string(&s.policy);
    w.dur(s.exec_time);
    for v in [
        s.traffic.dram_read_bytes,
        s.traffic.dram_write_bytes,
        s.traffic.spad_to_spad_bytes,
        s.traffic.colocated_bytes,
        s.traffic.spad_access_bytes,
        s.traffic.all_dram_bytes,
    ] {
        w.u64(v);
    }
    w.u64(s.apps.len() as u64);
    for (k, a) in &s.apps {
        w.string(k);
        w.string(&a.name);
        w.u64(a.dags_completed);
        w.u64(a.dag_deadlines_met);
        w.u64(a.nodes_completed);
        w.u64(a.node_deadlines_met);
        w.u64(a.dag_runtimes.len() as u64);
        for &d in &a.dag_runtimes {
            w.dur(d);
        }
        w.dur(a.deadline);
        w.u64(a.edges_consumed);
        w.u64(a.forwards);
        w.u64(a.colocations);
        w.boolean(a.starved);
    }
    w.dur(s.accel_busy);
    w.dur(s.interconnect_busy);
    w.dur(s.dram_busy);
    w.u64(s.scheduler_ops);
    w.dur(s.scheduler_time);
    w.u64(s.edges_total);
    for v in [
        s.faults.task_faults,
        s.faults.dma_faults,
        s.faults.task_retries,
        s.faults.tasks_aborted,
        s.faults.recovered,
        s.faults.unit_quarantines,
        s.faults.fault_attributed_misses,
        s.faults.ecc_faults,
        s.faults.forward_invalidations,
        s.faults.channel_outages,
    ] {
        w.u64(v);
    }
    w.u64(s.service.warmup_ps);
    w.u64(s.service.duration_ps);
    for c in &s.service.classes {
        for v in [
            c.arrivals,
            c.admitted,
            c.shed_bucket,
            c.shed_capacity,
            c.shed_breaker,
            c.timed_out,
            c.hedged,
            c.completed,
            c.dag_deadlines_met,
            c.nodes_measured,
            c.node_deadlines_met,
        ] {
            w.u64(v);
        }
        w.hist(&c.sojourn);
        w.hist(&c.node_latency);
    }
    w.u64(s.service.timeout_cancelled_xfers);
    w.hist(&s.service.retry_hist);
    w.hist(&s.service.open_hist);
}

fn read_run_stats(r: &mut Reader) -> Option<RunStats> {
    let policy = r.string()?;
    let exec_time = r.dur()?;
    let traffic = TrafficStats {
        dram_read_bytes: r.u64()?,
        dram_write_bytes: r.u64()?,
        spad_to_spad_bytes: r.u64()?,
        colocated_bytes: r.u64()?,
        spad_access_bytes: r.u64()?,
        all_dram_bytes: r.u64()?,
    };
    let n = r.len()?;
    let mut apps = BTreeMap::new();
    for _ in 0..n {
        let k = r.string()?;
        let name = r.string()?;
        let dags_completed = r.u64()?;
        let dag_deadlines_met = r.u64()?;
        let nodes_completed = r.u64()?;
        let node_deadlines_met = r.u64()?;
        let runtimes = r.len()?;
        let dag_runtimes = (0..runtimes).map(|_| r.dur()).collect::<Option<Vec<_>>>()?;
        apps.insert(
            k,
            AppStats {
                name,
                dags_completed,
                dag_deadlines_met,
                nodes_completed,
                node_deadlines_met,
                dag_runtimes,
                deadline: r.dur()?,
                edges_consumed: r.u64()?,
                forwards: r.u64()?,
                colocations: r.u64()?,
                starved: r.boolean()?,
            },
        );
    }
    let accel_busy = r.dur()?;
    let interconnect_busy = r.dur()?;
    let dram_busy = r.dur()?;
    let scheduler_ops = r.u64()?;
    let scheduler_time = r.dur()?;
    let edges_total = r.u64()?;
    let faults = FaultStats {
        task_faults: r.u64()?,
        dma_faults: r.u64()?,
        task_retries: r.u64()?,
        tasks_aborted: r.u64()?,
        recovered: r.u64()?,
        unit_quarantines: r.u64()?,
        fault_attributed_misses: r.u64()?,
        ecc_faults: r.u64()?,
        forward_invalidations: r.u64()?,
        channel_outages: r.u64()?,
    };
    let mut service = ServiceStats {
        warmup_ps: r.u64()?,
        duration_ps: r.u64()?,
        ..ServiceStats::default()
    };
    for c in &mut service.classes {
        *c = ClassServiceStats {
            arrivals: r.u64()?,
            admitted: r.u64()?,
            shed_bucket: r.u64()?,
            shed_capacity: r.u64()?,
            shed_breaker: r.u64()?,
            timed_out: r.u64()?,
            hedged: r.u64()?,
            completed: r.u64()?,
            dag_deadlines_met: r.u64()?,
            nodes_measured: r.u64()?,
            node_deadlines_met: r.u64()?,
            sojourn: r.hist()?,
            node_latency: r.hist()?,
        };
    }
    service.timeout_cancelled_xfers = r.u64()?;
    service.retry_hist = r.hist()?;
    service.open_hist = r.hist()?;
    Some(RunStats {
        policy,
        exec_time,
        traffic,
        apps,
        accel_busy,
        interconnect_busy,
        dram_busy,
        scheduler_ops,
        scheduler_time,
        edges_total,
        faults,
        service,
    })
}

/// `EventCounters` fields, in declaration order — the serialized layout.
fn counter_fields(c: &EventCounters) -> [u64; 39] {
    [
        c.events_dispatched,
        c.tasks_completed,
        c.dags_arrived,
        c.dags_done,
        c.dags_met,
        c.dram_read_bytes,
        c.dram_write_bytes,
        c.spad_to_spad_bytes,
        c.forwards,
        c.colocations,
        c.dram_inputs,
        c.escalations_granted,
        c.escalations_denied,
        c.feasibility_pass,
        c.feasibility_fail,
        c.queue_bypasses,
        c.writebacks,
        c.writeback_bytes,
        c.task_faults,
        c.task_retries,
        c.tasks_aborted,
        c.dma_faults,
        c.unit_quarantines,
        c.unit_restores,
        c.fault_attributed_misses,
        c.stream_arrivals,
        c.requests_admitted,
        c.requests_shed_bucket,
        c.requests_shed_capacity,
        c.requests_completed,
        c.ecc_faults,
        c.dma_cancels,
        c.channel_outages,
        c.requests_shed_breaker,
        c.requests_timed_out,
        c.hedges_launched,
        c.breaker_opens,
        c.breaker_half_opens,
        c.breaker_closes,
    ]
}

fn write_counters(w: &mut Writer, c: &EventCounters) {
    for v in counter_fields(c) {
        w.u64(v);
    }
}

fn read_counters(r: &mut Reader) -> Option<EventCounters> {
    let mut c = EventCounters::default();
    let slots: [&mut u64; 39] = [
        &mut c.events_dispatched,
        &mut c.tasks_completed,
        &mut c.dags_arrived,
        &mut c.dags_done,
        &mut c.dags_met,
        &mut c.dram_read_bytes,
        &mut c.dram_write_bytes,
        &mut c.spad_to_spad_bytes,
        &mut c.forwards,
        &mut c.colocations,
        &mut c.dram_inputs,
        &mut c.escalations_granted,
        &mut c.escalations_denied,
        &mut c.feasibility_pass,
        &mut c.feasibility_fail,
        &mut c.queue_bypasses,
        &mut c.writebacks,
        &mut c.writeback_bytes,
        &mut c.task_faults,
        &mut c.task_retries,
        &mut c.tasks_aborted,
        &mut c.dma_faults,
        &mut c.unit_quarantines,
        &mut c.unit_restores,
        &mut c.fault_attributed_misses,
        &mut c.stream_arrivals,
        &mut c.requests_admitted,
        &mut c.requests_shed_bucket,
        &mut c.requests_shed_capacity,
        &mut c.requests_completed,
        &mut c.ecc_faults,
        &mut c.dma_cancels,
        &mut c.channel_outages,
        &mut c.requests_shed_breaker,
        &mut c.requests_timed_out,
        &mut c.hedges_launched,
        &mut c.breaker_opens,
        &mut c.breaker_half_opens,
        &mut c.breaker_closes,
    ];
    for slot in slots {
        *slot = r.u64()?;
    }
    Some(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_round_trip_through_percent_encoding() {
        for s in ["", "plain", "with space", "100%|r0/low µs\n\ttab", "s%25"] {
            let mut w = Writer::new("salt", "label");
            w.string(s);
            let out = w.finish();
            let mut r = Reader::new(&out);
            r.expect_header("salt", "label").unwrap();
            assert_eq!(r.string().as_deref(), Some(s), "round-trip of {s:?}");
            r.finish().unwrap();
        }
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for v in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE, -3.7e-300] {
            let mut w = Writer::new("x", "y");
            w.f64(v);
            let out = w.finish();
            let mut r = Reader::new(&out);
            r.expect_header("x", "y").unwrap();
            let back = r.f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "bits of {v}");
        }
    }

    #[test]
    fn truncated_or_doctored_streams_read_as_none() {
        let mut w = Writer::new("salt", "label");
        w.u64(7);
        let good = w.finish();
        // Whole-stream parse succeeds...
        let mut r = Reader::new(&good);
        r.expect_header("salt", "label").unwrap();
        assert_eq!(r.u64(), Some(7));
        r.finish().unwrap();
        // ...but truncation, trailing garbage, and bad tokens all fail.
        let truncated = &good[..good.len() - 2];
        let mut r = Reader::new(truncated);
        r.expect_header("salt", "label").unwrap();
        assert_eq!(r.u64(), Some(7));
        assert!(r.finish().is_none(), "missing end marker must fail");
        let trailing = format!("{good} junk");
        let mut r = Reader::new(&trailing);
        r.expect_header("salt", "label").unwrap();
        r.u64().unwrap();
        assert!(r.finish().is_none(), "trailing garbage must fail");
        let mut r = Reader::new("not-the-schema ssalt slabel 7 .");
        assert!(r.expect_header("salt", "label").is_none());
    }

    #[test]
    fn disabled_cache_never_touches_disk() {
        let cache = CacheConfig::disabled();
        cache.store_artifact("t", "body");
        assert_eq!(cache.lookup_artifact("t"), None);
        assert!(cache.stale_entries().is_empty());
    }
}
