//! Deterministic parallel campaign engine.
//!
//! The paper's evaluation replays hundreds of independent
//! (policy × workload × platform × seed) scenarios. Each scenario is a
//! pure function of its inputs — `SocSim` is single-threaded and all its
//! randomness comes from the seeded in-tree [`SplitMix64`] — so the
//! scenarios can run on any number of worker threads in any completion
//! order and still produce *bit-identical* campaign results.
//!
//! The determinism contract has three legs:
//!
//! 1. **Spec-hash seeding.** A run's RNG seed depends only on its
//!    [`RunSpec`]: replicate 0 keeps the platform's base seed (so the
//!    calibrated single-run numbers in EXPERIMENTS.md stay valid), and
//!    replicate *r* > 0 derives its seed by folding the run's canonical
//!    label through FNV-1a into a [`SplitMix64`] stream. No run's seed
//!    depends on which thread executes it or when.
//! 2. **Construct-inside-worker execution.** `SocSim` is intentionally
//!    `!Send` (it shares `Rc<RefCell<…>>` trace sinks with its policy), so
//!    each worker builds, runs, and drops the whole simulator locally;
//!    only the `Send` inputs ([`RunSpec`]) and outputs (`SimResult`)
//!    cross threads.
//! 3. **Stable-order collection.** Results are slotted by original spec
//!    index, so aggregation folds them in expansion order no matter which
//!    worker finished first.
//!
//! Every run is executed with a [`CountersSink`] attached; for drained
//! runs (no time-limit truncation) the event-derived [`EventCounters`]
//! are reconciled against the simulator's own `RunStats`, and a
//! panicking or diverging run is attributed to its exact [`RunSpec`]
//! label in [`CampaignResults`].

use relief_accel::{AppSpec, SimResult, SocConfig, SocSim};
use relief_core::PolicyKind;
use relief_metrics::summary::aggregate;
use relief_metrics::{reconcile, Mismatch};
use relief_sim::{SplitMix64, Time};
use relief_trace::{text, CountersSink, RingBufferSink, Tracer};
use relief_trace::EventCounters;
use relief_workloads::{Contention, Mix, CONTINUOUS_TIME_LIMIT};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

type WorkloadFn = dyn Fn() -> Vec<AppSpec> + Send + Sync;
type PlatformFn = dyn Fn(PolicyKind) -> SocConfig + Send + Sync;

/// One workload axis value: a labeled application set, rebuilt fresh
/// inside whichever worker thread executes the run (DAGs contain `Arc`s,
/// and sharing one instance across runs would be fine — but rebuilding
/// keeps every run self-contained).
#[derive(Clone)]
pub struct WorkloadSpec {
    label: String,
    time_limit: Option<Time>,
    build: Arc<WorkloadFn>,
}

impl WorkloadSpec {
    /// A paper application mix at a contention level. Continuous mixes
    /// carry the paper's 50 ms simulated-time cap.
    pub fn mix(contention: Contention, mix: &Mix) -> Self {
        let time_limit =
            (contention == Contention::Continuous).then_some(CONTINUOUS_TIME_LIMIT);
        let label = format!("{}/{}", contention.name(), mix.label());
        let mix = mix.clone();
        WorkloadSpec { label, time_limit, build: Arc::new(move || mix.workload()) }
    }

    /// An arbitrary labeled workload. `label` must uniquely identify the
    /// application set — it is part of the run's seed derivation and of
    /// the cache key used by [`Ctx`].
    pub fn custom(
        label: impl Into<String>,
        time_limit: Option<Time>,
        build: impl Fn() -> Vec<AppSpec> + Send + Sync + 'static,
    ) -> Self {
        WorkloadSpec { label: label.into(), time_limit, build: Arc::new(build) }
    }

    /// The workload's canonical label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkloadSpec")
            .field("label", &self.label)
            .field("time_limit", &self.time_limit)
            .finish_non_exhaustive()
    }
}

/// One platform axis value: a labeled `SocConfig` constructor. The
/// closure receives the policy so per-policy defaults (e.g. the Fig. 12
/// insert cost) apply exactly as in single-run code paths.
#[derive(Clone)]
pub struct PlatformSpec {
    label: String,
    build: Arc<PlatformFn>,
}

impl PlatformSpec {
    /// The paper's Table VI mobile platform.
    pub fn mobile() -> Self {
        PlatformSpec::custom("mobile", SocConfig::mobile)
    }

    /// An arbitrary labeled platform. `label` must uniquely identify the
    /// configuration (same caveats as [`WorkloadSpec::custom`]).
    pub fn custom(
        label: impl Into<String>,
        build: impl Fn(PolicyKind) -> SocConfig + Send + Sync + 'static,
    ) -> Self {
        PlatformSpec { label: label.into(), build: Arc::new(build) }
    }

    /// The platform's canonical label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl fmt::Debug for PlatformSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlatformSpec").field("label", &self.label).finish_non_exhaustive()
    }
}

/// 64-bit FNV-1a over a byte string — the stable, dependency-free hash
/// behind spec-derived seeding and campaign identity.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One fully specified, independently executable simulation run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Scheduling policy under test.
    pub policy: PolicyKind,
    /// Application set.
    pub workload: WorkloadSpec,
    /// SoC configuration template.
    pub platform: PlatformSpec,
    /// Replicate index; 0 keeps the platform's base seed, higher
    /// replicates get spec-hash-derived seeds.
    pub replicate: u32,
}

impl RunSpec {
    /// A replicate-0 run of `policy` on `workload` over `platform`.
    pub fn new(policy: PolicyKind, workload: WorkloadSpec, platform: PlatformSpec) -> Self {
        RunSpec { policy, workload, platform, replicate: 0 }
    }

    /// The run's canonical label: the cache key, the seed-derivation
    /// input, and the attribution string for failures.
    pub fn label(&self) -> String {
        format!(
            "{}|{}|{}|r{}",
            self.policy.name(),
            self.workload.label,
            self.platform.label,
            self.replicate
        )
    }

    /// The seed override for this run, if any. Replicate 0 returns `None`
    /// (the platform's own base seed stands, so replicate-0 results match
    /// every pre-engine code path byte for byte); replicate *r* > 0
    /// derives a seed from the spec label alone, making it independent of
    /// thread count and completion order.
    pub fn seed_override(&self) -> Option<u64> {
        (self.replicate > 0).then(|| {
            let mut rng = SplitMix64::new(fnv1a(self.label().as_bytes()));
            rng.next_u64()
        })
    }

    /// Materializes the run's `SocConfig`: platform template, then the
    /// workload's time limit, then the replicate seed.
    pub fn config(&self) -> SocConfig {
        let mut cfg = (self.platform.build)(self.policy);
        if let Some(limit) = self.workload.time_limit {
            cfg = cfg.with_time_limit(limit);
        }
        if let Some(seed) = self.seed_override() {
            cfg.seed = seed;
        }
        cfg
    }

    /// Builds the run's application set.
    pub fn apps(&self) -> Vec<AppSpec> {
        (self.workload.build)()
    }

    /// Executes the run inline with no instrumentation — exactly what the
    /// pre-engine single-run code paths do. [`Ctx`] falls back to this on
    /// a cache miss, which is why artifact output never depends on how
    /// complete a prewarmed grid was.
    pub fn execute(&self) -> SimResult {
        SocSim::new(self.config(), self.apps()).run()
    }

    /// Executes the run with reconciliation counters and (optionally) a
    /// canonical text trace attached.
    fn execute_instrumented(&self, capture_trace: bool) -> RunRecord {
        let cfg = self.config();
        let truncated = cfg.time_limit.is_some();
        let counters = CountersSink::shared();
        let ring = capture_trace.then(|| RingBufferSink::shared(1 << 22));
        let mut tracer = Tracer::off();
        tracer.attach(counters.clone());
        if let Some(ring) = &ring {
            tracer.attach(ring.clone());
        }
        let result = SocSim::new(cfg, self.apps()).with_tracer(&tracer).run();
        let counters = counters.borrow().counters().clone();
        // Byte totals legitimately disagree on truncated runs (transfers
        // in flight at the cap), so reconciliation is strict only for
        // drained runs — see `relief_metrics::reconcile`.
        let mismatches =
            if truncated { Vec::new() } else { reconcile(&counters, &result.stats) };
        let trace_text = ring.map(|ring| {
            let ring = ring.borrow();
            assert_eq!(ring.dropped(), 0, "trace capture overflowed for {}", self.label());
            text::to_text(&ring.snapshot())
        });
        RunRecord { result, counters, mismatches, trace_text }
    }
}

/// A cartesian grid of runs: every policy × workload × platform ×
/// replicate combination, expanded in stable nested order.
///
/// Axes beyond the policy/workload/platform trio are encoded *into* the
/// platform axis by folding their knobs into the platform label: the
/// fault-rate axis of `crate::resilience` and the arrival-rate axis of
/// `crate::service` (open-loop streaming — arrival process, per-tenant
/// rate, admission cap) are both one [`PlatformSpec::custom`] per axis
/// value. The label is the cell's canonical identity, so distinct knob
/// settings must never produce colliding labels.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name (reports, hashing).
    pub name: String,
    /// Policy axis.
    pub policies: Vec<PolicyKind>,
    /// Workload axis.
    pub workloads: Vec<WorkloadSpec>,
    /// Platform axis.
    pub platforms: Vec<PlatformSpec>,
    /// Replicates per cell (≥ 1; replicate 0 uses the platform base seed).
    pub replicates: u32,
}

impl CampaignSpec {
    /// A single-platform campaign over the mobile SoC.
    pub fn new(
        name: impl Into<String>,
        policies: Vec<PolicyKind>,
        workloads: Vec<WorkloadSpec>,
    ) -> Self {
        CampaignSpec {
            name: name.into(),
            policies,
            workloads,
            platforms: vec![PlatformSpec::mobile()],
            replicates: 1,
        }
    }

    /// Expands the grid in stable nested order: policy-major, then
    /// workload, then platform, then replicate. Aggregation and
    /// reporting always follow this order, never completion order.
    pub fn expand(&self) -> Vec<RunSpec> {
        let mut specs = Vec::new();
        for &policy in &self.policies {
            for workload in &self.workloads {
                for platform in &self.platforms {
                    for replicate in 0..self.replicates.max(1) {
                        specs.push(RunSpec {
                            policy,
                            workload: workload.clone(),
                            platform: platform.clone(),
                            replicate,
                        });
                    }
                }
            }
        }
        specs
    }

    /// FNV-1a identity of the campaign: name, every axis label in order,
    /// and the replicate count. Two campaigns with the same hash expand
    /// to the same run labels and therefore the same seeds.
    pub fn hash(&self) -> u64 {
        let mut ident = self.name.clone();
        for p in &self.policies {
            ident.push('|');
            ident.push_str(p.name());
        }
        for w in &self.workloads {
            ident.push('|');
            ident.push_str(&w.label);
        }
        for p in &self.platforms {
            ident.push('|');
            ident.push_str(&p.label);
        }
        ident.push_str(&format!("|x{}", self.replicates));
        fnv1a(ident.as_bytes())
    }
}

/// Everything one engine-executed run produced.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The simulation result.
    pub result: SimResult,
    /// Event-derived counters from the attached [`CountersSink`].
    pub counters: EventCounters,
    /// Reconciliation disagreements (empty for consistent or truncated
    /// runs).
    pub mismatches: Vec<Mismatch>,
    /// Canonical text trace, when requested via
    /// [`ExecOptions::trace_labels`].
    pub trace_text: Option<String>,
}

/// One run's outcome: a record, or the panic message that killed it.
#[derive(Debug)]
pub struct RunOutcome {
    /// The run's canonical label.
    pub label: String,
    /// The spec that produced it.
    pub spec: RunSpec,
    /// Result, or the panic payload attributed to this exact spec.
    pub outcome: Result<RunRecord, String>,
}

/// Execution knobs for [`execute`].
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads (clamped to ≥ 1).
    pub jobs: usize,
    /// Run labels whose canonical text trace should be captured.
    /// Captured runs always simulate — the persistent cache neither
    /// serves nor stores them (the text trace is not persisted).
    pub trace_labels: BTreeSet<String>,
    /// Persistent content-addressed result store (`crate::cache`). The
    /// default is disabled, so library callers and tests never touch the
    /// filesystem; the campaign binaries opt in via
    /// [`CacheConfig::standard`](crate::cache::CacheConfig::standard)
    /// unless `--no-cache` is given.
    pub cache: crate::cache::CacheConfig,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            jobs: default_jobs(),
            trace_labels: BTreeSet::new(),
            cache: crate::cache::CacheConfig::disabled(),
        }
    }
}

/// The host's available parallelism (≥ 1).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Parses `--jobs N` out of a binary's argument list, defaulting to
/// [`default_jobs`]. Unrelated arguments are ignored.
pub fn parse_jobs(args: impl IntoIterator<Item = String>) -> Result<usize, String> {
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--jobs" {
            let v = it.next().ok_or("--jobs needs a value")?;
            let n: usize = v.parse().map_err(|_| format!("bad --jobs '{v}'"))?;
            if n == 0 {
                return Err("--jobs must be at least 1".into());
            }
            return Ok(n);
        }
    }
    Ok(default_jobs())
}

/// Campaign results, in expansion (spec) order.
#[derive(Debug)]
pub struct CampaignResults {
    /// Per-run outcomes, index-aligned with the input specs.
    pub outcomes: Vec<RunOutcome>,
    /// Runs answered by the persistent campaign cache.
    pub cache_hits: usize,
    /// Runs actually simulated (cache disabled, missed, or bypassed).
    pub simulated: usize,
}

impl CampaignResults {
    /// Panicked runs, attributed by label.
    pub fn failures(&self) -> Vec<(String, String)> {
        self.outcomes
            .iter()
            .filter_map(|o| match &o.outcome {
                Err(e) => Some((o.label.clone(), e.clone())),
                Ok(_) => None,
            })
            .collect()
    }

    /// Runs whose event counters disagreed with their `RunStats`.
    pub fn mismatched(&self) -> Vec<(String, Vec<Mismatch>)> {
        self.outcomes
            .iter()
            .filter_map(|o| match &o.outcome {
                Ok(rec) if !rec.mismatches.is_empty() => {
                    Some((o.label.clone(), rec.mismatches.clone()))
                }
                _ => None,
            })
            .collect()
    }

    /// Looks up one run's record by canonical label.
    pub fn get(&self, label: &str) -> Option<&RunRecord> {
        self.outcomes.iter().find(|o| o.label == label).and_then(|o| o.outcome.as_ref().ok())
    }

    /// A canonical per-run report: one line per run in spec order with
    /// the full `RunStats` debug rendering. Byte-identical across
    /// executions with different `--jobs`, which is exactly what the
    /// determinism tests compare.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            match &o.outcome {
                Ok(rec) => {
                    out.push_str(&format!("{}: {:?}\n", o.label, rec.result.stats));
                }
                Err(e) => out.push_str(&format!("{}: FAILED: {e}\n", o.label)),
            }
        }
        out
    }

    /// Renders a short campaign summary: run/failure counts plus the
    /// stable-order [`aggregate`] over successful runs.
    pub fn summary(&self) -> String {
        let stats: Vec<_> = self
            .outcomes
            .iter()
            .filter_map(|o| o.outcome.as_ref().ok().map(|rec| &rec.result.stats))
            .collect();
        let agg = aggregate(stats);
        let failures = self.failures();
        let mismatched = self.mismatched();
        format!(
            "runs           {}\n\
             failed         {}\n\
             mismatched     {}\n\
             gmean exec     {:.3} us\n\
             fwd+coloc      {:.1}% of {} edges\n\
             node deadlines {:.1}% met\n\
             DRAM traffic   {:.2} MB\n",
            self.outcomes.len(),
            failures.len(),
            mismatched.len(),
            agg.gmean_exec_us,
            agg.forward_percent(),
            agg.edges_total,
            agg.node_deadline_percent(),
            agg.traffic.dram_bytes() as f64 / 1e6,
        )
    }
}

/// Executes `specs` on a pool of `opts.jobs` worker threads.
///
/// Workers claim specs through an atomic cursor, build and run each
/// simulator entirely thread-locally (`SocSim` is `!Send`), and slot the
/// outcome by spec index. A panicking run is caught, attributed to its
/// spec's label, and does not take down the campaign.
pub fn execute(specs: Vec<RunSpec>, opts: &ExecOptions) -> CampaignResults {
    let n = specs.len();
    let jobs = opts.jobs.clamp(1, n.max(1));
    let cursor = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let spec = &specs[i];
                let capture = opts.trace_labels.contains(&spec.label());
                // Trace captures bypass the persistent cache entirely:
                // cached records carry no text trace, and storing one
                // would leak a layout the reader doesn't model.
                let cached = if capture { None } else { opts.cache.lookup(spec) };
                let outcome = match cached {
                    Some(rec) => {
                        hits.fetch_add(1, Ordering::Relaxed);
                        Ok(rec)
                    }
                    None => {
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            spec.execute_instrumented(capture)
                        }))
                        .map_err(|payload| {
                            payload
                                .downcast_ref::<&str>()
                                .map(|s| (*s).to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "non-string panic payload".to_string())
                        });
                        if let Ok(rec) = &run {
                            opts.cache.store(spec, rec);
                        }
                        run
                    }
                };
                *slots[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                    Some(RunOutcome {
                        label: spec.label(),
                        spec: spec.clone(),
                        outcome,
                    });
            });
        }
    });
    // The cursor visits every index exactly once, so each slot is filled.
    #[allow(clippy::expect_used)]
    let outcomes: Vec<RunOutcome> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every spec executed")
        })
        .collect();
    let cache_hits = hits.load(Ordering::Relaxed);
    let simulated = n - cache_hits;
    if opts.cache.enabled {
        // Stderr only: stdout is the byte-identical campaign report.
        eprintln!(
            "[campaign-cache] {cache_hits} cached, {simulated} simulated ({})",
            opts.cache.dir.display()
        );
    }
    CampaignResults { outcomes, cache_hits, simulated }
}

/// A cache-backed execution context for artifact functions.
///
/// Artifact renderers ask the `Ctx` for each run they need; a prewarmed
/// campaign cache answers by label, and misses fall back to inline
/// execution ([`RunSpec::execute`]), so rendered output is identical
/// whether or not the grid covered the run — only wall-clock changes.
#[derive(Debug, Default)]
pub struct Ctx {
    cache: BTreeMap<String, SimResult>,
}

impl Ctx {
    /// A context with no cache: every lookup simulates inline.
    pub fn empty() -> Self {
        Ctx::default()
    }

    /// Builds a context from engine results (failed runs are simply
    /// absent and will re-simulate inline on lookup).
    pub fn from_results(results: &CampaignResults) -> Self {
        let mut cache = BTreeMap::new();
        for o in &results.outcomes {
            if let Ok(rec) = &o.outcome {
                cache.insert(o.label.clone(), rec.result.clone());
            }
        }
        Ctx { cache }
    }

    /// The run's result: cached if prewarmed, otherwise simulated inline.
    pub fn run(&self, spec: &RunSpec) -> SimResult {
        match self.cache.get(&spec.label()) {
            Some(r) => r.clone(),
            None => spec.execute(),
        }
    }

    /// Number of cached runs.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when no runs are cached.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        let mixes = Contention::Low.mixes();
        CampaignSpec::new(
            "tiny",
            vec![PolicyKind::Fcfs, PolicyKind::Relief],
            vec![
                WorkloadSpec::mix(Contention::Low, &mixes[0]),
                WorkloadSpec::mix(Contention::Low, &mixes[1]),
            ],
        )
    }

    #[test]
    fn expansion_is_policy_major_and_stable() {
        let labels: Vec<String> = tiny_spec().expand().iter().map(RunSpec::label).collect();
        assert_eq!(
            labels,
            vec![
                "FCFS|low/C|mobile|r0",
                "FCFS|low/D|mobile|r0",
                "RELIEF|low/C|mobile|r0",
                "RELIEF|low/D|mobile|r0",
            ]
        );
    }

    #[test]
    fn hash_is_stable_and_axis_sensitive() {
        let a = tiny_spec();
        assert_eq!(a.hash(), tiny_spec().hash());
        let mut b = tiny_spec();
        b.policies.push(PolicyKind::Lax);
        assert_ne!(a.hash(), b.hash());
        let mut c = tiny_spec();
        c.replicates = 3;
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn replicate_zero_keeps_base_seed_and_higher_replicates_diverge() {
        let specs = CampaignSpec { replicates: 3, ..tiny_spec() }.expand();
        let r0 = &specs[0];
        assert_eq!(r0.replicate, 0);
        assert_eq!(r0.seed_override(), None);
        assert_eq!(r0.config().seed, SocConfig::mobile(PolicyKind::Fcfs).seed);
        let (r1, r2) = (&specs[1], &specs[2]);
        let (s1, s2) = (r1.seed_override().unwrap(), r2.seed_override().unwrap());
        assert_ne!(s1, s2);
        assert_eq!(r1.config().seed, s1);
        // Derivation is a pure function of the label: recompute and match.
        let mut rng = SplitMix64::new(fnv1a(r1.label().as_bytes()));
        assert_eq!(s1, rng.next_u64());
    }

    #[test]
    fn continuous_workloads_carry_the_time_limit() {
        let mix = &Contention::Continuous.mixes()[0];
        let spec = RunSpec::new(
            PolicyKind::Relief,
            WorkloadSpec::mix(Contention::Continuous, mix),
            PlatformSpec::mobile(),
        );
        assert_eq!(spec.config().time_limit, Some(CONTINUOUS_TIME_LIMIT));
        assert_eq!(spec.label(), "RELIEF|continuous/CDG|mobile|r0");
    }

    #[test]
    fn parse_jobs_accepts_and_rejects() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_jobs(args(&["--foo", "--jobs", "4"])), Ok(4));
        assert_eq!(parse_jobs(args(&[])), Ok(default_jobs()));
        assert!(parse_jobs(args(&["--jobs"])).is_err());
        assert!(parse_jobs(args(&["--jobs", "zero"])).is_err());
        assert!(parse_jobs(args(&["--jobs", "0"])).is_err());
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
