//! Wall-clock benchmark of the simulation hot path (`xtask bench`).
//!
//! Runs a pinned campaign subset N times on the optimised hot path and N
//! times on the reference path that [`SocConfig::reference_hot_path`]
//! re-enables (linear queue scans, per-arrival deadline recomputation,
//! fresh heap allocations), then writes median ± spread ns/event and
//! events/sec for both to `BENCH_simcore.json` at the repo root. Both
//! paths are behaviourally identical by construction — the reference mode
//! only restores the old host-side costs — so the speedup ratio is
//! measured on the same build, same machine, same process, and each
//! iteration additionally asserts the two paths dispatched the exact same
//! number of simulator events.
//!
//! The subset is pinned (same policies, mixes, seeds, iteration pairing)
//! so successive PRs produce comparable `BENCH_simcore.json` files: a
//! perf trajectory, not a one-off number.

use crate::config_for;
use relief_accel::{AppSpec, SocSim};
use relief_core::PolicyKind;
use relief_workloads::Contention;
use std::time::Instant;

/// Schema tag written to (and required in) `BENCH_simcore.json`.
pub const SCHEMA: &str = "relief-simcore-bench/v1";

/// Human-readable description of the pinned subset, recorded in the JSON
/// so readers know what was measured.
pub const SUBSET: &str =
    "6 main policies x 10 high-contention mixes + FCFS/RELIEF x continuous GHL";

/// One cell of the pinned subset: a policy on a pre-built workload.
pub struct Case {
    /// Scheduling policy under measurement.
    pub policy: PolicyKind,
    /// Contention level (selects the platform time limit).
    pub contention: Contention,
    /// `"<contention>/<mix>"` label for per-case reporting.
    pub label: String,
    /// Applications, built once so DAG construction stays outside the
    /// timed region (`AppSpec` clones are `Arc` bumps).
    pub workload: Vec<AppSpec>,
}

/// The pinned campaign subset: every main-comparison policy over the ten
/// high-contention mixes, plus FCFS and RELIEF on the heaviest continuous
/// mix (GHL) so the 50 ms repeat path is represented.
pub fn pinned_subset() -> Vec<Case> {
    let mut cases = Vec::new();
    for mix in Contention::High.mixes() {
        for policy in crate::MAIN_POLICIES {
            cases.push(Case {
                policy,
                contention: Contention::High,
                label: format!("high/{}", mix.label()),
                workload: mix.workload(),
            });
        }
    }
    let Some(ghl) = Contention::Continuous.mixes().into_iter().last() else {
        return cases;
    };
    for policy in [PolicyKind::Fcfs, PolicyKind::Relief] {
        cases.push(Case {
            policy,
            contention: Contention::Continuous,
            label: format!("continuous/{}", ghl.label()),
            workload: ghl.workload(),
        });
    }
    cases
}

/// One timed pass over a set of cases.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Wall-clock nanoseconds across all cases.
    pub wall_ns: u64,
    /// Simulator events dispatched across all cases.
    pub events: u64,
}

impl Sample {
    /// Nanoseconds of host time per dispatched simulator event.
    pub fn ns_per_event(&self) -> f64 {
        self.wall_ns as f64 / self.events.max(1) as f64
    }

    /// Dispatched simulator events per host second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 * 1e9 / self.wall_ns.max(1) as f64
    }
}

/// Runs every case once; `reference` selects the pre-optimisation path.
pub fn run_cases(cases: &[Case], reference: bool) -> Sample {
    let mut events = 0u64;
    let t0 = Instant::now();
    for case in cases {
        let mut cfg = config_for(case.policy, case.contention);
        cfg.reference_hot_path = reference;
        let result = SocSim::new(cfg, case.workload.clone()).run();
        events += result.events_dispatched;
    }
    Sample { wall_ns: t0.elapsed().as_nanos() as u64, events }
}

/// Median / min / max over a set of per-iteration values.
#[derive(Debug, Clone, Copy)]
pub struct Spread {
    /// Middle value (mean of the two middles for even counts).
    pub median: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl Spread {
    fn of(mut values: Vec<f64>) -> Spread {
        assert!(!values.is_empty(), "need at least one sample");
        values.sort_by(f64::total_cmp);
        let n = values.len();
        let median =
            if n % 2 == 1 { values[n / 2] } else { (values[n / 2 - 1] + values[n / 2]) / 2.0 };
        Spread { median, min: values[0], max: values[n - 1] }
    }
}

/// Aggregated wall-clock statistics for one hot-path variant.
#[derive(Debug, Clone, Copy)]
pub struct PathStats {
    /// Wall-clock milliseconds per pass over the subset.
    pub wall_ms: Spread,
    /// Host nanoseconds per dispatched simulator event.
    pub ns_per_event: Spread,
    /// Dispatched simulator events per host second.
    pub events_per_sec: Spread,
}

impl PathStats {
    fn of(samples: &[Sample]) -> PathStats {
        PathStats {
            wall_ms: Spread::of(samples.iter().map(|s| s.wall_ns as f64 / 1e6).collect()),
            ns_per_event: Spread::of(samples.iter().map(Sample::ns_per_event).collect()),
            events_per_sec: Spread::of(samples.iter().map(Sample::events_per_sec).collect()),
        }
    }
}

/// The full benchmark result serialised to `BENCH_simcore.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Timed passes per path.
    pub iters: u32,
    /// Simulations per pass (size of the pinned subset).
    pub runs_per_iter: usize,
    /// Simulator events dispatched per pass (identical for both paths and
    /// across iterations — the simulator is deterministic).
    pub events_per_iter: u64,
    /// The optimised hot path.
    pub optimized: PathStats,
    /// The pre-optimisation reference path.
    pub reference: PathStats,
    /// Median reference ns/event over median optimised ns/event.
    pub speedup: f64,
}

/// Times `iters` interleaved optimised/reference passes over the pinned
/// subset. Interleaving keeps slow host drift (thermal, scheduling) from
/// biasing one path.
///
/// # Panics
///
/// Panics if the two paths ever dispatch different event counts — that
/// would mean `reference_hot_path` changed behaviour, not just cost.
pub fn measure(iters: u32) -> BenchReport {
    assert!(iters > 0, "need at least one iteration");
    let cases = pinned_subset();
    // Warm-up pass per path (page-cache, branch predictors, allocator).
    run_cases(&cases, false);
    run_cases(&cases, true);
    let mut opt = Vec::new();
    let mut reference = Vec::new();
    for _ in 0..iters {
        let o = run_cases(&cases, false);
        let r = run_cases(&cases, true);
        assert_eq!(
            o.events, r.events,
            "reference_hot_path must not change simulated behaviour"
        );
        opt.push(o);
        reference.push(r);
    }
    let optimized = PathStats::of(&opt);
    let ref_stats = PathStats::of(&reference);
    BenchReport {
        iters,
        runs_per_iter: cases.len(),
        events_per_iter: opt[0].events,
        optimized,
        reference: ref_stats,
        speedup: ref_stats.ns_per_event.median / optimized.ns_per_event.median,
    }
}

fn spread_json(s: &Spread, digits: usize) -> String {
    format!(
        "{{\"median\": {:.digits$}, \"min\": {:.digits$}, \"max\": {:.digits$}}}",
        s.median, s.min, s.max
    )
}

fn path_json(p: &PathStats) -> String {
    format!(
        "{{\n    \"wall_ms\": {},\n    \"ns_per_event\": {},\n    \"events_per_sec\": {}\n  }}",
        spread_json(&p.wall_ms, 2),
        spread_json(&p.ns_per_event, 1),
        spread_json(&p.events_per_sec, 0),
    )
}

/// Serialises a report to the `BENCH_simcore.json` format (documented in
/// README.md). Hand-rolled like every other JSON writer in the tree.
pub fn to_json(r: &BenchReport) -> String {
    format!(
        "{{\n  \"schema\": \"{}\",\n  \"subset\": \"{}\",\n  \"iters\": {},\n  \
         \"runs_per_iter\": {},\n  \"events_per_iter\": {},\n  \"optimized\": {},\n  \
         \"reference\": {},\n  \"speedup_ns_per_event\": {:.2}\n}}\n",
        SCHEMA,
        SUBSET,
        r.iters,
        r.runs_per_iter,
        r.events_per_iter,
        path_json(&r.optimized),
        path_json(&r.reference),
        r.speedup,
    )
}

/// Validates a serialised report: well-formed JSON, the expected schema
/// tag, and strictly positive `events_per_sec` medians for both paths.
/// Used by `xtask bench --check` so the bench binary cannot bit-rot.
pub fn validate(json: &str) -> Result<(), String> {
    if !relief_trace::chrome::is_well_formed_json(json) {
        return Err("not well-formed JSON".into());
    }
    if !json.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("missing schema tag {SCHEMA:?}"));
    }
    for key in ["\"optimized\":", "\"reference\":", "\"speedup_ns_per_event\":"] {
        if !json.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    let mut medians = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"events_per_sec\": {\"median\": ") {
        let num = &rest[at + "\"events_per_sec\": {\"median\": ".len()..];
        let end = num.find([',', '}']).ok_or("unterminated events_per_sec median")?;
        let value: f64 =
            num[..end].trim().parse().map_err(|e| format!("bad events_per_sec: {e}"))?;
        medians.push(value);
        rest = &rest[at + 1..];
    }
    if medians.len() != 2 {
        return Err(format!("expected 2 events_per_sec medians, found {}", medians.len()));
    }
    // partial_cmp: a NaN median must fail validation, not slip past `>`.
    if let Some(bad) =
        medians.iter().find(|v| (**v).partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater))
    {
        return Err(format!("events_per_sec must be positive, got {bad}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_median_and_extremes() {
        let s = Spread::of(vec![3.0, 1.0, 2.0]);
        assert_eq!((s.median, s.min, s.max), (2.0, 1.0, 3.0));
        let s = Spread::of(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn sample_rates() {
        let s = Sample { wall_ns: 2_000, events: 1_000 };
        assert_eq!(s.ns_per_event(), 2.0);
        assert_eq!(s.events_per_sec(), 5e8);
    }

    #[test]
    fn json_roundtrip_validates() {
        let stats = PathStats {
            wall_ms: Spread { median: 10.0, min: 9.5, max: 11.0 },
            ns_per_event: Spread { median: 50.0, min: 48.0, max: 52.0 },
            events_per_sec: Spread { median: 2e7, min: 1.9e7, max: 2.1e7 },
        };
        let report = BenchReport {
            iters: 3,
            runs_per_iter: 32,
            events_per_iter: 123_456,
            optimized: stats,
            reference: stats,
            speedup: 1.0,
        };
        let json = to_json(&report);
        assert_eq!(validate(&json), Ok(()));
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate("{").is_err());
        assert!(validate("{}").is_err());
        let zeroed = to_json(&BenchReport {
            iters: 1,
            runs_per_iter: 1,
            events_per_iter: 0,
            optimized: PathStats {
                wall_ms: Spread { median: 1.0, min: 1.0, max: 1.0 },
                ns_per_event: Spread { median: 1.0, min: 1.0, max: 1.0 },
                events_per_sec: Spread { median: 0.0, min: 0.0, max: 0.0 },
            },
            reference: PathStats {
                wall_ms: Spread { median: 1.0, min: 1.0, max: 1.0 },
                ns_per_event: Spread { median: 1.0, min: 1.0, max: 1.0 },
                events_per_sec: Spread { median: 0.0, min: 0.0, max: 0.0 },
            },
            speedup: 1.0,
        });
        assert!(validate(&zeroed).unwrap_err().contains("positive"));
    }

    #[test]
    fn pinned_subset_is_stable() {
        let cases = pinned_subset();
        let high_mixes = Contention::High.mixes().len();
        assert_eq!(cases.len(), high_mixes * crate::MAIN_POLICIES.len() + 2);
        assert!(cases.iter().all(|c| !c.workload.is_empty()));
    }
}
