//! Wall-clock benchmark of the simulation hot path (`xtask bench`).
//!
//! Runs a pinned campaign subset N times on the optimised hot path and N
//! times on the reference path that [`SocConfig::reference_hot_path`]
//! re-enables (linear queue scans, per-arrival deadline recomputation,
//! fresh heap allocations), then writes median ± spread ns/event and
//! events/sec for both to `BENCH_simcore.json` at the repo root. Both
//! paths are behaviourally identical by construction — the reference mode
//! only restores the old host-side costs — so the speedup ratio is
//! measured on the same build, same machine, same process, and each
//! iteration additionally asserts the two paths dispatched the exact same
//! number of simulator events.
//!
//! The subset is pinned (same policies, mixes, seeds, iteration pairing)
//! so successive PRs produce comparable `BENCH_simcore.json` files: a
//! perf trajectory, not a one-off number.

use crate::config_for;
use relief_accel::{AppSpec, SocSim};
use relief_core::PolicyKind;
use relief_workloads::Contention;
use std::time::Instant;

/// Schema tag written to (and required in) `BENCH_simcore.json`.
pub const SCHEMA: &str = "relief-simcore-bench/v1";

/// Schema tag of the sibling `BENCH_trajectory.json` history file.
/// v2 adds the optional per-entry `rss_peak_mb` and `live_high_water`
/// fields the `+soak` series records; v1 files are still parsed and
/// rewritten under this tag on the next append.
pub const TRAJECTORY_SCHEMA: &str = "relief-simcore-trajectory/v2";

/// The previous trajectory schema tag, still accepted on read.
pub const TRAJECTORY_SCHEMA_V1: &str = "relief-simcore-trajectory/v1";

/// Human-readable description of the pinned subset, recorded in the JSON
/// so readers know what was measured.
pub const SUBSET: &str =
    "6 main policies x 10 high-contention mixes + FCFS/RELIEF x continuous GHL";

/// Description of the pinned service-mode subset (`xtask bench --service`).
pub const SERVICE_SUBSET: &str =
    "4 policies x CGL Poisson stream at ~80% utilisation, 20 ms + drain";

/// Description of the queue cohort-pop microbench (`xtask bench --events`).
pub const EVENTS_SUBSET: &str =
    "synthetic cohort stream: 2M pops at ~4k held, 1/4 duplicate times, 1/64 far-future";

/// One cell of the pinned subset: a policy on a pre-built workload.
pub struct Case {
    /// Scheduling policy under measurement.
    pub policy: PolicyKind,
    /// Contention level (selects the platform time limit).
    pub contention: Contention,
    /// `"<contention>/<mix>"` label for per-case reporting.
    pub label: String,
    /// Applications, built once so DAG construction stays outside the
    /// timed region (`AppSpec` clones are `Arc` bumps).
    pub workload: Vec<AppSpec>,
    /// Open-loop stream plan (`None` = the closed-loop subsets).
    pub stream: Option<relief_service::StreamConfig>,
}

/// The pinned campaign subset: every main-comparison policy over the ten
/// high-contention mixes, plus FCFS and RELIEF on the heaviest continuous
/// mix (GHL) so the 50 ms repeat path is represented.
pub fn pinned_subset() -> Vec<Case> {
    let mut cases = Vec::new();
    for mix in Contention::High.mixes() {
        for policy in crate::MAIN_POLICIES {
            cases.push(Case {
                policy,
                contention: Contention::High,
                label: format!("high/{}", mix.label()),
                workload: mix.workload(),
                stream: None,
            });
        }
    }
    let Some(ghl) = Contention::Continuous.mixes().into_iter().last() else {
        return cases;
    };
    for policy in [PolicyKind::Fcfs, PolicyKind::Relief] {
        cases.push(Case {
            policy,
            contention: Contention::Continuous,
            label: format!("continuous/{}", ghl.label()),
            workload: ghl.workload(),
            stream: None,
        });
    }
    cases
}

/// The pinned service-mode subset: the four headline policies each
/// driving the CGL tenant trio under a sustained Poisson stream at
/// roughly 80% platform utilisation (80 req/s per tenant against the
/// ~100 req/s capacity the service sweep measures), so the wall-clock
/// trajectory also tracks the open-loop arrival/admission hot path.
pub fn service_subset() -> Vec<Case> {
    let spec = crate::service::ServiceSpec {
        rates: vec![80.0],
        duration_ps: 20_000_000_000,
        warmup_ps: 2_000_000_000,
        ..Default::default()
    };
    let stream = spec.stream_config(80.0);
    [PolicyKind::Fcfs, PolicyKind::Lax, PolicyKind::HetSched, PolicyKind::Relief]
        .into_iter()
        .map(|policy| Case {
            policy,
            contention: Contention::High,
            label: "service/CGL@80".to_string(),
            workload: crate::service::tenant_workload(),
            stream: Some(stream.clone()),
        })
        .collect()
}

/// One timed pass over a set of cases.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Wall-clock nanoseconds across all cases.
    pub wall_ns: u64,
    /// Simulator events dispatched across all cases.
    pub events: u64,
}

impl Sample {
    /// Nanoseconds of host time per dispatched simulator event.
    pub fn ns_per_event(&self) -> f64 {
        self.wall_ns as f64 / self.events.max(1) as f64
    }

    /// Dispatched simulator events per host second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 * 1e9 / self.wall_ns.max(1) as f64
    }
}

/// Runs every case once; `reference` selects the pre-optimisation path.
pub fn run_cases(cases: &[Case], reference: bool) -> Sample {
    let mut events = 0u64;
    let t0 = Instant::now();
    for case in cases {
        let mut cfg = config_for(case.policy, case.contention);
        cfg.reference_hot_path = reference;
        if let Some(stream) = &case.stream {
            cfg = cfg.with_stream(stream.clone());
        }
        let result = SocSim::new(cfg, case.workload.clone()).run();
        events += result.events_dispatched;
    }
    Sample { wall_ns: t0.elapsed().as_nanos() as u64, events }
}

/// Median / min / max over a set of per-iteration values.
#[derive(Debug, Clone, Copy)]
pub struct Spread {
    /// Middle value (mean of the two middles for even counts).
    pub median: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl Spread {
    fn of(mut values: Vec<f64>) -> Spread {
        assert!(!values.is_empty(), "need at least one sample");
        values.sort_by(f64::total_cmp);
        let n = values.len();
        let median =
            if n % 2 == 1 { values[n / 2] } else { (values[n / 2 - 1] + values[n / 2]) / 2.0 };
        Spread { median, min: values[0], max: values[n - 1] }
    }
}

/// Aggregated wall-clock statistics for one hot-path variant.
#[derive(Debug, Clone, Copy)]
pub struct PathStats {
    /// Wall-clock milliseconds per pass over the subset.
    pub wall_ms: Spread,
    /// Host nanoseconds per dispatched simulator event.
    pub ns_per_event: Spread,
    /// Dispatched simulator events per host second.
    pub events_per_sec: Spread,
}

impl PathStats {
    fn of(samples: &[Sample]) -> PathStats {
        PathStats {
            wall_ms: Spread::of(samples.iter().map(|s| s.wall_ns as f64 / 1e6).collect()),
            ns_per_event: Spread::of(samples.iter().map(Sample::ns_per_event).collect()),
            events_per_sec: Spread::of(samples.iter().map(Sample::events_per_sec).collect()),
        }
    }
}

/// The full benchmark result serialised to `BENCH_simcore.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Timed passes per path.
    pub iters: u32,
    /// Simulations per pass (size of the pinned subset).
    pub runs_per_iter: usize,
    /// Simulator events dispatched per pass (identical for both paths and
    /// across iterations — the simulator is deterministic).
    pub events_per_iter: u64,
    /// The optimised hot path.
    pub optimized: PathStats,
    /// The pre-optimisation reference path.
    pub reference: PathStats,
    /// Median reference ns/event over median optimised ns/event.
    pub speedup: f64,
}

/// Times `iters` interleaved optimised/reference passes over the pinned
/// subset. Interleaving keeps slow host drift (thermal, scheduling) from
/// biasing one path.
///
/// # Panics
///
/// Panics if the two paths ever dispatch different event counts — that
/// would mean `reference_hot_path` changed behaviour, not just cost.
pub fn measure(iters: u32) -> BenchReport {
    measure_cases(pinned_subset(), iters)
}

/// Like [`measure`], but over the pinned service-mode subset
/// ([`service_subset`]): ns/event of the open-loop arrival, admission
/// and per-class accounting path under sustained Poisson load. Appended
/// to `BENCH_trajectory.json` under its own `+service` label by
/// `xtask bench --service`.
///
/// # Panics
///
/// Same contract as [`measure`].
pub fn measure_service(iters: u32) -> BenchReport {
    measure_cases(service_subset(), iters)
}

/// Events one `--events` pass dispatches.
const EVENTS_PER_PASS: u64 = 2_000_000;

/// Events the `--events` microbench holds pending in steady state.
const EVENTS_HELD: u64 = 4096;

/// One timed pass of the calendar-queue cohort microbench: a hold model
/// that keeps ~[`EVENTS_HELD`] synthetic events pending, draining whole
/// same-timestamp cohorts and refilling one push per pop. The stream is
/// deterministic ([`SplitMix64`], fixed seed) and shaped like simulator
/// traffic: a quarter of pushes land on an already-pending timestamp
/// (cohort partners), 1/64 land far in the future (repair-style overflow
/// traffic), the rest spread over the near rung. `reference` swaps in
/// the binary-heap queue, so the pair isolates exactly what the
/// sorted-vec near rung and cohort drain buy.
fn run_events_pass(reference: bool) -> Sample {
    use relief_sim::{EventQueue, SplitMix64, Time};
    let mut q: EventQueue<u32> =
        if reference { EventQueue::reference() } else { EventQueue::new() };
    let mut rng = SplitMix64::new(0xC0_0407);
    let mut pushed = 0u64;
    let mut last_at: u64 = 0;
    let mut push = |q: &mut EventQueue<u32>, now: u64, rng: &mut SplitMix64, pushed: &mut u64| {
        let r = rng.next_u64();
        let delta = if r.is_multiple_of(64) {
            // Far-future (MTTF-repair-like): lands in overflow.
            1_000_000_000 + (r >> 8) % 1_000_000_000
        } else if r.is_multiple_of(4) {
            // Duplicate of the last scheduled time: forms a cohort.
            0
        } else {
            // Near-rung traffic.
            1 + (r >> 8) % 50_000
        };
        last_at = if delta == 0 { last_at } else { now + delta };
        q.push(Time::from_ps(last_at), (*pushed & 0xFFFF) as u32);
        *pushed += 1;
    };
    for _ in 0..EVENTS_HELD {
        push(&mut q, 0, &mut rng, &mut pushed);
    }
    let mut scratch: Vec<u32> = Vec::new();
    let mut dispatched = 0u64;
    let t0 = Instant::now();
    while dispatched < EVENTS_PER_PASS {
        let Some(at) = q.pop_cohort(&mut scratch) else {
            unreachable!("hold model keeps the queue non-empty");
        };
        let refill = scratch.len();
        for &e in &scratch {
            q.mark_dispatched(at);
            std::hint::black_box(e);
            dispatched += 1;
        }
        for _ in 0..refill {
            push(&mut q, at.as_ps(), &mut rng, &mut pushed);
        }
    }
    Sample { wall_ns: t0.elapsed().as_nanos() as u64, events: dispatched }
}

/// Like [`measure`], but for the queue cohort-pop microbench
/// (`xtask bench --events`): ns per dispatched event through
/// [`EventQueue::pop_cohort`] + refill alone, with no simulator handler
/// work in the timed region. Appended to `BENCH_trajectory.json` under
/// its own `+events` label.
///
/// # Panics
///
/// Panics when `iters` is zero.
pub fn measure_events(iters: u32) -> BenchReport {
    assert!(iters > 0, "need at least one iteration");
    run_events_pass(false);
    run_events_pass(true);
    let mut opt = Vec::new();
    let mut reference = Vec::new();
    for _ in 0..iters {
        opt.push(run_events_pass(false));
        reference.push(run_events_pass(true));
    }
    let optimized = PathStats::of(&opt);
    let ref_stats = PathStats::of(&reference);
    BenchReport {
        iters,
        runs_per_iter: 1,
        events_per_iter: opt[0].events,
        optimized,
        reference: ref_stats,
        speedup: ref_stats.ns_per_event.median / optimized.ns_per_event.median,
    }
}

/// Shared timing loop behind [`measure`] and [`measure_service`].
fn measure_cases(cases: Vec<Case>, iters: u32) -> BenchReport {
    assert!(iters > 0, "need at least one iteration");
    // Warm-up pass per path (page-cache, branch predictors, allocator).
    run_cases(&cases, false);
    run_cases(&cases, true);
    let mut opt = Vec::new();
    let mut reference = Vec::new();
    for _ in 0..iters {
        let o = run_cases(&cases, false);
        let r = run_cases(&cases, true);
        assert_eq!(
            o.events, r.events,
            "reference_hot_path must not change simulated behaviour"
        );
        opt.push(o);
        reference.push(r);
    }
    let optimized = PathStats::of(&opt);
    let ref_stats = PathStats::of(&reference);
    BenchReport {
        iters,
        runs_per_iter: cases.len(),
        events_per_iter: opt[0].events,
        optimized,
        reference: ref_stats,
        speedup: ref_stats.ns_per_event.median / optimized.ns_per_event.median,
    }
}

fn spread_json(s: &Spread, digits: usize) -> String {
    format!(
        "{{\"median\": {:.digits$}, \"min\": {:.digits$}, \"max\": {:.digits$}}}",
        s.median, s.min, s.max
    )
}

fn path_json(p: &PathStats) -> String {
    format!(
        "{{\n    \"wall_ms\": {},\n    \"ns_per_event\": {},\n    \"events_per_sec\": {}\n  }}",
        spread_json(&p.wall_ms, 2),
        spread_json(&p.ns_per_event, 1),
        spread_json(&p.events_per_sec, 0),
    )
}

/// Serialises a report to the `BENCH_simcore.json` format (documented in
/// README.md). Hand-rolled like every other JSON writer in the tree.
pub fn to_json(r: &BenchReport) -> String {
    format!(
        "{{\n  \"schema\": \"{}\",\n  \"subset\": \"{}\",\n  \"iters\": {},\n  \
         \"runs_per_iter\": {},\n  \"events_per_iter\": {},\n  \"optimized\": {},\n  \
         \"reference\": {},\n  \"speedup_ns_per_event\": {:.2}\n}}\n",
        SCHEMA,
        SUBSET,
        r.iters,
        r.runs_per_iter,
        r.events_per_iter,
        path_json(&r.optimized),
        path_json(&r.reference),
        r.speedup,
    )
}

/// One point of the cross-PR performance trajectory: the medians of one
/// full `xtask bench` run, labelled by revision.
#[derive(Debug, Clone)]
pub struct TrajectoryEntry {
    /// Revision label (short commit hash, or `"worktree"` when unknown).
    pub label: String,
    /// Timed passes behind the medians.
    pub iters: u32,
    /// Median optimised ns/event.
    pub optimized_ns_per_event: f64,
    /// Median reference ns/event.
    pub reference_ns_per_event: f64,
    /// Median optimised events/sec.
    pub events_per_sec: f64,
    /// Median reference over median optimised ns/event.
    pub speedup: f64,
    /// Peak host RSS in megabytes (schema v2, `+soak` entries only).
    pub rss_peak_mb: Option<f64>,
    /// Live-slot high-water mark (schema v2, `+soak` entries only).
    pub live_high_water: Option<u64>,
}

impl TrajectoryEntry {
    /// Extracts the trajectory-relevant medians from a full report.
    #[must_use]
    pub fn from_report(label: &str, r: &BenchReport) -> TrajectoryEntry {
        TrajectoryEntry {
            label: label.into(),
            iters: r.iters,
            optimized_ns_per_event: r.optimized.ns_per_event.median,
            reference_ns_per_event: r.reference.ns_per_event.median,
            events_per_sec: r.optimized.events_per_sec.median,
            speedup: r.speedup,
            rss_peak_mb: None,
            live_high_water: None,
        }
    }

    /// The entry as a single flat JSON object (one line, no nesting —
    /// [`append_trajectory`] relies on this shape to re-parse entries).
    /// The optional v2 fields are emitted only when present, so pre-soak
    /// entries round-trip byte-identically.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"label\": \"{}\", \"iters\": {}, \"optimized_ns_per_event\": {:.1}, \
             \"reference_ns_per_event\": {:.1}, \"events_per_sec\": {:.0}, \"speedup\": {:.2}",
            self.label.replace(['"', '\\'], "_"),
            self.iters,
            self.optimized_ns_per_event,
            self.reference_ns_per_event,
            self.events_per_sec,
            self.speedup,
        );
        if let Some(mb) = self.rss_peak_mb {
            out.push_str(&format!(", \"rss_peak_mb\": {mb:.1}"));
        }
        if let Some(hw) = self.live_high_water {
            out.push_str(&format!(", \"live_high_water\": {hw}"));
        }
        out.push('}');
        out
    }
}

/// Appends `entry` to a serialised trajectory file, returning the new
/// file body. `existing` is the previous content (`None` or unparseable
/// content starts a fresh history — the file is derived data). Entries
/// are kept in append order, one per line, so diffs stay one-line-per-PR.
#[must_use]
pub fn append_trajectory(existing: Option<&str>, entry: &TrajectoryEntry) -> String {
    let mut entries: Vec<String> = existing
        .filter(|body| {
            body.contains(TRAJECTORY_SCHEMA) || body.contains(TRAJECTORY_SCHEMA_V1)
        })
        .map(extract_flat_objects)
        .unwrap_or_default();
    entries.push(entry.to_json());
    let mut out = format!("{{\n  \"schema\": \"{TRAJECTORY_SCHEMA}\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!("    {e}{sep}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Collects every flat (nesting-free) `{...}` object in `body` that has
/// a `"label"` key — the entry shape [`TrajectoryEntry::to_json`] emits.
fn extract_flat_objects(body: &str) -> Vec<String> {
    let mut entries = Vec::new();
    let mut rest = body;
    while let Some(at) = rest.find("{\"label\":") {
        let tail = &rest[at..];
        let Some(end) = tail.find('}') else { break };
        entries.push(tail[..=end].to_string());
        rest = &tail[end + 1..];
    }
    entries
}

/// Reads a numeric field out of one flat trajectory-entry object.
fn flat_field(entry: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let at = entry.find(&needle)?;
    let num = &entry[at + needle.len()..];
    let end = num.find([',', '}'])?;
    num[..end].trim().parse().ok()
}

/// The optimised ns/event of the most recent `+soak` entry in a
/// serialised trajectory history — the committed soak baseline
/// `xtask bench --check` gates against. `None` when the history is
/// missing, from another schema, or holds no soak entries yet.
#[must_use]
pub fn last_soak_ns(history: &str) -> Option<f64> {
    if !history.contains(TRAJECTORY_SCHEMA) && !history.contains(TRAJECTORY_SCHEMA_V1) {
        return None;
    }
    extract_flat_objects(history)
        .iter()
        .rev()
        .find(|e| {
            flat_label(e).is_some_and(|l| l.ends_with("+soak"))
        })
        .and_then(|e| flat_field(e, "optimized_ns_per_event"))
}

/// The label of one flat trajectory-entry object.
fn flat_label(entry: &str) -> Option<&str> {
    let rest = entry.strip_prefix("{\"label\": \"")?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Reads the optimised median ns/event out of a serialised
/// `BENCH_simcore.json` — the committed baseline the regression gate
/// compares against.
pub fn baseline_optimized_ns(json: &str) -> Result<f64, String> {
    validate(json)?;
    let opt = json
        .find("\"optimized\":")
        .map(|at| &json[at..])
        .ok_or("missing optimized section")?;
    let key = "\"ns_per_event\": {\"median\": ";
    let num = opt.find(key).map(|at| &opt[at + key.len()..]).ok_or("missing ns_per_event")?;
    let end = num.find([',', '}']).ok_or("unterminated ns_per_event median")?;
    num[..end].trim().parse().map_err(|e| format!("bad ns_per_event median: {e}"))
}

/// The no-regression gate of `xtask bench --check`: the *fastest* pass
/// of the fresh run must stay within `tolerance` (a fraction, e.g.
/// `0.10`) of the committed baseline's *median* ns/event. Comparing
/// fresh-min against committed-median absorbs run-to-run host noise
/// (a loaded box only ever makes the fresh run look slower) while still
/// catching real hot-path regressions. Returns a side-by-side summary
/// either way; `Err` means the gate failed.
pub fn regression_gate(
    baseline_json: &str,
    report: &BenchReport,
    tolerance: f64,
) -> Result<String, String> {
    let old = baseline_optimized_ns(baseline_json).map_err(|e| format!("bad baseline: {e}"))?;
    let new_min = report.optimized.ns_per_event.min;
    let new_median = report.optimized.ns_per_event.median;
    let limit = old * (1.0 + tolerance);
    let summary = format!(
        "committed median {old:.1} ns/event vs fresh median {new_median:.1} (min {new_min:.1}); \
         limit {limit:.1} at {:.0}% tolerance",
        tolerance * 100.0
    );
    // total_cmp: a NaN measurement must fail the gate, not sneak past `>`.
    if new_min.total_cmp(&limit) == std::cmp::Ordering::Greater || !new_min.is_finite() {
        Err(format!("hot path regressed: {summary}"))
    } else {
        Ok(summary)
    }
}

/// Validates a serialised report: well-formed JSON, the expected schema
/// tag, and strictly positive `events_per_sec` medians for both paths.
/// Used by `xtask bench --check` so the bench binary cannot bit-rot.
pub fn validate(json: &str) -> Result<(), String> {
    if !relief_trace::chrome::is_well_formed_json(json) {
        return Err("not well-formed JSON".into());
    }
    if !json.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("missing schema tag {SCHEMA:?}"));
    }
    for key in ["\"optimized\":", "\"reference\":", "\"speedup_ns_per_event\":"] {
        if !json.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    let mut medians = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"events_per_sec\": {\"median\": ") {
        let num = &rest[at + "\"events_per_sec\": {\"median\": ".len()..];
        let end = num.find([',', '}']).ok_or("unterminated events_per_sec median")?;
        let value: f64 =
            num[..end].trim().parse().map_err(|e| format!("bad events_per_sec: {e}"))?;
        medians.push(value);
        rest = &rest[at + 1..];
    }
    if medians.len() != 2 {
        return Err(format!("expected 2 events_per_sec medians, found {}", medians.len()));
    }
    // partial_cmp: a NaN median must fail validation, not slip past `>`.
    if let Some(bad) =
        medians.iter().find(|v| (**v).partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater))
    {
        return Err(format!("events_per_sec must be positive, got {bad}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_median_and_extremes() {
        let s = Spread::of(vec![3.0, 1.0, 2.0]);
        assert_eq!((s.median, s.min, s.max), (2.0, 1.0, 3.0));
        let s = Spread::of(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn sample_rates() {
        let s = Sample { wall_ns: 2_000, events: 1_000 };
        assert_eq!(s.ns_per_event(), 2.0);
        assert_eq!(s.events_per_sec(), 5e8);
    }

    #[test]
    fn json_roundtrip_validates() {
        let stats = PathStats {
            wall_ms: Spread { median: 10.0, min: 9.5, max: 11.0 },
            ns_per_event: Spread { median: 50.0, min: 48.0, max: 52.0 },
            events_per_sec: Spread { median: 2e7, min: 1.9e7, max: 2.1e7 },
        };
        let report = BenchReport {
            iters: 3,
            runs_per_iter: 32,
            events_per_iter: 123_456,
            optimized: stats,
            reference: stats,
            speedup: 1.0,
        };
        let json = to_json(&report);
        assert_eq!(validate(&json), Ok(()));
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate("{").is_err());
        assert!(validate("{}").is_err());
        let zeroed = to_json(&BenchReport {
            iters: 1,
            runs_per_iter: 1,
            events_per_iter: 0,
            optimized: PathStats {
                wall_ms: Spread { median: 1.0, min: 1.0, max: 1.0 },
                ns_per_event: Spread { median: 1.0, min: 1.0, max: 1.0 },
                events_per_sec: Spread { median: 0.0, min: 0.0, max: 0.0 },
            },
            reference: PathStats {
                wall_ms: Spread { median: 1.0, min: 1.0, max: 1.0 },
                ns_per_event: Spread { median: 1.0, min: 1.0, max: 1.0 },
                events_per_sec: Spread { median: 0.0, min: 0.0, max: 0.0 },
            },
            speedup: 1.0,
        });
        assert!(validate(&zeroed).unwrap_err().contains("positive"));
    }

    fn report_with_optimized_median(median: f64) -> BenchReport {
        let stats = PathStats {
            wall_ms: Spread { median: 10.0, min: 9.5, max: 11.0 },
            ns_per_event: Spread { median, min: median * 0.95, max: median * 1.4 },
            events_per_sec: Spread { median: 2e7, min: 1.9e7, max: 2.1e7 },
        };
        BenchReport {
            iters: 3,
            runs_per_iter: 32,
            events_per_iter: 123_456,
            optimized: stats,
            reference: stats,
            speedup: 1.0,
        }
    }

    #[test]
    fn trajectory_appends_and_reparses() {
        let entry = TrajectoryEntry::from_report("pr5", &report_with_optimized_median(50.0));
        let first = append_trajectory(None, &entry);
        assert!(first.contains(TRAJECTORY_SCHEMA));
        assert!(relief_trace::chrome::is_well_formed_json(&first));
        let second = append_trajectory(Some(&first), &entry);
        assert_eq!(second.matches("\"label\": \"pr5\"").count(), 2);
        assert!(relief_trace::chrome::is_well_formed_json(&second));
        // Garbage previous content starts a fresh single-entry history.
        let fresh = append_trajectory(Some("not json"), &entry);
        assert_eq!(fresh.matches("\"label\"").count(), 1);
    }

    #[test]
    fn trajectory_v2_optional_fields_and_v1_compat() {
        // Optional fields absent: the line matches the v1 entry shape.
        let plain = TrajectoryEntry::from_report("abc", &report_with_optimized_median(50.0));
        assert!(!plain.to_json().contains("rss_peak_mb"));
        // Present: emitted, and the file stays well-formed.
        let mut soak = plain.clone();
        soak.label = "abc+soak".into();
        soak.rss_peak_mb = Some(123.4);
        soak.live_high_water = Some(42);
        let body = append_trajectory(None, &soak);
        assert!(body.contains("\"rss_peak_mb\": 123.4"), "{body}");
        assert!(body.contains("\"live_high_water\": 42"), "{body}");
        assert!(relief_trace::chrome::is_well_formed_json(&body));
        // A v1-tagged history is still parsed: entries survive the append.
        let v1 = append_trajectory(None, &plain)
            .replace(TRAJECTORY_SCHEMA, TRAJECTORY_SCHEMA_V1);
        assert!(v1.contains(TRAJECTORY_SCHEMA_V1));
        let upgraded = append_trajectory(Some(&v1), &soak);
        assert_eq!(upgraded.matches("\"label\"").count(), 2, "{upgraded}");
        assert!(upgraded.contains(TRAJECTORY_SCHEMA), "{upgraded}");
        // The soak baseline reader finds the latest +soak entry in both.
        assert_eq!(last_soak_ns(&upgraded), Some(50.0));
        assert_eq!(last_soak_ns(&v1), None, "no +soak entry in the v1 body");
        assert_eq!(last_soak_ns("not json"), None);
    }

    #[test]
    fn trajectory_entry_sanitizes_label() {
        let mut entry = TrajectoryEntry::from_report("x", &report_with_optimized_median(50.0));
        entry.label = "a\"b\\c".into();
        assert!(relief_trace::chrome::is_well_formed_json(&format!(
            "{{\"e\": {}}}",
            entry.to_json()
        )));
    }

    #[test]
    fn baseline_median_roundtrips() {
        let json = to_json(&report_with_optimized_median(62.5));
        assert_eq!(baseline_optimized_ns(&json), Ok(62.5));
        assert!(baseline_optimized_ns("{}").is_err());
    }

    #[test]
    fn regression_gate_passes_within_tolerance_and_fails_beyond() {
        let baseline = to_json(&report_with_optimized_median(100.0));
        // Fresh min 95.0 (median 100) against limit 110: pass.
        let same = report_with_optimized_median(100.0);
        assert!(regression_gate(&baseline, &same, 0.10).is_ok());
        // Fresh min 114 > 110: fail, and the message shows both sides.
        let slower = report_with_optimized_median(120.0);
        let err = regression_gate(&baseline, &slower, 0.10).unwrap_err();
        assert!(err.contains("100.0"), "missing old median: {err}");
        assert!(err.contains("114.0"), "missing new min: {err}");
        // A looser tolerance admits the same run.
        assert!(regression_gate(&baseline, &slower, 0.20).is_ok());
    }

    #[test]
    fn pinned_subset_is_stable() {
        let cases = pinned_subset();
        let high_mixes = Contention::High.mixes().len();
        assert_eq!(cases.len(), high_mixes * crate::MAIN_POLICIES.len() + 2);
        assert!(cases.iter().all(|c| !c.workload.is_empty() && c.stream.is_none()));
    }

    #[test]
    fn service_subset_streams_every_case() {
        let cases = service_subset();
        assert_eq!(cases.len(), 4);
        for c in &cases {
            assert_eq!(c.workload.len(), 3);
            let stream = c.stream.as_ref().unwrap();
            assert!(stream.enabled(), "service case must stream");
            assert_eq!(stream.tenants.len(), c.workload.len());
        }
        // The two paths must dispatch identical event counts in stream
        // mode too — the microbench's core assertion, checked once here
        // so `xtask bench --service` cannot be the first to find out.
        let o = run_cases(&cases, false);
        let r = run_cases(&cases, true);
        assert_eq!(o.events, r.events);
        assert!(o.events > 0);
    }
}
