//! Minimal self-contained timing harness.
//!
//! The sandbox cannot fetch `criterion`, so the `benches/` targets use
//! this instead: fixed iteration counts, a short warm-up, and a
//! one-line-per-case report. Numbers are indicative (no outlier
//! rejection); the relative ordering across cases is the claim.

use std::hint::black_box;
use std::time::Instant;

/// Times `iters` calls of `f` after a short warm-up and prints one
/// aligned report line. Returns nanoseconds per iteration.
pub fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> f64 {
    assert!(iters > 0, "need at least one iteration");
    for _ in 0..(iters / 10).max(1) {
        black_box(f());
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let ns = t0.elapsed().as_nanos() as f64 / f64::from(iters);
    println!("{name:<44} {iters:>7} iters  {ns:>14.1} ns/iter");
    ns
}

/// Times one call each of pre-built closures (for cases where per-call
/// state must be prepared up front, like destructive queue operations).
/// Returns nanoseconds per call.
pub fn bench_consume<S, T>(name: &str, states: Vec<S>, mut f: impl FnMut(S) -> T) -> f64 {
    let n = states.len() as f64;
    assert!(n > 0.0, "need at least one state");
    let t0 = Instant::now();
    for s in states {
        black_box(f(s));
    }
    let ns = t0.elapsed().as_nanos() as f64 / n;
    println!("{name:<44} {n:>7.0} iters  {ns:>14.1} ns/iter");
    ns
}
