//! Chaos campaign: degradation curves under combined fault and overload
//! pressure, with the self-healing service stack switched on.
//!
//! Sweeps a policy × arrival-rate × fault-rate grid over the campaign
//! engine. Every chaos cell streams the three-tenant CGL workload
//! (Canny = `Latency`, GRU = `Standard`, LSTM = `BestEffort`) with
//! circuit breakers, request timeouts, and hedged retries enabled, while
//! the fault plan injects task faults, DMA corruption, forwarded-chunk
//! ECC failures, and DRAM-channel blackout windows at the swept rate.
//! Fault rate 0 is the healthy baseline of the same overload point, so
//! each row's degradation (Δ attainment) reads directly against it.
//!
//! All knobs are folded into the platform label — the label is each
//! cell's canonical identity (and cache key), so the sweep inherits the
//! engine's determinism contract and the rendered report is
//! byte-identical at any `--jobs`.

use crate::campaign::{CampaignResults, CampaignSpec, ExecOptions, PlatformSpec, WorkloadSpec};
use relief_accel::SocConfig;
use relief_core::PolicyKind;
use relief_fault::FaultConfig;
use relief_metrics::report::Table;
use relief_metrics::RunStats;
use relief_service::{AdmissionConfig, ArrivalProcess, SelfHealConfig, StreamConfig, TenantCfg};
use std::fmt::Write as _;

/// Knobs of one chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosSpec {
    /// Fault-plan seed shared by every faulted cell.
    pub fault_seed: u64,
    /// Arrival-stream seed shared by every cell.
    pub stream_seed: u64,
    /// Combined per-attempt fault probabilities to sweep: each value is
    /// applied as the task, DMA, and forwarded-chunk ECC rate at once.
    /// `0` cells run fault-free (and outage-free) baselines.
    pub fault_rates: Vec<f64>,
    /// Per-tenant arrival rates (requests/s) to sweep; each value is one
    /// overload point applied to all three tenants.
    pub arrival_rates: Vec<f64>,
    /// DRAM-channel MTTF in picoseconds, applied to every faulted cell
    /// (`0` disables channel blackouts everywhere).
    pub dram_mttf_ps: u64,
    /// Stream duration, picoseconds (arrivals stop here; the run drains).
    pub duration_ps: u64,
    /// Warm-up truncation for latency histograms and attainment.
    pub warmup_ps: u64,
    /// Global in-flight admission cap (`0` disables admission control).
    pub max_in_flight: u32,
    /// Policies under test, in row order.
    pub policies: Vec<PolicyKind>,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            fault_seed: FaultConfig::default().seed,
            stream_seed: StreamConfig::default().seed,
            fault_rates: vec![0.0, 0.005, 0.02],
            arrival_rates: vec![150.0, 400.0],
            dram_mttf_ps: 10_000_000_000, // one blackout every ~10 ms
            duration_ps: 50_000_000_000,  // 50 ms of arrivals
            warmup_ps: 5_000_000_000,     // first 5 ms excluded
            max_in_flight: 12,
            policies: vec![PolicyKind::Fcfs, PolicyKind::Relief],
        }
    }
}

impl ChaosSpec {
    /// Validates the sweep axes.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending knob when an axis is empty,
    /// a fault rate is outside `[0, 1)`, or an arrival rate is not a
    /// positive finite number.
    pub fn validate(&self) -> Result<(), String> {
        if self.fault_rates.is_empty() {
            return Err("chaos sweep needs at least one fault rate".into());
        }
        if self.arrival_rates.is_empty() {
            return Err("chaos sweep needs at least one arrival rate".into());
        }
        if self.policies.is_empty() {
            return Err("chaos sweep needs at least one policy".into());
        }
        for &r in &self.fault_rates {
            if !r.is_finite() || !(0.0..1.0).contains(&r) {
                return Err(format!("fault rate {r} outside [0, 1)"));
            }
        }
        for &r in &self.arrival_rates {
            if !r.is_finite() || r <= 0.0 {
                return Err(format!("arrival rate {r} must be positive and finite"));
            }
        }
        // Delegate the remaining knob checks to the fault and service
        // crates so the validators cannot drift.
        self.fault_config(self.fault_rates[0])
            .validate()
            .map_err(|e| e.to_string())?;
        self.stream_config(self.arrival_rates[0])
            .validate()
            .map_err(|e| e.to_string())
    }

    /// The self-healing stack every chaos cell runs: breakers trip after
    /// three consecutive failures and shed for 2 ms before probing,
    /// requests time out at 2× their relative deadline (past that point
    /// a request cannot meet its budget and is only burning capacity),
    /// and the two deadline-bearing classes may hedge one replacement
    /// each.
    pub fn self_heal() -> SelfHealConfig {
        SelfHealConfig {
            breaker_failures: 3,
            breaker_open_ps: 2_000_000_000,
            probe_rate: 0.5,
            probes_to_close: 2,
            timeout_factor: 2.0,
            hedge_budget: [1, 1, 0],
            hedge_rate: 1.0,
        }
    }

    /// The fault plan of one swept cell. Rate 0 is the fully healthy
    /// baseline: no corruption *and* no channel blackouts, so its row is
    /// exactly what the service campaign would report for that load.
    fn fault_config(&self, rate: f64) -> FaultConfig {
        if rate == 0.0 {
            return FaultConfig::default();
        }
        FaultConfig {
            seed: self.fault_seed,
            task_fault_rate: rate,
            dma_fault_rate: rate,
            ecc_chunk_rate: rate,
            dram_mttf_ps: self.dram_mttf_ps,
            ..FaultConfig::default()
        }
    }

    /// The stream configuration of one swept cell (self-healing on).
    fn stream_config(&self, rate: f64) -> StreamConfig {
        StreamConfig {
            seed: self.stream_seed,
            duration_ps: self.duration_ps,
            warmup_ps: self.warmup_ps,
            process: ArrivalProcess::Poisson,
            tenants: crate::service::TENANT_APPS
                .iter()
                .map(|&(_, q)| TenantCfg::new(q, rate))
                .collect(),
            admission: if self.max_in_flight > 0 {
                AdmissionConfig {
                    max_in_flight: self.max_in_flight,
                    ..AdmissionConfig::default()
                }
            } else {
                AdmissionConfig::default()
            },
            self_heal: Self::self_heal(),
        }
    }

    /// The platform label of one grid cell. Encodes every stream, fault,
    /// and healing knob: the label is the run's canonical identity, and
    /// two cells with different plans must never collide.
    fn platform_label(&self, arrival: f64, fault: f64) -> String {
        let h = Self::self_heal();
        let mut label = format!(
            "mobile+chaos-r{arrival:.0}s{:x}d{}us+adm{}+heal{}o{}us-t{:.0}-h{}{}{}+f{fault:.4}s{:x}",
            self.stream_seed,
            self.duration_ps / 1_000_000,
            self.max_in_flight,
            h.breaker_failures,
            h.breaker_open_ps / 1_000_000,
            h.timeout_factor,
            h.hedge_budget[0],
            h.hedge_budget[1],
            h.hedge_budget[2],
            self.fault_seed,
        );
        if fault > 0.0 && self.dram_mttf_ps > 0 {
            let _ = write!(label, "+dmttf{}us", self.dram_mttf_ps / 1_000_000);
        }
        label
    }

    /// Expands the sweep into a campaign: policy-major, then one platform
    /// per (arrival rate, fault rate) pair with the fault axis cycling
    /// fastest.
    pub fn campaign(&self) -> CampaignSpec {
        let mut platforms = Vec::new();
        for &arrival in &self.arrival_rates {
            for &fault in &self.fault_rates {
                let stream = self.stream_config(arrival);
                let plan = self.fault_config(fault);
                platforms.push(PlatformSpec::custom(
                    self.platform_label(arrival, fault),
                    move |p| {
                        SocConfig::mobile(p)
                            .with_stream(stream.clone())
                            .with_fault(plan.clone())
                    },
                ));
            }
        }
        CampaignSpec {
            name: "chaos".into(),
            policies: self.policies.clone(),
            workloads: vec![WorkloadSpec::custom(
                "service/CGL",
                None,
                crate::service::tenant_workload,
            )],
            platforms,
            replicates: 1,
        }
    }

    /// Renders executed results as the degradation table: one row per
    /// (policy, arrival rate, fault rate) in expansion order. `Δatt`
    /// columns read each faulted row against the fault-0 baseline of the
    /// same policy and load point (`-` when the sweep has no 0 axis
    /// value or the baseline failed). Failed runs render as `FAILED`
    /// rows instead of disappearing.
    pub fn render(&self, results: &CampaignResults) -> String {
        let mut t = Table::with_columns(&[
            "policy",
            "rate/s",
            "fault",
            "arrivals",
            "att lat %",
            "att be %",
            "Δatt lat",
            "shed brk",
            "timeout",
            "hedge",
            "ecc",
            "fwd-inv",
            "outage",
            "open ms",
        ]);
        let cells = self.arrival_rates.len() * self.fault_rates.len();
        for (i, spec) in self.campaign().expand().iter().enumerate() {
            let cell = i % cells;
            let arrival = self.arrival_rates[cell / self.fault_rates.len()];
            let fault = self.fault_rates[cell % self.fault_rates.len()];
            let policy = spec.policy.name().to_string();
            let rate = format!("{arrival:.0}");
            let frate = format!("{fault:.4}");
            let Some(rec) = results.get(&spec.label()) else {
                let mut row = vec![policy, rate, frate];
                row.extend((0..11).map(|_| "FAILED".to_string()));
                t.row(row);
                continue;
            };
            let s = &rec.result.stats;
            let base = self.baseline_attainment(results, spec.policy, arrival);
            t.row(chaos_row(policy, rate, frate, s, base));
        }
        format!(
            "[chaos: CGL | seeds {:#x}/{:#x} | {} us stream, {} us warm-up | \
             in-flight cap {} | dram mttf {} us | breakers+timeouts+hedges on]\n{}",
            self.stream_seed,
            self.fault_seed,
            self.duration_ps / 1_000_000,
            self.warmup_ps / 1_000_000,
            self.max_in_flight,
            self.dram_mttf_ps / 1_000_000,
            t.render()
        )
    }

    /// Latency-class attainment of the fault-0 cell at (`policy`,
    /// `arrival`), when the sweep has one and it succeeded.
    fn baseline_attainment(
        &self,
        results: &CampaignResults,
        policy: PolicyKind,
        arrival: f64,
    ) -> Option<f64> {
        self.fault_rates.contains(&0.0).then_some(())?;
        let runs = self.campaign().expand();
        let label = self.platform_label(arrival, 0.0);
        let spec = runs
            .iter()
            .find(|r| r.policy == policy && r.platform.label() == label)?;
        let rec = results.get(&spec.label())?;
        Some(rec.result.stats.service.classes[0].attainment())
    }
}

/// One degradation row.
fn chaos_row(
    policy: String,
    rate: String,
    frate: String,
    s: &RunStats,
    baseline: Option<f64>,
) -> Vec<String> {
    let svc = &s.service;
    let f = &s.faults;
    let att_lat = svc.classes[0].attainment();
    let delta = match baseline {
        Some(b) => format!("{:+.1}", (att_lat - b) * 100.0),
        None => "-".to_string(),
    };
    let open_ms = match svc.open_hist.mean_ps() {
        Some(ps) => format!("{:.2}", ps / 1e9),
        None => "-".to_string(),
    };
    vec![
        policy,
        rate,
        frate,
        svc.arrivals().to_string(),
        format!("{:.1}", att_lat * 100.0),
        format!("{:.1}", svc.classes[2].attainment() * 100.0),
        delta,
        svc.shed_breaker().to_string(),
        svc.timed_out().to_string(),
        svc.hedged().to_string(),
        f.ecc_faults.to_string(),
        f.forward_invalidations.to_string(),
        f.channel_outages.to_string(),
        open_ms,
    ]
}

/// Parses a chaos binary's CLI into a sweep plus execution options.
///
/// Recognised flags: `--fault-seed <N>` and `--stream-seed <N>` (decimal
/// or `0x` hex), `--fault-rate <R[,R…]>`, `--rate <R[,R…]>` (per-tenant
/// requests/s), `--dram-mttf-us <N>` (`0` = no channel blackouts),
/// `--duration-us <N>`, `--warmup-us <N>`, `--max-in-flight <N>`,
/// `--jobs <N>`, `--no-cache`.
///
/// # Errors
///
/// Returns a printable message (never panics) on unknown flags, missing
/// or malformed values, and axis values a [`ChaosSpec`] rejects.
pub fn parse_cli(
    args: impl IntoIterator<Item = String>,
) -> Result<(ChaosSpec, ExecOptions), String> {
    let mut spec = ChaosSpec::default();
    let mut opts =
        ExecOptions { cache: crate::cache::CacheConfig::standard(), ..Default::default() };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fault-seed" => {
                let v = it.next().ok_or("--fault-seed needs a value")?;
                spec.fault_seed = parse_seed(&v)?;
            }
            "--stream-seed" => {
                let v = it.next().ok_or("--stream-seed needs a value")?;
                spec.stream_seed = parse_seed(&v)?;
            }
            "--fault-rate" => {
                let v = it.next().ok_or("--fault-rate needs a value")?;
                spec.fault_rates = parse_rates(&v, "--fault-rate")?;
            }
            "--rate" => {
                let v = it.next().ok_or("--rate needs a value")?;
                spec.arrival_rates = parse_rates(&v, "--rate")?;
            }
            "--dram-mttf-us" => {
                let v = it.next().ok_or("--dram-mttf-us needs a value")?;
                let us: u64 =
                    v.parse().map_err(|_| format!("bad --dram-mttf-us '{v}'"))?;
                spec.dram_mttf_ps = us.saturating_mul(1_000_000);
            }
            "--duration-us" => {
                let v = it.next().ok_or("--duration-us needs a value")?;
                let us: u64 =
                    v.parse().map_err(|_| format!("bad --duration-us '{v}'"))?;
                spec.duration_ps = us.saturating_mul(1_000_000);
            }
            "--warmup-us" => {
                let v = it.next().ok_or("--warmup-us needs a value")?;
                let us: u64 = v.parse().map_err(|_| format!("bad --warmup-us '{v}'"))?;
                spec.warmup_ps = us.saturating_mul(1_000_000);
            }
            "--max-in-flight" => {
                let v = it.next().ok_or("--max-in-flight needs a value")?;
                spec.max_in_flight =
                    v.parse().map_err(|_| format!("bad --max-in-flight '{v}'"))?;
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                opts.jobs = v.parse().map_err(|_| format!("bad --jobs '{v}'"))?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--no-cache" => opts.cache = crate::cache::CacheConfig::disabled(),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    spec.validate()?;
    Ok((spec, opts))
}

/// Parses a comma-separated rate list.
fn parse_rates(v: &str, flag: &str) -> Result<Vec<f64>, String> {
    v.split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| format!("bad {flag} '{}'", s.trim()))
        })
        .collect()
}

/// Parses a seed as decimal or `0x`-prefixed hex.
fn parse_seed(v: &str) -> Result<u64, String> {
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.map_err(|_| format!("bad seed '{v}'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{execute, ExecOptions};

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn cli_round_trips_and_rejects() {
        let (spec, opts) = parse_cli(args(&[
            "--fault-seed",
            "0xBEEF",
            "--stream-seed",
            "7",
            "--fault-rate",
            "0,0.01",
            "--rate",
            "100,300",
            "--dram-mttf-us",
            "5000",
            "--duration-us",
            "4000",
            "--warmup-us",
            "400",
            "--max-in-flight",
            "8",
            "--jobs",
            "3",
            "--no-cache",
        ]))
        .unwrap();
        assert_eq!(spec.fault_seed, 0xBEEF);
        assert_eq!(spec.stream_seed, 7);
        assert_eq!(spec.fault_rates, vec![0.0, 0.01]);
        assert_eq!(spec.arrival_rates, vec![100.0, 300.0]);
        assert_eq!(spec.dram_mttf_ps, 5_000_000_000);
        assert_eq!(spec.duration_ps, 4_000_000_000);
        assert_eq!(spec.max_in_flight, 8);
        assert_eq!(opts.jobs, 3);
        assert!(!opts.cache.enabled, "--no-cache must disable the store");
        let (_, opts) = parse_cli(args(&[])).unwrap();
        assert!(opts.cache.enabled, "the persistent cache defaults on");

        assert!(parse_cli(args(&["--fault-rate", "1.5"])).is_err());
        assert!(parse_cli(args(&["--rate", "0"])).is_err());
        assert!(parse_cli(args(&["--rate", "nan"])).is_err());
        assert!(parse_cli(args(&["--fault-seed"])).is_err());
        assert!(parse_cli(args(&["--frobnicate"])).is_err());
        assert!(parse_cli(args(&["--jobs", "0"])).is_err());
    }

    #[test]
    fn labels_encode_every_knob_and_grid_covers_axes() {
        let spec = ChaosSpec::default();
        let campaign = spec.campaign();
        assert_eq!(
            campaign.platforms.len(),
            spec.arrival_rates.len() * spec.fault_rates.len()
        );
        let labels: Vec<String> =
            campaign.platforms.iter().map(|p| p.label().to_string()).collect();
        // Fault-0 baselines drop the dram-mttf suffix; faulted cells keep it.
        assert!(labels[0].contains("+f0.0000s"), "{}", labels[0]);
        assert!(!labels[0].contains("dmttf"), "{}", labels[0]);
        assert!(labels[1].contains("+dmttf10000us"), "{}", labels[1]);
        // Every knob perturbation must change the identity.
        let mut seen = labels.clone();
        seen.dedup();
        assert_eq!(seen.len(), labels.len(), "duplicate platform labels");
        for perturbed in [
            ChaosSpec { fault_seed: 1, ..spec.clone() },
            ChaosSpec { stream_seed: 1, ..spec.clone() },
            ChaosSpec { dram_mttf_ps: 1_000_000, ..spec.clone() },
            ChaosSpec { max_in_flight: 3, ..spec.clone() },
        ] {
            assert_ne!(spec.campaign().hash(), perturbed.campaign().hash());
        }
    }

    #[test]
    fn chaos_grid_degrades_and_self_heals() {
        let spec = ChaosSpec {
            fault_rates: vec![0.0, 0.05],
            arrival_rates: vec![300.0],
            duration_ps: 20_000_000_000,
            warmup_ps: 2_000_000_000,
            policies: vec![PolicyKind::Relief],
            ..Default::default()
        };
        spec.validate().unwrap();
        let results = execute(spec.campaign().expand(), &ExecOptions::default());
        assert!(results.failures().is_empty(), "{:?}", results.failures());
        assert!(results.mismatched().is_empty(), "{:?}", results.mismatched());
        let runs = spec.campaign().expand();
        let healthy = &results.get(&runs[0].label()).unwrap().result.stats;
        let faulted = &results.get(&runs[1].label()).unwrap().result.stats;
        assert_eq!(healthy.faults.injected(), 0);
        assert!(faulted.faults.injected() > 0, "rate 0.05 injected nothing");
        assert!(
            faulted.service.timed_out() > 0 || faulted.service.shed_breaker() > 0,
            "no self-healing action fired under 5% faults: {:?}",
            faulted.service
        );
        let report = spec.render(&results);
        assert!(report.contains("0.0500"), "{report}");
        assert!(report.contains("Δatt lat"), "{report}");
    }
}
