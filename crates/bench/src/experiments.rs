//! One function per paper artifact. Each returns the rendered text the
//! corresponding `src/bin/` binary prints (and `all_experiments` chains).
//!
//! Every artifact exists in two forms: a `*_with(&Ctx)` variant that
//! answers each simulation from a campaign-prewarmed [`Ctx`] (falling
//! back to inline execution on cache misses, with byte-identical
//! output), and a zero-argument wrapper preserving the original
//! signature for the standalone per-figure binaries. The [`grid`]
//! module is the single source of truth for the canonical [`RunSpec`]s
//! both sides use, so a cache hit and an inline run are always the same
//! simulation.

use crate::campaign::Ctx;
use crate::{PolicySweep, FAIRNESS_POLICIES, MAIN_POLICIES};
use relief_accel::{AppSpec, BwPredictorKind, SocConfig};
use relief_core::predict::DataMovePredictor;
use relief_core::PolicyKind;
use relief_metrics::report::Table;
use relief_metrics::summary::geometric_mean;
use relief_metrics::EnergyModel;
use relief_workloads::{App, Contention, Mix};
use std::fmt::Write as _;

/// Canonical [`RunSpec`]s for every simulation the paper artifacts need,
/// plus [`grid::full_grid`] — the deduplicated union the campaign engine
/// prewarms before `all_experiments` renders.
pub mod grid {
    use super::*;
    use crate::campaign::{PlatformSpec, WorkloadSpec};
    pub use crate::campaign::RunSpec;
    use std::collections::BTreeSet;

    /// The Table VI mobile platform.
    pub fn mobile() -> PlatformSpec {
        PlatformSpec::mobile()
    }

    /// Mobile with forwarding and colocation hardware removed
    /// (Table II's "no fwd" baseline).
    pub fn mobile_nofwd() -> PlatformSpec {
        PlatformSpec::custom("mobile-nofwd", |p| SocConfig::mobile(p).without_forwarding())
    }

    /// Mobile with a crossbar interconnect instead of the bus (Fig. 13).
    pub fn mobile_xbar() -> PlatformSpec {
        PlatformSpec::custom("mobile-xbar", |p| {
            let mut cfg = SocConfig::mobile(p);
            cfg.mem = cfg.mem.with_crossbar();
            cfg
        })
    }

    /// The Fig. 2 pedagogical platform: one A and one B accelerator,
    /// schedule trace recorded.
    pub fn fig2_platform() -> PlatformSpec {
        PlatformSpec::custom("fig2[1A+1B]", |p| {
            let mut cfg = SocConfig::generic(vec![1, 1], p);
            cfg.record_trace = true;
            cfg
        })
    }

    /// Mobile with explicit bandwidth / data-movement predictors
    /// (Table VIII, Fig. 11).
    pub fn predictor_platform(bw: BwPredictorKind, dm: DataMovePredictor) -> PlatformSpec {
        let bw_label = match bw {
            BwPredictorKind::Max => "max".to_string(),
            BwPredictorKind::Last => "last".to_string(),
            BwPredictorKind::Average(n) => format!("avg{n}"),
            BwPredictorKind::Ewma(a) => format!("ewma{a}"),
        };
        let dm_label = match dm {
            DataMovePredictor::Max => "max",
            DataMovePredictor::Predicted => "pred",
        };
        PlatformSpec::custom(format!("pred[bw={bw_label},dm={dm_label}]"), move |p| {
            let mut cfg = SocConfig::mobile(p);
            cfg.bw_predictor = bw;
            cfg.dm_predictor = dm;
            cfg
        })
    }

    /// One paper mix under one policy on the mobile platform — the cell
    /// every contention sweep is made of.
    pub fn mix_run(policy: PolicyKind, contention: Contention, mix: &Mix) -> RunSpec {
        RunSpec::new(policy, WorkloadSpec::mix(contention, mix), mobile())
    }

    /// One application running alone (Table II), with or without
    /// forwarding hardware.
    pub fn solo_run(app: App, forwarding: bool) -> RunSpec {
        let workload = WorkloadSpec::custom(format!("solo/{}", app.symbol()), None, move || {
            vec![AppSpec::once(app.symbol(), app.dag())]
        });
        let platform = if forwarding { mobile() } else { mobile_nofwd() };
        RunSpec::new(PolicyKind::Relief, workload, platform)
    }

    /// The Fig. 2 example DAGs under one policy.
    pub fn fig2_run(policy: PolicyKind) -> RunSpec {
        RunSpec::new(
            policy,
            WorkloadSpec::custom("fig2", None, super::fig2_workload),
            fig2_platform(),
        )
    }

    /// RELIEF on one high-contention mix with explicit predictors.
    pub fn predictor_run(bw: BwPredictorKind, dm: DataMovePredictor, mix: &Mix) -> RunSpec {
        RunSpec::new(
            PolicyKind::Relief,
            WorkloadSpec::mix(Contention::High, mix),
            predictor_platform(bw, dm),
        )
    }

    /// RELIEF on one high-contention mix over the crossbar (Fig. 13).
    pub fn xbar_run(mix: &Mix) -> RunSpec {
        RunSpec::new(
            PolicyKind::Relief,
            WorkloadSpec::mix(Contention::High, mix),
            mobile_xbar(),
        )
    }

    /// The union of every run the paper artifacts consume, deduplicated
    /// by canonical label, in stable order. `all_experiments` executes
    /// this grid on the campaign engine and renders from the cache;
    /// Fig. 12 is absent because it measures *host* wall-clock latency,
    /// not simulated behavior.
    pub fn full_grid() -> Vec<RunSpec> {
        let mut specs = Vec::new();
        // Figs. 4–10, Tables VII & XIII base cells: every policy × mix.
        for contention in Contention::ALL {
            for mix in contention.mixes() {
                for &policy in &FAIRNESS_POLICIES {
                    specs.push(mix_run(policy, contention, &mix));
                }
            }
        }
        // Table II solo calibration runs.
        for app in App::ALL {
            specs.push(solo_run(app, true));
            specs.push(solo_run(app, false));
        }
        // Fig. 2 example schedules.
        for &policy in &FAIRNESS_POLICIES {
            specs.push(fig2_run(policy));
        }
        // Table VIII / Fig. 11 predictor variants and Fig. 13 crossbar.
        for mix in Contention::High.mixes() {
            for bw in [
                BwPredictorKind::Max,
                BwPredictorKind::Last,
                BwPredictorKind::Average(15),
                BwPredictorKind::Ewma(0.25),
            ] {
                specs.push(predictor_run(bw, DataMovePredictor::Max, &mix));
            }
            specs.push(predictor_run(BwPredictorKind::Max, DataMovePredictor::Predicted, &mix));
            specs.push(predictor_run(
                BwPredictorKind::Average(15),
                DataMovePredictor::Predicted,
                &mix,
            ));
            specs.push(xbar_run(&mix));
        }
        let mut seen = BTreeSet::new();
        specs.retain(|s| seen.insert(s.label()));
        specs
    }
}

/// Table II: absolute time in compute vs data movement per application,
/// comparing no-forwarding to forwarding-whenever-possible (ideal).
pub fn table2_with(ctx: &Ctx) -> String {
    let mut t = Table::with_columns(&[
        "app",
        "compute us",
        "paper",
        "mem (no fwd) us",
        "paper",
        "mem (ideal) us",
        "paper",
    ]);
    let paper: [(App, f64, f64, f64); 5] = [
        (App::Canny, 3539.37, 237.74, 173.29),
        (App::Deblur, 15610.58, 509.80, 420.06),
        (App::Gru, 1249.31, 3343.72, 1608.01),
        (App::Harris, 6157.30, 372.19, 303.16),
        (App::Lstm, 1470.02, 3879.98, 1797.77),
    ];
    for (app, p_compute, p_nofwd, p_ideal) in paper {
        let nofwd = ctx.run(&grid::solo_run(app, false));
        let ideal = ctx.run(&grid::solo_run(app, true));
        t.row(vec![
            app.name().to_string(),
            format!("{:.2}", ideal.per_app_compute_time[app.symbol()].as_us_f64()),
            format!("{p_compute:.2}"),
            format!("{:.2}", nofwd.per_app_mem_time[app.symbol()].as_us_f64()),
            format!("{p_nofwd:.2}"),
            format!("{:.2}", ideal.per_app_mem_time[app.symbol()].as_us_f64()),
            format!("{p_ideal:.2}"),
        ]);
    }
    format!("[Table II] compute vs data movement, modeled vs paper\n{}", t.render())
}

/// Zero-argument [`table2_with`] for the standalone binary.
pub fn table2() -> String {
    table2_with(&Ctx::empty())
}

/// The Figure 2 pedagogical scenario, reconstructed (the figure text in
/// the source is garbled, so the DAGs are rebuilt to exhibit the same
/// dynamics): three DAGs with an identical A→A→B→B chain and a *common*
/// deadline contend for one A and one B accelerator. Equal deadlines make
/// every deadline/laxity-driven baseline round-robin between the DAGs,
/// forfeiting the colocation windows; RELIEF keeps each chain together.
pub fn fig2_workload() -> Vec<AppSpec> {
    use relief_dag::{AccTypeId, DagBuilder, NodeSpec};
    use relief_sim::Dur;
    let node = |acc: u32, t_us: u64| {
        NodeSpec::new(AccTypeId(acc), Dur::from_us(t_us)).with_output_bytes(16_384)
    };
    #[allow(clippy::expect_used)] // four fresh nodes wired in a line
    let chain = |name: &str| {
        let mut b = DagBuilder::new(name, Dur::from_us(340));
        let ids = [node(0, 20), node(0, 30), node(1, 50), node(1, 30)]
            .into_iter()
            .map(|n| b.add_node(n))
            .collect::<Vec<_>>();
        b.add_chain(&ids).expect("fresh nodes");
        std::sync::Arc::new(b.build().expect("hand-built dag is valid"))
    };
    vec![
        AppSpec::once("D1", chain("d1")),
        AppSpec::once("D2", chain("d2")),
        AppSpec::once("D3", chain("d3")),
    ]
}

/// Fig. 2: schedules of the example DAGs under each policy. RELIEF
/// achieves the ideal schedule: maximum colocations, all deadlines met,
/// shortest makespan.
pub fn fig2_with(ctx: &Ctx) -> String {
    let mut t = Table::with_columns(&[
        "policy",
        "forwards",
        "colocations",
        "DAG deadlines met",
        "makespan us",
    ]);
    let names = vec!["  A".to_string(), "  B".to_string()];
    let mut schedules = String::new();
    for policy in FAIRNESS_POLICIES {
        let r = ctx.run(&grid::fig2_run(policy));
        let met: u64 = r.stats.apps.values().map(|a| a.dag_deadlines_met).sum();
        t.row(vec![
            policy.name().to_string(),
            r.stats.forwards().to_string(),
            r.stats.colocations().to_string(),
            format!("{met}/3"),
            format!("{:.0}", r.stats.exec_time.as_us_f64()),
        ]);
        let _ = writeln!(schedules, "-- {} --\n{}", policy.name(), r.trace.render(&names));
    }
    format!(
        "[Fig. 2] example-DAG schedules (reconstruction)\n{}\n\
         schedules ('=' colocated input, '~' forwarded, '.' DRAM):\n{schedules}",
        t.render()
    )
}

/// Zero-argument [`fig2_with`] for the standalone binary.
pub fn fig2() -> String {
    fig2_with(&Ctx::empty())
}

/// Figs. 4a–d: percent of edges satisfied by forwards + colocations.
pub fn fig4_with(ctx: &Ctx) -> String {
    sweep_all_contention(ctx, "Fig. 4", "forwards+colocations / edges (%)", 1, |r| {
        r.stats.forward_percent()
    })
}

/// Zero-argument [`fig4_with`] for the standalone binary.
pub fn fig4() -> String {
    fig4_with(&Ctx::empty())
}

/// Figs. 5a–d: data movement reaching DRAM as a percent of the all-DRAM
/// baseline (the paper's lower bars; 100 − this − SPAD% = colocated).
pub fn fig5_with(ctx: &Ctx) -> String {
    let mut out = String::new();
    for contention in Contention::ALL {
        let dram = PolicySweep::collect_with(ctx, contention, &MAIN_POLICIES, |r| {
            100.0 * r.stats.traffic.dram_fraction()
        });
        let spad = PolicySweep::collect_with(ctx, contention, &MAIN_POLICIES, |r| {
            100.0 * r.stats.traffic.spad_fraction()
        });
        let _ = writeln!(
            out,
            "[Fig. 5 — {contention} contention]\n{}\n{}",
            dram.render("DRAM traffic (% of all-DRAM baseline)", 1),
            spad.render("SPAD-to-SPAD traffic (% of all-DRAM baseline)", 1),
        );
    }
    out
}

/// Zero-argument [`fig5_with`] for the standalone binary.
pub fn fig5() -> String {
    fig5_with(&Ctx::empty())
}

/// Fig. 6: main-memory and scratchpad energy under high contention,
/// normalized to LAX.
pub fn fig6_with(ctx: &Ctx) -> String {
    let model = EnergyModel::new();
    let energy = |r: &relief_accel::SimResult| model.energy(&r.stats.traffic, r.stats.exec_time);
    let mut dram_rows = Vec::new();
    let mut spad_rows = Vec::new();
    for mix in Contention::High.mixes() {
        let base = energy(&ctx.run(&grid::mix_run(PolicyKind::Lax, Contention::High, &mix)));
        let mut dram = Vec::new();
        let mut spad = Vec::new();
        for p in MAIN_POLICIES {
            let e = energy(&ctx.run(&grid::mix_run(p, Contention::High, &mix)));
            dram.push(e.dram_nj / base.dram_nj);
            spad.push(e.spad_nj / base.spad_nj);
        }
        dram_rows.push((mix.label(), dram));
        spad_rows.push((mix.label(), spad));
    }
    let render = |name: &str, rows: &[(String, Vec<f64>)]| {
        let mut cols = vec!["mix".to_string()];
        cols.extend(MAIN_POLICIES.iter().map(|p| p.name().to_string()));
        let mut t = Table::new(cols);
        for (label, values) in rows {
            t.num_row(label, values, 3);
        }
        let gmeans: Vec<f64> = (0..MAIN_POLICIES.len())
            .map(|i| geometric_mean(rows.iter().map(|(_, v)| v[i])))
            .collect();
        t.num_row("Gmean", &gmeans, 3);
        format!("[{name}]\n{}", t.render())
    };
    format!(
        "{}\n{}",
        render("Fig. 6 — DRAM energy (norm. to LAX), high contention", &dram_rows),
        render("Fig. 6 — SPAD energy (norm. to LAX), high contention", &spad_rows),
    )
}

/// Zero-argument [`fig6_with`] for the standalone binary.
pub fn fig6() -> String {
    fig6_with(&Ctx::empty())
}

/// Figs. 7a–d: accelerator occupancy.
pub fn fig7_with(ctx: &Ctx) -> String {
    sweep_all_contention(ctx, "Fig. 7", "accelerator occupancy", 3, |r| {
        r.stats.accel_occupancy()
    })
}

/// Zero-argument [`fig7_with`] for the standalone binary.
pub fn fig7() -> String {
    fig7_with(&Ctx::empty())
}

/// Figs. 8a–d: percent of node deadlines met.
pub fn fig8_with(ctx: &Ctx) -> String {
    sweep_all_contention(ctx, "Fig. 8", "node deadlines met (%)", 1, |r| {
        r.stats.node_deadline_percent()
    })
}

/// Zero-argument [`fig8_with`] for the standalone binary.
pub fn fig8() -> String {
    fig8_with(&Ctx::empty())
}

/// Fig. 9: per-application slowdown and DAG deadlines met under high
/// contention, eight policies.
pub fn fig9_with(ctx: &Ctx) -> String {
    fairness(ctx, Contention::High, "Fig. 9")
}

/// Zero-argument [`fig9_with`] for the standalone binary.
pub fn fig9() -> String {
    fig9_with(&Ctx::empty())
}

/// Fig. 10: the same under continuous contention (`inf` = starved).
pub fn fig10_with(ctx: &Ctx) -> String {
    fairness(ctx, Contention::Continuous, "Fig. 10")
}

/// Zero-argument [`fig10_with`] for the standalone binary.
pub fn fig10() -> String {
    fig10_with(&Ctx::empty())
}

fn fairness(ctx: &Ctx, contention: Contention, name: &str) -> String {
    let mut out = String::new();
    let mut slow = Table::with_columns(&["mix", "policy", "slowdown per app", "max", "variance"]);
    let mut ddl = {
        let mut cols = vec!["mix".to_string()];
        cols.extend(FAIRNESS_POLICIES.iter().map(|p| p.name().to_string()));
        Table::new(cols)
    };
    for mix in contention.mixes() {
        let mut ddl_row = Vec::new();
        for p in FAIRNESS_POLICIES {
            let r = ctx.run(&grid::mix_run(p, contention, &mix));
            let slowdowns: Vec<(String, f64)> = mix
                .apps
                .iter()
                .map(|a| {
                    let st = &r.stats.apps[a.symbol()];
                    let s = if st.starved || st.dags_completed == 0 {
                        f64::INFINITY
                    } else {
                        st.mean_slowdown().unwrap_or(f64::INFINITY)
                    };
                    (a.symbol().to_string(), s)
                })
                .collect();
            let finite: Vec<f64> =
                slowdowns.iter().map(|(_, s)| *s).filter(|s| s.is_finite()).collect();
            let max = slowdowns.iter().map(|(_, s)| *s).fold(0.0f64, f64::max);
            let var = relief_metrics::summary::variance(&finite);
            slow.row(vec![
                mix.label(),
                p.name().to_string(),
                slowdowns
                    .iter()
                    .map(|(a, s)| {
                        if s.is_finite() {
                            format!("{a}:{s:.2}")
                        } else {
                            format!("{a}:inf")
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(" "),
                if max.is_finite() { format!("{max:.2}") } else { "inf".into() },
                format!("{var:.4}"),
            ]);
            ddl_row.push(r.stats.dag_deadline_percent());
        }
        ddl.num_row(&mix.label(), &ddl_row, 1);
    }
    let _ = writeln!(out, "[{name}a — slowdown, {contention} contention]\n{}", slow.render());
    let _ = writeln!(out, "[{name}b — DAG deadlines met (%), {contention} contention]\n{}", ddl.render());
    out
}

/// Table VII: finished DAG instances per application under continuous
/// contention.
pub fn table7_with(ctx: &Ctx) -> String {
    let mut out = String::new();
    for mix in Contention::Continuous.mixes() {
        let mut cols = vec!["policy".to_string()];
        cols.extend(mix.apps.iter().map(|a| a.symbol().to_string()));
        let mut t = Table::new(cols);
        for p in FAIRNESS_POLICIES {
            let r = ctx.run(&grid::mix_run(p, Contention::Continuous, &mix));
            let mut row = vec![p.name().to_string()];
            row.extend(
                mix.apps.iter().map(|a| r.stats.apps[a.symbol()].dags_completed.to_string()),
            );
            t.row(row);
        }
        let _ = writeln!(out, "[Table VII — mix {}]\n{}", mix.label(), t.render());
    }
    out
}

/// Zero-argument [`table7_with`] for the standalone binary.
pub fn table7() -> String {
    table7_with(&Ctx::empty())
}

/// Runs RELIEF on one high-contention mix with the given predictors.
fn relief_with_predictors(
    ctx: &Ctx,
    mix: &Mix,
    bw: BwPredictorKind,
    dm: DataMovePredictor,
) -> relief_accel::SimResult {
    ctx.run(&grid::predictor_run(bw, dm, mix))
}

/// Table VIII: predictor accuracy, plus forwards / node deadlines met per
/// bandwidth predictor, under high contention.
pub fn table8_with(ctx: &Ctx) -> String {
    use relief_accel::PredictionStats as P;
    let bw_kinds = [
        BwPredictorKind::Max,
        BwPredictorKind::Last,
        BwPredictorKind::Average(15),
        BwPredictorKind::Ewma(0.25),
    ];
    let mut t = Table::with_columns(&[
        "mix",
        "compute err %",
        "DM err %",
        "BW err: Max",
        "Last",
        "Average",
        "EWMA",
        "fwd: Max",
        "Last",
        "Avg",
        "EWMA",
        "ddl: Max",
        "Last",
        "Avg",
        "EWMA",
    ]);
    let mut abs_gmeans: Vec<Vec<f64>> = vec![Vec::new(); 6];
    for mix in Contention::High.mixes() {
        let mut row = vec![mix.label()];
        // Compute + DM errors measured with the Predicted DM scheme.
        let base =
            relief_with_predictors(ctx, &mix, BwPredictorKind::Max, DataMovePredictor::Predicted);
        let comp = P::mean_signed_pct(&base.prediction.compute_rel_errors);
        let dm = P::mean_signed_pct(&base.prediction.dm_rel_errors);
        row.push(format!("{comp:.2}"));
        row.push(format!("{dm:.2}"));
        // The paper's Gmean row uses the absolute values of the per-mix
        // signed errors.
        abs_gmeans[0].push(comp.abs());
        abs_gmeans[1].push(dm.abs());
        let mut fwd = Vec::new();
        let mut ddl = Vec::new();
        for (i, bw) in bw_kinds.iter().enumerate() {
            let r = relief_with_predictors(ctx, &mix, *bw, DataMovePredictor::Max);
            let signed = P::mean_signed_pct(&r.prediction.bw_rel_errors);
            row.push(format!("{signed:.2}"));
            abs_gmeans[2 + i].push(signed.abs());
            fwd.push((r.stats.forwards() + r.stats.colocations()).to_string());
            ddl.push(format!(
                "{}",
                r.stats.apps.values().map(|a| a.node_deadlines_met).sum::<u64>()
            ));
        }
        row.extend(fwd);
        row.extend(ddl);
        t.row(row);
    }
    let mut footer = vec!["Gmean |err|".to_string()];
    footer.extend(abs_gmeans.iter().map(|v| {
        format!("{:.2}", geometric_mean(v.iter().copied()))
    }));
    t.row(footer);
    format!(
        "[Table VIII] predictor accuracy under high contention \
         (signed %, negative = overestimation)\n{}",
        t.render()
    )
}

/// Zero-argument [`table8_with`] for the standalone binary.
pub fn table8() -> String {
    table8_with(&Ctx::empty())
}

/// Fig. 11: node deadlines met with predictive BW / DM predictors,
/// normalized to the Max predictors.
pub fn fig11_with(ctx: &Ctx) -> String {
    let variants: [(&str, BwPredictorKind, DataMovePredictor); 3] = [
        ("Pred. BW", BwPredictorKind::Average(15), DataMovePredictor::Max),
        ("Pred. DM", BwPredictorKind::Max, DataMovePredictor::Predicted),
        ("Pred. BW + Pred. DM", BwPredictorKind::Average(15), DataMovePredictor::Predicted),
    ];
    let mut cols = vec!["mix".to_string()];
    cols.extend(variants.iter().map(|(n, _, _)| n.to_string()));
    let mut t = Table::new(cols);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for mix in Contention::High.mixes() {
        let base =
            relief_with_predictors(ctx, &mix, BwPredictorKind::Max, DataMovePredictor::Max)
                .stats
                .node_deadline_percent();
        let mut row = Vec::new();
        for (i, (_, bw, dm)) in variants.iter().enumerate() {
            let v = relief_with_predictors(ctx, &mix, *bw, *dm).stats.node_deadline_percent();
            let norm = if base > 0.0 { v / base } else { 0.0 };
            row.push(norm);
            columns[i].push(norm);
        }
        t.num_row(&mix.label(), &row, 3);
    }
    let gmeans: Vec<f64> =
        columns.iter().map(|c| geometric_mean(c.iter().copied())).collect();
    t.num_row("Gmean", &gmeans, 3);
    format!(
        "[Fig. 11] node deadlines met with dynamic predictors, normalized to Max predictors\n{}",
        t.render()
    )
}

/// Zero-argument [`fig11_with`] for the standalone binary.
pub fn fig11() -> String {
    fig11_with(&Ctx::empty())
}

/// Fig. 12: average and tail latency of one ready-queue insertion per
/// policy, measured on the host (the paper measures a Cortex-A7; relative
/// ordering is the reproducible part). Also exercised by the Criterion
/// bench `scheduler_latency`.
///
/// This artifact times *host* wall-clock latency with `Instant`, so it is
/// inherently nondeterministic and is never cached or campaign-executed.
pub fn fig12() -> String {
    use relief_core::{ReadyQueues, TaskEntry, TaskKey};
    use relief_dag::AccTypeId;
    use relief_sim::{Dur, Time};
    use std::time::Instant;

    let mut t = Table::with_columns(&["policy", "avg ns", "p99 ns", "modeled cost ns"]);
    for policy in FAIRNESS_POLICIES {
        let mut samples = Vec::with_capacity(2048);
        for trial in 0..2048u64 {
            let mut p = policy.build();
            let mut q = ReadyQueues::new(1);
            // Pre-fill a realistically sized queue (tens of entries).
            let mut prefill: Vec<TaskEntry> = (0..32)
                .map(|i| {
                    TaskEntry::new(
                        TaskKey::new(0, i),
                        AccTypeId(0),
                        Dur::from_us(10 + (i as u64 * 7) % 40),
                        Time::from_us(100 + (i as u64 * 13) % 400),
                    )
                    .with_seq(i as u64)
                })
                .collect();
            p.enqueue_ready(&mut q, &mut prefill, Time::ZERO, &[1]);
            let entry = TaskEntry::new(
                TaskKey::new(1, 0),
                AccTypeId(0),
                Dur::from_us(15),
                Time::from_us(100 + (trial % 197)),
            )
            .with_seq(1000)
            .forwarding_candidate();
            let start = Instant::now();
            p.enqueue_ready(&mut q, &mut vec![entry], Time::from_us(1), &[1]);
            samples.push(start.elapsed().as_nanos() as f64);
        }
        samples.sort_by(f64::total_cmp);
        let avg: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let p99 = samples[(samples.len() * 99) / 100 - 1];
        t.row(vec![
            policy.name().to_string(),
            format!("{avg:.0}"),
            format!("{p99:.0}"),
            format!("{}", SocConfig::default_insert_cost(policy).as_ns_f64()),
        ]);
    }
    format!(
        "[Fig. 12] scheduler insert latency on the host (paper: Cortex-A7; \
         compare relative ordering)\n{}",
        t.render()
    )
}

/// Fig. 13: interconnect occupancy and execution time, bus vs crossbar,
/// under high contention; normalized to LAX on the bus.
pub fn fig13_with(ctx: &Ctx) -> String {
    let mut t = Table::with_columns(&[
        "mix",
        "occ %: LAX",
        "RELIEF-Bus",
        "RELIEF-XBar",
        "time/LAX: RELIEF-Bus",
        "RELIEF-XBar",
    ]);
    let mut occ_cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut time_cols: Vec<Vec<f64>> = vec![Vec::new(); 2];
    for mix in Contention::High.mixes() {
        let lax = ctx.run(&grid::mix_run(PolicyKind::Lax, Contention::High, &mix));
        let relief_bus = ctx.run(&grid::mix_run(PolicyKind::Relief, Contention::High, &mix));
        let relief_xbar = ctx.run(&grid::xbar_run(&mix));

        let occ = [
            100.0 * lax.stats.interconnect_occupancy(),
            100.0 * relief_bus.stats.interconnect_occupancy(),
            100.0 * relief_xbar.stats.interconnect_occupancy(),
        ];
        let base = lax.stats.exec_time.as_us_f64();
        let times = [
            relief_bus.stats.exec_time.as_us_f64() / base,
            relief_xbar.stats.exec_time.as_us_f64() / base,
        ];
        for (i, v) in occ.iter().enumerate() {
            occ_cols[i].push(*v);
        }
        for (i, v) in times.iter().enumerate() {
            time_cols[i].push(*v);
        }
        t.row(vec![
            mix.label(),
            format!("{:.1}", occ[0]),
            format!("{:.1}", occ[1]),
            format!("{:.1}", occ[2]),
            format!("{:.3}", times[0]),
            format!("{:.3}", times[1]),
        ]);
    }
    t.row(vec![
        "Gmean".to_string(),
        format!("{:.1}", geometric_mean(occ_cols[0].iter().copied())),
        format!("{:.1}", geometric_mean(occ_cols[1].iter().copied())),
        format!("{:.1}", geometric_mean(occ_cols[2].iter().copied())),
        format!("{:.3}", geometric_mean(time_cols[0].iter().copied())),
        format!("{:.3}", geometric_mean(time_cols[1].iter().copied())),
    ]);
    format!("[Fig. 13] interconnect sensitivity under high contention\n{}", t.render())
}

/// Zero-argument [`fig13_with`] for the standalone binary.
pub fn fig13() -> String {
    fig13_with(&Ctx::empty())
}

fn sweep_all_contention(
    ctx: &Ctx,
    name: &str,
    header: &str,
    precision: usize,
    metric: impl Fn(&relief_accel::SimResult) -> f64 + Copy,
) -> String {
    let mut out = String::new();
    for contention in Contention::ALL {
        let sweep = PolicySweep::collect_with(ctx, contention, &MAIN_POLICIES, metric);
        let _ = writeln!(
            out,
            "[{name} — {contention} contention]\n{}",
            sweep.render(header, precision)
        );
    }
    out
}

/// Colocation-only percentage sweep, printed alongside Fig. 4 by its
/// binary (the figure stacks COL under FWD).
pub fn fig4_colocations_with(ctx: &Ctx) -> String {
    sweep_all_contention(ctx, "Fig. 4 (colocations only)", "colocations / edges (%)", 1, |r| {
        r.stats.colocation_percent()
    })
}

/// Zero-argument [`fig4_colocations_with`] for the standalone binary.
pub fn fig4_colocations() -> String {
    fig4_colocations_with(&Ctx::empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid::RunSpec;

    #[test]
    fn fig2_workload_shape() {
        let apps = fig2_workload();
        assert_eq!(apps.len(), 3);
        for app in &apps {
            assert_eq!(app.dag.len(), 4);
            assert_eq!(app.dag.edge_count(), 3);
            assert_eq!(app.dag.relative_deadline(), relief_sim::Dur::from_us(340));
            assert!(!app.repeat);
        }
    }

    #[test]
    fn fig2_report_contains_schedules_and_all_policies() {
        let out = fig2();
        for p in FAIRNESS_POLICIES {
            assert!(out.contains(p.name()), "missing {p}");
        }
        assert!(out.contains("colocated input"));
        assert!(out.contains("=D1:n1"), "RELIEF schedule must show a colocation");
    }

    #[test]
    fn table2_reports_all_five_apps() {
        let out = table2();
        for app in relief_workloads::App::ALL {
            assert!(out.contains(app.name()), "missing {app}");
        }
        assert!(out.contains("Table II"));
    }

    #[test]
    fn fig12_measures_every_policy() {
        let out = fig12();
        assert!(out.contains("RELIEF"));
        assert!(out.contains("FCFS"));
        assert!(out.contains("p99"));
    }

    #[test]
    fn full_grid_is_deduplicated_and_covers_every_axis() {
        let specs = grid::full_grid();
        let labels: Vec<String> = specs.iter().map(RunSpec::label).collect();
        let unique: std::collections::BTreeSet<&String> = labels.iter().collect();
        assert_eq!(labels.len(), unique.len(), "duplicate run specs in the grid");
        // 8 policies × 35 mixes + 10 solo + 8 fig2 + 10 × (6 predictor + 1 xbar).
        assert_eq!(labels.len(), 8 * 35 + 10 + 8 + 10 * 7);
        assert!(labels.iter().any(|l| l.contains("mobile-nofwd")));
        assert!(labels.iter().any(|l| l.contains("mobile-xbar")));
        assert!(labels.iter().any(|l| l.contains("fig2")));
        assert!(labels.iter().any(|l| l.contains("pred[bw=avg15,dm=pred]")));
    }

    #[test]
    fn cached_and_inline_runs_render_identically() {
        // Prewarm only the Fig. 2 cells, then render: cache hits and
        // misses must be indistinguishable in the output.
        let specs: Vec<RunSpec> = FAIRNESS_POLICIES.iter().map(|&p| grid::fig2_run(p)).collect();
        let some = crate::campaign::execute(
            specs,
            &crate::campaign::ExecOptions { jobs: 2, ..Default::default() },
        );
        let ctx = Ctx::from_results(&some);
        assert_eq!(ctx.len(), 8);
        assert_eq!(fig2_with(&ctx), fig2_with(&Ctx::empty()));
    }
}
