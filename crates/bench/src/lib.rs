//! Shared experiment-runner infrastructure for the paper's tables and
//! figures.
//!
//! Every binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md §5 for the full index); this library holds
//! the common plumbing: running a policy over a mix, sweeping contention
//! levels, and aggregating geometric means the way the figures do.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]


use relief_accel::{SimResult, SocConfig, SocSim};
use relief_core::PolicyKind;
use relief_metrics::summary::geometric_mean;
use relief_workloads::{Contention, Mix, CONTINUOUS_TIME_LIMIT};

/// The six policies of the paper's main comparison, in figure order.
pub const MAIN_POLICIES: [PolicyKind; 6] = PolicyKind::MAIN;

/// The eight policies of the fairness study (Figs. 9–10, Table VII).
pub const FAIRNESS_POLICIES: [PolicyKind; 8] = PolicyKind::ALL;

/// Builds the SoC configuration for one (policy, contention) cell:
/// the Table VI mobile platform, with the 50 ms cap under continuous
/// contention.
pub fn config_for(policy: PolicyKind, contention: Contention) -> SocConfig {
    let cfg = SocConfig::mobile(policy);
    if contention == Contention::Continuous {
        cfg.with_time_limit(CONTINUOUS_TIME_LIMIT)
    } else {
        cfg
    }
}

/// Runs one mix under one policy on the default platform.
pub fn run_mix(policy: PolicyKind, contention: Contention, mix: &Mix) -> SimResult {
    run_mix_with(config_for(policy, contention), mix)
}

/// Runs one mix with an explicit configuration.
pub fn run_mix_with(cfg: SocConfig, mix: &Mix) -> SimResult {
    SocSim::new(cfg, mix.workload()).run()
}

/// One (mix label, per-policy values) row plus a geometric-mean footer —
/// the shape of most of the paper's grouped bar charts.
#[derive(Debug, Clone)]
pub struct PolicySweep {
    /// Policies, in column order.
    pub policies: Vec<PolicyKind>,
    /// `(mix label, value per policy)` rows.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl PolicySweep {
    /// Runs `metric` for every (mix, policy) pair of a contention level,
    /// simulating every cell inline.
    pub fn collect(
        contention: Contention,
        policies: &[PolicyKind],
        metric: impl FnMut(&SimResult) -> f64,
    ) -> Self {
        Self::collect_with(&campaign::Ctx::empty(), contention, policies, metric)
    }

    /// Like [`PolicySweep::collect`], but answers each cell from `ctx` —
    /// a campaign-prewarmed context returns cached results, an empty one
    /// falls back to inline simulation with identical output.
    pub fn collect_with(
        ctx: &campaign::Ctx,
        contention: Contention,
        policies: &[PolicyKind],
        mut metric: impl FnMut(&SimResult) -> f64,
    ) -> Self {
        let mut rows = Vec::new();
        for mix in contention.mixes() {
            let values = policies
                .iter()
                .map(|&p| metric(&ctx.run(&experiments::grid::mix_run(p, contention, &mix))))
                .collect();
            rows.push((mix.label(), values));
        }
        PolicySweep { policies: policies.to_vec(), rows }
    }

    /// Geometric mean down each policy column (the figures' `Gmean` group).
    pub fn gmeans(&self) -> Vec<f64> {
        (0..self.policies.len())
            .map(|i| geometric_mean(self.rows.iter().map(|(_, v)| v[i])))
            .collect()
    }

    /// Renders the sweep as a table with a Gmean footer.
    pub fn render(&self, value_header: &str, precision: usize) -> String {
        let mut cols = vec!["mix".to_string()];
        cols.extend(self.policies.iter().map(|p| p.name().to_string()));
        let mut t = relief_metrics::report::Table::new(cols);
        for (label, values) in &self.rows {
            t.num_row(label, values, precision);
        }
        t.num_row("Gmean", &self.gmeans(), precision);
        format!("[{value_header}]\n{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_for_continuous_sets_time_limit() {
        let c = config_for(PolicyKind::Relief, Contention::Continuous);
        assert_eq!(c.time_limit, Some(relief_sim::Time::from_ms(50)));
        assert!(config_for(PolicyKind::Relief, Contention::High).time_limit.is_none());
    }

    #[test]
    fn sweep_shapes() {
        // A tiny sweep over low contention with a constant metric.
        let sweep =
            PolicySweep::collect(Contention::Low, &[PolicyKind::Fcfs], |r| {
                r.stats.apps.len() as f64
            });
        assert_eq!(sweep.rows.len(), 5);
        assert_eq!(sweep.gmeans(), vec![1.0]);
        let rendered = sweep.render("apps", 1);
        assert!(rendered.contains("Gmean"));
        assert!(rendered.contains("FCFS"));
    }
}
pub mod cache;
pub mod campaign;
pub mod chaos;
pub mod experiments;
pub mod microbench;
pub mod oracle;
pub mod resilience;
pub mod service;
pub mod soak;
pub mod traceio;
pub mod walltime;
