//! Trace capture and file export shared by the experiment binaries.
//!
//! Any binary that accepts `--trace-out <STEM>` funnels through here: the
//! run is re-executed with a [`RingBufferSink`] attached, and the captured
//! stream is written as both Chrome/Perfetto JSON (`<STEM>.json`, open in
//! `chrome://tracing` or <https://ui.perfetto.dev>) and the canonical text
//! format (`<STEM>.txt`, the input `trace-diff` compares).

use relief_accel::{AccKind, AppSpec, SimResult, SocConfig, SocSim};
use relief_trace::chrome::{to_chrome_json, ChromeOptions};
use relief_trace::{text, RingBufferSink, TraceEvent, Tracer};
use std::path::{Path, PathBuf};

/// Ring capacity used for file export: large enough that the paper's
/// single-shot mixes never evict (a 50 ms continuous run stays under a
/// million events).
pub const TRACE_RING_CAPACITY: usize = 1 << 20;

/// Runs a workload with a lossless ring sink attached, returning both the
/// simulation result and the captured event stream (in emission order).
pub fn run_traced(cfg: SocConfig, apps: Vec<AppSpec>) -> (SimResult, Vec<TraceEvent>) {
    let ring = RingBufferSink::shared(TRACE_RING_CAPACITY);
    let mut tracer = Tracer::off();
    tracer.attach(ring.clone());
    let result = SocSim::new(cfg, apps).with_tracer(&tracer).run();
    let events = ring.borrow_mut().take();
    (result, events)
}

/// Display names for a configuration's accelerator instances, in the
/// simulator's global instance order (type-major). On the Table VI mobile
/// platform these are the Table I accelerator names; synthetic platforms
/// fall back to `t<type>.<index>`.
pub fn instance_names(cfg: &SocConfig) -> Vec<String> {
    let mut names = Vec::with_capacity(cfg.total_instances());
    for (t, &count) in cfg.acc_instances.iter().enumerate() {
        for i in 0..count {
            let name = match AccKind::ALL.get(t) {
                Some(kind) if cfg.acc_instances.len() == AccKind::ALL.len() => {
                    if count > 1 {
                        format!("{}.{i}", kind.name())
                    } else {
                        kind.name().to_string()
                    }
                }
                _ => format!("t{t}.{i}"),
            };
            names.push(name);
        }
    }
    names
}

/// Writes `<stem>.json` (Chrome trace) and `<stem>.txt` (canonical text)
/// for an event stream, returning the two paths written.
pub fn write_trace_files(
    events: &[TraceEvent],
    accel_names: Vec<String>,
    stem: &Path,
) -> std::io::Result<(PathBuf, PathBuf)> {
    let json_path = stem.with_extension("json");
    let txt_path = stem.with_extension("txt");
    std::fs::write(&json_path, to_chrome_json(events, &ChromeOptions { accel_names }))?;
    std::fs::write(&txt_path, text::to_text(events))?;
    Ok((json_path, txt_path))
}

/// Captures one traced run and exports it under `stem`, printing the
/// written paths to stderr. Returns the simulation result so callers can
/// keep reporting on the same run.
pub fn export_run(cfg: SocConfig, apps: Vec<AppSpec>, stem: &Path) -> std::io::Result<SimResult> {
    let names = instance_names(&cfg);
    let (result, events) = run_traced(cfg, apps);
    let (json, txt) = write_trace_files(&events, names, stem)?;
    eprintln!("trace: {} events -> {} + {}", events.len(), json.display(), txt.display());
    Ok(result)
}

/// Extracts `--trace-out <STEM>` from an argument list, returning the stem
/// and the remaining arguments.
///
/// # Errors
///
/// Fails when `--trace-out` is present without a value.
pub fn take_trace_out_arg(args: Vec<String>) -> Result<(Option<PathBuf>, Vec<String>), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut stem = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--trace-out" {
            let v = it.next().ok_or("--trace-out needs a value")?;
            stem = Some(PathBuf::from(v));
        } else {
            rest.push(arg);
        }
    }
    Ok((stem, rest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relief_core::PolicyKind;
    use relief_trace::EventKind;

    #[test]
    fn traced_run_matches_untraced_stats() {
        let mk = || {
            let apps = crate::experiments::fig2_workload();
            (SocConfig::generic(vec![1, 1], PolicyKind::Relief), apps)
        };
        let (cfg, apps) = mk();
        let (traced, events) = run_traced(cfg, apps);
        let (cfg, apps) = mk();
        let plain = SocSim::new(cfg, apps).run();
        assert_eq!(traced.stats.exec_time, plain.stats.exec_time);
        assert_eq!(traced.stats.traffic, plain.stats.traffic);
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::ComputeEnd { .. })));
    }

    #[test]
    fn mobile_instance_names_use_table_i() {
        let names = instance_names(&SocConfig::mobile(PolicyKind::Fcfs));
        assert_eq!(names.len(), AccKind::ALL.len());
        assert_eq!(names[0], AccKind::ALL[0].name());
    }

    #[test]
    fn generic_instance_names_fall_back() {
        let names = instance_names(&SocConfig::generic(vec![2, 1], PolicyKind::Fcfs));
        assert_eq!(names, vec!["t0.0", "t0.1", "t1.0"]);
    }

    #[test]
    fn trace_out_arg_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let (stem, rest) =
            take_trace_out_arg(args(&["--mix", "CGL", "--trace-out", "/tmp/t"])).unwrap();
        assert_eq!(stem, Some(PathBuf::from("/tmp/t")));
        assert_eq!(rest, args(&["--mix", "CGL"]));
        assert!(take_trace_out_arg(args(&["--trace-out"])).is_err());
        let (stem, rest) = take_trace_out_arg(args(&["--help"])).unwrap();
        assert_eq!(stem, None);
        assert_eq!(rest, args(&["--help"]));
    }
}
