//! Regenerates the paper's fig8. See DESIGN.md §5.

fn main() {
    print!("{}", relief_bench::experiments::fig8());
}
