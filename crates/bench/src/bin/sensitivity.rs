//! Platform-sensitivity sweeps (beyond the paper's figures, motivated by
//! its introduction: "this bottleneck will worsen as SoCs become more
//! heterogeneous and incorporate accelerators for more elementary
//! operations"):
//!
//! 1. **DRAM bandwidth** — RELIEF's advantage over the best baseline as
//!    effective memory bandwidth scales from ×¼ to ×4.
//! 2. **Accelerator replication** — 1 vs 2 instances of every type.
//! 3. **Transfer chunk size** — the simulator's fair-sharing granularity
//!    (a model-fidelity knob, documented in DESIGN.md §6).

use relief_bench::{config_for, run_mix_with};
use relief_core::PolicyKind;
use relief_metrics::report::Table;
use relief_metrics::summary::geometric_mean;
use relief_workloads::Contention;

fn gmean_high(
    policy: PolicyKind,
    tweak: impl Fn(&mut relief_accel::SocConfig),
    metric: impl Fn(&relief_accel::SimResult) -> f64,
) -> f64 {
    geometric_mean(Contention::High.mixes().iter().map(|mix| {
        let mut cfg = config_for(policy, Contention::High);
        tweak(&mut cfg);
        metric(&run_mix_with(cfg, mix))
    }))
}

fn main() {
    bandwidth();
    replication();
    chunk_size();
}

fn bandwidth() {
    let mut t = Table::with_columns(&[
        "DRAM BW scale",
        "exec ms LAX",
        "exec ms RELIEF",
        "RELIEF speedup",
        "ddl% LAX",
        "ddl% RELIEF",
    ]);
    for scale in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let tweak = |cfg: &mut relief_accel::SocConfig| {
            cfg.mem.dram_bandwidth = (cfg.mem.dram_bandwidth as f64 * scale) as u64;
        };
        let lax_t = gmean_high(PolicyKind::Lax, tweak, |r| r.stats.exec_time.as_ms_f64());
        let rel_t = gmean_high(PolicyKind::Relief, tweak, |r| r.stats.exec_time.as_ms_f64());
        let lax_d = gmean_high(PolicyKind::Lax, tweak, |r| r.stats.node_deadline_percent());
        let rel_d = gmean_high(PolicyKind::Relief, tweak, |r| r.stats.node_deadline_percent());
        t.row(vec![
            format!("x{scale}"),
            format!("{lax_t:.2}"),
            format!("{rel_t:.2}"),
            format!("{:.3}", lax_t / rel_t),
            format!("{lax_d:.1}"),
            format!("{rel_d:.1}"),
        ]);
    }
    println!(
        "[Sensitivity 1] effective DRAM bandwidth (high contention, gmean).\n\
         The slower the memory, the more forwarding matters.\n{}",
        t.render()
    );
}

fn replication() {
    let mut t = Table::with_columns(&[
        "instances/type",
        "fwd+coloc % LAX",
        "RELIEF",
        "exec ms LAX",
        "RELIEF",
    ]);
    for n in [1usize, 2] {
        let tweak = |cfg: &mut relief_accel::SocConfig| {
            cfg.acc_instances = vec![n; cfg.acc_instances.len()];
        };
        t.row(vec![
            n.to_string(),
            format!("{:.1}", gmean_high(PolicyKind::Lax, tweak, |r| r.stats.forward_percent())),
            format!("{:.1}", gmean_high(PolicyKind::Relief, tweak, |r| r.stats.forward_percent())),
            format!("{:.2}", gmean_high(PolicyKind::Lax, tweak, |r| r.stats.exec_time.as_ms_f64())),
            format!("{:.2}", gmean_high(PolicyKind::Relief, tweak, |r| r.stats.exec_time.as_ms_f64())),
        ]);
    }
    println!("[Sensitivity 2] accelerator replication (high contention, gmean)\n{}", t.render());
}

fn chunk_size() {
    let mut t = Table::with_columns(&["chunk bytes", "exec ms RELIEF", "fwd+coloc %"]);
    for chunk in [1024u64, 4096, 16_384, 65_536] {
        let tweak = |cfg: &mut relief_accel::SocConfig| cfg.mem.chunk_bytes = chunk;
        t.row(vec![
            chunk.to_string(),
            format!(
                "{:.3}",
                gmean_high(PolicyKind::Relief, tweak, |r| r.stats.exec_time.as_ms_f64())
            ),
            format!(
                "{:.1}",
                gmean_high(PolicyKind::Relief, tweak, |r| r.stats.forward_percent())
            ),
        ]);
    }
    println!(
        "[Sensitivity 3] transfer chunk granularity (model-fidelity check: \
         results must be stable)\n{}",
        t.render()
    );
}
