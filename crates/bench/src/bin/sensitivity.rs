//! Platform-sensitivity sweeps (beyond the paper's figures, motivated by
//! its introduction: "this bottleneck will worsen as SoCs become more
//! heterogeneous and incorporate accelerators for more elementary
//! operations"):
//!
//! 1. **DRAM bandwidth** — RELIEF's advantage over the best baseline as
//!    effective memory bandwidth scales from ×¼ to ×4.
//! 2. **Accelerator replication** — 1 vs 2 instances of every type.
//! 3. **Transfer chunk size** — the simulator's fair-sharing granularity
//!    (a model-fidelity knob, documented in DESIGN.md §6).
//!
//! Every (platform, policy, mix) cell is a [`RunSpec`] on a labeled
//! custom platform; the whole sweep executes on the campaign engine
//! (`--jobs N`, default = available parallelism) before rendering.

use relief_bench::campaign::{self, Ctx, ExecOptions, PlatformSpec, RunSpec, WorkloadSpec};
use relief_core::PolicyKind;
use relief_metrics::report::Table;
use relief_metrics::summary::geometric_mean;
use relief_workloads::Contention;

/// One high-contention cell on a tweaked platform.
fn cell(platform: &PlatformSpec, policy: PolicyKind, mix: &relief_workloads::Mix) -> RunSpec {
    RunSpec::new(policy, WorkloadSpec::mix(Contention::High, mix), platform.clone())
}

fn gmean_high(
    ctx: &Ctx,
    platform: &PlatformSpec,
    policy: PolicyKind,
    metric: impl Fn(&relief_accel::SimResult) -> f64,
) -> f64 {
    geometric_mean(
        Contention::High
            .mixes()
            .iter()
            .map(|mix| metric(&ctx.run(&cell(platform, policy, mix)))),
    )
}

fn bandwidth_platform(scale: f64) -> PlatformSpec {
    PlatformSpec::custom(format!("mobile-bw-x{scale}"), move |p| {
        let mut cfg = relief_accel::SocConfig::mobile(p);
        cfg.mem.dram_bandwidth = (cfg.mem.dram_bandwidth as f64 * scale) as u64;
        cfg
    })
}

fn replication_platform(n: usize) -> PlatformSpec {
    PlatformSpec::custom(format!("mobile-rep{n}"), move |p| {
        let mut cfg = relief_accel::SocConfig::mobile(p);
        cfg.acc_instances = vec![n; cfg.acc_instances.len()];
        cfg
    })
}

fn chunk_platform(chunk: u64) -> PlatformSpec {
    PlatformSpec::custom(format!("mobile-chunk{chunk}"), move |p| {
        let mut cfg = relief_accel::SocConfig::mobile(p);
        cfg.mem.chunk_bytes = chunk;
        cfg
    })
}

const BW_SCALES: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];
const REPLICATIONS: [usize; 2] = [1, 2];
const CHUNKS: [u64; 4] = [1024, 4096, 16_384, 65_536];

fn main() {
    let jobs = match campaign::parse_jobs(std::env::args().skip(1)) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mixes = Contention::High.mixes();
    let mut grid = Vec::new();
    for scale in BW_SCALES {
        let platform = bandwidth_platform(scale);
        for policy in [PolicyKind::Lax, PolicyKind::Relief] {
            grid.extend(mixes.iter().map(|m| cell(&platform, policy, m)));
        }
    }
    for n in REPLICATIONS {
        let platform = replication_platform(n);
        for policy in [PolicyKind::Lax, PolicyKind::Relief] {
            grid.extend(mixes.iter().map(|m| cell(&platform, policy, m)));
        }
    }
    for chunk in CHUNKS {
        let platform = chunk_platform(chunk);
        grid.extend(mixes.iter().map(|m| cell(&platform, PolicyKind::Relief, m)));
    }
    eprintln!("== prewarming {} runs on {jobs} worker(s) ==", grid.len());
    let results = campaign::execute(grid, &ExecOptions { jobs, ..Default::default() });
    let failures = results.failures();
    for (label, msg) in &failures {
        eprintln!("run {label} panicked: {msg}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
    let ctx = Ctx::from_results(&results);
    bandwidth(&ctx);
    replication(&ctx);
    chunk_size(&ctx);
}

fn bandwidth(ctx: &Ctx) {
    let mut t = Table::with_columns(&[
        "DRAM BW scale",
        "exec ms LAX",
        "exec ms RELIEF",
        "RELIEF speedup",
        "ddl% LAX",
        "ddl% RELIEF",
    ]);
    for scale in BW_SCALES {
        let platform = bandwidth_platform(scale);
        let lax_t =
            gmean_high(ctx, &platform, PolicyKind::Lax, |r| r.stats.exec_time.as_ms_f64());
        let rel_t =
            gmean_high(ctx, &platform, PolicyKind::Relief, |r| r.stats.exec_time.as_ms_f64());
        let lax_d =
            gmean_high(ctx, &platform, PolicyKind::Lax, |r| r.stats.node_deadline_percent());
        let rel_d =
            gmean_high(ctx, &platform, PolicyKind::Relief, |r| r.stats.node_deadline_percent());
        t.row(vec![
            format!("x{scale}"),
            format!("{lax_t:.2}"),
            format!("{rel_t:.2}"),
            format!("{:.3}", lax_t / rel_t),
            format!("{lax_d:.1}"),
            format!("{rel_d:.1}"),
        ]);
    }
    println!(
        "[Sensitivity 1] effective DRAM bandwidth (high contention, gmean).\n\
         The slower the memory, the more forwarding matters.\n{}",
        t.render()
    );
}

fn replication(ctx: &Ctx) {
    let mut t = Table::with_columns(&[
        "instances/type",
        "fwd+coloc % LAX",
        "RELIEF",
        "exec ms LAX",
        "RELIEF",
    ]);
    for n in REPLICATIONS {
        let platform = replication_platform(n);
        t.row(vec![
            n.to_string(),
            format!(
                "{:.1}",
                gmean_high(ctx, &platform, PolicyKind::Lax, |r| r.stats.forward_percent())
            ),
            format!(
                "{:.1}",
                gmean_high(ctx, &platform, PolicyKind::Relief, |r| r.stats.forward_percent())
            ),
            format!(
                "{:.2}",
                gmean_high(ctx, &platform, PolicyKind::Lax, |r| r.stats.exec_time.as_ms_f64())
            ),
            format!(
                "{:.2}",
                gmean_high(ctx, &platform, PolicyKind::Relief, |r| {
                    r.stats.exec_time.as_ms_f64()
                })
            ),
        ]);
    }
    println!("[Sensitivity 2] accelerator replication (high contention, gmean)\n{}", t.render());
}

fn chunk_size(ctx: &Ctx) {
    let mut t = Table::with_columns(&["chunk bytes", "exec ms RELIEF", "fwd+coloc %"]);
    for chunk in CHUNKS {
        let platform = chunk_platform(chunk);
        t.row(vec![
            chunk.to_string(),
            format!(
                "{:.3}",
                gmean_high(ctx, &platform, PolicyKind::Relief, |r| {
                    r.stats.exec_time.as_ms_f64()
                })
            ),
            format!(
                "{:.1}",
                gmean_high(ctx, &platform, PolicyKind::Relief, |r| r.stats.forward_percent())
            ),
        ]);
    }
    println!(
        "[Sensitivity 3] transfer chunk granularity (model-fidelity check: \
         results must be stable)\n{}",
        t.render()
    );
}
