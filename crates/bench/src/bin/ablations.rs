//! Ablation studies of RELIEF's design choices (beyond the paper's
//! figures; motivated by §III-A and §VII):
//!
//! 1. **Feasibility check** — RELIEF vs RELIEF-NOTHROTTLE: what the
//!    laxity-driven throttle buys in deadlines for the forwards it costs.
//! 2. **Laxity distribution** — RELIEF (LL pool) vs RELIEF-HET (HetSched
//!    SDR shares): the paper's §VII future-work comparison.
//! 3. **Output partitions** — 1 / 2 / 3 scratchpad output partitions:
//!    double buffering is what keeps producer data alive for consumers.
//! 4. **Scheduler overhead** — modeled manager latency on vs off.

use relief_bench::{config_for, run_mix_with};
use relief_core::PolicyKind;
use relief_metrics::report::Table;
use relief_metrics::summary::geometric_mean;
use relief_workloads::Contention;

fn main() {
    feasibility_and_laxity();
    partitions();
    overhead();
}

fn feasibility_and_laxity() {
    let policies = [
        PolicyKind::Relief,
        PolicyKind::ReliefUnthrottled,
        PolicyKind::ReliefHet,
        PolicyKind::HetSched,
    ];
    let mut cols = vec!["mix".to_string()];
    for p in policies {
        cols.push(format!("fwd% {}", p.name()));
    }
    for p in policies {
        cols.push(format!("ddl% {}", p.name()));
    }
    let mut t = Table::new(cols);
    let mut fwd_cols = vec![Vec::new(); policies.len()];
    let mut ddl_cols = vec![Vec::new(); policies.len()];
    for mix in Contention::High.mixes() {
        let mut row = vec![mix.label()];
        let mut ddl_cells = Vec::new();
        for (i, p) in policies.iter().enumerate() {
            let r = run_mix_with(config_for(*p, Contention::High), &mix);
            let fwd = r.stats.forward_percent();
            let ddl = r.stats.node_deadline_percent();
            row.push(format!("{fwd:.1}"));
            ddl_cells.push(format!("{ddl:.1}"));
            fwd_cols[i].push(fwd);
            ddl_cols[i].push(ddl);
        }
        row.extend(ddl_cells);
        t.row(row);
    }
    let mut footer = vec!["Gmean".to_string()];
    for c in &fwd_cols {
        footer.push(format!("{:.1}", geometric_mean(c.iter().copied())));
    }
    for c in &ddl_cols {
        footer.push(format!("{:.1}", geometric_mean(c.iter().copied())));
    }
    t.row(footer);
    println!(
        "[Ablation 1+2] feasibility check & laxity distribution, high contention\n{}",
        t.render()
    );
}

fn partitions() {
    let mut t = Table::with_columns(&["partitions", "fwd+coloc %", "ddl %", "DRAM MB", "exec ms"]);
    for parts in [1usize, 2, 3] {
        let mut fwd = Vec::new();
        let mut ddl = Vec::new();
        let mut dram = Vec::new();
        let mut exec = Vec::new();
        for mix in Contention::High.mixes() {
            let mut cfg = config_for(PolicyKind::Relief, Contention::High);
            cfg.output_partitions = parts;
            let r = run_mix_with(cfg, &mix);
            fwd.push(r.stats.forward_percent());
            ddl.push(r.stats.node_deadline_percent());
            dram.push(r.stats.traffic.dram_bytes() as f64 / 1e6);
            exec.push(r.stats.exec_time.as_ms_f64());
        }
        t.row(vec![
            parts.to_string(),
            format!("{:.1}", geometric_mean(fwd.into_iter())),
            format!("{:.1}", geometric_mean(ddl.into_iter())),
            format!("{:.2}", geometric_mean(dram.into_iter())),
            format!("{:.2}", geometric_mean(exec.into_iter())),
        ]);
    }
    println!(
        "[Ablation 3] scratchpad output partitions (RELIEF, high contention, gmean)\n{}",
        t.render()
    );
}

fn overhead() {
    let mut t = Table::with_columns(&["manager overhead", "exec ms (gmean)", "ddl %"]);
    for modeled in [true, false] {
        let mut exec = Vec::new();
        let mut ddl = Vec::new();
        for mix in Contention::High.mixes() {
            let mut cfg = config_for(PolicyKind::Relief, Contention::High);
            cfg.model_sched_overhead = modeled;
            let r = run_mix_with(cfg, &mix);
            exec.push(r.stats.exec_time.as_ms_f64());
            ddl.push(r.stats.node_deadline_percent());
        }
        t.row(vec![
            if modeled { "modeled (Fig. 12 costs)" } else { "zero" }.to_string(),
            format!("{:.3}", geometric_mean(exec.into_iter())),
            format!("{:.1}", geometric_mean(ddl.into_iter())),
        ]);
    }
    println!(
        "[Ablation 4] hardware-manager scheduling latency (RELIEF, high contention)\n{}",
        t.render()
    );
}
