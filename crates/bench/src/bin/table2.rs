//! Regenerates the paper's table2. See DESIGN.md §5.

fn main() {
    print!("{}", relief_bench::experiments::table2());
}
