//! Regenerates the paper's fig10. See DESIGN.md §5.

fn main() {
    print!("{}", relief_bench::experiments::fig10());
}
