//! Regenerates the paper's fig11. See DESIGN.md §5.

fn main() {
    print!("{}", relief_bench::experiments::fig11());
}
