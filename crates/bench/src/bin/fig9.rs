//! Regenerates the paper's fig9. See DESIGN.md §5.

fn main() {
    print!("{}", relief_bench::experiments::fig9());
}
