//! Prints the modeled platform against the paper's configuration tables:
//! Table I (elementary accelerators), Table V (benchmarks), and Table VI
//! (simulation setup). These are inputs rather than results, so this
//! binary documents the calibration instead of reproducing measurements.

use relief_accel::kinds::AccKind;
use relief_mem::MemConfig;
use relief_metrics::report::Table;
use relief_sim::Dur;
use relief_workloads::App;

fn main() {
    table1();
    table5();
    table6();
}

fn table1() {
    let bw = MemConfig::default().dram_bandwidth;
    let mut t = Table::with_columns(&[
        "accelerator",
        "SPAD B (Table I)",
        "compute us (Table I)",
        "output B (calibrated)",
        "standalone mem us",
    ]);
    for kind in AccKind::ALL {
        // Standalone memory time: typical input volume + output through
        // DRAM (see kinds.rs for the per-kind input assumptions).
        let in_bytes = match kind {
            AccKind::CannyNonMax | AccKind::ElemMatrix => 2 * relief_accel::PLANE_BYTES,
            AccKind::Isp => AccKind::isp_raw_input_bytes(),
            AccKind::Grayscale => {
                relief_accel::PLANE_BYTES / 2 + AccKind::Isp.output_bytes()
            }
            _ => relief_accel::PLANE_BYTES,
        };
        let mem = Dur::for_bytes(in_bytes + kind.output_bytes(), bw);
        t.row(vec![
            kind.name().to_string(),
            kind.spad_bytes().to_string(),
            format!("{:.2}", kind.compute_time().as_us_f64()),
            kind.output_bytes().to_string(),
            format!("{:.2}", mem.as_us_f64()),
        ]);
    }
    println!("[Table I] elementary accelerators\n{}", t.render());
}

fn table5() {
    let mut t = Table::with_columns(&[
        "benchmark",
        "symbol",
        "nodes",
        "edges",
        "deadline ms",
        "compute us (= Table II)",
    ]);
    for app in App::ALL {
        let d = app.dag();
        t.row(vec![
            app.name().to_string(),
            app.symbol().to_string(),
            d.len().to_string(),
            d.edge_count().to_string(),
            format!("{:.1}", app.deadline().as_ms_f64()),
            format!("{:.2}", d.total_compute().as_us_f64()),
        ]);
    }
    println!("[Table V] benchmarks\n{}", t.render());
}

fn table6() {
    let m = MemConfig::default();
    let mut t = Table::with_columns(&["parameter", "value"]);
    t.row(vec!["accelerators".into(), "7 types x 1 instance, 1 GHz, double-buffered output".into()]);
    t.row(vec![
        "DRAM".into(),
        format!(
            "LPDDR5-6400, effective {:.2} GB/s (peak 12.8 GB/s x ~50% efficiency)",
            m.dram_bandwidth as f64 / 1e9
        ),
    ]);
    t.row(vec![
        "interconnect".into(),
        format!("full-duplex bus, {:.1} GB/s per direction (crossbar optional)", m.interconnect_bandwidth as f64 / 1e9),
    ]);
    t.row(vec!["transfer chunking".into(), format!("{} B", m.chunk_bytes)]);
    t.row(vec![
        "hardware manager".into(),
        "modeled ISR + per-insert latency (Fig. 12 defaults)".into(),
    ]);
    println!("[Table VI] simulation setup\n{}", t.render());
}
