//! Regenerates the paper's fig4. See DESIGN.md §5.

fn main() {
    print!("{}", relief_bench::experiments::fig4());
    print!("{}", relief_bench::experiments::fig4_colocations());
}
