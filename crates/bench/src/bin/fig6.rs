//! Regenerates the paper's fig6. See DESIGN.md §5.

fn main() {
    print!("{}", relief_bench::experiments::fig6());
}
