//! Campaign-engine smoke test for `cargo xtask check`: expands a small
//! 2×2 (policy × workload) grid, executes it serially and with two
//! worker threads, and fails loudly unless the two reports — and the
//! stable-order summaries — are byte-identical. Exercises the whole
//! determinism contract end to end in a few hundred milliseconds.

use relief_bench::campaign::{execute, CampaignSpec, ExecOptions, WorkloadSpec};
use relief_core::PolicyKind;
use relief_workloads::Contention;

fn main() {
    let mixes = Contention::Low.mixes();
    let spec = CampaignSpec::new(
        "smoke",
        vec![PolicyKind::Lax, PolicyKind::Relief],
        vec![
            WorkloadSpec::mix(Contention::Low, &mixes[0]),
            WorkloadSpec::mix(Contention::Low, &mixes[1]),
        ],
    );
    eprintln!("campaign 'smoke' (hash {:016x}): {} runs", spec.hash(), spec.expand().len());

    let serial = execute(spec.expand(), &ExecOptions { jobs: 1, ..Default::default() });
    let threaded = execute(spec.expand(), &ExecOptions { jobs: 2, ..Default::default() });

    let mut failed = false;
    for (what, results) in [("jobs=1", &serial), ("jobs=2", &threaded)] {
        for (label, msg) in results.failures() {
            eprintln!("{what}: run {label} panicked: {msg}");
            failed = true;
        }
        for (label, mismatches) in results.mismatched() {
            eprintln!("{what}: run {label} failed reconciliation: {mismatches:?}");
            failed = true;
        }
    }
    if serial.report() != threaded.report() {
        eprintln!("report mismatch between jobs=1 and jobs=2");
        failed = true;
    }
    if serial.summary() != threaded.summary() {
        eprintln!("summary mismatch between jobs=1 and jobs=2");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    print!("{}", serial.summary());
    println!("campaign smoke OK: jobs=1 and jobs=2 reports byte-identical");
}
