//! Regenerates the paper's fig2. See DESIGN.md §5.

fn main() {
    print!("{}", relief_bench::experiments::fig2());
}
