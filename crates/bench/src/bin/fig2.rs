//! Regenerates the paper's fig2. See DESIGN.md §5.
//!
//! With `--trace-out <STEM>`, additionally re-runs the Fig. 2 workload
//! under FCFS and RELIEF with structured tracing attached, writing
//! `<STEM>-fcfs.{json,txt}` and `<STEM>-relief.{json,txt}` for side-by-side
//! inspection in Perfetto or via `trace-diff`.

use relief_accel::SocConfig;
use relief_bench::experiments::fig2_workload;
use relief_bench::traceio;
use relief_core::PolicyKind;
use std::process::ExitCode;

fn main() -> ExitCode {
    let (stem, rest) = match traceio::take_trace_out_arg(std::env::args().skip(1).collect()) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(arg) = rest.first() {
        eprintln!("error: unknown option '{arg}' (only --trace-out <STEM> is accepted)");
        return ExitCode::FAILURE;
    }

    print!("{}", relief_bench::experiments::fig2());

    if let Some(stem) = stem {
        for policy in [PolicyKind::Fcfs, PolicyKind::Relief] {
            let cfg = SocConfig::generic(vec![1, 1], policy);
            let mut path = stem.clone();
            path.set_file_name(format!(
                "{}-{}",
                stem.file_name().and_then(|s| s.to_str()).unwrap_or("trace"),
                policy.name().to_ascii_lowercase()
            ));
            if let Err(e) = traceio::export_run(cfg, fig2_workload(), &path) {
                eprintln!("error: writing traces under {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
