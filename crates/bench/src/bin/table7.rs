//! Regenerates the paper's table7. See DESIGN.md §5.

fn main() {
    print!("{}", relief_bench::experiments::table7());
}
