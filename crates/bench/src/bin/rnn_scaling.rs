//! RNN sequence-length scaling (beyond the paper's figures).
//!
//! The paper fixes both RNNs at a sequence length of 8 to balance input
//! size "with simulation time" (§IV-A — their gem5 runs take hours). This
//! simulator completes the whole sweep in seconds, so we can ask the
//! natural follow-up: does RELIEF's advantage hold as utterances grow?
//!
//! Each row runs GRU+LSTM at the given sequence length together with
//! Canny (camera) under high contention; deadlines scale linearly with
//! the paper's 7 ms @ len 8. The (length × policy) grid executes on the
//! campaign engine (`--jobs N`, default = available parallelism).

use relief_accel::AppSpec;
use relief_bench::campaign::{self, Ctx, ExecOptions, PlatformSpec, RunSpec, WorkloadSpec};
use relief_core::PolicyKind;
use relief_metrics::report::Table;
use relief_sim::Dur;
use relief_workloads::{variants, App};

const LENGTHS: [usize; 5] = [2, 4, 8, 16, 32];

/// Canny + GRU + LSTM at one sequence length, deadlines scaled linearly.
fn rnn_cell(len: usize, policy: PolicyKind) -> RunSpec {
    let deadline = Dur::from_us((7_000 * len as u64) / 8);
    let workload = WorkloadSpec::custom(format!("rnn-len{len}"), None, move || {
        vec![
            AppSpec::once("C", App::Canny.dag()),
            AppSpec::once("G", variants::gru(len, deadline)),
            AppSpec::once("L", variants::lstm(len, deadline)),
        ]
    });
    RunSpec::new(policy, workload, PlatformSpec::mobile())
}

fn main() {
    let jobs = match campaign::parse_jobs(std::env::args().skip(1)) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let grid: Vec<RunSpec> = LENGTHS
        .iter()
        .flat_map(|&len| {
            [PolicyKind::Lax, PolicyKind::Relief].map(|policy| rnn_cell(len, policy))
        })
        .collect();
    eprintln!("== prewarming {} runs on {jobs} worker(s) ==", grid.len());
    let results = campaign::execute(grid, &ExecOptions { jobs, ..Default::default() });
    let failures = results.failures();
    for (label, msg) in &failures {
        eprintln!("run {label} panicked: {msg}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
    let ctx = Ctx::from_results(&results);

    let mut t = Table::with_columns(&[
        "seq len",
        "fwd+coloc %: LAX",
        "RELIEF",
        "DRAM MB: LAX",
        "RELIEF",
        "exec ms: LAX",
        "RELIEF",
    ]);
    for len in LENGTHS {
        let lax = ctx.run(&rnn_cell(len, PolicyKind::Lax)).stats;
        let relief = ctx.run(&rnn_cell(len, PolicyKind::Relief)).stats;
        t.row(vec![
            len.to_string(),
            format!("{:.1}", lax.forward_percent()),
            format!("{:.1}", relief.forward_percent()),
            format!("{:.2}", lax.traffic.dram_bytes() as f64 / 1e6),
            format!("{:.2}", relief.traffic.dram_bytes() as f64 / 1e6),
            format!("{:.2}", lax.exec_time.as_ms_f64()),
            format!("{:.2}", relief.exec_time.as_ms_f64()),
        ]);
    }
    println!(
        "[RNN scaling] Canny + GRU + LSTM at growing sequence lengths \
         (paper fixes len = 8 for simulation time)\n{}",
        t.render()
    );
}
