//! RNN sequence-length scaling (beyond the paper's figures).
//!
//! The paper fixes both RNNs at a sequence length of 8 to balance input
//! size "with simulation time" (§IV-A — their gem5 runs take hours). This
//! simulator completes the whole sweep in seconds, so we can ask the
//! natural follow-up: does RELIEF's advantage hold as utterances grow?
//!
//! Each row runs GRU+LSTM at the given sequence length together with
//! Canny (camera) under high contention; deadlines scale linearly with
//! the paper's 7 ms @ len 8.

use relief_accel::{AppSpec, SocSim};
use relief_bench::config_for;
use relief_core::PolicyKind;
use relief_metrics::report::Table;
use relief_sim::Dur;
use relief_workloads::{variants, App, Contention};

fn main() {
    let mut t = Table::with_columns(&[
        "seq len",
        "fwd+coloc %: LAX",
        "RELIEF",
        "DRAM MB: LAX",
        "RELIEF",
        "exec ms: LAX",
        "RELIEF",
    ]);
    for len in [2usize, 4, 8, 16, 32] {
        let deadline = Dur::from_us((7_000 * len as u64) / 8);
        let run = |policy: PolicyKind| {
            let apps = vec![
                AppSpec::once("C", App::Canny.dag()),
                AppSpec::once("G", variants::gru(len, deadline)),
                AppSpec::once("L", variants::lstm(len, deadline)),
            ];
            SocSim::new(config_for(policy, Contention::High), apps).run().stats
        };
        let lax = run(PolicyKind::Lax);
        let relief = run(PolicyKind::Relief);
        t.row(vec![
            len.to_string(),
            format!("{:.1}", lax.forward_percent()),
            format!("{:.1}", relief.forward_percent()),
            format!("{:.2}", lax.traffic.dram_bytes() as f64 / 1e6),
            format!("{:.2}", relief.traffic.dram_bytes() as f64 / 1e6),
            format!("{:.2}", lax.exec_time.as_ms_f64()),
            format!("{:.2}", relief.exec_time.as_ms_f64()),
        ]);
    }
    println!(
        "[RNN scaling] Canny + GRU + LSTM at growing sequence lengths \
         (paper fixes len = 8 for simulation time)\n{}",
        t.render()
    );
}
