//! Regenerates the paper's fig5. See DESIGN.md §5.

fn main() {
    print!("{}", relief_bench::experiments::fig5());
}
