//! Campaign-cache hygiene gate (`xtask check` step `cache-hygiene`).
//!
//! Scans the standard campaign-cache directory (`target/campaign-cache/`
//! or `$RELIEF_CACHE_DIR`) for entries written under a different schema
//! version or code-version salt. Such entries can never hit again — the
//! salt is part of every key — so they silently bloat the store and, in
//! the worst case, mask a forgotten salt bump. The gate **rejects** them:
//!
//! - no stale entries (or no cache directory at all): exit 0;
//! - stale entries present: list them and exit 1. Re-run with `--purge`
//!   to delete exactly the listed files and exit 0.
//!
//! Entries under the *current* schema + salt are never touched.

use relief_bench::cache::CacheConfig;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut purge = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--purge" => purge = true,
            other => {
                eprintln!("cache_hygiene: unknown argument '{other}'");
                eprintln!("usage: cache_hygiene [--purge]");
                return ExitCode::from(2);
            }
        }
    }
    let cache = CacheConfig::standard();
    let stale = cache.stale_entries();
    if stale.is_empty() {
        println!("cache-hygiene OK: no stale entries in {}", cache.dir.display());
        return ExitCode::SUCCESS;
    }
    println!(
        "cache-hygiene: {} stale entr{} (wrong schema or code-version salt) in {}:",
        stale.len(),
        if stale.len() == 1 { "y" } else { "ies" },
        cache.dir.display()
    );
    for name in &stale {
        println!("  {name}");
    }
    if purge {
        let mut failed = false;
        for name in &stale {
            let path = cache.dir.join(name);
            if let Err(e) = std::fs::remove_file(&path) {
                eprintln!("cache_hygiene: cannot remove {}: {e}", path.display());
                failed = true;
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
        println!("cache-hygiene: purged {} stale entr{}", stale.len(), if stale.len() == 1 { "y" } else { "ies" });
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "cache_hygiene: stale entries rejected; re-run with --purge \
         (cargo run -p relief-bench --bin cache_hygiene -- --purge) to delete them"
    );
    ExitCode::FAILURE
}
