//! Service campaign: latency-vs-load and goodput-vs-overload tables
//! under the open-loop streaming frontend, per policy, on the
//! deterministic campaign engine.
//!
//! ```sh
//! cargo run --release -p relief-bench --bin service
//! cargo run --release -p relief-bench --bin service -- \
//!     --arrival mmpp --rate 500,2000,8000 --duration-us 20000 --jobs 4
//! ```
//!
//! The report is byte-identical at any `--jobs`: every cell's arrival
//! plan is a pure function of its platform label (see
//! `relief_bench::service`).

use relief_bench::campaign::execute;
use relief_bench::service::parse_cli;
use std::process::ExitCode;

fn main() -> ExitCode {
    let (spec, opts) = match parse_cli(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: service [--stream-seed N] [--rate R[,R...]] \
                 [--arrival det|poisson|mmpp|diurnal] [--duration-us N] \
                 [--warmup-us N] [--max-in-flight N] [--jobs N] [--no-cache]"
            );
            return ExitCode::FAILURE;
        }
    };
    let campaign = spec.campaign();
    eprintln!(
        "campaign 'service' (hash {:016x}): {} runs on {} worker(s)",
        campaign.hash(),
        campaign.expand().len(),
        opts.jobs,
    );
    let results = execute(campaign.expand(), &opts);
    let mut failed = false;
    for (label, msg) in results.failures() {
        eprintln!("run {label} panicked: {msg}");
        failed = true;
    }
    for (label, mismatches) in results.mismatched() {
        eprintln!("run {label} failed event/stats reconciliation: {mismatches:?}");
        failed = true;
    }
    print!("{}", spec.render(&results));
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
