//! Resilience campaign: miss-rate and forwarding-rate vs fault rate,
//! per policy, on the deterministic campaign engine.
//!
//! ```sh
//! cargo run --release -p relief-bench --bin resilience
//! cargo run --release -p relief-bench --bin resilience -- \
//!     --fault-seed 0xBEEF --fault-rate 0,0.001,0.01 --mttf-us 2000 --jobs 4
//! ```
//!
//! The report is byte-identical at any `--jobs`: every cell's fault plan
//! is a pure function of its platform label (see `relief_bench::resilience`).

use relief_bench::campaign::execute;
use relief_bench::resilience::parse_cli;
use std::process::ExitCode;

fn main() -> ExitCode {
    let (spec, opts) = match parse_cli(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: resilience [--fault-seed N] [--fault-rate R[,R...]] \
                 [--mttf-us N] [--jobs N] [--no-cache]"
            );
            return ExitCode::FAILURE;
        }
    };
    let campaign = spec.campaign();
    eprintln!(
        "campaign 'resilience' (hash {:016x}): {} runs on {} worker(s)",
        campaign.hash(),
        campaign.expand().len(),
        opts.jobs,
    );
    let results = execute(campaign.expand(), &opts);
    let mut failed = false;
    for (label, msg) in results.failures() {
        eprintln!("run {label} panicked: {msg}");
        failed = true;
    }
    for (label, mismatches) in results.mismatched() {
        eprintln!("run {label} failed event/stats reconciliation: {mismatches:?}");
        failed = true;
    }
    print!("{}", spec.render(&results));
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
