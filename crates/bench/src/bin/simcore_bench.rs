//! Front end for `xtask bench`: measures the simulation hot path over the
//! pinned campaign subset, writes `BENCH_simcore.json`, and appends the
//! run's medians to the sibling `BENCH_trajectory.json` history (formats
//! documented in README.md).
//!
//! ```text
//! simcore_bench [--iters N] [--out PATH] [--check] [--tolerance PCT] [--service] [--events]
//! ```
//!
//! `--service` measures the pinned service-mode subset instead (the
//! open-loop Poisson stream at ~80% utilisation, see
//! [`walltime::SERVICE_SUBSET`]) and appends its medians to the
//! trajectory history under a `+service` label; `--events` times the
//! calendar-queue cohort-pop microbench alone (no simulator handlers,
//! see [`walltime::EVENTS_SUBSET`]) under a `+events` label. Either
//! mode writes no
//! `BENCH_simcore.json` and runs no regression gate: the closed-loop
//! subset stays the committed baseline, the service entry is a second
//! trajectory series.
//!
//! `--check` is the CI gate wired into `xtask check`: three iterations,
//! written to `target/BENCH_simcore.check.json` (unless `--out` is
//! given), read back and schema-validated, then compared against the
//! committed `BENCH_simcore.json` baseline — the fresh run's fastest
//! pass must stay within `--tolerance` percent (default 10) of the
//! committed optimised median ns/event, or the gate fails printing both
//! sides. A missing baseline skips the comparison with a notice, so
//! fresh clones and baseline-refresh commits still pass.

use relief_bench::walltime;
use std::process::ExitCode;

/// The committed perf baseline the `--check` gate compares against.
const BASELINE: &str = "BENCH_simcore.json";

fn main() -> ExitCode {
    let mut iters: Option<u32> = None;
    let mut out: Option<String> = None;
    let mut check = false;
    let mut service = false;
    let mut events = false;
    let mut tolerance = 0.10;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => iters = Some(n),
                _ => return usage("--iters needs a positive integer"),
            },
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => return usage("--out needs a path"),
            },
            "--check" => check = true,
            "--service" => service = true,
            "--events" => events = true,
            "--tolerance" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct >= 0.0 && pct.is_finite() => tolerance = pct / 100.0,
                _ => return usage("--tolerance needs a non-negative percentage"),
            },
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    // Check mode needs several passes so its min is a usable noise floor;
    // a standalone bench defaults to a longer run for tighter medians.
    let iters = iters.unwrap_or(if check { 3 } else { 5 });
    let out = out.unwrap_or_else(|| {
        if check { "target/BENCH_simcore.check.json".into() } else { "BENCH_simcore.json".into() }
    });

    if events {
        return run_events(iters, &trajectory_path(&out));
    }
    if service {
        return run_service(iters, &trajectory_path(&out));
    }

    let report = walltime::measure(iters);
    println!(
        "simcore bench: {} runs/iter, {} events/iter, {} iters per path",
        report.runs_per_iter, report.events_per_iter, report.iters
    );
    for (name, p) in [("optimized", &report.optimized), ("reference", &report.reference)] {
        println!(
            "  {name:<10} {:>8.1} ns/event (min {:.1}, max {:.1})  {:>12.0} events/s",
            p.ns_per_event.median, p.ns_per_event.min, p.ns_per_event.max,
            p.events_per_sec.median,
        );
    }
    println!("  speedup    {:.2}x (reference ns/event over optimized)", report.speedup);

    let json = walltime::to_json(&report);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("simcore_bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("  wrote {out}");

    let trajectory = trajectory_path(&out);
    let entry = walltime::TrajectoryEntry::from_report(&revision_label(), &report);
    let history = std::fs::read_to_string(&trajectory).ok();
    let body = walltime::append_trajectory(history.as_deref(), &entry);
    if let Err(e) = std::fs::write(&trajectory, body) {
        eprintln!("simcore_bench: cannot write {trajectory}: {e}");
        return ExitCode::FAILURE;
    }
    println!("  appended entry '{}' to {trajectory}", entry.label);

    if check {
        let back = match std::fs::read_to_string(&out) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("simcore_bench: cannot read back {out}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = walltime::validate(&back) {
            eprintln!("simcore_bench: {out} failed validation: {e}");
            return ExitCode::FAILURE;
        }
        println!("  check OK: schema valid, events/sec positive");
        match std::fs::read_to_string(BASELINE) {
            Ok(baseline) => match walltime::regression_gate(&baseline, &report, tolerance) {
                Ok(summary) => println!("  no-regression gate OK: {summary}"),
                Err(e) => {
                    eprintln!("simcore_bench: {e}");
                    eprintln!(
                        "simcore_bench: if this is an intended trade-off, refresh {BASELINE} \
                         with 'cargo run -p xtask -- bench' and commit it"
                    );
                    return ExitCode::FAILURE;
                }
            },
            Err(_) => {
                println!("  no committed {BASELINE}; skipping no-regression gate");
            }
        }
    }
    ExitCode::SUCCESS
}

/// The `--events` mode: time the calendar-queue cohort-pop microbench
/// (no simulator handler work, just `pop_cohort` + refill on a synthetic
/// stream) and append one `<rev>+events` entry to the trajectory
/// history. No `BENCH_simcore.json` is written and no gate runs: like
/// `--service`, this is a second trajectory series.
fn run_events(iters: u32, trajectory: &str) -> ExitCode {
    let report = walltime::measure_events(iters);
    println!(
        "events bench ({}): {} events/iter, {} iters per path",
        walltime::EVENTS_SUBSET,
        report.events_per_iter,
        report.iters
    );
    for (name, p) in [("calendar", &report.optimized), ("binary-heap", &report.reference)] {
        println!(
            "  {name:<11} {:>7.1} ns/event (min {:.1}, max {:.1})  {:>12.0} events/s",
            p.ns_per_event.median, p.ns_per_event.min, p.ns_per_event.max,
            p.events_per_sec.median,
        );
    }
    println!("  speedup    {:.2}x (binary-heap ns/event over calendar)", report.speedup);
    let label = format!("{}+events", revision_label());
    let entry = walltime::TrajectoryEntry::from_report(&label, &report);
    let history = std::fs::read_to_string(trajectory).ok();
    let body = walltime::append_trajectory(history.as_deref(), &entry);
    if let Err(e) = std::fs::write(trajectory, body) {
        eprintln!("simcore_bench: cannot write {trajectory}: {e}");
        return ExitCode::FAILURE;
    }
    println!("  appended entry '{label}' to {trajectory}");
    ExitCode::SUCCESS
}

/// The `--service` mode: time the service-mode subset and append one
/// `<rev>+service` entry to the trajectory history.
fn run_service(iters: u32, trajectory: &str) -> ExitCode {
    let report = walltime::measure_service(iters);
    println!(
        "service bench ({}): {} runs/iter, {} events/iter, {} iters per path",
        walltime::SERVICE_SUBSET,
        report.runs_per_iter,
        report.events_per_iter,
        report.iters
    );
    for (name, p) in [("optimized", &report.optimized), ("reference", &report.reference)] {
        println!(
            "  {name:<10} {:>8.1} ns/event (min {:.1}, max {:.1})  {:>12.0} events/s",
            p.ns_per_event.median, p.ns_per_event.min, p.ns_per_event.max,
            p.events_per_sec.median,
        );
    }
    let label = format!("{}+service", revision_label());
    let entry = walltime::TrajectoryEntry::from_report(&label, &report);
    let history = std::fs::read_to_string(trajectory).ok();
    let body = walltime::append_trajectory(history.as_deref(), &entry);
    if let Err(e) = std::fs::write(trajectory, body) {
        eprintln!("simcore_bench: cannot write {trajectory}: {e}");
        return ExitCode::FAILURE;
    }
    println!("  appended entry '{label}' to {trajectory}");
    ExitCode::SUCCESS
}

/// `BENCH_trajectory*.json` next to the report it belongs to.
fn trajectory_path(out: &str) -> String {
    if out.contains("BENCH_simcore") {
        out.replace("BENCH_simcore", "BENCH_trajectory")
    } else {
        format!("{out}.trajectory.json")
    }
}

/// Short commit hash of the working tree, or `"worktree"` when git is
/// unavailable — the label is informational, not load-bearing.
fn revision_label() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "worktree".into())
}

fn usage(err: &str) -> ExitCode {
    eprintln!("simcore_bench: {err}");
    eprintln!(
        "usage: simcore_bench [--iters N] [--out PATH] [--check] [--tolerance PCT] [--service] [--events]"
    );
    ExitCode::from(2)
}
