//! Front end for `xtask bench`: measures the simulation hot path over the
//! pinned campaign subset, writes `BENCH_simcore.json`, and appends the
//! run's medians to the sibling `BENCH_trajectory.json` history (formats
//! documented in README.md).
//!
//! ```text
//! simcore_bench [--iters N] [--out PATH] [--check] [--tolerance PCT] [--service] [--events]
//!               [--soak [--smoke] [--jobs N]]
//! ```
//!
//! `--service` measures the pinned service-mode subset instead (the
//! open-loop Poisson stream at ~80% utilisation, see
//! [`walltime::SERVICE_SUBSET`]) and appends its medians to the
//! trajectory history under a `+service` label; `--events` times the
//! calendar-queue cohort-pop microbench alone (no simulator handlers,
//! see [`walltime::EVENTS_SUBSET`]) under a `+events` label. Either
//! mode writes no
//! `BENCH_simcore.json` and runs no regression gate: the closed-loop
//! subset stays the committed baseline, the service entry is a second
//! trajectory series.
//!
//! `--soak` runs the million-request MMPP soak ([`soak::SoakSpec`]) in
//! bounded-memory mode: the live-slot high-water mark is hard-gated
//! against the spec's bound, and a `<rev>+soak` trajectory entry is
//! appended carrying the v2 optional fields (peak RSS, live high-water).
//! `--soak --smoke` is the `xtask check` `soak-smoke` step: a 0.5 s
//! soak run at `--jobs` 1 and 2 whose deterministic reports must be
//! byte-identical, with the same live-set gate and no trajectory write.
//!
//! `--check` is the CI gate wired into `xtask check`: three iterations,
//! written to `target/BENCH_simcore.check.json` (unless `--out` is
//! given), read back and schema-validated, then compared against the
//! committed `BENCH_simcore.json` baseline — the fresh run's fastest
//! pass must stay within `--tolerance` percent (default 10) of the
//! committed optimised median ns/event, or the gate fails printing both
//! sides. It then runs a reduced soak and gates its ns/event against
//! the committed `+soak` trajectory entry at a loose 60 % tolerance
//! (soak cost is arrival-path-dominated and noisier than the closed
//! loop), plus the hard live-set bound. A missing baseline skips the
//! corresponding comparison with a notice, so fresh clones and
//! baseline-refresh commits still pass.

use relief_bench::soak::{rss_peak_mb, SoakSpec};
use relief_bench::walltime;
use std::process::ExitCode;

/// The committed perf baseline the `--check` gate compares against.
const BASELINE: &str = "BENCH_simcore.json";

fn main() -> ExitCode {
    let mut iters: Option<u32> = None;
    let mut out: Option<String> = None;
    let mut check = false;
    let mut service = false;
    let mut events = false;
    let mut soak = false;
    let mut smoke = false;
    let mut jobs = 1usize;
    let mut tolerance = 0.10;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => iters = Some(n),
                _ => return usage("--iters needs a positive integer"),
            },
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => return usage("--out needs a path"),
            },
            "--check" => check = true,
            "--service" => service = true,
            "--events" => events = true,
            "--soak" => soak = true,
            "--smoke" => smoke = true,
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => jobs = n,
                _ => return usage("--jobs needs a positive integer"),
            },
            "--tolerance" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct >= 0.0 && pct.is_finite() => tolerance = pct / 100.0,
                _ => return usage("--tolerance needs a non-negative percentage"),
            },
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    // Check mode needs several passes so its min is a usable noise floor;
    // a standalone bench defaults to a longer run for tighter medians.
    let iters = iters.unwrap_or(if check { 3 } else { 5 });
    let out = out.unwrap_or_else(|| {
        if check { "target/BENCH_simcore.check.json".into() } else { "BENCH_simcore.json".into() }
    });

    if smoke && !soak {
        return usage("--smoke only applies to --soak");
    }
    if soak {
        return run_soak(smoke, jobs, &trajectory_path(&out));
    }
    if events {
        return run_events(iters, &trajectory_path(&out));
    }
    if service {
        return run_service(iters, &trajectory_path(&out));
    }

    let report = walltime::measure(iters);
    println!(
        "simcore bench: {} runs/iter, {} events/iter, {} iters per path",
        report.runs_per_iter, report.events_per_iter, report.iters
    );
    for (name, p) in [("optimized", &report.optimized), ("reference", &report.reference)] {
        println!(
            "  {name:<10} {:>8.1} ns/event (min {:.1}, max {:.1})  {:>12.0} events/s",
            p.ns_per_event.median, p.ns_per_event.min, p.ns_per_event.max,
            p.events_per_sec.median,
        );
    }
    println!("  speedup    {:.2}x (reference ns/event over optimized)", report.speedup);

    let json = walltime::to_json(&report);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("simcore_bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("  wrote {out}");

    let trajectory = trajectory_path(&out);
    let entry = walltime::TrajectoryEntry::from_report(&revision_label(), &report);
    let history = std::fs::read_to_string(&trajectory).ok();
    let body = walltime::append_trajectory(history.as_deref(), &entry);
    if let Err(e) = std::fs::write(&trajectory, body) {
        eprintln!("simcore_bench: cannot write {trajectory}: {e}");
        return ExitCode::FAILURE;
    }
    println!("  appended entry '{}' to {trajectory}", entry.label);

    if check {
        let back = match std::fs::read_to_string(&out) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("simcore_bench: cannot read back {out}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = walltime::validate(&back) {
            eprintln!("simcore_bench: {out} failed validation: {e}");
            return ExitCode::FAILURE;
        }
        println!("  check OK: schema valid, events/sec positive");
        match std::fs::read_to_string(BASELINE) {
            Ok(baseline) => match walltime::regression_gate(&baseline, &report, tolerance) {
                Ok(summary) => println!("  no-regression gate OK: {summary}"),
                Err(e) => {
                    eprintln!("simcore_bench: {e}");
                    eprintln!(
                        "simcore_bench: if this is an intended trade-off, refresh {BASELINE} \
                         with 'cargo run -p xtask -- bench' and commit it"
                    );
                    return ExitCode::FAILURE;
                }
            },
            Err(_) => {
                println!("  no committed {BASELINE}; skipping no-regression gate");
            }
        }
        return check_soak();
    }
    ExitCode::SUCCESS
}

/// The `--check` soak gate: a reduced soak whose live-slot high-water
/// mark must stay under the spec's bound (hard), and whose ns/event must
/// stay within 60 % of the committed `+soak` trajectory entry (skipped
/// with a notice when no soak entry is committed yet).
fn check_soak() -> ExitCode {
    const SOAK_TOLERANCE: f64 = 0.60;
    let spec = SoakSpec::check();
    let outcome = match spec.run(1) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("simcore_bench: soak check failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "  soak check OK: {} arrivals, {} events, live high-water {} (bound {})",
        outcome.arrivals, outcome.events, outcome.live_high_water, spec.live_bound
    );
    let committed = std::fs::read_to_string("BENCH_trajectory.json")
        .ok()
        .as_deref()
        .and_then(walltime::last_soak_ns);
    match committed {
        Some(baseline) => {
            let fresh = outcome.ns_per_event();
            let limit = baseline * (1.0 + SOAK_TOLERANCE);
            if fresh.total_cmp(&limit) == std::cmp::Ordering::Greater || !fresh.is_finite() {
                eprintln!(
                    "simcore_bench: soak regressed: committed {baseline:.1} ns/event vs \
                     fresh {fresh:.1}; limit {limit:.1} at {:.0}% tolerance",
                    SOAK_TOLERANCE * 100.0
                );
                eprintln!(
                    "simcore_bench: if this is an intended trade-off, refresh the +soak \
                     entry with 'cargo run -p xtask -- bench --soak' and commit it"
                );
                return ExitCode::FAILURE;
            }
            println!(
                "  soak no-regression gate OK: committed {baseline:.1} ns/event vs \
                 fresh {:.1}; limit {limit:.1}",
                outcome.ns_per_event()
            );
        }
        None => println!("  no committed +soak trajectory entry; skipping soak gate"),
    }
    ExitCode::SUCCESS
}

/// The `--soak` mode: the million-request bounded-memory soak, or its
/// 0.5 s `--smoke` variant (the `xtask check` `soak-smoke` step).
fn run_soak(smoke: bool, jobs: usize, trajectory: &str) -> ExitCode {
    if smoke {
        let spec = SoakSpec::smoke();
        let a = match spec.run(1) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("simcore_bench: soak smoke (jobs=1) failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let b = match spec.run(2) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("simcore_bench: soak smoke (jobs=2) failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if a.report != b.report {
            eprintln!(
                "simcore_bench: soak report depends on --jobs\n--- jobs=1 ---\n{}\n\
                 --- jobs=2 ---\n{}",
                a.report, b.report
            );
            return ExitCode::FAILURE;
        }
        print!("{}", a.report);
        println!(
            "soak smoke OK: {} arrivals, live high-water {} <= bound {}, \
             report byte-identical at jobs 1 and 2",
            a.arrivals, a.live_high_water, spec.live_bound
        );
        return ExitCode::SUCCESS;
    }

    let spec = SoakSpec::default();
    let outcome = match spec.run(jobs) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("simcore_bench: soak failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", outcome.report);
    let rss = rss_peak_mb();
    println!(
        "soak: {} arrivals, {} events, {:.1} ns/event, live high-water {} (bound {}), \
         peak RSS {}",
        outcome.arrivals,
        outcome.events,
        outcome.ns_per_event(),
        outcome.live_high_water,
        spec.live_bound,
        match rss {
            Some(mb) => format!("{mb:.1} MB"),
            None => "unavailable".to_string(),
        }
    );
    if outcome.arrivals < 1_000_000 {
        eprintln!(
            "simcore_bench: soak drove only {} arrivals (< 1M) — spec drifted?",
            outcome.arrivals
        );
        return ExitCode::FAILURE;
    }

    let label = format!("{}+soak", revision_label());
    // A soak runs once on the optimised path only (a reference soak
    // would deliberately grow O(arrivals)); both ns columns carry the
    // same measurement and the speedup is a placeholder 1.0.
    let entry = walltime::TrajectoryEntry {
        label: label.clone(),
        iters: 1,
        optimized_ns_per_event: outcome.ns_per_event(),
        reference_ns_per_event: outcome.ns_per_event(),
        events_per_sec: outcome.events as f64 * 1e9 / outcome.wall_ns.max(1) as f64,
        speedup: 1.0,
        rss_peak_mb: rss,
        live_high_water: Some(outcome.live_high_water),
    };
    let history = std::fs::read_to_string(trajectory).ok();
    let body = walltime::append_trajectory(history.as_deref(), &entry);
    if let Err(e) = std::fs::write(trajectory, body) {
        eprintln!("simcore_bench: cannot write {trajectory}: {e}");
        return ExitCode::FAILURE;
    }
    println!("  appended entry '{label}' to {trajectory}");
    ExitCode::SUCCESS
}

/// The `--events` mode: time the calendar-queue cohort-pop microbench
/// (no simulator handler work, just `pop_cohort` + refill on a synthetic
/// stream) and append one `<rev>+events` entry to the trajectory
/// history. No `BENCH_simcore.json` is written and no gate runs: like
/// `--service`, this is a second trajectory series.
fn run_events(iters: u32, trajectory: &str) -> ExitCode {
    let report = walltime::measure_events(iters);
    println!(
        "events bench ({}): {} events/iter, {} iters per path",
        walltime::EVENTS_SUBSET,
        report.events_per_iter,
        report.iters
    );
    for (name, p) in [("calendar", &report.optimized), ("binary-heap", &report.reference)] {
        println!(
            "  {name:<11} {:>7.1} ns/event (min {:.1}, max {:.1})  {:>12.0} events/s",
            p.ns_per_event.median, p.ns_per_event.min, p.ns_per_event.max,
            p.events_per_sec.median,
        );
    }
    println!("  speedup    {:.2}x (binary-heap ns/event over calendar)", report.speedup);
    let label = format!("{}+events", revision_label());
    let entry = walltime::TrajectoryEntry::from_report(&label, &report);
    let history = std::fs::read_to_string(trajectory).ok();
    let body = walltime::append_trajectory(history.as_deref(), &entry);
    if let Err(e) = std::fs::write(trajectory, body) {
        eprintln!("simcore_bench: cannot write {trajectory}: {e}");
        return ExitCode::FAILURE;
    }
    println!("  appended entry '{label}' to {trajectory}");
    ExitCode::SUCCESS
}

/// The `--service` mode: time the service-mode subset and append one
/// `<rev>+service` entry to the trajectory history.
fn run_service(iters: u32, trajectory: &str) -> ExitCode {
    let report = walltime::measure_service(iters);
    println!(
        "service bench ({}): {} runs/iter, {} events/iter, {} iters per path",
        walltime::SERVICE_SUBSET,
        report.runs_per_iter,
        report.events_per_iter,
        report.iters
    );
    for (name, p) in [("optimized", &report.optimized), ("reference", &report.reference)] {
        println!(
            "  {name:<10} {:>8.1} ns/event (min {:.1}, max {:.1})  {:>12.0} events/s",
            p.ns_per_event.median, p.ns_per_event.min, p.ns_per_event.max,
            p.events_per_sec.median,
        );
    }
    let label = format!("{}+service", revision_label());
    let entry = walltime::TrajectoryEntry::from_report(&label, &report);
    let history = std::fs::read_to_string(trajectory).ok();
    let body = walltime::append_trajectory(history.as_deref(), &entry);
    if let Err(e) = std::fs::write(trajectory, body) {
        eprintln!("simcore_bench: cannot write {trajectory}: {e}");
        return ExitCode::FAILURE;
    }
    println!("  appended entry '{label}' to {trajectory}");
    ExitCode::SUCCESS
}

/// `BENCH_trajectory*.json` next to the report it belongs to.
fn trajectory_path(out: &str) -> String {
    if out.contains("BENCH_simcore") {
        out.replace("BENCH_simcore", "BENCH_trajectory")
    } else {
        format!("{out}.trajectory.json")
    }
}

/// Short commit hash of the working tree, or `"worktree"` when git is
/// unavailable — the label is informational, not load-bearing.
fn revision_label() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "worktree".into())
}

fn usage(err: &str) -> ExitCode {
    eprintln!("simcore_bench: {err}");
    eprintln!(
        "usage: simcore_bench [--iters N] [--out PATH] [--check] [--tolerance PCT] \
         [--service] [--events] [--soak [--smoke] [--jobs N]]"
    );
    ExitCode::from(2)
}
