//! Front end for `xtask bench`: measures the simulation hot path over the
//! pinned campaign subset and writes `BENCH_simcore.json` (format
//! documented in README.md).
//!
//! ```text
//! simcore_bench [--iters N] [--out PATH] [--check]
//! ```
//!
//! `--check` is the CI smoke mode wired into `xtask check`: one iteration,
//! written to `target/BENCH_simcore.check.json` (unless `--out` is given),
//! then read back and validated — well-formed JSON, the expected schema
//! tag, and strictly positive events/sec for both paths.

use relief_bench::walltime;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut iters: u32 = 5;
    let mut out: Option<String> = None;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => iters = n,
                _ => return usage("--iters needs a positive integer"),
            },
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => return usage("--out needs a path"),
            },
            "--check" => check = true,
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    if check {
        iters = 1;
    }
    let out = out.unwrap_or_else(|| {
        if check { "target/BENCH_simcore.check.json".into() } else { "BENCH_simcore.json".into() }
    });

    let report = walltime::measure(iters);
    println!(
        "simcore bench: {} runs/iter, {} events/iter, {} iters per path",
        report.runs_per_iter, report.events_per_iter, report.iters
    );
    for (name, p) in [("optimized", &report.optimized), ("reference", &report.reference)] {
        println!(
            "  {name:<10} {:>8.1} ns/event (min {:.1}, max {:.1})  {:>12.0} events/s",
            p.ns_per_event.median, p.ns_per_event.min, p.ns_per_event.max,
            p.events_per_sec.median,
        );
    }
    println!("  speedup    {:.2}x (reference ns/event over optimized)", report.speedup);

    let json = walltime::to_json(&report);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("simcore_bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("  wrote {out}");

    if check {
        let back = match std::fs::read_to_string(&out) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("simcore_bench: cannot read back {out}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = walltime::validate(&back) {
            eprintln!("simcore_bench: {out} failed validation: {e}");
            return ExitCode::FAILURE;
        }
        println!("  check OK: schema valid, events/sec positive");
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("simcore_bench: {err}");
    eprintln!("usage: simcore_bench [--iters N] [--out PATH] [--check]");
    ExitCode::from(2)
}
