//! Runs every experiment in sequence — the full paper reproduction.
//! Output is suitable for diffing against EXPERIMENTS.md.
//!
//! The full simulation grid ([`ex::grid::full_grid`]) is executed up
//! front on the deterministic campaign engine (`--jobs N` worker
//! threads, default = available parallelism); the artifact renderers
//! then draw every result from the prewarmed cache. Stdout is
//! byte-identical to the historical serial runner for any `--jobs`
//! value — only wall-clock time changes. Fig. 12 measures host insert
//! latency and therefore still runs inline.

use relief_bench::campaign::{self, Ctx, ExecOptions};
use relief_bench::experiments as ex;

fn main() {
    let t0 = std::time::Instant::now();
    let jobs = match campaign::parse_jobs(std::env::args().skip(1)) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let grid = ex::grid::full_grid();
    eprintln!("== prewarming {} runs on {jobs} worker(s) ==", grid.len());
    let results = campaign::execute(grid, &ExecOptions { jobs, ..Default::default() });
    let failures = results.failures();
    for (label, msg) in &failures {
        eprintln!("run {label} panicked: {msg}");
    }
    for (label, mismatches) in results.mismatched() {
        eprintln!("run {label} failed event/stats reconciliation:");
        for m in mismatches {
            eprintln!("  {m}");
        }
    }
    if !failures.is_empty() {
        eprintln!("== {} run(s) failed; aborting before rendering ==", failures.len());
        std::process::exit(1);
    }
    let ctx = Ctx::from_results(&results);
    eprintln!("== grid done, rendering ({:.0?} elapsed) ==", t0.elapsed());

    for (name, f) in [
        ("table2", ex::table2_with as fn(&Ctx) -> String),
        ("fig2", ex::fig2_with),
        ("fig4", ex::fig4_with),
        ("fig4-col", ex::fig4_colocations_with),
        ("fig5", ex::fig5_with),
        ("fig6", ex::fig6_with),
        ("fig7", ex::fig7_with),
        ("fig8", ex::fig8_with),
        ("fig9", ex::fig9_with),
        ("fig10", ex::fig10_with),
        ("table7", ex::table7_with),
        ("table8", ex::table8_with),
        ("fig11", ex::fig11_with),
        ("fig12", |_: &Ctx| ex::fig12()),
        ("fig13", ex::fig13_with),
    ] {
        eprintln!("== running {name} ({:.0?} elapsed) ==", t0.elapsed());
        print!("{}", f(&ctx));
        println!();
    }
    // The oracle table searches rather than replays the campaign grid,
    // so it runs on its own `jobs`-wide pool (separate from the array
    // above: its renderer captures `jobs` and can't be a fn pointer).
    eprintln!("== running oracle ({:.0?} elapsed) ==", t0.elapsed());
    print!("{}", relief_bench::oracle::table_oracle(jobs));
    println!();
    eprintln!("== done in {:.0?} ==", t0.elapsed());
}
