//! Runs every experiment in sequence — the full paper reproduction.
//! Output is suitable for diffing against EXPERIMENTS.md.

use relief_bench::experiments as ex;

fn main() {
    let t0 = std::time::Instant::now();
    for (name, f) in [
        ("table2", ex::table2 as fn() -> String),
        ("fig2", ex::fig2),
        ("fig4", ex::fig4),
        ("fig4-col", ex::fig4_colocations),
        ("fig5", ex::fig5),
        ("fig6", ex::fig6),
        ("fig7", ex::fig7),
        ("fig8", ex::fig8),
        ("fig9", ex::fig9),
        ("fig10", ex::fig10),
        ("table7", ex::table7),
        ("table8", ex::table8),
        ("fig11", ex::fig11),
        ("fig12", ex::fig12),
        ("fig13", ex::fig13),
    ] {
        eprintln!("== running {name} ({:.0?} elapsed) ==", t0.elapsed());
        print!("{}", f());
        println!();
    }
    eprintln!("== done in {:.0?} ==", t0.elapsed());
}
