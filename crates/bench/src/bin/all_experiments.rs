//! Runs every experiment in sequence — the full paper reproduction.
//! Output is suitable for diffing against EXPERIMENTS.md.
//!
//! The full simulation grid ([`ex::grid::full_grid`]) is executed up
//! front on the deterministic campaign engine (`--jobs N` worker
//! threads, default = available parallelism); the artifact renderers
//! then draw every result from the prewarmed cache. Stdout is
//! byte-identical to the historical serial runner for any `--jobs`
//! value — only wall-clock time changes.
//!
//! Results also persist in the content-addressed campaign cache
//! (`target/campaign-cache/`, see `relief_bench::cache`), so a rerun
//! with an unchanged code-version salt simulates zero cells and emits
//! byte-identical stdout. The Fig. 12 host-latency table and the oracle
//! table are cached as rendered artifacts for the same reason — Fig. 12
//! times host wall-clock and would otherwise differ on every run. Pass
//! `--no-cache` to force full re-simulation (and a fresh Fig. 12
//! measurement).

use relief_bench::cache::CacheConfig;
use relief_bench::campaign::{self, Ctx, ExecOptions};
use relief_bench::experiments as ex;

fn main() {
    let t0 = std::time::Instant::now();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = match campaign::parse_jobs(args.iter().cloned()) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let cache = if args.iter().any(|a| a == "--no-cache") {
        CacheConfig::disabled()
    } else {
        CacheConfig::standard()
    };
    let grid = ex::grid::full_grid();
    eprintln!("== prewarming {} runs on {jobs} worker(s) ==", grid.len());
    let results = campaign::execute(
        grid,
        &ExecOptions { jobs, cache: cache.clone(), ..Default::default() },
    );
    let failures = results.failures();
    for (label, msg) in &failures {
        eprintln!("run {label} panicked: {msg}");
    }
    for (label, mismatches) in results.mismatched() {
        eprintln!("run {label} failed event/stats reconciliation:");
        for m in mismatches {
            eprintln!("  {m}");
        }
    }
    if !failures.is_empty() {
        eprintln!("== {} run(s) failed; aborting before rendering ==", failures.len());
        std::process::exit(1);
    }
    let ctx = Ctx::from_results(&results);
    eprintln!("== grid done, rendering ({:.0?} elapsed) ==", t0.elapsed());

    // Renders one artifact through the rendered-artifact cache: answered
    // from disk when warm, recomputed (and stored) otherwise.
    let artifact = |name: &str, render: &dyn Fn() -> String| -> String {
        cache.lookup_artifact(name).unwrap_or_else(|| {
            let body = render();
            cache.store_artifact(name, &body);
            body
        })
    };

    for (name, f) in [
        ("table2", ex::table2_with as fn(&Ctx) -> String),
        ("fig2", ex::fig2_with),
        ("fig4", ex::fig4_with),
        ("fig4-col", ex::fig4_colocations_with),
        ("fig5", ex::fig5_with),
        ("fig6", ex::fig6_with),
        ("fig7", ex::fig7_with),
        ("fig8", ex::fig8_with),
        ("fig9", ex::fig9_with),
        ("fig10", ex::fig10_with),
        ("table7", ex::table7_with),
        ("table8", ex::table8_with),
        ("fig11", ex::fig11_with),
    ] {
        eprintln!("== running {name} ({:.0?} elapsed) ==", t0.elapsed());
        print!("{}", f(&ctx));
        println!();
    }
    // Fig. 12 times *host* insert latency with `Instant`, so its numbers
    // change on every measurement; caching the rendered table is what
    // keeps a warm rerun byte-identical (`--no-cache` re-measures).
    eprintln!("== running fig12 ({:.0?} elapsed) ==", t0.elapsed());
    print!("{}", artifact("fig12-host-latency", &ex::fig12));
    println!();
    eprintln!("== running fig13 ({:.0?} elapsed) ==", t0.elapsed());
    print!("{}", ex::fig13_with(&ctx));
    println!();
    // The oracle table searches rather than replays the campaign grid
    // (output is jobs-independent), so it is cached as an artifact too.
    eprintln!("== running oracle ({:.0?} elapsed) ==", t0.elapsed());
    print!("{}", artifact("table-oracle", &|| relief_bench::oracle::table_oracle(jobs)));
    println!();
    eprintln!("== done in {:.0?} ==", t0.elapsed());
}
