//! Chaos campaign: degradation curves under combined fault and overload
//! pressure with the self-healing service stack on, per policy, on the
//! deterministic campaign engine.
//!
//! ```sh
//! cargo run --release -p relief-bench --bin chaos
//! cargo run --release -p relief-bench --bin chaos -- \
//!     --fault-rate 0,0.005,0.02 --rate 150,400 --jobs 4
//! ```
//!
//! The report is byte-identical at any `--jobs`: every cell's fault and
//! arrival plans are pure functions of its platform label (see
//! `relief_bench::chaos`).

use relief_bench::campaign::execute;
use relief_bench::chaos::parse_cli;
use std::process::ExitCode;

fn main() -> ExitCode {
    let (spec, opts) = match parse_cli(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: chaos [--fault-seed N] [--stream-seed N] \
                 [--fault-rate R[,R...]] [--rate R[,R...]] [--dram-mttf-us N] \
                 [--duration-us N] [--warmup-us N] [--max-in-flight N] \
                 [--jobs N] [--no-cache]"
            );
            return ExitCode::FAILURE;
        }
    };
    let campaign = spec.campaign();
    eprintln!(
        "campaign 'chaos' (hash {:016x}): {} runs on {} worker(s)",
        campaign.hash(),
        campaign.expand().len(),
        opts.jobs,
    );
    let results = execute(campaign.expand(), &opts);
    let mut failed = false;
    for (label, msg) in results.failures() {
        eprintln!("run {label} panicked: {msg}");
        failed = true;
    }
    for (label, mismatches) in results.mismatched() {
        eprintln!("run {label} failed event/stats reconciliation: {mismatches:?}");
        failed = true;
    }
    print!("{}", spec.render(&results));
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
