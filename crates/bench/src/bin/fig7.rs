//! Regenerates the paper's fig7. See DESIGN.md §5.

fn main() {
    print!("{}", relief_bench::experiments::fig7());
}
