//! Regenerates the paper's table8. See DESIGN.md §5.

fn main() {
    print!("{}", relief_bench::experiments::table8());
}
