//! Regenerates the paper's fig13. See DESIGN.md §5.

fn main() {
    print!("{}", relief_bench::experiments::fig13());
}
