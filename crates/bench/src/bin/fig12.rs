//! Regenerates the paper's fig12. See DESIGN.md §5.

fn main() {
    print!("{}", relief_bench::experiments::fig12());
}
