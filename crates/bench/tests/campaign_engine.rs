//! End-to-end tests of the campaign engine's determinism contract:
//! thread-count independence of reports, summaries, and captured traces,
//! plus panic attribution to the exact offending spec.

use relief_bench::campaign::{
    execute, CampaignSpec, Ctx, ExecOptions, PlatformSpec, RunSpec, WorkloadSpec,
};
use relief_core::PolicyKind;
use relief_trace::diff::first_divergence_lines;
use relief_workloads::Contention;
use std::collections::BTreeSet;

fn small_campaign() -> CampaignSpec {
    let mixes = Contention::Low.mixes();
    CampaignSpec::new(
        "engine-test",
        vec![PolicyKind::Lax, PolicyKind::Relief],
        mixes.iter().map(|m| WorkloadSpec::mix(Contention::Low, m)).collect(),
    )
}

#[test]
fn reports_are_identical_across_thread_counts() {
    let serial = execute(small_campaign().expand(), &ExecOptions { jobs: 1, ..Default::default() });
    let wide = execute(small_campaign().expand(), &ExecOptions { jobs: 8, ..Default::default() });
    assert!(serial.failures().is_empty(), "{:?}", serial.failures());
    assert!(serial.mismatched().is_empty(), "{:?}", serial.mismatched());
    assert_eq!(serial.report(), wide.report(), "per-run reports must not depend on --jobs");
    assert_eq!(serial.summary(), wide.summary(), "aggregates must not depend on --jobs");
}

#[test]
fn replicates_are_deterministic_but_distinct() {
    let spec = CampaignSpec { replicates: 3, ..small_campaign() };
    let a = execute(spec.expand(), &ExecOptions { jobs: 4, ..Default::default() });
    let b = execute(spec.expand(), &ExecOptions { jobs: 2, ..Default::default() });
    assert_eq!(a.report(), b.report());
    // Replicates of one cell see different seeds, so (with the mobile
    // platform's nonzero compute jitter) they are genuinely different
    // runs, not copies.
    let report = a.report();
    let lines: Vec<&str> = report.lines().take(3).collect();
    assert!(lines[0].starts_with("LAX|low/C|mobile|r0"));
    assert!(lines[1].starts_with("LAX|low/C|mobile|r1"));
    let tail = |l: &str| l.split_once(": ").expect("label: stats").1.to_string();
    assert_ne!(tail(lines[0]), tail(lines[1]), "replicate 1 must differ from replicate 0");
}

#[test]
fn captured_traces_are_identical_across_thread_counts() {
    // Trace one Fig. 2-sized run (small DAGs, full event stream) and
    // require a clean trace-diff between a serial and a threaded
    // execution of the same campaign.
    let spec = relief_bench::experiments::grid::fig2_run(PolicyKind::Relief);
    let label = spec.label();
    let run = |jobs| {
        let opts = ExecOptions { jobs, trace_labels: BTreeSet::from([label.clone()]), ..Default::default() };
        let specs: Vec<RunSpec> = [PolicyKind::Lax, PolicyKind::Relief]
            .iter()
            .map(|&p| relief_bench::experiments::grid::fig2_run(p))
            .collect();
        let results = execute(specs, &opts);
        assert!(results.failures().is_empty(), "{:?}", results.failures());
        results.get(&label).expect("traced run present").trace_text.clone().expect("trace captured")
    };
    let serial = run(1);
    let wide = run(8);
    assert!(!serial.is_empty());
    if let Some(div) = first_divergence_lines(&serial, &wide) {
        panic!("canonical traces diverged across thread counts:\n{}", div.report());
    }
    // Untraced runs don't pay for capture.
    let results = execute(
        vec![relief_bench::experiments::grid::fig2_run(PolicyKind::Lax)],
        &ExecOptions { jobs: 1, ..Default::default() },
    );
    assert!(results.outcomes[0].outcome.as_ref().unwrap().trace_text.is_none());
}

#[test]
fn panicking_runs_are_attributed_without_sinking_the_campaign() {
    let healthy = WorkloadSpec::mix(Contention::Low, &Contention::Low.mixes()[0]);
    let poisoned = WorkloadSpec::custom("poisoned", None, || {
        panic!("workload construction exploded")
    });
    let spec = CampaignSpec {
        workloads: vec![healthy, poisoned],
        ..CampaignSpec::new("panics", vec![PolicyKind::Relief], Vec::new())
    };
    let results = execute(spec.expand(), &ExecOptions { jobs: 2, ..Default::default() });
    let failures = results.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].0, "RELIEF|poisoned|mobile|r0");
    assert!(failures[0].1.contains("workload construction exploded"));
    // The healthy run still completed and is retrievable.
    assert!(results.get("RELIEF|low/C|mobile|r0").is_some());
    assert!(results.report().contains("RELIEF|poisoned|mobile|r0: FAILED:"));
}

#[test]
fn ctx_falls_back_inline_for_uncached_specs() {
    let cached = execute(
        vec![relief_bench::experiments::grid::fig2_run(PolicyKind::Relief)],
        &ExecOptions { jobs: 1, ..Default::default() },
    );
    let ctx = Ctx::from_results(&cached);
    assert_eq!(ctx.len(), 1);
    // A spec absent from the cache must produce the same result inline
    // as a fresh engine execution of it would.
    let miss = relief_bench::experiments::grid::fig2_run(PolicyKind::Lax);
    let inline = ctx.run(&miss);
    let engine = execute(vec![miss.clone()], &ExecOptions { jobs: 1, ..Default::default() });
    let engine_stats = &engine.get(&miss.label()).unwrap().result.stats;
    assert_eq!(format!("{:?}", inline.stats), format!("{engine_stats:?}"));
}

#[test]
fn custom_platforms_execute_deterministically() {
    // A platform closure with internal state-dependence would break the
    // contract; exercise a tweaked platform through both thread counts.
    let platform = PlatformSpec::custom("mobile-slow-dram", |p| {
        let mut cfg = relief_accel::SocConfig::mobile(p);
        cfg.mem.dram_bandwidth /= 2;
        cfg
    });
    let mixes = Contention::Low.mixes();
    let specs = |platform: &PlatformSpec| {
        vec![
            RunSpec::new(PolicyKind::Lax, WorkloadSpec::mix(Contention::Low, &mixes[2]), platform.clone()),
            RunSpec::new(PolicyKind::Relief, WorkloadSpec::mix(Contention::Low, &mixes[2]), platform.clone()),
        ]
    };
    let a = execute(specs(&platform), &ExecOptions { jobs: 1, ..Default::default() });
    let b = execute(specs(&platform), &ExecOptions { jobs: 2, ..Default::default() });
    assert_eq!(a.report(), b.report());
    assert!(a.report().contains("LAX|low/G|mobile-slow-dram|r0"));
}
