//! Persistent campaign-cache conformance suite.
//!
//! The content-addressed cache (`relief_bench::cache`) must be invisible
//! in campaign *output* and visible only in campaign *wall-clock*: a
//! warm rerun simulates zero cells yet renders byte-identical reports, a
//! corrupt or stale entry silently falls back to simulation (and is
//! repaired), and bumping the code-version salt invalidates everything
//! at once. Each test roots its cache in a fresh temp directory so runs
//! never observe each other (or a developer's real cache).

use relief_bench::cache::{CacheConfig, CODE_SALT};
use relief_bench::campaign::{
    execute, CampaignResults, CampaignSpec, ExecOptions, PlatformSpec, RunSpec, WorkloadSpec,
};
use relief_bench::service::ServiceSpec;
use relief_core::PolicyKind;
use relief_workloads::Contention;
use std::collections::BTreeSet;
use std::path::PathBuf;

/// A fresh, unique cache directory under the target tmpdir.
fn temp_cache(tag: &str) -> PathBuf {
    static UNIQUE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "relief-cache-test-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small grid covering the serialization surface: closed-loop cells, a
/// time-limited (truncated) continuous cell, a record-trace platform
/// (span serialization), and an open-loop service sweep (histograms).
fn cache_campaign() -> Vec<RunSpec> {
    let low = Contention::Low.mixes();
    let cont = Contention::Continuous.mixes();
    let closed = CampaignSpec {
        name: "cache-test".into(),
        policies: vec![PolicyKind::Fcfs, PolicyKind::Relief],
        workloads: vec![
            WorkloadSpec::mix(Contention::Low, &low[0]),
            WorkloadSpec::mix(Contention::Continuous, &cont[0]),
        ],
        platforms: vec![
            PlatformSpec::mobile(),
            PlatformSpec::custom("mobile+rt", |p| {
                let mut cfg = relief_accel::SocConfig::mobile(p);
                cfg.record_trace = true;
                cfg
            }),
        ],
        replicates: 1,
    };
    let service = ServiceSpec {
        rates: vec![200.0],
        duration_ps: 5_000_000_000, // 5 ms of arrivals
        warmup_ps: 1_000_000_000,
        policies: vec![PolicyKind::Relief],
        ..Default::default()
    };
    let mut specs = closed.expand();
    specs.extend(service.campaign().expand());
    specs
}

fn opts(jobs: usize, dir: &std::path::Path) -> ExecOptions {
    ExecOptions { jobs, cache: CacheConfig::at(dir.to_path_buf()), ..Default::default() }
}

/// Asserts two result sets are observationally identical, field by
/// field and bit by bit (floats compared through their bit patterns via
/// the Debug rendering plus the raw prediction vectors).
fn assert_results_identical(a: &CampaignResults, b: &CampaignResults, what: &str) {
    assert_eq!(a.report(), b.report(), "{what}: report text diverged");
    assert_eq!(a.summary(), b.summary(), "{what}: summary diverged");
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.label, y.label);
        let (rx, ry) = match (&x.outcome, &y.outcome) {
            (Ok(rx), Ok(ry)) => (rx, ry),
            _ => panic!("{what}: {} did not succeed on both sides", x.label),
        };
        assert_eq!(rx.counters, ry.counters, "{what}: {} counters", x.label);
        assert_eq!(rx.mismatches.len(), ry.mismatches.len());
        assert_eq!(
            format!("{:?}", rx.result.stats),
            format!("{:?}", ry.result.stats),
            "{what}: {} stats",
            x.label
        );
        assert_eq!(rx.result.per_app_mem_time, ry.result.per_app_mem_time);
        assert_eq!(rx.result.per_app_compute_time, ry.result.per_app_compute_time);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&rx.result.prediction.compute_rel_errors),
            bits(&ry.result.prediction.compute_rel_errors),
            "{what}: {} compute predictions",
            x.label
        );
        assert_eq!(
            bits(&rx.result.prediction.dm_rel_errors),
            bits(&ry.result.prediction.dm_rel_errors)
        );
        assert_eq!(
            bits(&rx.result.prediction.bw_rel_errors),
            bits(&ry.result.prediction.bw_rel_errors)
        );
        assert_eq!(rx.result.trace, ry.result.trace, "{what}: {} trace", x.label);
        assert_eq!(rx.result.events_dispatched, ry.result.events_dispatched);
    }
}

#[test]
fn warm_rerun_simulates_zero_cells_and_is_byte_identical() {
    let dir = temp_cache("warm");
    let specs = cache_campaign();
    let n = specs.len();

    let cold = execute(specs.clone(), &opts(2, &dir));
    assert!(cold.failures().is_empty(), "{:?}", cold.failures());
    assert!(cold.mismatched().is_empty(), "{:?}", cold.mismatched());
    assert_eq!((cold.cache_hits, cold.simulated), (0, n), "cold run must simulate all");

    // Warm rerun at a *different* jobs level: zero cells simulated, all
    // output identical down to prediction-sample bit patterns.
    let warm = execute(specs.clone(), &opts(4, &dir));
    assert_eq!((warm.cache_hits, warm.simulated), (n, 0), "warm run must hit every cell");
    assert_results_identical(&cold, &warm, "cold vs warm");

    // The trace-recording platform actually produced spans, so the span
    // serialization path was exercised (not vacuously empty)...
    let traced = warm
        .outcomes
        .iter()
        .find(|o| o.label.contains("mobile+rt"))
        .and_then(|o| o.outcome.as_ref().ok())
        .expect("record-trace cell present");
    assert!(!traced.result.trace.spans.is_empty(), "record_trace cell has spans");
    // ...and the service cell produced histogram samples.
    let svc = warm
        .outcomes
        .iter()
        .find(|o| o.label.contains("mobile+svc"))
        .and_then(|o| o.outcome.as_ref().ok())
        .expect("service cell present");
    assert!(svc.result.stats.service.arrivals() > 0, "service cell saw arrivals");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poisoned_entries_fall_back_to_simulation_and_are_repaired() {
    let dir = temp_cache("poison");
    let specs = cache_campaign();
    let n = specs.len();
    let cold = execute(specs.clone(), &opts(2, &dir));
    assert_eq!(cold.simulated, n);

    // Corrupt two entries: truncate one mid-stream, fill one with junk.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "run"))
        .collect();
    entries.sort();
    assert_eq!(entries.len(), n, "one entry per cell");
    let full = std::fs::read_to_string(&entries[0]).unwrap();
    std::fs::write(&entries[0], &full[..full.len() / 2]).unwrap();
    std::fs::write(&entries[1], "relief-campaign-cache/v1 garbage\n").unwrap();

    let warm = execute(specs.clone(), &opts(3, &dir));
    assert_eq!(
        (warm.cache_hits, warm.simulated),
        (n - 2, 2),
        "exactly the two poisoned cells re-simulate"
    );
    assert_results_identical(&cold, &warm, "after poisoning");

    // The re-simulation overwrote the bad entries: a second warm pass
    // hits everything.
    let healed = execute(specs, &opts(1, &dir));
    assert_eq!((healed.cache_hits, healed.simulated), (n, 0), "poisoned entries repaired");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn code_salt_bump_invalidates_the_whole_cache() {
    let dir = temp_cache("salt");
    let low = Contention::Low.mixes();
    let spec = CampaignSpec::new(
        "salt-test",
        vec![PolicyKind::Relief],
        vec![WorkloadSpec::mix(Contention::Low, &low[0])],
    );
    let specs = spec.expand();
    let n = specs.len();
    execute(specs.clone(), &opts(1, &dir));

    // Same directory, bumped salt: every entry misses...
    let bumped = CacheConfig { salt: format!("{CODE_SALT}+1"), ..CacheConfig::at(dir.clone()) };
    let rerun = execute(
        specs.clone(),
        &ExecOptions { jobs: 1, cache: bumped.clone(), ..Default::default() },
    );
    assert_eq!((rerun.cache_hits, rerun.simulated), (0, n), "salt bump must invalidate");

    // ...and the hygiene scan (under the bumped salt) flags the entries
    // written under the old one, while the matching salt sees none
    // besides the freshly written bumped-salt entries.
    assert!(
        !bumped.stale_entries().is_empty(),
        "old-salt entries must scan as stale after a bump"
    );
    let current = CacheConfig::at(dir.clone());
    let stale = current.stale_entries();
    assert!(
        !stale.is_empty(),
        "bumped-salt entries must scan as stale under the current salt"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_captured_runs_bypass_the_cache() {
    let dir = temp_cache("trace");
    let low = Contention::Low.mixes();
    let spec = CampaignSpec::new(
        "trace-test",
        vec![PolicyKind::Fcfs, PolicyKind::Relief],
        vec![WorkloadSpec::mix(Contention::Low, &low[0])],
    );
    let specs = spec.expand();
    let n = specs.len();
    let captured: String = specs[0].label();

    let mk = |jobs| ExecOptions {
        jobs,
        trace_labels: BTreeSet::from([captured.clone()]),
        cache: CacheConfig::at(dir.clone()),
    };
    let first = execute(specs.clone(), &mk(2));
    assert_eq!(first.simulated, n);
    // The captured run re-simulates on the warm pass (its text trace is
    // never persisted) while every other cell hits.
    let second = execute(specs.clone(), &mk(1));
    assert_eq!(
        (second.cache_hits, second.simulated),
        (n - 1, 1),
        "captured label must bypass the cache"
    );
    let trace_of = |r: &CampaignResults| {
        r.get(&captured).and_then(|rec| rec.trace_text.clone()).expect("captured trace")
    };
    assert_eq!(trace_of(&first), trace_of(&second), "captured traces identical");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rendered_artifacts_round_trip_and_respect_salt() {
    let dir = temp_cache("artifact");
    let cache = CacheConfig::at(dir.clone());
    assert_eq!(cache.lookup_artifact("oracle"), None);
    let body = "line one\nline two | with % and µ\n";
    cache.store_artifact("oracle", body);
    assert_eq!(cache.lookup_artifact("oracle").as_deref(), Some(body));
    // A different name is a different address.
    assert_eq!(cache.lookup_artifact("fig12"), None);
    // A bumped salt misses the stored artifact.
    let bumped = CacheConfig { salt: "other".into(), ..CacheConfig::at(dir.clone()) };
    assert_eq!(bumped.lookup_artifact("oracle"), None);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replicate seeds, time limits, and labels flow through the cache key:
/// two specs differing only in replicate index never collide.
#[test]
fn replicates_cache_independently() {
    let dir = temp_cache("replicates");
    let low = Contention::Low.mixes();
    let spec = CampaignSpec {
        replicates: 2,
        ..CampaignSpec::new(
            "rep-test",
            vec![PolicyKind::Relief],
            vec![WorkloadSpec::mix(Contention::Low, &low[0])],
        )
    };
    let specs: Vec<RunSpec> = spec.expand();
    assert_eq!(specs.len(), 2);
    let cold = execute(specs.clone(), &opts(2, &dir));
    let warm = execute(specs, &opts(2, &dir));
    assert_eq!((warm.cache_hits, warm.simulated), (2, 0));
    // Distinct replicates produced distinct results (different seeds) —
    // a collision would have made these identical.
    let texts: Vec<String> = cold
        .outcomes
        .iter()
        .map(|o| format!("{:?}", o.outcome.as_ref().unwrap().result.stats))
        .collect();
    assert_results_identical(&cold, &warm, "replicates");
    assert_eq!(texts.len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}
