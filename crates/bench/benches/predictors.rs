//! Cost of the runtime predictors on the manager's critical path
//! (§III-B): one bandwidth observation + one memory-time prediction.

use relief_bench::microbench::bench;
use relief_core::predict::{BandwidthPredictor, DataMoveQuery};
use relief_core::MemTimePredictor;
use relief_mem::MemConfig;

fn query() -> DataMoveQuery {
    DataMoveQuery {
        parent_edge_bytes: vec![65_536, 65_536],
        dram_input_bytes: 65_536,
        output_bytes: 65_536,
        colocated_parent_edge: Some(0),
        all_children_forward: false,
    }
}

fn main() {
    let cfg = MemConfig::default();
    println!("[predict]");
    let variants: [(&str, BandwidthPredictor); 4] = [
        ("max", BandwidthPredictor::max(cfg.dram_bandwidth)),
        ("last", BandwidthPredictor::last(cfg.dram_bandwidth)),
        ("average15", BandwidthPredictor::average(cfg.dram_bandwidth, 15)),
        ("ewma", BandwidthPredictor::ewma(cfg.dram_bandwidth, 0.25)),
    ];
    for (name, bw) in variants {
        let mut pred = MemTimePredictor {
            bandwidth: bw,
            data_movement: relief_core::predict::DataMovePredictor::Predicted,
            icn_bandwidth: cfg.interconnect_bandwidth,
        };
        let q = query();
        bench(name, 100_000, || {
            pred.observe_bandwidth(5.9e9);
            pred.predict(&q)
        });
    }
}
