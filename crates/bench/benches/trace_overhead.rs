//! Overhead of the tracing subsystem on a full simulation run.
//!
//! Three configurations of the same CDG high-contention RELIEF run:
//! tracing off (no sinks — emit sites must be near-free), a `NullSink`
//! (plumbing cost: events are built and discarded), and a bounded
//! `RingBufferSink` (the realistic collection cost). The "off" case is
//! the one that matters: it is what every non-tracing user pays.

use relief_accel::SocSim;
use relief_bench::config_for;
use relief_bench::microbench::bench;
use relief_core::PolicyKind;
use relief_trace::{NullSink, RingBufferSink, Tracer};
use relief_workloads::Contention;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    println!("[trace_overhead: CDG/high/RELIEF]");
    let mix = &Contention::High.mixes()[0];
    let cfg = || config_for(PolicyKind::Relief, Contention::High);

    let off = bench("tracing off", 10, || SocSim::new(cfg(), mix.workload()).run().stats);

    let null = bench("null sink attached", 10, || {
        let tracer = Tracer::to_sink(Rc::new(RefCell::new(NullSink)));
        SocSim::new(cfg(), mix.workload()).with_tracer(&tracer).run().stats
    });

    let ring = bench("ring buffer (1M events)", 10, || {
        let sink = RingBufferSink::shared(1_000_000);
        let tracer = Tracer::to_sink(sink.clone());
        let stats = SocSim::new(cfg(), mix.workload()).with_tracer(&tracer).run().stats;
        let total = sink.borrow().total();
        (total, stats)
    });

    println!();
    println!("null-sink overhead vs off: {:+.1}%", 100.0 * (null - off) / off);
    println!("ring-buffer overhead vs off: {:+.1}%", 100.0 * (ring - off) / off);
}
