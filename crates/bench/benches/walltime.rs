//! Wall-clock cost of the simulation hot path, optimised vs reference.
//!
//! The `walltime` family times the same pinned campaign subset that
//! `xtask bench` uses for `BENCH_simcore.json`, but broken out per case so
//! a regression can be localised: one line per (path, case) with ns per
//! dispatched simulator event, then the whole-subset aggregate.

use relief_bench::walltime::{pinned_subset, run_cases};

fn main() {
    println!("[walltime]");
    let cases = pinned_subset();
    for reference in [false, true] {
        let path = if reference { "ref" } else { "opt" };
        for case in &cases {
            let sample = run_cases(std::slice::from_ref(case), reference);
            println!(
                "walltime/{path}/{:<28} {:>9} events {:>10.1} ns/event",
                format!("{}/{}", case.label, case.policy.name()),
                sample.events,
                sample.ns_per_event(),
            );
        }
        let total = run_cases(&cases, reference);
        println!(
            "walltime/{path}/{:<28} {:>9} events {:>10.1} ns/event  {:>12.0} events/s",
            "subset",
            total.events,
            total.ns_per_event(),
            total.events_per_sec(),
        );
    }
}
