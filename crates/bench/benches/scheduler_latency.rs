//! Fig. 12 companion: latency of one ready-queue insertion per policy,
//! measured rigorously with Criterion. The paper measures a Cortex-A7
//! microcontroller; the reproducible claim is the *relative* ordering
//! (FCFS cheapest, RELIEF most expensive but still trivially overlapped
//! with 10–1500 µs accelerator tasks).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use relief_core::{PolicyKind, ReadyQueues, TaskEntry, TaskKey};
use relief_dag::AccTypeId;
use relief_sim::{Dur, Time};

fn prefilled(policy: PolicyKind, depth: u32) -> (Box<dyn relief_core::Policy>, ReadyQueues) {
    let mut p = policy.build();
    let mut q = ReadyQueues::new(1);
    let batch: Vec<TaskEntry> = (0..depth)
        .map(|i| {
            TaskEntry::new(
                TaskKey::new(0, i),
                AccTypeId(0),
                Dur::from_us(10 + (i as u64 * 7) % 40),
                Time::from_us(100 + (i as u64 * 13) % 400),
            )
            .with_seq(i as u64)
        })
        .collect();
    p.enqueue_ready(&mut q, batch, Time::ZERO, &[1]);
    (p, q)
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("ready_queue_insert");
    for policy in PolicyKind::ALL {
        for depth in [8u32, 32, 128] {
            group.bench_with_input(
                BenchmarkId::new(policy.name(), depth),
                &depth,
                |b, &depth| {
                    b.iter_batched(
                        || {
                            let state = prefilled(policy, depth);
                            let entry = TaskEntry::new(
                                TaskKey::new(1, 0),
                                AccTypeId(0),
                                Dur::from_us(15),
                                Time::from_us(250),
                            )
                            .with_seq(10_000)
                            .forwarding_candidate();
                            (state, entry)
                        },
                        |((mut p, mut q), entry)| {
                            p.enqueue_ready(&mut q, vec![entry], Time::from_us(1), &[1]);
                            q.len()
                        },
                        BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    group.finish();
}

fn bench_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("ready_queue_pop");
    for policy in [PolicyKind::Fcfs, PolicyKind::Lax, PolicyKind::Relief] {
        group.bench_function(policy.name(), |b| {
            b.iter_batched(
                || prefilled(policy, 64),
                |(mut p, mut q)| p.pop(&mut q, AccTypeId(0), Time::from_us(1)),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_pop);
criterion_main!(benches);
