//! Fig. 12 companion: latency of one ready-queue insertion per policy.
//! The paper measures a Cortex-A7 microcontroller; the reproducible claim
//! is the *relative* ordering (FCFS cheapest, RELIEF most expensive but
//! still trivially overlapped with 10–1500 µs accelerator tasks).

use relief_bench::microbench::bench_consume;
use relief_core::{PolicyKind, ReadyQueues, TaskEntry, TaskKey};
use relief_dag::AccTypeId;
use relief_sim::{Dur, Time};

fn prefilled(policy: PolicyKind, depth: u32) -> (Box<dyn relief_core::Policy>, ReadyQueues) {
    let mut p = policy.build();
    let mut q = ReadyQueues::new(1);
    let mut batch: Vec<TaskEntry> = (0..depth)
        .map(|i| {
            TaskEntry::new(
                TaskKey::new(0, i),
                AccTypeId(0),
                Dur::from_us(10 + (i as u64 * 7) % 40),
                Time::from_us(100 + (i as u64 * 13) % 400),
            )
            .with_seq(i as u64)
        })
        .collect();
    p.enqueue_ready(&mut q, &mut batch, Time::ZERO, &[1]);
    (p, q)
}

fn incoming() -> TaskEntry {
    TaskEntry::new(TaskKey::new(1, 0), AccTypeId(0), Dur::from_us(15), Time::from_us(250))
        .with_seq(10_000)
        .forwarding_candidate()
}

fn main() {
    const ITERS: usize = 2_000;
    println!("[ready_queue_insert]");
    for policy in PolicyKind::ALL {
        for depth in [8u32, 32, 128] {
            let states: Vec<_> = (0..ITERS).map(|_| (prefilled(policy, depth), incoming())).collect();
            bench_consume(
                &format!("insert/{}/depth{depth}", policy.name()),
                states,
                |((mut p, mut q), entry)| {
                    p.enqueue_ready(&mut q, &mut vec![entry], Time::from_us(1), &[1]);
                    q.len()
                },
            );
        }
    }
    println!("\n[ready_queue_pop]");
    for policy in [PolicyKind::Fcfs, PolicyKind::Lax, PolicyKind::Relief] {
        let states: Vec<_> = (0..ITERS).map(|_| prefilled(policy, 64)).collect();
        bench_consume(&format!("pop/{}", policy.name()), states, |(mut p, mut q)| {
            p.pop(&mut q, AccTypeId(0), Time::from_us(1))
        });
    }
}
