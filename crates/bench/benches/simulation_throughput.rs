//! End-to-end simulator throughput: how fast the SoC model executes one
//! application mix (relevant to anyone sweeping the design space with this
//! repository; gem5 runs of the same workloads take hours).

use criterion::{criterion_group, criterion_main, Criterion};
use relief_accel::SocSim;
use relief_bench::config_for;
use relief_core::PolicyKind;
use relief_workloads::Contention;

fn bench_mixes(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_mix");
    group.sample_size(10);
    // CDG under high contention — the first triple of Fig. 4c.
    let mix = &Contention::High.mixes()[0];
    for policy in [PolicyKind::Fcfs, PolicyKind::Relief] {
        group.bench_function(format!("high/CDG/{}", policy.name()), |b| {
            b.iter(|| {
                SocSim::new(config_for(policy, Contention::High), mix.workload()).run().stats
            });
        });
    }
    // GHL continuous: the heaviest RNN-dominated 50 ms run.
    let ghl = Contention::Continuous.mixes().into_iter().last().expect("GHL exists");
    group.bench_function("continuous/GHL/RELIEF", |b| {
        b.iter(|| {
            SocSim::new(config_for(PolicyKind::Relief, Contention::Continuous), ghl.workload())
                .run()
                .stats
        });
    });
    group.finish();
}

criterion_group!(benches, bench_mixes);
criterion_main!(benches);
