//! End-to-end simulator throughput: how fast the SoC model executes one
//! application mix (relevant to anyone sweeping the design space with this
//! repository; gem5 runs of the same workloads take hours).

use relief_accel::SocSim;
use relief_bench::config_for;
use relief_bench::microbench::bench;
use relief_core::PolicyKind;
use relief_workloads::Contention;

fn main() {
    println!("[simulate_mix]");
    // CDG under high contention — the first triple of Fig. 4c.
    let mix = &Contention::High.mixes()[0];
    for policy in [PolicyKind::Fcfs, PolicyKind::Relief] {
        bench(&format!("high/CDG/{}", policy.name()), 10, || {
            SocSim::new(config_for(policy, Contention::High), mix.workload()).run().stats
        });
    }
    // GHL continuous: the heaviest RNN-dominated 50 ms run.
    let ghl = Contention::Continuous.mixes().into_iter().last().expect("GHL exists");
    bench("continuous/GHL/RELIEF", 5, || {
        SocSim::new(config_for(PolicyKind::Relief, Contention::Continuous), ghl.workload())
            .run()
            .stats
    });
}
