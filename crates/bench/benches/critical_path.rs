//! Cost of the per-arrival DAG analysis (critical-path timing + deadline
//! assignment) the hardware manager performs when a DAG is submitted.

use relief_bench::microbench::bench;
use relief_dag::{DagTiming, DeadlineAssignment};
use relief_workloads::App;

fn main() {
    println!("[dag_analysis]");
    for app in App::ALL {
        let dag = app.dag();
        bench(app.name(), 10_000, || {
            let timing = DagTiming::compute(&dag, |n| dag.node(n).compute);
            DeadlineAssignment::from_timing(&dag, &timing)
        });
    }
}
