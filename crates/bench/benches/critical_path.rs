//! Cost of the per-arrival DAG analysis (critical-path timing + deadline
//! assignment) the hardware manager performs when a DAG is submitted.

use criterion::{criterion_group, criterion_main, Criterion};
use relief_dag::{DagTiming, DeadlineAssignment};
use relief_workloads::App;

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_analysis");
    for app in App::ALL {
        let dag = app.dag();
        group.bench_function(app.name(), |b| {
            b.iter(|| {
                let timing = DagTiming::compute(&dag, |n| dag.node(n).compute);
                DeadlineAssignment::from_timing(&dag, &timing)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
