//! Typed errors for workload construction.

use relief_dag::DagError;
use std::fmt;

/// A rejected workload request: a bad parameter, or a graph-construction
/// failure bubbled up from `relief-dag`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// A parameter outside its valid range, with a printable reason.
    InvalidParam(String),
    /// The underlying DAG builder rejected the graph.
    Dag(DagError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidParam(msg) => write!(f, "invalid workload parameter: {msg}"),
            WorkloadError::Dag(e) => write!(f, "workload dag construction failed: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::InvalidParam(_) => None,
            WorkloadError::Dag(e) => Some(e),
        }
    }
}

impl From<DagError> for WorkloadError {
    fn from(e: DagError) -> Self {
        WorkloadError::Dag(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let p = WorkloadError::InvalidParam("need at least one timestep".into());
        assert_eq!(p.to_string(), "invalid workload parameter: need at least one timestep");
        let d = WorkloadError::from(DagError::Empty);
        assert_eq!(d.to_string(), "workload dag construction failed: graph has no nodes");
        assert!(std::error::Error::source(&d).is_some());
        assert!(std::error::Error::source(&p).is_none());
    }
}
